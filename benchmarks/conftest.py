"""Shared infrastructure for the reproduction benchmarks.

Each ``bench_*.py`` regenerates one table or figure of the paper. The
expensive simulation machines are built once per (environment, workload,
page-size mode) and shared across benches through the session-scoped
``sim_cache``; the pytest-benchmark timings cover walk replay, the
simulator's hot path.

Environment knobs:

* ``REPRO_BENCH_SCALE``   — working-set divisor (default 512);
* ``REPRO_BENCH_NREFS``   — trace length (default 30000);
* ``REPRO_BENCH_WORKLOADS`` — comma-separated subset (default: all seven);
* ``REPRO_BENCH_ARTIFACTS`` — directory for the cross-run artifact
  cache (:mod:`repro.sim.artifacts`); unset disables persistence and
  machines share only the in-process stage-1 memo.
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

import pytest

from repro.sim import SimConfig
from repro.sim.artifacts import ArtifactCache
from repro.sim.simulator import Stage1Cache
from repro.sim.sweep import ALL_WORKLOADS, build_sim

SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "512"))
NREFS = int(os.environ.get("REPRO_BENCH_NREFS", "30000"))
ARTIFACT_DIR = os.environ.get("REPRO_BENCH_ARTIFACTS", "").strip() or None

_env_workloads = os.environ.get("REPRO_BENCH_WORKLOADS", "").strip()
WORKLOADS: List[str] = (
    [w for w in _env_workloads.split(",") if w] if _env_workloads
    else ALL_WORKLOADS
)


def bench_config(thp: bool = False, record_refs: bool = False) -> SimConfig:
    return SimConfig(scale=SCALE, nrefs=NREFS, thp=thp,
                     record_refs=record_refs)


class SimCache:
    """Session-wide store of built simulation machines and run results.

    Machine construction goes through :func:`repro.sim.sweep.build_sim`,
    the same entry point the parallel sweep runner's workers use. Every
    machine shares one :class:`Stage1Cache` (keys are per workload and
    config, so sharing is safe) — with ``REPRO_BENCH_ARTIFACTS`` set it
    is backed by the on-disk artifact cache, so a bench session reuses
    traces and miss streams computed by earlier sessions.
    """

    def __init__(self):
        self._sims: Dict[Tuple, object] = {}
        artifacts = ArtifactCache(ARTIFACT_DIR) if ARTIFACT_DIR else None
        self.stage1 = Stage1Cache(artifacts=artifacts)
        #: cross-bench numeric results (e.g. Table 5 reuses Fig. 14/15 data)
        self.results: Dict[str, object] = {}

    def sim(self, env: str, workload: str, thp: bool = False,
            record_refs: bool = False):
        key = (env, workload, thp, record_refs)
        if key not in self._sims:
            cfg = bench_config(thp=thp, record_refs=record_refs)
            self._sims[key] = build_sim(env, workload, cfg,
                                        stage1=self.stage1)
        return self._sims[key]


@pytest.fixture(scope="session")
def sim_cache():
    return SimCache()


def replay_slice(sim, design: str, count: int = 1500):
    """The benchmarked hot path: replay a slice of the miss stream."""
    from repro.sim.simulator import replay_walks

    walker = sim.walker(design)
    return replay_walks(walker, sim.tlb.miss_vas[:count], warmup_fraction=0.0)
