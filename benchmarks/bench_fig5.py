"""Figure 5: CDFs of the three VMA statistics over SPEC CPU 2006/2017.

Paper: for the 30 SPEC 2006 and 47 SPEC 2017 workloads, CDFs of total
VMAs, 99%-coverage VMA counts, and cluster counts. All workloads fit 16
registers after clustering (<= 12 clusters cover 99%).
"""

from repro.analysis.report import banner, format_cdf
from repro.analysis.vma_stats import cdf, vma_stats
from repro.workloads import spec2006_layouts, spec2017_layouts


def compute_fig5():
    out = {}
    for suite, layouts in (("SPEC2006", spec2006_layouts()),
                           ("SPEC2017", spec2017_layouts())):
        stats = [vma_stats(layout) for layout in layouts.values()]
        out[suite] = {
            "total": cdf([s.total for s in stats]),
            "cov99": cdf([s.cov99 for s in stats]),
            "clusters": cdf([s.clusters for s in stats]),
        }
    return out


def test_fig5_spec_vma_cdfs(benchmark):
    data = benchmark.pedantic(compute_fig5, rounds=1, iterations=1)
    print(banner("Figure 5: SPEC CPU 2006/2017 VMA-statistic CDFs"))
    for suite, cdfs in data.items():
        for stat, points in cdfs.items():
            print(format_cdf(f"{suite} {stat}", points))
    # §2.3: 99% of the working set fits in <=12 clusters everywhere, so a
    # 16-register DMT covers every SPEC workload after clustering.
    for suite, cdfs in data.items():
        max_clusters = cdfs["clusters"][-1][0]
        assert max_clusters <= 12, suite
        assert cdfs["cov99"][-1][0] <= 21
