"""Figure 14: native speedups of FPT/ECPT/ASAP/DMT over vanilla Linux.

Paper (geomeans): DMT speeds up page walks 1.28x (4 KB) / 1.46x (THP) and
application execution ~1.05x; FPT/ECPT/ASAP land between vanilla and DMT.
We regenerate both panels for both page-size modes; absolute numbers
differ (simulation scale), the ordering and rough factors should hold.
"""

import pytest

from repro.analysis.report import banner, format_table
from repro.sim.perfmodel import model_from_stats
from repro.sim.simulator import geomean

from conftest import WORKLOADS, replay_slice

DESIGNS = ["fpt", "ecpt", "asap", "dmt"]


def run_native_panel(sim_cache, thp: bool):
    results = {}
    for workload in WORKLOADS:
        sim = sim_cache.sim("native", workload, thp=thp)
        stats = {d: sim.run(d) for d in ["vanilla"] + DESIGNS}
        results[workload] = stats
    sim_cache.results[f"fig14:{thp}"] = results
    return results


def _print_panel(results, thp: bool):
    mode = "THP" if thp else "4KB"
    print(banner(f"Figure 14 ({mode}): native page-walk and app speedups"))
    rows = []
    for workload, stats in results.items():
        vanilla = stats["vanilla"]
        row = [workload]
        for design in DESIGNS:
            pw = vanilla.mean_latency / stats[design].mean_latency
            app = model_from_stats(workload, "native", vanilla,
                                   stats[design], thp=thp).app_speedup
            row.append(f"{pw:.2f}/{app:.2f}")
        rows.append(row)
    geo = ["Geo.Mean"]
    for design in DESIGNS:
        pws = [s["vanilla"].mean_latency / s[design].mean_latency
               for s in results.values()]
        apps = [model_from_stats(w, "native", s["vanilla"], s[design],
                                 thp=thp).app_speedup
                for w, s in results.items()]
        geo.append(f"{geomean(pws):.2f}/{geomean(apps):.2f}")
    rows.append(geo)
    print(format_table(["Workload"] + [f"{d} pw/app" for d in DESIGNS], rows))


@pytest.mark.parametrize("thp", [False, True], ids=["4KB", "THP"])
def test_fig14_native_speedups(benchmark, sim_cache, thp):
    results = run_native_panel(sim_cache, thp)
    _print_panel(results, thp)
    # the benchmarked hot path: replaying walks through the DMT design
    sim = sim_cache.sim("native", WORKLOADS[0], thp=thp)
    benchmark.pedantic(lambda: replay_slice(sim, "dmt"), rounds=1, iterations=1)

    # shape assertions (who wins)
    pw_geo = {}
    for design in DESIGNS:
        pw_geo[design] = geomean([
            s["vanilla"].mean_latency / s[design].mean_latency
            for s in results.values()
        ])
    assert pw_geo["dmt"] > 1.0, "DMT must beat vanilla natively (Fig. 14)"
    assert pw_geo["dmt"] >= pw_geo["fpt"] * 0.98, \
        "DMT >= FPT on page walks (Table 5)"
    assert pw_geo["dmt"] >= pw_geo["ecpt"] * 0.95, \
        "DMT ~ ECPT natively (Table 5: 1.03x)"
