"""Table 1: VMA characteristics of the evaluation workloads.

Paper: total VMAs, VMAs covering 99% of memory, and adjacent-VMA clusters
(2% bubble allowance) per workload — e.g. Memcached's 1,065 VMAs collapse
into 2 clusters. Regenerated here from the synthetic layouts with the
same clustering rule DMT-Linux uses at runtime.
"""

from repro.analysis.report import banner, format_table
from repro.analysis.vma_stats import vma_stats
from repro.workloads import catalogue

from conftest import SCALE

# Small VMAs cannot shrink below one page, so at extreme scales they stop
# being negligible against the scaled-down heaps; <=1024 keeps the layout
# statistics exact (the default bench scale of 512 qualifies).
TABLE1_SCALE = min(SCALE, 1024)


def compute_table1():
    rows = []
    for name, workload in catalogue(TABLE1_SCALE).items():
        layout = [(start, end) for start, end, _ in workload.layout()]
        stats = vma_stats(layout)
        rows.append([
            name, stats.total, stats.cov99, stats.clusters,
            workload.paper_total_vmas, workload.paper_cov99,
            workload.paper_clusters,
        ])
    return rows


def test_table1_vma_characteristics(benchmark):
    rows = benchmark.pedantic(compute_table1, rounds=1, iterations=1)
    print(banner("Table 1: VMA characteristics (measured vs paper)"))
    print(format_table(
        ["Workload", "Total", "99% Cov.", "Clusters",
         "paper:Total", "paper:Cov", "paper:Clusters"],
        rows,
    ))
    for name, total, cov, clusters, p_total, p_cov, p_clusters in rows:
        assert total == p_total, name
        assert abs(cov - p_cov) <= max(2, p_cov * 0.01), name
        assert abs(clusters - p_clusters) <= 1, name
