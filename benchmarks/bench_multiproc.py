"""Context-switch robustness (extension of §4.1).

Not a paper figure: quantifies the task-state design — DMT registers are
reloaded per switch while the baseline's page-walk caches are flushed by
the CR3 write — by co-scheduling two workloads on one core at several
quantum lengths.
"""

from repro.analysis.report import banner, format_table
from repro.sim.machine import SimConfig
from repro.sim.multiproc import MultiProcessSimulation


def _sweep():
    results = []
    for quantum in (50, 200, 1000):
        sim = MultiProcessSimulation(
            ["GUPS", "Canneal"],
            SimConfig(scale=4096, nrefs=8000),
            quantum_misses=quantum,
        )
        dmt = sim.run("dmt")
        vanilla = sim.run("vanilla")
        results.append({
            "quantum": quantum,
            "switches": dmt.switches,
            "dmt": dmt.per_design["dmt"]["mean_latency"],
            "vanilla": vanilla.per_design["vanilla"]["mean_latency"],
            "dmt_fallback": dmt.per_design["dmt"]["fallback_rate"],
            "reload_frac": dmt.per_design["dmt"]["switch_overhead_fraction"],
        })
    return results


def test_context_switch_sweep(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print(banner("Extension: context-switch quantum sweep (GUPS + Canneal)"))
    print(format_table(
        ["quantum (misses)", "switches", "DMT cyc/walk", "vanilla cyc/walk",
         "speedup", "DMT fallback", "reload overhead"],
        [[r["quantum"], r["switches"], r["dmt"], r["vanilla"],
          r["vanilla"] / r["dmt"], f"{r['dmt_fallback']:.2%}",
          f"{r['reload_frac']:.2%}"] for r in results],
    ))
    for r in results:
        assert r["dmt"] < r["vanilla"], \
            "DMT must stay ahead under context-switch pressure"
        assert r["dmt_fallback"] < 0.01, \
            "register reloads restore coverage at every quantum length"
    # more frequent switching hurts the PWC-dependent baseline more
    fastest, slowest = results[0], results[-1]
    assert fastest["vanilla"] / fastest["dmt"] >= \
        (slowest["vanilla"] / slowest["dmt"]) * 0.9
