"""Table 5: DMT/pvDMT page-walk speedups over the other advanced designs.

Paper (geomeans): native 4 KB — 1.04x over FPT, 1.03x over ECPT, 1.06x
over ASAP; virtualized 4 KB (pvDMT) — 1.22x / 1.16x / 1.21x (Agile) /
1.31x; larger with THP. Reuses the Figure 14/15 runs from the session
cache when available.
"""

from repro.analysis.report import banner, format_table
from repro.sim.simulator import geomean

import bench_fig14
import bench_fig15

PAPER = {
    ("native", False): {"fpt": 1.04, "ecpt": 1.03, "asap": 1.06},
    ("native", True): {"fpt": 1.18, "ecpt": 1.17, "asap": 1.23},
    ("virt", False): {"fpt": 1.22, "ecpt": 1.16, "agile": 1.21, "asap": 1.31},
    ("virt", True): {"fpt": 1.49, "ecpt": 1.25, "agile": 1.34, "asap": 1.51},
}


def _panel(sim_cache, env: str, thp: bool):
    key = f"fig14:{thp}" if env == "native" else f"fig15:{thp}"
    if key not in sim_cache.results:
        if env == "native":
            bench_fig14.run_native_panel(sim_cache, thp)
        else:
            bench_fig15.run_virt_panel(sim_cache, thp)
    return sim_cache.results[key]


def _geomean_ratio(results, ours: str, other: str) -> float:
    ratios = [stats[other].mean_latency / stats[ours].mean_latency
              for stats in results.values()]
    return geomean(ratios)


def test_table5_speedups_over_advanced_designs(benchmark, sim_cache):
    rows = []
    measured = {}
    for (env, thp), paper_row in PAPER.items():
        results = _panel(sim_cache, env, thp)
        ours = "dmt" if env == "native" else "pvdmt"
        for other, paper_value in paper_row.items():
            ratio = _geomean_ratio(results, ours, other)
            measured[(env, thp, other)] = ratio
            rows.append([
                f"{env} ({'THP' if thp else '4KB'})", other, ratio, paper_value,
            ])
    benchmark.pedantic(lambda: _geomean_ratio(
        _panel(sim_cache, "native", False), "dmt", "ecpt"),
        rounds=1, iterations=1)

    print(banner("Table 5: DMT/pvDMT page-walk speedup over other designs"))
    print(format_table(["Environment", "vs design", "measured", "paper"], rows))

    # Shape: DMT/pvDMT at least matches every other design in every
    # environment (allowing simulation noise on the native near-ties).
    for (env, thp, other), ratio in measured.items():
        assert ratio > 0.92, (env, thp, other)
    # virtualized: pvDMT strictly ahead of all four designs
    for other in ("fpt", "ecpt", "agile", "asap"):
        assert measured[("virt", False, other)] > 1.0, other
