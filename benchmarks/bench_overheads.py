"""§6.3: DMT's runtime overheads.

Paper measurements reproduced here:

* OS management time on a deliberately fragmented machine (FMFI ~0.99):
  Redis adds ~12 ms / ~120 ms / ~598 ms in native / virtualized / nested
  environments — negligible against thousands of seconds of runtime;
* ``KVM_HC_ALLOC_TEA``: 1.88 us (single-level) / 10.75 us (nested) bare
  hypercall; TEA allocation 13.27 / 23.73 / 48.07 ms for 50/100/200 MB;
* page-table memory: 247.2 MB (DMT, eager TEAs) vs 241.3 MB (vanilla) —
  <2.5% extra;
* hardware cost (CACTI, 22 nm): 4.87 mW leakage, 0.03 mm^2 per MMU.
"""

import pytest

from repro.analysis.cacti import dmt_register_cost
from repro.analysis.report import banner, format_table
from repro.core.costs import Environment
from repro.core.dmt_os import DMTLinux
from repro.kernel.kernel import Kernel
from repro.mem.fragmentation import fragment
from repro.virt.hypercall import hypercall_latency_us, tea_alloc_latency_ms
from repro.workloads import get

from conftest import SCALE

MB = 1 << 20
# The TEA granule (2 MB of VA per TEA page) cannot scale down with the
# working set, so the *relative* eager-allocation waste grows at extreme
# scales; pin the memory-overhead comparison to <=512 (the default).
MEM_SCALE = min(SCALE, 512)


def _management_ms(environment: Environment) -> float:
    """Install the Redis layout on a fragmented machine under DMT-Linux."""
    workload = get("Redis", SCALE)
    kernel = Kernel(memory_bytes=workload.working_set_bytes() * 2 + 512 * MB)
    # §6.3: fragment free memory to FMFI ~0.99 first
    achieved = fragment(kernel.memory.allocator, target_index=0.99,
                        fill_fraction=0.55)
    dmt = DMTLinux(kernel, environment=environment)
    proc = kernel.create_process()
    workload.install(proc, populate=True)
    dmt.reload_registers(proc)
    return dmt.management_ms(), achieved, dmt.manager_for(proc)


def test_management_overhead_under_fragmentation(benchmark):
    native_ms, fmfi, manager = benchmark.pedantic(
        lambda: _management_ms(Environment.NATIVE), rounds=1, iterations=1)
    virt_ms, _, _ = _management_ms(Environment.VIRTUALIZED)
    nested_ms, _, _ = _management_ms(Environment.NESTED)

    print(banner("§6.3: DMT management time, fragmented memory (Redis)"))
    print(format_table(
        ["Environment", "measured (ms)", "paper (ms)"],
        [["native", native_ms, 12.0],
         ["virtualized", virt_ms, 120.0],
         ["nested", nested_ms, 598.0]],
    ))
    print(f"achieved FMFI: {fmfi:.3f}; TEA splits: {manager.tea_manager.splits}")

    assert fmfi >= 0.99
    # management cost scales with virtualization depth as in the paper
    assert virt_ms == pytest.approx(native_ms * 10, rel=0.01)
    assert nested_ms == pytest.approx(native_ms * 50, rel=0.01)
    # and stays negligible against thousands-of-seconds runtimes
    assert nested_ms < 5000


def test_hypercall_and_tea_allocation_latency(benchmark):
    rows = benchmark.pedantic(lambda: [
        ["hypercall (us)", hypercall_latency_us(), 1.88],
        ["hypercall nested (us)", hypercall_latency_us(nested=True), 10.75],
        ["TEA 50 MB (ms)", tea_alloc_latency_ms(50 * MB), 13.27],
        ["TEA 100 MB (ms)", tea_alloc_latency_ms(100 * MB), 23.73],
        ["TEA 200 MB (ms)", tea_alloc_latency_ms(200 * MB), 48.07],
        ["TEA 50 MB nested (ms)", tea_alloc_latency_ms(50 * MB, nested=True), 15.67],
        ["TEA 100 MB nested (ms)", tea_alloc_latency_ms(100 * MB, nested=True), 24.55],
        ["TEA 200 MB nested (ms)", tea_alloc_latency_ms(200 * MB, nested=True), 54.87],
    ], rounds=1, iterations=1)
    print(banner("§6.3: hypercall and TEA-allocation latency"))
    print(format_table(["Operation", "model", "paper"], rows))
    for _, model, paper in rows:
        assert model == pytest.approx(paper, rel=0.20)


def _page_table_memory():
    workload = get("Redis", MEM_SCALE)
    mem = workload.working_set_bytes() * 2 + 512 * MB

    vanilla_kernel = Kernel(memory_bytes=mem)
    vproc = vanilla_kernel.create_process()
    workload.install(vproc, populate=True)
    vanilla_bytes = vproc.page_table_bytes()

    dmt_kernel = Kernel(memory_bytes=mem)
    dmt = DMTLinux(dmt_kernel)
    dproc = dmt_kernel.create_process()
    workload.install(dproc, populate=True)
    manager = dmt.manager_for(dproc)
    # DMT's eager footprint = non-TEA table pages (root + upper levels +
    # fallback leaves) + the full eagerly allocated TEAs.
    policy = dproc.page_table.placement
    tea_bytes = manager.tea_manager.total_tea_bytes()
    non_tea_tables = (dproc.page_table.table_pages - policy.placed) * 4096
    dmt_bytes = non_tea_tables + tea_bytes
    return vanilla_bytes, dmt_bytes


def test_page_table_memory_overhead(benchmark):
    vanilla_bytes, dmt_bytes = benchmark.pedantic(
        _page_table_memory, rounds=1, iterations=1)
    overhead = dmt_bytes / vanilla_bytes - 1.0
    print(banner("§6.3: page-table memory, DMT vs vanilla (Redis)"))
    print(format_table(
        ["System", "page-table KiB"],
        [["vanilla Linux", vanilla_bytes // 1024],
         ["DMT-Linux (eager TEAs)", dmt_bytes // 1024],
         ["overhead", f"{overhead:+.1%} (paper: +2.4%)"]],
    ))
    # The paper reports +2.4%; at 1/512 scale the fixed 2 MB TEA granule
    # is relatively larger against the shrunken VMAs, inflating the ratio.
    assert overhead < 0.20, "eager TEA allocation must stay a small fraction (§6.3)"


def test_hardware_cost(benchmark):
    cost = benchmark.pedantic(dmt_register_cost, rounds=1, iterations=1)
    print(banner("§6.3: DMT hardware cost (CACTI-class model, 22 nm)"))
    print(format_table(
        ["Metric", "model", "paper"],
        [["leakage (mW)", cost.leakage_mw, 4.87],
         ["area (mm^2)", cost.area_mm2, 0.03],
         ["fraction of 125 W TDP", f"{cost.tdp_fraction:.2e}", "marginal"],
         ["fraction of 694 mm^2 die", f"{cost.die_fraction:.2e}", "marginal"]],
    ))
    assert cost.leakage_mw == pytest.approx(4.87, rel=0.01)
    assert cost.area_mm2 == pytest.approx(0.03, rel=0.01)
