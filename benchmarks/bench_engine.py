"""Engine microbenchmarks: vectorized stage 1 and the parallel sweep.

Not a paper figure — this bench guards the simulator's own performance:

* the vectorized TLB-filter engine must beat the scalar oracle by >= 3x
  on the reference stage-1 run (GUPS, native, nrefs=40000) while
  emitting a bit-identical miss stream;
* the process-parallel sweep runner must produce the same cells as an
  inline run, and scale with worker count when cores are available.
"""

import os
import time

import numpy as np

from repro.analysis.report import banner, format_table
from repro.sim.simulator import (
    make_size_lookup,
    tlb_accept_rates,
    tlb_filter,
)
from repro.sim.sweep import run_sweep
from repro.sim import NativeSimulation, SimConfig

from conftest import SCALE

#: The acceptance target for the reference stage-1 run.
NREFS = int(os.environ.get("REPRO_BENCH_ENGINE_NREFS", "40000"))
MIN_SPEEDUP = 3.0


def _stage1_inputs():
    config = SimConfig(scale=SCALE, nrefs=NREFS)
    sim = NativeSimulation("GUPS", config)
    trace = sim.workload.generate_trace(sim.layout, config.nrefs, config.seed)
    ws = sim.workload.working_set_bytes()
    paper_ws = int(sim.workload.paper_working_set_gb * (1 << 30))
    accept = tlb_accept_rates(config.machine, ws, paper_ws)
    return sim, trace, accept, config.machine


def _best_of(repeats, fn):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return min(times), result


def test_stage1_vectorized_speedup(benchmark):
    sim, trace, accept, machine = _stage1_inputs()
    page_table = sim.process.page_table

    scalar_seconds, scalar_result = _best_of(3, lambda: tlb_filter(
        trace, machine, make_size_lookup(page_table),
        accept_rates=accept, engine="scalar"))
    vec_seconds, vec_result = _best_of(3, lambda: tlb_filter(
        trace, machine, make_size_lookup(page_table),
        accept_rates=accept, engine="vec"))
    speedup = scalar_seconds / vec_seconds

    print(banner(f"Stage-1 engine: GUPS native, nrefs={NREFS}"))
    print(format_table(
        ["engine", "best of 3", "refs/s", "misses"],
        [["scalar", f"{scalar_seconds * 1e3:.1f} ms",
          f"{NREFS / scalar_seconds:,.0f}", scalar_result.miss_count],
         ["vec", f"{vec_seconds * 1e3:.1f} ms",
          f"{NREFS / vec_seconds:,.0f}", vec_result.miss_count]],
    ))
    print(f"speedup: {speedup:.2f}x (target >= {MIN_SPEEDUP}x)")

    assert np.array_equal(scalar_result.miss_vas, vec_result.miss_vas), \
        "engines diverged — the vec engine must be bit-identical"
    assert speedup >= MIN_SPEEDUP, \
        f"vectorized stage 1 only {speedup:.2f}x over the scalar oracle"

    lookup = make_size_lookup(page_table)
    benchmark.pedantic(
        lambda: tlb_filter(trace, machine, lookup, accept_rates=accept),
        rounds=3, iterations=1,
    )


def _telemetry_free(document):
    """Sweep cells minus the fields that legitimately vary per run."""
    volatile = ("replay_seconds", "walks_per_second", "build_seconds",
                "peak_rss_kb", "worker_pid")
    return [{k: v for k, v in cell.items() if k not in volatile}
            for cell in document["cells"]]


def test_sweep_scaling_with_workers():
    kwargs = dict(envs=("native",), workloads=("GUPS", "Redis"),
                  designs=("vanilla", "dmt"), scale=2048, nrefs=6000)

    start = time.perf_counter()
    serial = run_sweep(workers=1, **kwargs)
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_sweep(workers=2, **kwargs)
    parallel_seconds = time.perf_counter() - start

    print(banner("Sweep runner scaling"))
    print(f"1 worker : {serial_seconds:.2f}s   "
          f"2 workers: {parallel_seconds:.2f}s   "
          f"ratio {serial_seconds / parallel_seconds:.2f}x "
          f"({os.cpu_count()} core(s))")

    assert _telemetry_free(parallel) == _telemetry_free(serial), \
        "parallel sweep must reproduce the inline results exactly"
    assert parallel["meta"]["cells"] == 4
    if (os.cpu_count() or 1) >= 2:
        # two independent groups on two cores: expect near-linear scaling,
        # asserted loosely to tolerate loaded CI machines
        assert parallel_seconds < serial_seconds * 0.80, \
            "sweep does not scale with worker count"
