"""Engine microbenchmarks: vectorized stages 1 and 2, the parallel sweep.

Not a paper figure — this bench guards the simulator's own performance:

* the vectorized TLB-filter engine must beat the scalar oracle by >= 3x
  on the reference stage-1 run (GUPS, native, nrefs=40000) while
  emitting a bit-identical miss stream;
* the batched stage-2 replay engine must beat the scalar walker-replay
  oracle on the same miss stream across **all eight** translation
  designs: >= 3x for the best design, and every design >= its own
  recorded ``VEC_FLOORS`` entry (per-design floors replaced the old
  "two newer planners >= 2x" rule, which flapped around the 2.0 mark
  while letting ecpt ship at 1.18x unflagged), with bit-identical
  :class:`WalkStats` — results are recorded in ``BENCH_engine.json``
  at the repo root;
* when the compiled kernel backend imported (numba), the native engine
  is timed too and must clear ``NATIVE_FLOORS`` (>= 10x on the vanilla
  radix walk, >= 3x elsewhere) — on the pure-Python backend the same
  kernels run bit-identically but at interpreter speed, so the native
  leg is recorded as untimed rather than penalized;
* the two-level executor must replay a native+virt GUPS group with
  ``REPRO_BENCH_CELL_THREADS`` threads bit-identically to sequential
  replay, and >= 2x faster on the numba backend (nogil kernels; the
  interpreter backend holds the GIL, so its floor is recorded null) —
  archived in ``BENCH_engine.json``'s ``group`` section;
* the process-parallel sweep runner must produce the same cells as an
  inline run, and scale with worker count when cores are available.

``REPRO_BENCH_MIN_SPEEDUP`` relaxes the 3x targets for smoke runs on
loaded or tiny-trace CI machines; the per-design floors scale with it
(``MIN_SPEEDUP / 3.0``) so one knob relaxes everything proportionally.
"""

import json
import os
import time

import numpy as np

from repro.analysis.report import banner, format_table
from repro.sim.kernels import BACKEND as KERNEL_BACKEND
from repro.sim.kernels import HAVE_NUMBA
from repro.sim.simulator import (
    Stage1Cache,
    make_size_lookup,
    replay_walks,
    tlb_accept_rates,
    tlb_filter,
)
from repro.sim.sweep import build_sim, run_design_stats, run_sweep
from repro.sim import NativeSimulation, SimConfig

from conftest import SCALE

#: The acceptance target for the reference stage-1 run.
NREFS = int(os.environ.get("REPRO_BENCH_ENGINE_NREFS", "40000"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "3.0"))
#: Timing rounds per engine for the stage-2 comparison.
ROUNDS = int(os.environ.get("REPRO_BENCH_ENGINE_ROUNDS", "5"))
#: CI legs that install numba pin the backend they expect: a numba leg
#: silently falling back to the pure-Python kernels would record
#: "untimed" native columns and gut the bench without failing it.
EXPECT_BACKEND = os.environ.get("REPRO_BENCH_EXPECT_BACKEND")
#: Thread count for the two-level executor group bench.
CELL_THREADS = int(os.environ.get("REPRO_BENCH_CELL_THREADS", "4"))

#: Where the stage-2 engine comparison is archived (repo root).
RESULTS_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            os.pardir, "BENCH_engine.json")


def test_kernel_backend_expected():
    """Fail fast when the CI leg's pinned kernel backend didn't load."""
    if not EXPECT_BACKEND:
        print(f"kernel backend: {KERNEL_BACKEND} (no expectation pinned)")
        return
    assert KERNEL_BACKEND == EXPECT_BACKEND, \
        (f"REPRO_BENCH_EXPECT_BACKEND={EXPECT_BACKEND} but the kernels "
         f"loaded the {KERNEL_BACKEND!r} backend — the bench would time "
         f"the wrong engine")


def _stage1_inputs():
    config = SimConfig(scale=SCALE, nrefs=NREFS)
    sim = NativeSimulation("GUPS", config)
    trace = sim.workload.generate_trace(sim.layout, config.nrefs, config.seed)
    ws = sim.workload.working_set_bytes()
    paper_ws = int(sim.workload.paper_working_set_gb * (1 << 30))
    accept = tlb_accept_rates(config.machine, ws, paper_ws)
    return sim, trace, accept, config.machine


def _best_of(repeats, fn):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return min(times), result


def test_stage1_vectorized_speedup(benchmark):
    sim, trace, accept, machine = _stage1_inputs()
    page_table = sim.process.page_table

    scalar_seconds, scalar_result = _best_of(3, lambda: tlb_filter(
        trace, machine, make_size_lookup(page_table),
        accept_rates=accept, engine="scalar"))
    vec_seconds, vec_result = _best_of(3, lambda: tlb_filter(
        trace, machine, make_size_lookup(page_table),
        accept_rates=accept, engine="vec"))
    speedup = scalar_seconds / vec_seconds

    print(banner(f"Stage-1 engine: GUPS native, nrefs={NREFS}"))
    print(format_table(
        ["engine", "best of 3", "refs/s", "misses"],
        [["scalar", f"{scalar_seconds * 1e3:.1f} ms",
          f"{NREFS / scalar_seconds:,.0f}", scalar_result.miss_count],
         ["vec", f"{vec_seconds * 1e3:.1f} ms",
          f"{NREFS / vec_seconds:,.0f}", vec_result.miss_count]],
    ))
    print(f"speedup: {speedup:.2f}x (target >= {MIN_SPEEDUP}x)")

    assert np.array_equal(scalar_result.miss_vas, vec_result.miss_vas), \
        "engines diverged — the vec engine must be bit-identical"
    assert speedup >= MIN_SPEEDUP, \
        f"vectorized stage 1 only {speedup:.2f}x over the scalar oracle"

    lookup = make_size_lookup(page_table)
    benchmark.pedantic(
        lambda: tlb_filter(trace, machine, lookup, accept_rates=accept),
        rounds=3, iterations=1,
    )


#: The stage-2 comparison cases: every translation design, benched on
#: the environment where it is cheapest to build (the five native
#: designs on the native machine, the virtualization-only designs on
#: the virt machine — their planners are the interesting part anyway).
STAGE2_CASES = (
    ("native", "vanilla"), ("native", "fpt"), ("native", "ecpt"),
    ("native", "asap"), ("native", "dmt"),
    ("virt", "shadow"), ("virt", "agile"), ("virt", "pvdmt"),
)

#: The planners added after the original radix/DMT engine (reported in
#: the summary line; their guarantees now live in ``VEC_FLOORS``).
NEW_DESIGNS = ("fpt", "ecpt", "agile", "asap")

#: Per-design vec-over-scalar floors, set from measured reference runs
#: (vanilla 3.3-3.8x ... ecpt 1.1-1.2x) with ~15-25% headroom for load
#: noise. A design dropping below its floor fails the bench outright —
#: no more shipping ecpt at 1.18x under a single 3.0x best-design gate
#: that vanilla alone satisfies. Scaled by ``MIN_SPEEDUP / 3.0`` so the
#: smoke knob relaxes them in proportion.
VEC_FLOORS = {
    "vanilla": 2.5, "shadow": 2.4, "fpt": 1.6, "ecpt": 1.0,
    "asap": 1.8, "dmt": 1.25, "agile": 1.6, "pvdmt": 1.2,
}

#: Compiled-backend floors, enforced only when numba imported: the
#: native kernels must reach >= 10x on the vanilla radix walk and
#: >= 3x on every other design (the pure-Python backend is for
#: bit-identity, not speed, and is never timed here).
NATIVE_FLOORS = {design: (10.0 if design == "vanilla" else 3.0)
                 for design in VEC_FLOORS}


def test_stage2_vectorized_speedup(benchmark):
    """Batched walk replay vs the scalar oracle on the GUPS miss stream.

    The best design clearing ``MIN_SPEEDUP`` — and at least two of the
    ``NEW_DESIGNS`` planners clearing ``min(2.0, MIN_SPEEDUP)`` — is
    the acceptance bar; every design must be bit-identical. A shared
    :class:`Stage1Cache` keeps the trace + TLB filter to a single
    computation across the fresh machines each timed run needs (replay
    mutates cache/PWC and walker-side state such as the ECPT CWC).
    Rounds alternate engines so a host-load burst degrades both sides
    of the best-of-``ROUNDS`` comparison, not just one.
    """
    config = SimConfig(scale=SCALE, nrefs=NREFS)
    stage1 = Stage1Cache()
    floor_scale = MIN_SPEEDUP / 3.0
    engines = ("scalar", "vec") + (("native",) if HAVE_NUMBA else ())

    rows, results = [], []
    for env, design in STAGE2_CASES:
        seconds = {engine: [] for engine in engines}
        stats = {}
        for _ in range(ROUNDS):
            for engine in engines:
                sim = build_sim(env, "GUPS", config, stage1=stage1)
                walker = sim.walker(design)
                start = time.perf_counter()
                result = replay_walks(walker, sim.tlb.miss_vas,
                                      engine=engine)
                seconds[engine].append(time.perf_counter() - start)
                stats[engine] = result
        best = {engine: min(times) for engine, times in seconds.items()}
        speedup = best["scalar"] / best["vec"]
        walks = stats["vec"].walks
        for engine in engines[1:]:
            assert stats["scalar"] == stats[engine], \
                (f"{env}/{design}: engines diverged — {engine} must be "
                 "bit-identical")
        floor = VEC_FLOORS[design] * floor_scale
        native_seconds = best.get("native")
        native_speedup = (best["scalar"] / native_seconds
                          if native_seconds else None)
        native_floor = (NATIVE_FLOORS[design] * floor_scale
                        if HAVE_NUMBA else None)
        rows.append([f"{env}/{design}", f"{best['scalar'] * 1e3:.1f} ms",
                     f"{best['vec'] * 1e3:.1f} ms",
                     f"{speedup:.2f}x (>={floor:.2f})",
                     (f"{native_speedup:.2f}x" if native_speedup
                      else "untimed"), walks])
        results.append({
            "design": f"{env}/{design}",
            "env": env,
            "design_name": design,
            "scalar_seconds": best["scalar"],
            "vec_seconds": best["vec"],
            "speedup": speedup,
            "floor": floor,
            "native_seconds": native_seconds,
            "native_speedup": native_speedup,
            "native_floor": native_floor,
            "walks": walks,
        })

    print(banner(f"Stage-2 engine: GUPS, nrefs={NREFS}, "
                 f"kernel backend {KERNEL_BACKEND}"))
    print(format_table(
        ["env/design", f"scalar (best of {ROUNDS})",
         f"vec (best of {ROUNDS})", "vec speedup", "native", "walks"],
        rows,
    ))
    best_speedup = max(entry["speedup"] for entry in results)
    new_speedups = {entry["design_name"]: f"{entry['speedup']:.2f}x"
                    for entry in results
                    if entry["design_name"] in NEW_DESIGNS}
    print(f"best speedup: {best_speedup:.2f}x (target >= {MIN_SPEEDUP}x); "
          f"new planners: {new_speedups}; "
          f"stage 1 computed {stage1.computed}x, reused {stage1.reused}x")

    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump({
            "meta": {"workload": "GUPS", "scale": SCALE,
                     "nrefs": NREFS, "min_speedup": MIN_SPEEDUP,
                     "rounds": ROUNDS,
                     "kernel_backend": KERNEL_BACKEND},
            "stage2": results,
        }, handle, indent=2)
        handle.write("\n")

    assert stage1.computed == 1, \
        "every machine build past the first must reuse the stage-1 memo"
    assert best_speedup >= MIN_SPEEDUP, \
        f"batched stage 2 only {best_speedup:.2f}x over the scalar oracle"
    slow = [f"{e['design']} {e['speedup']:.2f}x < {e['floor']:.2f}x"
            for e in results if e["speedup"] < e["floor"]]
    assert not slow, f"designs below their recorded vec floor: {slow}"
    if HAVE_NUMBA:
        slow_native = [
            f"{e['design']} {e['native_speedup']:.2f}x "
            f"< {e['native_floor']:.2f}x"
            for e in results if e["native_speedup"] < e["native_floor"]]
        assert not slow_native, \
            f"designs below their native floor: {slow_native}"

    sim = NativeSimulation("GUPS", config, stage1=stage1)
    benchmark.pedantic(
        lambda: replay_walks(sim.walker("dmt"), sim.tlb.miss_vas,
                             engine="vec"),
        rounds=3, iterations=1,
    )


#: Two-level executor floor: a GUPS group replayed with ``CELL_THREADS``
#: threads must beat the sequential replay by >= 2x when the compiled
#: (nogil) backend is available. Interpreter-mode kernels hold the GIL,
#: so the floor is recorded as null there — threads can't help.
GROUP_FLOOR = 2.0


def test_group_cell_thread_scaling():
    """Thread-parallel group replay vs sequential, on one GUPS group.

    Replays every (env, design) cell of a native+virt GUPS group
    through :func:`run_design_stats` with 1 and with ``CELL_THREADS``
    threads — stage 1 shared through one :class:`Stage1Cache`, fresh
    machines per timed round (replay mutates cache/PWC state), rounds
    alternating like the stage-2 bench. Results must be bit-identical;
    the speedup is archived in ``BENCH_engine.json``'s ``group``
    section and (on the numba backend) must clear ``GROUP_FLOOR``.
    """
    config = SimConfig(scale=SCALE, nrefs=NREFS)
    stage1 = Stage1Cache()
    envs = ("native", "virt")
    seconds = {1: [], CELL_THREADS: []}
    stats = {}
    rounds = max(1, ROUNDS // 2)
    for _ in range(rounds):
        for threads in (1, CELL_THREADS):
            total = 0.0
            merged = {}
            for env in envs:
                sim = build_sim(env, "GUPS", config, stage1=stage1)
                designs = list(sim.designs)
                start = time.perf_counter()
                env_stats = run_design_stats(sim, designs,
                                             cell_threads=threads)
                total += time.perf_counter() - start
                merged.update({f"{env}/{d}": s
                               for d, s in env_stats.items()})
            seconds[threads].append(total)
            stats[threads] = merged
    assert stats[1] == stats[CELL_THREADS], \
        (f"cell_threads={CELL_THREADS} diverged from sequential replay "
         "— the two-level executor must be bit-identical")
    best_seq = min(seconds[1])
    best_par = min(seconds[CELL_THREADS])
    speedup = best_seq / best_par
    floor = GROUP_FLOOR if HAVE_NUMBA else None

    print(banner(f"Two-level executor: GUPS group, nrefs={NREFS}, "
                 f"kernel backend {KERNEL_BACKEND}"))
    print(f"1 thread : {best_seq * 1e3:.1f} ms   "
          f"{CELL_THREADS} threads: {best_par * 1e3:.1f} ms   "
          f"speedup {speedup:.2f}x "
          f"(floor {floor if floor else 'none — GIL-bound backend'}, "
          f"{len(stats[1])} cells, best of {rounds})")

    # Merge into the document test_stage2_vectorized_speedup wrote (or
    # start a fresh one when this bench runs alone).
    try:
        with open(RESULTS_PATH, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError):
        document = {"meta": {"workload": "GUPS", "scale": SCALE,
                             "nrefs": NREFS,
                             "kernel_backend": KERNEL_BACKEND}}
    document["group"] = {
        "workload": "GUPS",
        "cells": len(stats[1]),
        "cell_threads": CELL_THREADS,
        "seconds_1": best_seq,
        "seconds_n": best_par,
        "speedup": speedup,
        "floor": floor,
        "kernel_backend": KERNEL_BACKEND,
    }
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")

    if floor:
        assert speedup >= floor, \
            (f"group replay with {CELL_THREADS} threads only {speedup:.2f}x "
             f"over sequential (floor {floor}x)")


def _telemetry_free(document):
    """Sweep cells minus the fields that legitimately vary per run."""
    volatile = ("replay_seconds", "walks_per_second", "build_seconds",
                "stage1_seconds", "peak_rss_kb", "worker_pid",
                "stage2_source", "group_seconds")
    return [{k: v for k, v in cell.items() if k not in volatile}
            for cell in document["cells"]]


def test_sweep_scaling_with_workers():
    kwargs = dict(envs=("native",), workloads=("GUPS", "Redis"),
                  designs=("vanilla", "dmt"), scale=2048, nrefs=6000)

    start = time.perf_counter()
    serial = run_sweep(workers=1, **kwargs)
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_sweep(workers=2, **kwargs)
    parallel_seconds = time.perf_counter() - start

    print(banner("Sweep runner scaling"))
    print(f"1 worker : {serial_seconds:.2f}s   "
          f"2 workers: {parallel_seconds:.2f}s   "
          f"ratio {serial_seconds / parallel_seconds:.2f}x "
          f"({os.cpu_count()} core(s))")

    assert _telemetry_free(parallel) == _telemetry_free(serial), \
        "parallel sweep must reproduce the inline results exactly"
    assert parallel["meta"]["cells"] == 4
    if (os.cpu_count() or 1) >= 2:
        # two independent groups on two cores: expect near-linear scaling,
        # asserted loosely to tolerate loaded CI machines
        assert parallel_seconds < serial_seconds * 0.80, \
            "sweep does not scale with worker count"
