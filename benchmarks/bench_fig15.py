"""Figure 15: virtualized speedups over vanilla KVM (nested paging).

Paper (geomeans, 4 KB): pvDMT speeds up page walks 1.58x and application
execution 1.20x; DMT (without paravirtualization) 1.41x / 1.15x. With THP
the walk speedups grow (1.65x pvDMT) while app speedups shrink (1.14x).
FPT, ECPT, Agile Paging and ASAP all land between vanilla and pvDMT.
"""

import pytest

from repro.analysis.report import banner, format_table
from repro.sim.perfmodel import model_from_stats
from repro.sim.simulator import geomean
from repro.translation.agile import SHADOW_EXIT_FRACTION

from conftest import WORKLOADS, replay_slice

DESIGNS = ["fpt", "ecpt", "agile", "asap", "dmt", "pvdmt"]


def _retained_other(design: str) -> float:
    # Agile Paging keeps a sliver of shadow paging's exits; everything else
    # compared in Fig. 15 runs on hardware-assisted nested paging (no
    # baseline 'other' overhead to retain or remove: other_frac == 0).
    return SHADOW_EXIT_FRACTION if design == "agile" else 1.0


def run_virt_panel(sim_cache, thp: bool):
    results = {}
    for workload in WORKLOADS:
        sim = sim_cache.sim("virt", workload, thp=thp)
        stats = {d: sim.run(d) for d in ["vanilla"] + DESIGNS}
        results[workload] = stats
    sim_cache.results[f"fig15:{thp}"] = results
    return results


def _print_panel(results, thp: bool):
    mode = "THP" if thp else "4KB"
    print(banner(f"Figure 15 ({mode}): virtualized page-walk and app speedups"))
    rows = []
    for workload, stats in results.items():
        vanilla = stats["vanilla"]
        row = [workload]
        for design in DESIGNS:
            pw = vanilla.mean_latency / stats[design].mean_latency
            app = model_from_stats(
                workload, "virt_npt", vanilla, stats[design], thp=thp,
                retained_other_fraction=_retained_other(design),
            ).app_speedup
            row.append(f"{pw:.2f}/{app:.2f}")
        rows.append(row)
    geo = ["Geo.Mean"]
    for design in DESIGNS:
        pws = [s["vanilla"].mean_latency / s[design].mean_latency
               for s in results.values()]
        apps = [model_from_stats(w, "virt_npt", s["vanilla"], s[design],
                                 thp=thp).app_speedup
                for w, s in results.items()]
        geo.append(f"{geomean(pws):.2f}/{geomean(apps):.2f}")
    rows.append(geo)
    print(format_table(["Workload"] + [f"{d} pw/app" for d in DESIGNS], rows))


@pytest.mark.parametrize("thp", [False, True], ids=["4KB", "THP"])
def test_fig15_virtualized_speedups(benchmark, sim_cache, thp):
    results = run_virt_panel(sim_cache, thp)
    _print_panel(results, thp)
    sim = sim_cache.sim("virt", WORKLOADS[0], thp=thp)
    benchmark.pedantic(lambda: replay_slice(sim, "pvdmt"), rounds=1,
                       iterations=1)

    pw_geo = {
        design: geomean([
            s["vanilla"].mean_latency / s[design].mean_latency
            for s in results.values()
        ])
        for design in DESIGNS
    }
    # Figure 15's qualitative result: pvDMT wins, DMT second, all beat base
    assert pw_geo["pvdmt"] > pw_geo["dmt"] > 1.0
    for design in ("fpt", "ecpt", "agile", "asap"):
        # ASAP's prefetch barely pays off once THP walks are cache-resident
        # (the paper's weakest comparison design, Table 5: 1.31x/1.51x)
        floor = 0.85 if design == "asap" else 0.95
        assert pw_geo[design] > floor, design
        assert pw_geo["pvdmt"] > pw_geo[design], \
            f"pvDMT must outperform {design} (Table 5)"
    # rough factor: the 4 KB panel sits in a band around the paper's
    # 1.58x; the THP panel amplifies at simulation scale because the
    # baseline THP walk becomes fully cache-resident while the reference
    # counts still differ 13:2 (EXPERIMENTS.md discusses this).
    if thp:
        assert 1.2 <= pw_geo["pvdmt"] <= 6.5
    else:
        assert 1.2 <= pw_geo["pvdmt"] <= 2.6
