"""Table 6: sequential memory accesses per design per environment.

Paper: pvDMT 1/2/3 (native/virt/nested), ECPT 1/3, FPT 2/8, Agile 4-24,
ASAP 4/24, vanilla radix 4/24. Measured here by running each walker with
cold MMU caches and counting serialized references (parallel probe groups
count once).
"""

from repro.analysis.report import banner, format_table

from conftest import WORKLOADS


def _cold_sequential_steps(sim, design: str) -> int:
    """Sequential steps of the first cold walk through a fresh walker."""
    walker = sim.walker(design)
    va = sim.tlb.miss_vas[0]
    result = walker.translate(va)
    return result.sequential_steps


def test_table6_sequential_accesses(benchmark, sim_cache):
    workload = WORKLOADS[0]
    native = sim_cache.sim("native", workload, record_refs=True)
    virt = sim_cache.sim("virt", workload, record_refs=True)
    nested = sim_cache.sim("nested", workload, record_refs=True)

    def measure():
        return {
            "vanilla": (_cold_sequential_steps(native, "vanilla"),
                        _cold_sequential_steps(virt, "vanilla"), None),
            "dmt": (_cold_sequential_steps(native, "dmt"),
                    _cold_sequential_steps(virt, "dmt"), None),
            "pvdmt": (None, _cold_sequential_steps(virt, "pvdmt"),
                      _cold_sequential_steps(nested, "pvdmt")),
            "ecpt": (_cold_sequential_steps(native, "ecpt"),
                     _cold_sequential_steps(virt, "ecpt"), None),
            "fpt": (_cold_sequential_steps(native, "fpt"),
                    _cold_sequential_steps(virt, "fpt"), None),
            "agile": (None, _cold_sequential_steps(virt, "agile"), None),
            "asap": (_cold_sequential_steps(native, "asap"),
                     _cold_sequential_steps(virt, "asap"), None),
        }

    steps = benchmark.pedantic(measure, rounds=1, iterations=1)

    paper = {
        "vanilla": (4, 24, None),
        "dmt": (1, 3, None),
        "pvdmt": (None, 2, 3),
        "ecpt": (1, 3, None),
        "fpt": (2, 8, None),
        "agile": (None, (4, 24), None),
        "asap": (4, 24, None),
    }
    print(banner("Table 6: sequential memory accesses (cold caches)"))
    rows = [
        [design,
         str(values[0]) if values[0] is not None else "-",
         str(values[1]) if values[1] is not None else "-",
         str(values[2]) if values[2] is not None else "-",
         str(paper[design])]
        for design, values in steps.items()
    ]
    print(format_table(["Design", "Native", "Virtualized", "Nested", "paper"],
                       rows))

    assert steps["vanilla"][0] == 4
    assert steps["vanilla"][1] == 24
    assert steps["dmt"][0] == 1, "DMT native: one reference (§3)"
    assert steps["dmt"][1] == 3, "DMT virtualized: three references (§3.1)"
    assert steps["pvdmt"][1] == 2, "pvDMT virtualized: two references (§3.1)"
    assert steps["pvdmt"][2] == 3, "pvDMT nested: three references (§3.2)"
    assert steps["ecpt"][0] == 1
    assert steps["ecpt"][1] == 3
    assert steps["fpt"][0] == 2
    assert steps["fpt"][1] == 8
    assert 4 <= steps["agile"][1] <= 24
    assert steps["asap"][0] == 4
    assert steps["asap"][1] == 24
