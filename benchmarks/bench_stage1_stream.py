#!/usr/bin/env python
"""Streaming stage-1 bench: refs/sec throughput and peak-RSS footprint.

Not a paper figure — this bench guards the constant-memory streaming
pipeline (DESIGN.md §13). It runs one stage 0→1 pass (workload trace
generation overlapped with TLB filtering, chunk by chunk) and records
throughput plus the process's peak resident set size into
``BENCH_stage1_stream.json`` at the repo root, which ``python -m repro
regress`` compares against the archived baseline.

With ``--rss-budget-mb`` the run becomes a hard gate: exceeding the
budget exits non-zero. CI's ``stream-smoke`` job runs a 10^7-reference
GUPS pass this way — a change that quietly rematerializes the whole
trace blows the budget immediately, even though every parity test
still passes.

Run as a script (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_stage1_stream.py \
        --nrefs 10000000 --rss-budget-mb 1024
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.obs import trace as obs_trace
from repro.sim.machine import (
    DEFAULT_STREAM_CHUNK,
    NativeSimulation,
    SimConfig,
)

RESULTS_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            os.pardir, "BENCH_stage1_stream.json")


def run_bench(workload: str, scale: int, nrefs: int, seed: int,
              chunk: int) -> dict:
    """One streamed stage 0→1 pass; returns the result record."""
    config = SimConfig(scale=scale, nrefs=nrefs, seed=seed,
                       stream_chunk=chunk)
    start = time.perf_counter()
    sim = NativeSimulation(workload, config)
    wall = time.perf_counter() - start
    seconds = sim.stage1_seconds or wall
    return {
        "workload": workload,
        "scale": scale,
        "nrefs": nrefs,
        "seed": seed,
        "chunk": chunk,
        "streamed": sim.stage1_streamed,
        "total_refs": sim.tlb.total_refs,
        "miss_count": sim.tlb.miss_count,
        "stage1_seconds": seconds,
        "wall_seconds": wall,
        "refs_per_sec": sim.tlb.total_refs / seconds if seconds else 0.0,
        "peak_rss_kb": obs_trace.peak_rss_kb(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="stage-1 streaming throughput / peak-RSS bench")
    parser.add_argument("--workload", default="GUPS")
    parser.add_argument("--scale", type=int, default=1024)
    parser.add_argument("--nrefs", type=int, default=10_000_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--chunk", type=int, default=DEFAULT_STREAM_CHUNK,
                        help="refs per streamed chunk "
                             f"(default {DEFAULT_STREAM_CHUNK})")
    parser.add_argument("--rss-budget-mb", type=int, default=None,
                        help="hard peak-RSS budget; exceeding it fails "
                             "the run (exit 1)")
    parser.add_argument("--out", default=RESULTS_PATH,
                        help="result JSON path (default: repo-root "
                             "BENCH_stage1_stream.json); '-' skips the "
                             "write")
    args = parser.parse_args(argv)

    record = run_bench(args.workload, args.scale, args.nrefs, args.seed,
                       args.chunk)
    document = {"meta": {"bench": "stage1_stream"}, "stream": record}
    if args.out != "-":
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")

    rss_mb = record["peak_rss_kb"] / 1024.0
    print(f"{record['workload']} stage 1: {record['total_refs']:,} refs "
          f"in {record['stage1_seconds']:.2f}s "
          f"({record['refs_per_sec']:,.0f} refs/s), "
          f"{record['miss_count']:,} misses, peak RSS {rss_mb:,.0f} MiB")
    if args.rss_budget_mb is not None and rss_mb > args.rss_budget_mb:
        print(f"FAIL: peak RSS {rss_mb:,.0f} MiB exceeds the "
              f"{args.rss_budget_mb} MiB budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
