"""Figure 17: nested virtualization — pvDMT vs vanilla nested KVM.

Paper: pvDMT's page walk is only slightly faster than the baseline for
4 KB pages (1.02x geomean — the baseline's shadow table keeps its walk at
2D cost, while pvDMT takes three genuine memory references), but because
pvDMT eliminates shadow paging's VM exits, application execution speeds
up 1.48x (4 KB) / 1.34x (THP); walk speedup with THP is 1.11x.
"""

import pytest

from repro.analysis.report import banner, format_table
from repro.sim.perfmodel import model_from_stats
from repro.sim.simulator import geomean

from conftest import WORKLOADS, replay_slice


def run_nested_panel(sim_cache, thp: bool):
    results = {}
    for workload in WORKLOADS:
        sim = sim_cache.sim("nested", workload, thp=thp)
        results[workload] = {
            "vanilla": sim.run("vanilla"),
            "pvdmt": sim.run("pvdmt"),
        }
    sim_cache.results[f"fig17:{thp}"] = results
    return results


@pytest.mark.parametrize("thp", [False, True], ids=["4KB", "THP"])
def test_fig17_nested_virtualization(benchmark, sim_cache, thp):
    results = run_nested_panel(sim_cache, thp)
    sim = sim_cache.sim("nested", WORKLOADS[0], thp=thp)
    benchmark.pedantic(lambda: replay_slice(sim, "pvdmt", count=800),
                       rounds=1, iterations=1)

    mode = "THP" if thp else "4KB"
    print(banner(f"Figure 17 ({mode}): nested virtualization speedups"))
    rows = []
    pw_speedups, app_speedups = [], []
    for workload, stats in results.items():
        pw = stats["vanilla"].mean_latency / stats["pvdmt"].mean_latency
        # pvDMT is hardware-assisted: the baseline's shadow-paging exit
        # overhead disappears (retained_other_fraction=0, §5)
        app = model_from_stats(workload, "nested", stats["vanilla"],
                               stats["pvdmt"], thp=thp,
                               retained_other_fraction=0.0).app_speedup
        pw_speedups.append(pw)
        app_speedups.append(app)
        rows.append([workload, pw, app])
    rows.append(["Geo.Mean", geomean(pw_speedups), geomean(app_speedups)])
    print(format_table(["Workload", "PW speedup", "App speedup"], rows))

    # Shape: substantial app speedup from removing the shadow-paging exits.
    assert geomean(app_speedups) > 1.2, \
        "removing shadow paging must yield a substantial app speedup"
    assert geomean(pw_speedups) > 0.75, \
        "pvDMT's 3-reference walk stays competitive with the shadow walk"
    if not thp and geomean(pw_speedups) < 2.0:
        # the paper's regime: near-parity walks (1.02x), so the end-to-end
        # win must come from the eliminated exits
        assert geomean(app_speedups) > geomean(pw_speedups) * 0.9
