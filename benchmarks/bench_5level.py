"""5-level paging ablation (§2.1.1).

Paper: "Recent support for five-level page tables may further slow down
memory translation — a nested translation would require up to 35
sequential memory accesses." DMT is invariant to tree depth: still one
reference natively and two with pvDMT in a VM, so its advantage *grows*
with the deeper tree. Not a paper figure — the quantified version of
§2.1.1's motivation.
"""

import pytest

from repro.analysis.report import banner, format_table
from repro.sim import NativeSimulation, SimConfig, VirtSimulation

from conftest import NREFS, SCALE


def _panel(levels: int):
    cfg = SimConfig(scale=max(SCALE, 1024), nrefs=min(NREFS, 15000),
                    levels=levels, record_refs=True)
    native = NativeSimulation("GUPS", cfg)
    virt = VirtSimulation("GUPS", cfg)
    cold_native = len(native.walker("vanilla").translate(native.tlb.miss_vas[0]).refs)
    cold_nested = len(virt.walker("vanilla").translate(virt.tlb.miss_vas[0]).refs)
    return {
        "cold_native_refs": cold_native,
        "cold_nested_refs": cold_nested,
        "native_vanilla": native.run("vanilla").mean_latency,
        "native_dmt": native.run("dmt").mean_latency,
        "virt_vanilla": virt.run("vanilla").mean_latency,
        "virt_pvdmt": virt.run("pvdmt").mean_latency,
    }


def test_5level_ablation(benchmark):
    four = benchmark.pedantic(lambda: _panel(4), rounds=1, iterations=1)
    five = _panel(5)

    print(banner("Ablation (§2.1.1): 4-level vs 5-level page tables (GUPS)"))
    rows = []
    for metric in four:
        rows.append([metric, four[metric], five[metric]])
    print(format_table(["metric", "4-level", "5-level"], rows))

    # Figure 1 / Figure 2 arithmetic: 4->5 native refs, 24->35 nested refs
    assert four["cold_native_refs"] == 4 and five["cold_native_refs"] == 5
    assert four["cold_nested_refs"] == 24 and five["cold_nested_refs"] == 35

    speedup4 = four["virt_vanilla"] / four["virt_pvdmt"]
    speedup5 = five["virt_vanilla"] / five["virt_pvdmt"]
    print(f"\npvDMT walk speedup: {speedup4:.2f}x (4-level) -> "
          f"{speedup5:.2f}x (5-level)")
    assert speedup5 >= speedup4 * 0.95, \
        "DMT's depth-invariance must (at least) hold its advantage at 5 levels"
    # DMT itself is unaffected by the extra level
    assert five["native_dmt"] == pytest.approx(four["native_dmt"], rel=0.25)
