"""Figure 16: per-step breakdown of nested page walks (Redis).

Paper: the 24 sequential fetches of a baseline 2D walk, with per-PTE mean
cycles; the two leaf fetches (the last-level gPTE and the data hPTE)
dominate — 33% + 33% of walk latency for 4 KB pages, 35% + 36% with THP —
and those are exactly the two references pvDMT keeps.
"""

import pytest

from repro.analysis.report import banner, format_table

from conftest import replay_slice


def _breakdown(sim):
    stats = sim.run("vanilla", collect_steps=True)
    total = sum(mean for mean in stats.step_breakdown().values())
    rows = []
    for key in sorted(stats.step_breakdown()):
        mean = stats.step_breakdown()[key]
        rows.append([key, mean, 100.0 * mean / total if total else 0.0])
    return stats, rows, total


@pytest.mark.parametrize("thp", [False, True], ids=["4KB", "THP"])
def test_fig16_nested_walk_breakdown(benchmark, sim_cache, thp):
    sim = sim_cache.sim("virt", "Redis", thp=thp, record_refs=True)
    stats, rows, total = _breakdown(sim)
    benchmark.pedantic(lambda: replay_slice(sim, "vanilla", count=500),
                       rounds=1, iterations=1)

    mode = "THP" if thp else "4KB"
    print(banner(f"Figure 16 ({mode}): Redis nested-walk step breakdown"))
    print(format_table(["step", "mean cycles", "% of walk"], rows))

    # the two steps pvDMT keeps: the guest leaf PTE fetch and the final
    # host-dimension leaf (hdL1). They must dominate the breakdown.
    breakdown = stats.step_breakdown()
    guest_leaf = sum(v for k, v in breakdown.items()
                     if k.endswith(":gL1") or k.endswith(":gL2"))
    data_leaf = sum(v for k, v in breakdown.items() if k.endswith(":hdL1"))
    dominant = (guest_leaf + data_leaf) / total
    print(f"\npvDMT-retained steps account for {dominant:.0%} of walk latency "
          f"(paper: ~66-71%)")
    assert dominant > 0.40, \
        "the two pvDMT-retained fetches must dominate the 2D walk cost"
    # upper-level steps individually stay small
    upper = [v for k, v in breakdown.items() if k.endswith("L4")]
    assert all(v <= breakdown.get(max(breakdown, key=breakdown.get), 1e9)
               for v in upper)
