"""Ablations of DMT's design choices (DESIGN.md §5).

Not a paper figure — these sweeps probe the design parameters the paper
fixes: 16 registers per set, the 2% clustering bubble threshold, and (a
simulator parameter) the PTE share of the cache hierarchy.
"""

from repro.analysis.report import banner, format_table
from repro.core.dmt_os import DMTLinux
from repro.kernel.kernel import Kernel
from repro.sim import NativeSimulation, SimConfig
from repro.workloads import get

MB = 1 << 20
ABLATION_CFG = dict(scale=2048, nrefs=10000)


def _fallback_rate(register_count: int) -> float:
    cfg = SimConfig(register_count=register_count, **ABLATION_CFG)
    sim = NativeSimulation("Memcached", cfg)
    return sim.run("dmt").fallback_rate


def test_register_count_sweep(benchmark):
    """§2.3/§4.2: 16 registers cover 99+% after clustering; far fewer
    registers leave translations to the x86 walker."""
    rates = benchmark.pedantic(
        lambda: {n: _fallback_rate(n) for n in (1, 2, 4, 16)},
        rounds=1, iterations=1)
    print(banner("Ablation: DMT register count vs fallback rate (Memcached)"))
    print(format_table(["registers", "fallback rate"],
                       [[n, f"{rate:.3%}"] for n, rate in rates.items()]))
    assert rates[16] < 0.01, "16 registers must cover 99+% (§6.1)"
    assert rates[1] >= rates[16]


def _hot_cluster_count(threshold: float) -> int:
    """Clusters carrying the slab working set (>= 1 MB of covered VMAs)."""
    workload = get("Memcached", 2048)
    kernel = Kernel(memory_bytes=workload.working_set_bytes() * 2 + 256 * MB)
    dmt = DMTLinux(kernel, bubble_threshold=threshold)
    proc = kernel.create_process()
    workload.install(proc, populate=False)
    clusters = dmt.manager_for(proc).clusters
    # a slab is ~119 KB at this scale; count clusters that carry slabs
    return sum(1 for c in clusters if c.covered_bytes >= 100 * 1024)


def test_bubble_threshold_sweep(benchmark):
    """§4.2.1: the 2% bubble allowance is what lets Memcached's 778 slab
    VMAs collapse into two clusters."""
    counts = benchmark.pedantic(
        lambda: {t: _hot_cluster_count(t) for t in (0.0, 0.02, 0.10)},
        rounds=1, iterations=1)
    print(banner("Ablation: clustering bubble threshold (Memcached)"))
    print(format_table(["threshold", "hot clusters (slab-bearing)"],
                       [[f"{t:.0%}", c] for t, c in counts.items()]))
    assert counts[0.02] <= 16, \
        "the default 2% threshold must fit the register file"
    assert counts[0.0] > counts[0.02] >= counts[0.10]


def test_pte_cache_share_sensitivity(benchmark):
    """Simulator ablation: DMT's edge grows as PTEs get harder to cache
    (the paper's virtualized results are the extreme of this trend)."""
    from dataclasses import replace
    from repro.hw.config import xeon_gold_6138

    def speedups():
        out = {}
        for share in (0.01, 0.04, 0.16):
            machine = replace(xeon_gold_6138(), pte_cache_share=share)
            cfg = SimConfig(machine=machine, **ABLATION_CFG)
            sim = NativeSimulation("GUPS", cfg)
            vanilla = sim.run("vanilla").mean_latency
            dmt = sim.run("dmt").mean_latency
            out[share] = vanilla / dmt
        return out

    result = benchmark.pedantic(speedups, rounds=1, iterations=1)
    print(banner("Ablation: PTE cache share vs DMT native speedup (GUPS)"))
    print(format_table(["PTE share of caches", "DMT walk speedup"],
                       [[f"{s:.0%}", f"{v:.2f}x"] for s, v in result.items()]))
    for speedup in result.values():
        assert speedup > 1.0
