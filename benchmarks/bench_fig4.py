"""Figure 4: execution time under native / virt-nPT / virt-sPT / nested.

Paper: normalized to native, virtualization costs 1.46x on average and
nested virtualization 4.13x (GUPS: 13.9x), with page-walk overheads of
21% / 43% / 28%(+exits) / 48% of execution time. The measured baseline
inputs come from the calibration table (DESIGN.md §2); the per-environment
*simulated* walk latencies below come from the actual machines and are the
§5 model's other input.
"""

from repro.analysis.report import banner, format_table
from repro.sim.perfmodel import baseline_times
from repro.sim.simulator import geomean

from conftest import WORKLOADS, replay_slice


def test_fig4_environment_overheads(benchmark, sim_cache):
    rows = []
    virt_ratios, nested_ratios = [], []
    sim_latency = {}
    for workload in WORKLOADS:
        times = baseline_times(workload)
        native = times["native"]["total"]
        norm = {env: times[env]["total"] / native for env in times}
        pw_pct = {env: 100 * times[env]["pw"] / times[env]["total"]
                  for env in times}
        virt_ratios.append(norm["virt_npt"])
        nested_ratios.append(norm["nested"])
        # simulated walk latencies for the same environments
        native_sim = sim_cache.sim("native", workload)
        virt_sim = sim_cache.sim("virt", workload)
        sim_latency[workload] = (
            native_sim.run("vanilla").mean_latency,
            virt_sim.run("vanilla").mean_latency,
            virt_sim.run("shadow").mean_latency,
        )
        rows.append([
            workload,
            norm["native"], norm["virt_npt"], norm["virt_spt"], norm["nested"],
            f"{pw_pct['native']:.0f}/{pw_pct['virt_npt']:.0f}/"
            f"{pw_pct['virt_spt']:.0f}/{pw_pct['nested']:.0f}",
        ])

    sim = sim_cache.sim("native", WORKLOADS[0])
    benchmark.pedantic(lambda: replay_slice(sim, "vanilla"), rounds=1,
                       iterations=1)

    print(banner("Figure 4: normalized execution time per environment"))
    print(format_table(
        ["Workload", "Native", "Virt nPT", "Virt sPT", "Nested",
         "PW% (nat/nPT/sPT/nested)"],
        rows,
    ))
    print("\nSimulated mean walk latency (cycles): "
          "native / virt-nPT / virt-sPT")
    for workload, (n, v, s) in sim_latency.items():
        print(f"  {workload:10s} {n:7.1f} {v:7.1f} {s:7.1f}")

    # Paper's aggregate shape
    assert geomean(virt_ratios) >= 1.25, \
        "virtualization slows execution ~1.46x on average (§2.2)"
    assert geomean(nested_ratios) >= 2.0, \
        "nested virtualization slows execution ~4.13x on average (§2.2)"
    if set(WORKLOADS) >= {"Redis", "Memcached", "GUPS", "BTree", "Canneal",
                          "XSBench", "Graph500"}:
        assert 1.3 <= geomean(virt_ratios) <= 1.7
        assert 2.5 <= geomean(nested_ratios) <= 6.0
    if "GUPS" in WORKLOADS:
        gups = baseline_times("GUPS")
        assert gups["nested"]["total"] / gups["native"]["total"] > 10
    # simulated 2D walks must cost more than native walks everywhere
    for workload, (n, v, s) in sim_latency.items():
        assert v > n, workload
        assert s < v, "shadow walk is native-speed (its cost is the exits)"
