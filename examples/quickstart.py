#!/usr/bin/env python3
"""Quickstart: DMT in a native machine, in ~60 lines.

Builds a kernel with DMT-Linux attached, maps and populates a heap,
and shows the paper's central mechanism end-to-end:

1. the VMA-to-TEA mapping created at ``mmap`` time;
2. the 16 DMT registers loaded from it (Figure 13);
3. a one-memory-reference translation by the DMT fetcher (Figure 7)
   that lands on the *same* PTE bytes the x86 radix walker reads;
4. the latency comparison through the simulated cache hierarchy.

Run:  python examples/quickstart.py
"""

from repro.core import DMTFetcher, DMTLinux
from repro.hw import xeon_gold_6138
from repro.kernel import Kernel
from repro.translation import DMTNativeWalker, MemorySubsystem, NativeRadixWalker

MB = 1 << 20


def main() -> None:
    # --- OS side: a kernel with DMT-Linux compiled in -------------------
    kernel = Kernel(memory_bytes=256 * MB)
    dmt = DMTLinux(kernel)

    process = kernel.create_process("quickstart")
    heap = process.mmap(32 * MB, name="heap")   # triggers TEA creation
    process.populate(heap)                      # leaf PTEs land in the TEA

    registers = dmt.reload_registers(process)
    print(f"{len(registers)} DMT register(s) loaded:")
    for reg in registers:
        print(f"  VMA {reg.vma_base:#x} (+{reg.vma_size_pages} pages)"
              f" -> TEA frame {reg.tea_base_pfn:#x} [{reg.page_size.name}]")

    # --- hardware side: one reference per translation --------------------
    va = heap.start + 5 * MB + 0x123
    fetcher = DMTFetcher(dmt.register_file)
    fetched = []
    result = fetcher.translate_native(
        va, kernel.memory.read_word,
        lambda addr, tag, group: fetched.append(addr))
    radix_pa, _ = process.page_table.translate(va)

    print(f"\ntranslate({va:#x}):")
    print(f"  DMT fetcher : PA {result.pa:#x} in {result.references} memory reference")
    print(f"  radix walker: PA {radix_pa:#x} in 4 memory references")
    assert result.pa == radix_pa

    leaf_addr = process.page_table.leaf_pte_addr(va)[0]
    print(f"  both read the identical PTE at {leaf_addr:#x} "
          f"(DMT keeps a single copy, §3) -> {fetched[0] == leaf_addr}")

    # --- latency through the simulated memory hierarchy ------------------
    machine = xeon_gold_6138()
    radix = NativeRadixWalker(process.page_table, MemorySubsystem(machine))
    direct = DMTNativeWalker(dmt.register_file, radix,
                             MemorySubsystem(machine),
                             kernel.memory.read_word)
    for walker, label in ((radix, "x86 radix walk"), (direct, "DMT fetch")):
        cold = walker.translate(va).cycles
        warm = walker.translate(va).cycles
        print(f"  {label:15s}: cold {cold:4d} cycles, warm {warm:4d} cycles")


if __name__ == "__main__":
    main()
