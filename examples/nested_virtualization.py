#!/usr/bin/env python3
"""Nested virtualization: hardware-assisted translation where none existed.

The paper's boldest claim (§3.2, §6.1.3): because DMT scales linearly
with virtualization depth, pvDMT makes hardware-assisted translation
viable for *nested* virtualization — three memory references for
L2VA -> L0PA — where today's systems must fall back to shadow paging and
eat its VM exits.

This example builds the full three-layer stack of Figure 9:

* L0 host kernel with DMT-Linux managing L1's host table in L0 TEAs;
* an L1 VM running its own hypervisor, whose table for L2 lives in TEAs
  obtained from L0 via the cascaded ``KVM_HC_ALLOC_TEA``;
* an L2 VM whose guest TEAs are, transitively, L0-contiguous.

It then translates one address both ways and replays a GUPS trace.

Run:  python examples/nested_virtualization.py
"""

from repro.sim import NestedSimulation, SimConfig
from repro.sim.perfmodel import model_from_stats


def main() -> None:
    config = SimConfig(scale=1024, nrefs=15_000, record_refs=True)
    print("building L0 -> L1 -> L2 (this assembles three kernels, two "
          "hypervisors,\nthree DMT-Linux instances and the shadow table "
          "the baseline needs) ...")
    sim = NestedSimulation("GUPS", config)

    # one address, end to end
    va = int(sim.tlb.miss_vas[0])  # miss_vas is an int64 ndarray
    l2pa, _ = sim.process.page_table.translate(va)
    l1pa = sim.nested.l2pa_to_l1pa(l2pa)
    l0pa = sim.nested.l1pa_to_l0pa(l1pa)
    print(f"\nL2VA {va:#x} -> L2PA {l2pa:#x} -> L1PA {l1pa:#x} -> L0PA {l0pa:#x}")

    walker = sim.walker("pvdmt")
    result = walker.translate(va)
    print(f"pvDMT translated it in {result.sequential_steps} memory references "
          f"(the paper's 'three' of §3.2); PA matches: {result.pa == l0pa}")

    print("\nreplaying the TLB-miss stream:")
    vanilla = sim.run("vanilla")
    pvdmt = sim.run("pvdmt")
    print(f"  nested KVM (shadow-assisted 2D walk): "
          f"{vanilla.mean_latency:7.1f} cycles/walk")
    print(f"  pvDMT (three direct references)     : "
          f"{pvdmt.mean_latency:7.1f} cycles/walk")

    model = model_from_stats("GUPS", "nested", vanilla, pvdmt,
                             retained_other_fraction=0.0)
    print(f"\nthe §5 model, with shadow paging's VM exits eliminated:")
    print(f"  baseline execution : {model.t_vanilla:8.0f} s (13.9x native — "
          f"the paper's GUPS outlier)")
    print(f"  pvDMT execution    : {model.t_target:8.0f} s "
          f"({model.app_speedup:.2f}x application speedup; paper: ~2x for GUPS)")

    l1, l2 = sim.nested.l1_vm, sim.nested.l2_vm
    print(f"\nhypercall traffic during setup: L1->L0 {l1.exits.hypercalls}, "
          f"L2->L1 {l2.exits.hypercalls} (TEA allocation only — PTE updates "
          f"never exit)")


if __name__ == "__main__":
    main()
