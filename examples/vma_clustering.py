#!/usr/bin/env python3
"""VMA clustering and TEA management under memory pressure.

Shows the OS half of DMT (§4.2–§4.3) in isolation:

1. Memcached's 1,065 VMAs collapsing into two register-sized clusters
   under the 2% bubble allowance (Table 1's hardest row);
2. TEA splitting when physical memory is too fragmented for one
   contiguous area (§4.2.2), using the §6.3 fragmentation methodology;
3. a VMA growing at runtime, forcing an in-place TEA expansion or a
   gradual migration whose P-bit gates the fetcher (§4.3).

Run:  python examples/vma_clustering.py
"""

from repro.core import DMTLinux
from repro.kernel import Kernel
from repro.mem import fragment
from repro.workloads import get

MB = 1 << 20


def memcached_clustering() -> None:
    print("=== 1. clustering Memcached's 1,065 VMAs (§2.3, Table 1) ===")
    workload = get("Memcached", scale=1024)
    kernel = Kernel(memory_bytes=workload.working_set_bytes() * 2 + 256 * MB)
    dmt = DMTLinux(kernel)
    process = kernel.create_process("memcached")
    workload.install(process, populate=False)

    manager = dmt.manager_for(process)
    slabs = [c for c in manager.clusters if c.covered_bytes >= MB]
    print(f"  VMAs mapped          : {len(process.addr_space)}")
    print(f"  clusters created     : {len(manager.clusters)} "
          f"({manager.merges} merges)")
    print(f"  slab-bearing clusters: {len(slabs)} (paper: 2)")
    for cluster in slabs:
        print(f"    cluster {cluster.va_start:#x}-{cluster.va_end:#x}: "
              f"{len(cluster.vma_ids)} VMAs, bubbles {cluster.bubble_ratio:.2%}")
    registers = manager.build_registers()
    print(f"  registers needed     : {len(registers)} of 16")


def tea_splitting() -> None:
    print("\n=== 2. TEA splitting on fragmented memory (§4.2.2, §6.3) ===")
    kernel = Kernel(memory_bytes=128 * MB)
    index = fragment(kernel.memory.allocator, target_index=0.99,
                     fill_fraction=0.7)
    print(f"  fragmented free memory to FMFI {index:.3f}")
    dmt = DMTLinux(kernel)
    process = kernel.create_process("victim")
    process.mmap(64 * MB, name="heap")
    manager = dmt.manager_for(process)
    teas = manager.clusters[0].all_teas()
    print(f"  one 64 MiB VMA -> {len(teas)} TEA piece(s) "
          f"after {manager.tea_manager.splits} split(s):")
    for tea in teas[:6]:
        print(f"    {tea!r}")
    if len(teas) > 6:
        print(f"    ... and {len(teas) - 6} more")
    print(f"  registers consumed: {len(manager.build_registers())}")


def vma_growth() -> None:
    print("\n=== 3. VMA growth: expansion and gradual migration (§4.3) ===")
    kernel = Kernel(memory_bytes=128 * MB)
    dmt = DMTLinux(kernel)
    process = kernel.create_process("growing")
    vma = process.mmap(8 * MB, name="heap")
    process.populate(vma)
    manager = dmt.manager_for(process)
    tea = manager.clusters[0].teas[list(manager.clusters[0].teas)[0]][0]
    print(f"  initial TEA: {tea!r}")

    # block in-place growth, then grow the VMA
    blocker = kernel.memory.allocator.alloc_contig(1)
    process.addr_space.grow(vma, 8 * MB)
    if manager.pending_migrations:
        register = manager.build_registers()[0]
        print(f"  growth forced a migration; register P-bit during it: "
              f"{register.present} (translations fall back to the x86 walker)")
        manager.run_migrations()
        register = manager.build_registers()[0]
        print(f"  migration finished; P-bit restored: {register.present}")
    new_tea = manager.clusters[0].all_teas()[0]
    print(f"  final TEA : {new_tea!r}")
    print(f"  modeled management time so far: {dmt.management_ms():.2f} ms "
          f"(§6.3: negligible against seconds of runtime)")


if __name__ == "__main__":
    memcached_clustering()
    tea_splitting()
    vma_growth()
