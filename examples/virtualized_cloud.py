#!/usr/bin/env python3
"""A Redis-like workload in a VM: vanilla KVM vs DMT vs pvDMT.

Reproduces the paper's headline scenario (§6.1.2) end to end:

* a host kernel running a KVM-style hypervisor and host-side DMT-Linux
  (EPT leaf tables in host TEAs — the hVMA-to-hTEA mapping);
* a guest whose DMT-Linux obtains its TEAs from the host through the
  ``KVM_HC_ALLOC_TEA`` hypercall, so guest TEAs are host-contiguous;
* the Redis workload's trace filtered through the TLBs once, then
  replayed through the vanilla 2D walker (24 references), DMT (3) and
  pvDMT (2), and finally the §5 performance model turning walk-latency
  savings into an application speedup.

Run:  python examples/virtualized_cloud.py
"""

from repro.sim import SimConfig, VirtSimulation
from repro.sim.perfmodel import model_from_stats


def main() -> None:
    config = SimConfig(scale=1024, nrefs=20_000)
    print("building the virtualized machine (host + VM + guest DMT) ...")
    sim = VirtSimulation("Redis", config)

    print(f"  guest working set : {sim.workload.working_set_bytes() >> 20} MiB "
          f"(paper: {sim.workload.paper_working_set_gb} GB, scaled 1/{config.scale})")
    print(f"  TLB miss rate     : {sim.tlb.miss_rate:.1%} "
          f"({sim.tlb.miss_count} walks)")
    print(f"  VM exits so far   : {sim.vm.exits.total} "
          f"(hypercalls: {sim.vm.exits.hypercalls} — one per TEA batch)")

    print("\nreplaying the identical TLB-miss stream through each design:")
    vanilla = sim.run("vanilla")
    results = {}
    for design in ("dmt", "pvdmt"):
        stats = sim.run(design)
        model = model_from_stats("Redis", "virt_npt", vanilla, stats)
        results[design] = (stats, model)
        print(f"  {design:7s}: {stats.mean_latency:7.1f} cycles/walk "
              f"({vanilla.mean_latency / stats.mean_latency:4.2f}x walk speedup, "
              f"{model.app_speedup:4.2f}x modeled app speedup, "
              f"fallback {stats.fallback_rate:.2%})")
    print(f"  vanilla: {vanilla.mean_latency:7.1f} cycles/walk "
          f"(the 24-reference 2D walk of Figure 2)")

    pv_stats, pv_model = results["pvdmt"]
    print(f"\npaper's Figure 15 (4 KB, Redis-class): pvDMT ~1.6x walk / "
          f"~1.2x app — measured {vanilla.mean_latency / pv_stats.mean_latency:.2f}x / "
          f"{pv_model.app_speedup:.2f}x at simulation scale")

    # isolation in action: the fetcher can only reach the guest's own TEAs
    from repro.core.paravirt import IsolationViolation
    try:
        sim.pv_host.gtea_table.resolve_pte_addr(999, 0)
    except IsolationViolation as exc:
        print(f"\nisolation check (§4.5.2): forged gTEA id rejected -> {exc}")


if __name__ == "__main__":
    main()
