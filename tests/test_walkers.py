"""Tests for the translation-design walkers (radix, DMT, Agile, ASAP)."""

import pytest

from repro.arch import PAGE_SIZE, PageSize
from repro.core.dmt_os import DMTLinux
from repro.core.registers import RegisterSet
from repro.hw.config import xeon_gold_6138
from repro.kernel.kernel import Kernel
from repro.translation.agile import AgilePagingWalker
from repro.translation.asap import ASAPNativeWalker, ASAPNestedWalker
from repro.translation.base import MemorySubsystem
from repro.translation.dmt import DMTNativeWalker, machine_reader
from repro.translation.radix import NativeRadixWalker, NestedRadixWalker, ShadowWalker
from repro.virt.hypervisor import Hypervisor
from repro.virt.shadow import ShadowPager

MB = 1 << 20


@pytest.fixture
def machine():
    return xeon_gold_6138()


def fresh_memsys(machine):
    return MemorySubsystem(machine)


@pytest.fixture
def native_setup(machine):
    kernel = Kernel(memory_bytes=256 * MB)
    proc = kernel.create_process()
    vma = proc.mmap(8 * MB, populate=True)
    return kernel, proc, vma


@pytest.fixture
def virt_setup(machine):
    host = Kernel(memory_bytes=512 * MB)
    vm = Hypervisor(host).create_vm(128 * MB)
    proc = vm.guest_kernel.create_process()
    vma = proc.mmap(8 * MB, populate=True)
    vm.back_range(0, 32 * MB)
    return host, vm, proc, vma


class TestNativeRadix:
    def test_cold_walk_is_four_fetches(self, native_setup, machine):
        _, proc, vma = native_setup
        walker = NativeRadixWalker(proc.page_table, fresh_memsys(machine))
        result = walker.translate(vma.start)
        assert len(result.refs) == 4
        assert [r.tag for r in result.refs] == ["L4", "L3", "L2", "L1"]
        assert result.pa == proc.page_table.translate(vma.start)[0]

    def test_pwc_shortens_repeat_walks(self, native_setup, machine):
        _, proc, vma = native_setup
        walker = NativeRadixWalker(proc.page_table, fresh_memsys(machine))
        cold = walker.translate(vma.start)
        warm = walker.translate(vma.start + PAGE_SIZE)
        assert len(warm.refs) < len(cold.refs)

    def test_unmapped_address_has_no_pa(self, native_setup, machine):
        _, proc, _ = native_setup
        walker = NativeRadixWalker(proc.page_table, fresh_memsys(machine))
        assert walker.translate(0xDEAD000).pa is None

    def test_stats_accumulate(self, native_setup, machine):
        _, proc, vma = native_setup
        walker = NativeRadixWalker(proc.page_table, fresh_memsys(machine))
        for i in range(10):
            walker.translate(vma.start + i * PAGE_SIZE)
        assert walker.walks == 10
        assert walker.mean_latency > 0


class TestNestedRadix:
    def test_cold_walk_is_24_fetches(self, virt_setup, machine):
        _, vm, proc, vma = virt_setup
        walker = NestedRadixWalker(proc.page_table, vm, fresh_memsys(machine))
        result = walker.translate(vma.start)
        assert len(result.refs) == 24, "Figure 2: 2D walk = 24 references"
        gpa, _ = proc.page_table.translate(vma.start)
        assert result.pa == vm.gpa_to_hpa(gpa)

    def test_figure2_reference_order(self, virt_setup, machine):
        _, vm, proc, vma = virt_setup
        walker = NestedRadixWalker(proc.page_table, vm, fresh_memsys(machine))
        tags = [r.tag for r in walker.translate(vma.start).refs]
        # steps 1-4 resolve gL4's location, step 5 fetches gL4, ...
        assert tags[:5] == ["hg4L4", "hg4L3", "hg4L2", "hg4L1", "gL4"]
        assert tags[-5:] == ["gL1", "hdL4", "hdL3", "hdL2", "hdL1"]

    def test_huge_guest_page_shortens_guest_dim(self, machine):
        host = Kernel(memory_bytes=512 * MB)
        vm = Hypervisor(host).create_vm(128 * MB, thp_enabled=True)
        proc = vm.guest_kernel.create_process()
        vma = proc.mmap(4 * MB, populate=True)
        vm.back_range(0, 32 * MB)
        walker = NestedRadixWalker(proc.page_table, vm, fresh_memsys(machine))
        result = walker.translate(vma.start)
        assert result.page_size == PageSize.SIZE_2M
        guest_fetches = [r for r in result.refs if r.tag.startswith("gL")]
        assert [r.tag for r in guest_fetches] == ["gL4", "gL3", "gL2"]


class TestShadowWalker:
    def test_native_speed_walk(self, virt_setup, machine):
        _, vm, proc, vma = virt_setup
        pager = ShadowPager(vm, proc)
        pager.sync()
        walker = ShadowWalker(pager.spt, fresh_memsys(machine))
        result = walker.translate(vma.start)
        assert len(result.refs) <= 4
        gpa, _ = proc.page_table.translate(vma.start)
        assert result.pa == vm.gpa_to_hpa(gpa)


class TestDMTWalker:
    def test_one_reference_and_fallback(self, native_setup, machine):
        kernel, proc, vma = native_setup
        dmt = DMTLinux(kernel)
        # attach after the fact: need a process created under DMT
        proc2 = kernel.create_process()
        vma2 = proc2.mmap(8 * MB, populate=True)
        dmt.reload_registers(proc2)
        memsys = fresh_memsys(machine)
        fallback = NativeRadixWalker(proc2.page_table, memsys)
        walker = DMTNativeWalker(dmt.register_file, fallback, memsys,
                                 kernel.memory.read_word)
        result = walker.translate(vma2.start + 0x1234)
        assert len(result.refs) == 1
        assert result.pa == proc2.page_table.translate(vma2.start + 0x1234)[0]
        # an address outside every register falls back to the radix walker
        # (note: both processes mmap the same virtual base, so probe a VA
        # no register of proc2 covers)
        other = walker.translate(0x1234000)
        assert other.fallback
        assert other.pa is None  # nothing mapped there either


class TestAgile:
    def test_fewer_refs_than_nested_more_than_native(self, virt_setup, machine):
        _, vm, proc, vma = virt_setup
        pager = ShadowPager(vm, proc)
        pager.sync()
        walker = AgilePagingWalker(proc.page_table, pager.spt, vm,
                                   fresh_memsys(machine))
        result = walker.translate(vma.start)
        assert 4 <= len(result.refs) <= 24, "Table 6: Agile Paging is 4-24 refs"
        gpa, _ = proc.page_table.translate(vma.start)
        assert result.pa == vm.gpa_to_hpa(gpa)

    def test_structure_shadow_then_leaf_then_data(self, virt_setup, machine):
        _, vm, proc, vma = virt_setup
        pager = ShadowPager(vm, proc)
        pager.sync()
        walker = AgilePagingWalker(proc.page_table, pager.spt, vm,
                                   fresh_memsys(machine))
        tags = [r.tag for r in walker.translate(vma.start).refs]
        assert tags[0].startswith("sL")
        assert "gL1" in tags
        assert tags[-1].startswith("hdL")


class TestASAP:
    def test_native_correctness_and_prefetch(self, native_setup, machine):
        _, proc, vma = native_setup
        walker = ASAPNativeWalker(proc.page_table, fresh_memsys(machine))
        result = walker.translate(vma.start)
        assert result.pa == proc.page_table.translate(vma.start)[0]
        assert walker.prefetches == 2  # last two levels (§6.2.2)

    def test_native_not_faster_than_direct_fetch(self, native_setup, machine):
        # ASAP's prefetch is issued at miss time: it cannot beat fetching
        # the same leaf line directly (DMT), §6.2.2.
        _, proc, vma = native_setup
        memsys = fresh_memsys(machine)
        walker = ASAPNativeWalker(proc.page_table, memsys)
        cold = walker.translate(vma.start)
        assert cold.cycles >= memsys.machine.memory_latency

    def test_nested_still_walks_sequentially(self, virt_setup, machine):
        _, vm, proc, vma = virt_setup
        walker = ASAPNestedWalker(proc.page_table, vm, fresh_memsys(machine))
        result = walker.translate(vma.start)
        gpa, _ = proc.page_table.translate(vma.start)
        assert result.pa == vm.gpa_to_hpa(gpa)
        assert len(result.refs) == 24  # every PTE still fetched (§6.2.2)
