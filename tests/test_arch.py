"""Tests for repro.arch: x86-64 address arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro import arch
from repro.arch import PageSize


class TestPageSize:
    def test_sizes(self):
        assert PageSize.SIZE_4K.bytes == 4096
        assert PageSize.SIZE_2M.bytes == 2 * 1024 * 1024
        assert PageSize.SIZE_1G.bytes == 1024 * 1024 * 1024

    def test_leaf_levels_match_figure_1(self):
        # 4 KB pages terminate at L1, 2 MB at L2, 1 GB at L3
        assert PageSize.SIZE_4K.leaf_level == 1
        assert PageSize.SIZE_2M.leaf_level == 2
        assert PageSize.SIZE_1G.leaf_level == 3

    def test_sz_field_roundtrip(self):
        for size in PageSize:
            assert PageSize.from_sz_field(size.sz_field()) is size


class TestLevelIndex:
    def test_level_shifts_match_figure_1(self):
        # VA[20:12], VA[29:21], VA[38:30], VA[47:39]
        assert arch.level_shift(1) == 12
        assert arch.level_shift(2) == 21
        assert arch.level_shift(3) == 30
        assert arch.level_shift(4) == 39
        assert arch.level_shift(5) == 48

    def test_level_shift_rejects_zero(self):
        with pytest.raises(ValueError):
            arch.level_shift(0)

    def test_known_address_decomposition(self):
        va = (3 << 39) | (7 << 30) | (511 << 21) | (1 << 12) | 0xABC
        assert arch.level_index(va, 4) == 3
        assert arch.level_index(va, 3) == 7
        assert arch.level_index(va, 2) == 511
        assert arch.level_index(va, 1) == 1
        assert arch.page_offset(va) == 0xABC

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_indices_reassemble_address(self, va):
        rebuilt = (
            (arch.level_index(va, 4) << 39)
            | (arch.level_index(va, 3) << 30)
            | (arch.level_index(va, 2) << 21)
            | (arch.level_index(va, 1) << 12)
            | arch.page_offset(va)
        )
        assert rebuilt == va

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1),
           st.sampled_from(list(PageSize)))
    def test_page_base_plus_offset(self, va, size):
        assert arch.page_base(va, size) + arch.page_offset(va, size) == va
        assert arch.page_base(va, size) % size.bytes == 0


class TestAlignment:
    @given(st.integers(min_value=0, max_value=1 << 50),
           st.sampled_from([1 << s for s in range(0, 31, 3)]))
    def test_align_up_down_bracket(self, value, alignment):
        down = arch.align_down(value, alignment)
        up = arch.align_up(value, alignment)
        assert down <= value <= up
        assert up - down in (0, alignment)
        assert arch.is_aligned(down, alignment)
        assert arch.is_aligned(up, alignment)

    def test_pages_in(self):
        assert arch.pages_in(1) == 1
        assert arch.pages_in(4096) == 1
        assert arch.pages_in(4097) == 2
        assert arch.pages_in(2 << 20, PageSize.SIZE_2M) == 1

    def test_canonicalize_truncates(self):
        assert arch.canonicalize(1 << 60) == 0
        assert arch.canonicalize((1 << 48) - 1) == (1 << 48) - 1
