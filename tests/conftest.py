"""Shared test configuration.

Hypothesis deadlines are disabled: property examples run fine in
milliseconds on an idle machine, but the suite must stay deterministic
when run next to the (CPU-heavy) benchmark harness.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
