"""Tests for physical memory and the fragmentation tool."""

import pytest

from repro.arch import PAGE_SIZE
from repro.mem.buddy import BuddyAllocator, ContiguityError
from repro.mem.fragmentation import fragment
from repro.mem.physmem import PhysicalMemory, addr_to_frame, frame_to_addr


class TestPhysicalMemory:
    def test_geometry(self):
        mem = PhysicalMemory(64 * PAGE_SIZE)
        assert mem.total_frames == 64
        assert mem.total_bytes == 64 * PAGE_SIZE

    def test_rejects_unaligned_size(self):
        with pytest.raises(ValueError):
            PhysicalMemory(PAGE_SIZE + 1)

    def test_word_read_write(self):
        mem = PhysicalMemory(16 * PAGE_SIZE)
        mem.write_word(0x1000, 0xDEAD)
        assert mem.read_word(0x1000) == 0xDEAD
        assert mem.read_word(0x2000) == 0  # zero-fill semantics

    def test_unaligned_word_access_rejected(self):
        mem = PhysicalMemory(16 * PAGE_SIZE)
        with pytest.raises(ValueError):
            mem.read_word(0x1001)
        with pytest.raises(ValueError):
            mem.write_word(0x1004, 1)  # 4-byte aligned but not 8

    def test_write_zero_clears(self):
        mem = PhysicalMemory(16 * PAGE_SIZE)
        mem.write_word(0x1000, 7)
        mem.write_word(0x1000, 0)
        assert mem.read_word(0x1000) == 0

    def test_clear_page(self):
        mem = PhysicalMemory(16 * PAGE_SIZE)
        for offset in range(0, PAGE_SIZE, 8):
            mem.write_word(0x3000 + offset, offset + 1)
        mem.clear_page(3)
        assert all(mem.read_word(0x3000 + o) == 0 for o in range(0, PAGE_SIZE, 8))

    def test_copy_page(self):
        mem = PhysicalMemory(16 * PAGE_SIZE)
        mem.write_word(0x1000, 0xAA)
        mem.write_word(0x1FF8, 0xBB)
        mem.write_word(0x2008, 0x99)  # stale content in the destination
        mem.copy_page(1, 2)
        assert mem.read_word(0x2000) == 0xAA
        assert mem.read_word(0x2FF8) == 0xBB
        assert mem.read_word(0x2008) == 0  # stale word overwritten by zero

    def test_frame_addr_helpers(self):
        assert frame_to_addr(3) == 0x3000
        assert addr_to_frame(0x3FFF) == 3


class TestFragmentTool:
    def test_reaches_paper_fragmentation_level(self):
        buddy = BuddyAllocator(1 << 14)
        index = fragment(buddy, target_index=0.99)
        # §6.3 fragments to FMFI ~= 0.99 before measuring overheads
        assert index >= 0.99
        assert buddy.free_frames > 0

    def test_contig_allocation_fails_after_fragmenting(self):
        buddy = BuddyAllocator(1 << 14)
        fragment(buddy)
        with pytest.raises(ContiguityError):
            buddy.alloc_contig(512)

    def test_deterministic_given_seed(self):
        b1, b2 = BuddyAllocator(1 << 12), BuddyAllocator(1 << 12)
        assert fragment(b1, seed=5) == fragment(b2, seed=5)
        assert b1.free_frames == b2.free_frames
