"""Tests for the buddy allocator, including property-based invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.buddy import (
    MAX_ORDER,
    BuddyAllocator,
    ContiguityError,
    OutOfMemoryError,
)

TOTAL = 1 << 12  # 4096 frames = 16 MiB


@pytest.fixture
def buddy():
    return BuddyAllocator(TOTAL)


class TestBasicOps:
    def test_initial_state_all_free(self, buddy):
        assert buddy.free_frames == TOTAL
        assert buddy.allocated_frames == 0

    def test_alloc_free_roundtrip(self, buddy):
        frame = buddy.alloc_pages(0)
        assert buddy.free_frames == TOTAL - 1
        buddy.free_pages(frame)
        assert buddy.free_frames == TOTAL

    def test_alloc_order_alignment(self, buddy):
        for order in range(MAX_ORDER):
            frame = buddy.alloc_pages(order)
            assert frame % (1 << order) == 0
            buddy.free_pages(frame)

    def test_allocations_do_not_overlap(self, buddy):
        seen = set()
        for _ in range(64):
            frame = buddy.alloc_pages(3)
            block = set(range(frame, frame + 8))
            assert not block & seen
            seen |= block

    def test_double_free_rejected(self, buddy):
        frame = buddy.alloc_pages(0)
        buddy.free_pages(frame)
        with pytest.raises(ValueError):
            buddy.free_pages(frame)

    def test_free_wrong_order_rejected(self, buddy):
        frame = buddy.alloc_pages(2)
        with pytest.raises(ValueError):
            buddy.free_pages(frame, order=3)

    def test_oom(self):
        tiny = BuddyAllocator(4)
        frames = [tiny.alloc_pages(0) for _ in range(4)]
        with pytest.raises(OutOfMemoryError):
            tiny.alloc_pages(0)
        for frame in frames:
            tiny.free_pages(frame)

    def test_coalescing_restores_high_orders(self, buddy):
        frames = [buddy.alloc_pages(0) for _ in range(TOTAL)]
        for frame in frames:
            buddy.free_pages(frame)
        # after freeing everything, a max-order block must be allocatable
        frame = buddy.alloc_pages(MAX_ORDER - 1)
        buddy.free_pages(frame)


class TestContig:
    def test_contig_alloc_is_contiguous(self, buddy):
        base = buddy.alloc_contig(300)
        assert buddy.allocated_frames == 300
        buddy.free_contig(base, 300)
        assert buddy.free_frames == TOTAL

    def test_contig_non_power_of_two(self, buddy):
        base = buddy.alloc_contig(777)
        buddy.free_contig(base, 777)
        assert buddy.free_frames == TOTAL

    def test_contig_fails_when_fragmented(self, buddy):
        held = [buddy.alloc_pages(0, movable=False) for _ in range(TOTAL)]
        for frame in held[::2]:
            buddy.free_pages(frame)
        with pytest.raises(ContiguityError):
            buddy.alloc_contig(2)

    def test_expand_contig_in_place(self, buddy):
        base = buddy.alloc_contig(64)
        assert buddy.expand_contig(base, 64, 64)
        buddy.free_contig(base, 128)
        assert buddy.free_frames == TOTAL

    def test_expand_contig_blocked(self, buddy):
        base = buddy.alloc_contig(64)
        blocker = buddy.alloc_contig(1)  # lands right after
        if blocker == base + 64:
            assert not buddy.expand_contig(base, 64, 64)
        buddy.free_contig(blocker, 1)

    def test_shrink_contig_keeps_base(self, buddy):
        base = buddy.alloc_contig(100)
        buddy.shrink_contig(base, 100, 40)
        assert buddy.allocated_frames == 40
        buddy.free_contig(base, 40)
        assert buddy.free_frames == TOTAL

    def test_shrink_contig_validates(self, buddy):
        base = buddy.alloc_contig(10)
        with pytest.raises(ValueError):
            buddy.shrink_contig(base, 10, 0)
        with pytest.raises(ValueError):
            buddy.shrink_contig(base + 1, 10, 5)


class TestFragmentationIndex:
    def test_pristine_memory_is_unfragmented(self, buddy):
        assert buddy.fragmentation_index(9) == 0.0

    def test_fully_fragmented_memory(self, buddy):
        held = [buddy.alloc_pages(0, movable=False) for _ in range(TOTAL)]
        for frame in held[::2]:
            buddy.free_pages(frame)
        assert buddy.fragmentation_index(9) > 0.9


class TestCompaction:
    def test_compaction_creates_contiguity(self, buddy):
        held = [buddy.alloc_pages(0, movable=True) for _ in range(TOTAL)]
        for frame in held[::2]:
            buddy.free_pages(frame)
        with pytest.raises(ContiguityError):
            buddy.alloc_contig(TOTAL // 4)
        migrated = buddy.compact()
        assert migrated > 0
        base = buddy.alloc_contig(TOTAL // 4)
        buddy.free_contig(base, TOTAL // 4)

    def test_compaction_skips_unmovable(self, buddy):
        pinned = buddy.alloc_pages(0, movable=False)
        _, relocation = buddy.compact_with_map()
        assert pinned not in relocation


@st.composite
def alloc_script(draw):
    """A random sequence of (order) allocations with interleaved frees."""
    return draw(st.lists(
        st.tuples(st.integers(0, 5), st.booleans()), min_size=1, max_size=60,
    ))


class TestProperties:
    @given(alloc_script())
    @settings(max_examples=60, deadline=None)
    def test_frame_conservation_and_no_overlap(self, script):
        buddy = BuddyAllocator(TOTAL)
        live = {}
        owned = set()
        for order, free_one in script:
            try:
                frame = buddy.alloc_pages(order)
            except OutOfMemoryError:
                continue
            block = set(range(frame, frame + (1 << order)))
            assert not block & owned, "allocator handed out overlapping frames"
            owned |= block
            live[frame] = order
            if free_one and live:
                victim, v_order = next(iter(live.items()))
                buddy.free_pages(victim)
                owned -= set(range(victim, victim + (1 << v_order)))
                del live[victim]
            assert buddy.free_frames + len(owned) == TOTAL
        for frame, order in live.items():
            buddy.free_pages(frame)
        assert buddy.free_frames == TOTAL

    @given(st.lists(st.integers(1, 200), min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_contig_blocks_disjoint(self, sizes):
        buddy = BuddyAllocator(TOTAL)
        owned = set()
        blocks = []
        for npages in sizes:
            try:
                base = buddy.alloc_contig(npages)
            except OutOfMemoryError:
                break
            block = set(range(base, base + npages))
            assert not block & owned
            owned |= block
            blocks.append((base, npages))
        for base, npages in blocks:
            buddy.free_contig(base, npages)
        assert buddy.free_frames == TOTAL
