"""SimConfig construction-time validation and sweep error handling."""

import dataclasses

import pytest

from repro.hw.config import CacheConfig, MachineConfig, TLBConfig
from repro.sim.machine import SimConfig
from repro.sim.sweep import run_sweep, summarize


# --------------------------------------------------------------------- #
# SimConfig validation
# --------------------------------------------------------------------- #

def test_valid_default_config_constructs():
    SimConfig()


@pytest.mark.parametrize("count", [0, -1, 17, 64])
def test_register_count_outside_figure_13_range_rejected(count):
    with pytest.raises(ValueError, match="register_count"):
        SimConfig(register_count=count)


@pytest.mark.parametrize("count", [1, 8, 16])
def test_register_count_in_range_accepted(count):
    assert SimConfig(register_count=count).register_count == count


@pytest.mark.parametrize("kwargs,match", [
    ({"levels": 3}, "levels"),
    ({"levels": 6}, "levels"),
    ({"engine": "turbo"}, "engine"),
    ({"scale": 0}, "scale"),
    ({"nrefs": 0}, "nrefs"),
    ({"warmup_fraction": 1.0}, "warmup_fraction"),
    ({"warmup_fraction": -0.1}, "warmup_fraction"),
])
def test_bad_scalar_knobs_rejected(kwargs, match):
    with pytest.raises(ValueError, match=match):
        SimConfig(**kwargs)


def test_non_power_of_two_tlb_sets_rejected():
    machine = MachineConfig(l2_stlb=TLBConfig("L2 STLB", 1536, 8))
    # 1536 entries / 8-way = 192 sets: not a power of two
    with pytest.raises(ValueError, match="power of two"):
        SimConfig(machine=machine)


def test_non_power_of_two_cache_line_rejected():
    machine = MachineConfig(
        l1d=CacheConfig("L1D", 32 * 1024, 8, latency=4, line_bytes=48))
    with pytest.raises(ValueError, match="power of two"):
        SimConfig(machine=machine)


def test_small_copy_revalidates():
    config = SimConfig()
    small = config.small()
    assert small.nrefs == 8_000 and small.register_count == 16
    with pytest.raises(ValueError):
        dataclasses.replace(config, register_count=17)


# --------------------------------------------------------------------- #
# Sweep error cells
# --------------------------------------------------------------------- #

def test_sweep_records_error_cell_for_bad_group():
    document = run_sweep(
        envs=["native"], workloads=["GUPS", "NoSuchWorkload"],
        designs=["vanilla", "dmt"], workers=1, scale=4096, nrefs=2000,
    )
    good = [c for c in document["cells"] if "error" not in c]
    bad = [c for c in document["cells"] if "error" in c]
    assert {c["design"] for c in good} == {"vanilla", "dmt"}
    assert len(bad) == 1
    assert bad[0]["workload"] == "NoSuchWorkload"
    assert bad[0]["design"] is None
    assert "KeyError" in bad[0]["error"]
    # good cells still compute speedups despite the failed group
    dmt = next(c for c in good if c["design"] == "dmt")
    assert dmt["walk_speedup"] is not None


def test_sweep_error_cells_render_in_summary():
    document = run_sweep(
        envs=["native"], workloads=["NoSuchWorkload"], workers=1,
        scale=4096, nrefs=2000,
    )
    rows = summarize(document)
    assert len(rows) == 1
    assert rows[0][3] == "(group)"
    assert rows[0][4].startswith("ERROR: KeyError")


def test_sweep_error_cell_survives_process_pool():
    document = run_sweep(
        envs=["native"], workloads=["GUPS", "NoSuchWorkload"],
        designs=["dmt"], workers=2, scale=4096, nrefs=2000,
    )
    bad = [c for c in document["cells"] if "error" in c]
    assert len(bad) == 1 and bad[0]["workload"] == "NoSuchWorkload"
    assert any("error" not in c for c in document["cells"])
