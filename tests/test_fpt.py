"""Tests for Flattened Page Tables."""

import pytest

from repro.arch import PAGE_SIZE, PageSize
from repro.hw.config import xeon_gold_6138
from repro.kernel.kernel import Kernel
from repro.mem.physmem import PhysicalMemory
from repro.translation.base import MemorySubsystem
from repro.translation.fpt import (
    FlattenedPageTable,
    FPTNativeWalker,
    FPTNestedWalker,
)
from repro.virt.hypervisor import Hypervisor

MB = 1 << 20
BASE = 0x7F00_0000_0000


@pytest.fixture
def memory():
    return PhysicalMemory(256 * MB)


@pytest.fixture
def fpt(memory):
    return FlattenedPageTable(memory)


class TestFlattenedTable:
    def test_map_translate(self, fpt):
        fpt.map(BASE, 100)
        assert fpt.translate(BASE + 0x777) == (100 * PAGE_SIZE + 0x777,
                                               PageSize.SIZE_4K)
        assert fpt.translate(BASE + PAGE_SIZE) is None

    def test_huge_page(self, fpt):
        fpt.map(BASE, 512, PageSize.SIZE_2M)
        pa, size = fpt.translate(BASE + 0x12345)
        assert size == PageSize.SIZE_2M and pa == 512 * PAGE_SIZE + 0x12345

    def test_1g_unsupported(self, fpt):
        with pytest.raises(ValueError):
            fpt.map(BASE, 0, PageSize.SIZE_1G)

    def test_unmap(self, fpt):
        fpt.map(BASE, 100)
        fpt.unmap(BASE)
        assert fpt.translate(BASE) is None

    def test_nodes_are_2mb_flat_arrays(self, fpt):
        # merged L4+L3 root and merged L2+L1 leaves: 2 MB each (18 index bits)
        fpt.map(BASE, 100)
        assert fpt.table_bytes() == 2 * (2 * MB)

    def test_index_split(self):
        va = (0x155 << 30) | (0x2AA << 12)
        assert FlattenedPageTable.upper_index(va) == 0x155
        assert FlattenedPageTable.lower_index(va) == 0x2AA << 0

    def test_load_from_radix(self, memory, fpt):
        kernel = Kernel(memory=memory)
        proc = kernel.create_process()
        vma = proc.mmap(2 * MB, populate=True)
        assert fpt.load_from_radix(proc.page_table) == 512
        assert fpt.translate(vma.start) == proc.page_table.translate(vma.start)


class TestFPTWalkers:
    def test_native_two_references(self, memory, fpt):
        kernel = Kernel(memory=memory)
        proc = kernel.create_process()
        vma = proc.mmap(2 * MB, populate=True)
        fpt.load_from_radix(proc.page_table)
        walker = FPTNativeWalker(fpt, MemorySubsystem(xeon_gold_6138()))
        result = walker.translate(vma.start)
        assert len(result.refs) == 2, "Table 6: FPT native = 2 references"
        assert result.pa == proc.page_table.translate(vma.start)[0]

    def test_native_huge_probe(self, memory, fpt):
        kernel = Kernel(memory=memory, thp_enabled=True)
        proc = kernel.create_process()
        vma = proc.mmap(2 * MB, populate=True)
        fpt.load_from_radix(proc.page_table)
        walker = FPTNativeWalker(fpt, MemorySubsystem(xeon_gold_6138()),
                                 probe_huge=True)
        result = walker.translate(vma.start + 0x5000)
        assert result.page_size == PageSize.SIZE_2M
        assert result.pa == proc.page_table.translate(vma.start + 0x5000)[0]

    def test_virtualized_eight_references(self):
        host = Kernel(memory_bytes=768 * MB)
        vm = Hypervisor(host).create_vm(128 * MB)
        proc = vm.guest_kernel.create_process()
        vma = proc.mmap(2 * MB, populate=True)
        guest_fpt = FlattenedPageTable(vm.guest_memory)
        guest_fpt.load_from_radix(proc.page_table)
        vm.back_range(0, vm.memory_bytes)
        host_fpt = FlattenedPageTable(host.memory)
        host_fpt.load_from_radix(vm.ept)
        walker = FPTNestedWalker(guest_fpt, host_fpt, vm,
                                 MemorySubsystem(xeon_gold_6138()))
        result = walker.translate(vma.start + 0x123)
        assert len(result.refs) == 8, "Table 6: FPT virtualized = 8 references"
        gpa, _ = proc.page_table.translate(vma.start + 0x123)
        assert result.pa == vm.gpa_to_hpa(gpa)
