"""Unit tests for the DMT fetcher's selection logic and fault paths."""

import pytest

from repro.arch import PAGE_SHIFT, PageSize
from repro.core.fetcher import DMTFetcher, _select_leaf
from repro.core.paravirt import GTEATable, IsolationViolation
from repro.core.registers import DMTRegister, DMTRegisterFile, RegisterSet
from repro.kernel.page_table import PTE_HUGE, PTE_PRESENT, make_pte


def reg(base_vpn, size_pages, tea_pfn, page_size=PageSize.SIZE_4K,
        present=True, gtea_id=None):
    return DMTRegister(base_vpn, tea_pfn, size_pages, page_size, present,
                       gtea_id)


class _FakeMemory:
    """Word store indexed by physical address."""

    def __init__(self):
        self.words = {}
        self.reads = []

    def read(self, addr):
        self.reads.append(addr)
        return self.words.get(addr, 0)


class TestSelectLeaf:
    def test_picks_present_matching_size(self):
        r4k = reg(0, 16, 0x10)
        r2m = reg(0, 2, 0x20, PageSize.SIZE_2M)
        huge_pte = make_pte(512, PTE_PRESENT | PTE_HUGE)
        picked = _select_leaf([(r4k, 0), (r2m, huge_pte)])
        assert picked == (r2m, huge_pte)

    def test_rejects_size_mismatch(self):
        # a PS-bit PTE seen through a 4K register is not a valid leaf
        r4k = reg(0, 16, 0x10)
        assert _select_leaf([(r4k, make_pte(512, PTE_PRESENT | PTE_HUGE))]) is None

    def test_rejects_non_present(self):
        r4k = reg(0, 16, 0x10)
        assert _select_leaf([(r4k, make_pte(99, 0))]) is None


class TestNativeFetch:
    def _setup(self):
        rf = DMTRegisterFile()
        rf.load(RegisterSet.NATIVE, [reg(0x100, 16, 0x10)])
        mem = _FakeMemory()
        return rf, mem

    def test_single_reference_success(self):
        rf, mem = self._setup()
        # page 3 of the VMA -> PTE at TEA base + 3*8
        mem.words[(0x10 << PAGE_SHIFT) + 24] = make_pte(77)
        fetcher = DMTFetcher(rf)
        fetched = []
        result = fetcher.translate_native(
            (0x100 + 3) << PAGE_SHIFT | 0x45, mem.read,
            lambda a, t, g: fetched.append(a))
        assert result.pa == (77 << PAGE_SHIFT) | 0x45
        assert result.references == 1
        assert fetched == [(0x10 << PAGE_SHIFT) + 24]
        assert fetcher.hits == 1

    def test_fault_charges_one_probe(self):
        rf, mem = self._setup()
        fetcher = DMTFetcher(rf)
        fetched = []
        result = fetcher.translate_native(0x100 << PAGE_SHIFT, mem.read,
                                          lambda a, t, g: fetched.append(a))
        assert result.fault and not result.fallback
        assert len(fetched) == 1

    def test_fallback_makes_no_fetches(self):
        rf, mem = self._setup()
        fetcher = DMTFetcher(rf)
        fetched = []
        result = fetcher.translate_native(0x999 << PAGE_SHIFT, mem.read,
                                          lambda a, t, g: fetched.append(a))
        assert result.fallback
        assert fetched == []

    def test_parallel_probe_charges_only_winner(self):
        rf = DMTRegisterFile()
        rf.load(RegisterSet.NATIVE, [
            reg(0x40000000 >> 12, 1024, 0x10),
            reg(0x40000000 >> 21, 2, 0x20, PageSize.SIZE_2M),
        ])
        mem = _FakeMemory()
        mem.words[0x20 << PAGE_SHIFT] = make_pte(512, PTE_PRESENT | PTE_HUGE)
        fetcher = DMTFetcher(rf)
        fetched = []
        result = fetcher.translate_native(0x40000000 + 0x5678, mem.read,
                                          lambda a, t, g: fetched.append(a))
        assert result.page_size == PageSize.SIZE_2M
        assert fetched == [0x20 << PAGE_SHIFT], \
            "only the winning probe is on the critical path"

    def test_full_miss_charges_all_probes(self):
        rf = DMTRegisterFile()
        rf.load(RegisterSet.NATIVE, [
            reg(0x40000000 >> 12, 1024, 0x10),
            reg(0x40000000 >> 21, 2, 0x20, PageSize.SIZE_2M),
        ])
        mem = _FakeMemory()
        fetcher = DMTFetcher(rf)
        fetched = []
        result = fetcher.translate_native(0x40000000, mem.read,
                                          lambda a, t, g: fetched.append((a, g)))
        assert result.fault
        assert len(fetched) == 2
        assert fetched[0][1] == fetched[1][1], "miss probes share one group"


class TestPvIsolationPropagation:
    def test_forged_gtea_id_faults_during_translation(self):
        """A malicious guest pointing a register at a bogus gTEA id must
        hit the host page fault, not host memory (§4.5.2)."""

        class _VMStub:
            class hypervisor:
                class host_memory:
                    class allocator:
                        @staticmethod
                        def alloc_pages(order, movable=False):
                            return 0x99

        table = GTEATable(_VMStub())
        rf = DMTRegisterFile()
        rf.load(RegisterSet.GUEST,
                [reg(0x100, 16, 0x10, gtea_id=42)])  # 42 never allocated
        fetcher = DMTFetcher(rf)
        with pytest.raises(IsolationViolation):
            fetcher.translate_virt_pv(0x100 << PAGE_SHIFT, table,
                                      lambda a: 0, lambda a, t, g: None)
