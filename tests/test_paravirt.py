"""Tests for pvDMT: hypercall, gTEA table, isolation (§4.5)."""

import pytest

from repro.arch import PAGE_SHIFT, PAGE_SIZE, PageSize
from repro.core.costs import Environment
from repro.core.dmt_os import DMTLinux
from repro.core.fetcher import DMTFetcher
from repro.core.paravirt import (
    GTEATable,
    IsolationViolation,
    PvDMTHost,
    PvTEAAllocator,
)
from repro.core.registers import RegisterSet
from repro.kernel.kernel import Kernel
from repro.mem.buddy import ContiguityError
from repro.mem.fragmentation import fragment
from repro.translation.dmt import machine_reader
from repro.virt.hypercall import TEARequest, hypercall_latency_us, tea_alloc_latency_ms
from repro.virt.hypervisor import Hypervisor

MB = 1 << 20


@pytest.fixture
def host():
    return Kernel(memory_bytes=512 * MB)


@pytest.fixture
def vm(host):
    return Hypervisor(host).create_vm(128 * MB)


@pytest.fixture
def pv(vm):
    return PvDMTHost(vm)


class TestHypercall:
    def test_alloc_returns_host_contiguous_area(self, pv, vm, host):
        result = pv.handle_alloc_tea([TEARequest(vma_base=0, npages=8)])
        assert len(result.entries) == 1
        entry = result.entries[0]
        # gTEA is backed by host-contiguous frames, visible at a gPA range
        for i in range(entry.npages):
            hpa = vm.gpa_to_hpa(entry.gpa_base + i * PAGE_SIZE)
            assert hpa >> PAGE_SHIFT == entry.host_base_frame + i

    def test_one_vm_exit_per_hypercall(self, pv, vm):
        before = vm.exits.hypercalls
        pv.handle_alloc_tea([TEARequest(0, 2), TEARequest(0, 2)])
        assert vm.exits.hypercalls == before + 1, \
            "one VM exit serves a whole request array (§4.5.1)"

    def test_host_splits_on_fragmentation(self, host, vm, pv):
        # fragment host memory so a large contig run is unavailable
        fragment(host.memory.allocator, fill_fraction=0.9)
        result = pv.handle_alloc_tea([TEARequest(0, 64)])
        assert len(result.entries) > 1
        assert sum(e.npages for e in result.entries) == 64

    def test_latency_model_matches_section_6_3(self):
        # §6.3: 1.88 us single / 10.75 us nested hypercall; 13.27 / 23.73 /
        # 48.07 ms for 50 / 100 / 200 MB TEA allocations.
        assert hypercall_latency_us() == pytest.approx(1.88)
        assert hypercall_latency_us(nested=True) == pytest.approx(10.75)
        assert tea_alloc_latency_ms(50 * MB) == pytest.approx(13.27, rel=0.15)
        assert tea_alloc_latency_ms(100 * MB) == pytest.approx(23.73, rel=0.15)
        assert tea_alloc_latency_ms(200 * MB) == pytest.approx(48.07, rel=0.15)


class TestGTEATable:
    def test_ids_resolve(self, pv):
        entry = pv.gtea_table.add(0x100, 4, 0x40000, 0)
        assert pv.gtea_table.get(entry.gtea_id) is entry

    def test_invalid_id_is_isolation_violation(self, pv):
        with pytest.raises(IsolationViolation):
            pv.gtea_table.get(999)
        with pytest.raises(IsolationViolation):
            pv.gtea_table.get(None)

    def test_out_of_bounds_offset_faults(self, pv):
        entry = pv.gtea_table.add(0x100, 4, 0x40000, 0)
        # in bounds: fine
        addr = pv.gtea_table.resolve_pte_addr(entry.gtea_id, 4 * PAGE_SIZE - 8)
        assert addr == (0x100 << PAGE_SHIFT) + 4 * PAGE_SIZE - 8
        # §4.5.2: an out-of-bound access must fault, never touch host memory
        with pytest.raises(IsolationViolation):
            pv.gtea_table.resolve_pte_addr(entry.gtea_id, 4 * PAGE_SIZE)
        with pytest.raises(IsolationViolation):
            pv.gtea_table.resolve_pte_addr(entry.gtea_id, -8)

    def test_removed_id_faults(self, pv):
        entry = pv.gtea_table.add(0x100, 4, 0x40000, 0)
        pv.gtea_table.remove(entry.gtea_id)
        with pytest.raises(IsolationViolation):
            pv.gtea_table.get(entry.gtea_id)


class TestPvAllocatorAdapter:
    def test_alloc_contig_returns_guest_frames(self, pv, vm):
        alloc = PvTEAAllocator(pv)
        gfn = alloc.alloc_contig(4)
        assert alloc.gtea_id_for(gfn) is not None
        # the guest sees it as ordinary guest-physical memory
        assert vm.gpa_to_hpa(gfn << PAGE_SHIFT) is not None

    def test_free_contig_releases(self, pv, host):
        alloc = PvTEAAllocator(pv)
        # warm up so EPT table pages (kept by the host) are already built
        warm = alloc.alloc_contig(4)
        alloc.free_contig(warm, 4)
        free_before = host.memory.allocator.free_frames
        gfn = alloc.alloc_contig(4)
        alloc.free_contig(gfn, 4)
        assert host.memory.allocator.free_frames == free_before
        with pytest.raises(ValueError):
            alloc.free_contig(gfn, 4)

    def test_expand_always_migrates(self, pv):
        alloc = PvTEAAllocator(pv)
        gfn = alloc.alloc_contig(4)
        assert alloc.expand_contig(gfn, 4, 2) is False


class TestEndToEndPvDMT:
    def _build(self, host, vm):
        host_dmt = DMTLinux(host, register_set=RegisterSet.NATIVE)
        host_dmt.attach_ept(vm)
        pv_host = PvDMTHost(vm, ledger=host_dmt.ledger)
        guest_dmt = DMTLinux(
            vm.guest_kernel, register_set=RegisterSet.GUEST,
            register_file=host_dmt.register_file,
            environment=Environment.VIRTUALIZED,
            tea_allocator=PvTEAAllocator(pv_host),
        )
        return host_dmt, guest_dmt, pv_host

    def test_two_reference_translation(self, host, vm):
        host_dmt, guest_dmt, pv_host = self._build(host, vm)
        proc = vm.guest_kernel.create_process()
        vma = proc.mmap(4 * MB, populate=True)
        vm.back_range(0, 16 * MB)
        guest_dmt.reload_registers(proc)
        host_dmt.register_file.load(
            RegisterSet.NATIVE, host_dmt.host_registers_for_vm(vm))
        reader = machine_reader(host.memory, [vm])
        fetcher = DMTFetcher(host_dmt.register_file)
        refs = []
        result = fetcher.translate_virt_pv(
            vma.start + 0x2345, pv_host.gtea_table, reader,
            lambda a, t, g: refs.append(t))
        assert result.references == 2, "pvDMT is two references (§3.1)"
        gpa, _ = proc.page_table.translate(vma.start + 0x2345)
        assert result.pa == vm.gpa_to_hpa(gpa)
        assert refs == ["gPTE", "PTE"]

    def test_three_reference_translation_without_pv(self, host, vm):
        host_dmt, guest_dmt, pv_host = self._build(host, vm)
        proc = vm.guest_kernel.create_process()
        vma = proc.mmap(4 * MB, populate=True)
        vm.back_range(0, 16 * MB)
        guest_dmt.reload_registers(proc)
        host_dmt.register_file.load(
            RegisterSet.NATIVE, host_dmt.host_registers_for_vm(vm))
        reader = machine_reader(host.memory, [vm])
        fetcher = DMTFetcher(host_dmt.register_file)
        result = fetcher.translate_virt(vma.start + 0x999, reader,
                                        lambda a, t, g: None)
        assert result.references == 3, "DMT without pv is three references (§3.1)"
        gpa, _ = proc.page_table.translate(vma.start + 0x999)
        assert result.pa == vm.gpa_to_hpa(gpa)

    def test_guest_pte_updates_need_no_exits(self, host, vm):
        """§4.5.1: after TEA setup the guest writes PTEs without VM exits."""
        host_dmt, guest_dmt, pv_host = self._build(host, vm)
        proc = vm.guest_kernel.create_process()
        vma = proc.mmap(4 * MB)
        exits = vm.exits.total
        proc.populate(vma)  # thousands of guest PTE writes
        assert vm.exits.total == exits
