"""Runtime sanitizer: planted-bug detection, probe purity, clean paths."""

import pytest

from repro.analysis import sanitizer
from repro.arch import PageSize
from repro.hw.config import MachineConfig
from repro.hw.pwc import PageWalkCache
from repro.hw.tlb import TLBHierarchy
from repro.kernel.page_table import RadixPageTable
from repro.mem.physmem import PhysicalMemory, frame_to_addr
from repro.sim.machine import ENVIRONMENTS, SimConfig
from tests.fixtures.planted_bugs import runtime_bugs

MB = 1 << 20


# --------------------------------------------------------------------- #
# Planted-bug detection (acceptance criterion)
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("plant", runtime_bugs.ALL_PLANTS,
                         ids=lambda plant: plant.__name__)
def test_planted_runtime_bug_detected(plant):
    with sanitizer.enabled():
        with pytest.raises(sanitizer.SanitizerError):
            plant()


@pytest.mark.parametrize("plant", runtime_bugs.ALL_PLANTS,
                         ids=lambda plant: plant.__name__)
def test_planted_bugs_are_silent_without_sanitizer(plant):
    # The bugs are semantic, not crashes: only the hooks catch them.
    assert not sanitizer.active()
    plant()


# --------------------------------------------------------------------- #
# Enable/disable mechanics
# --------------------------------------------------------------------- #

def test_enabled_context_restores_inactive_state():
    assert not sanitizer.active()
    with sanitizer.enabled():
        assert sanitizer.active()
    assert not sanitizer.active()


def test_registration_only_happens_while_active():
    memory = PhysicalMemory(16 * MB)
    table = RadixPageTable(memory, asid=9)
    tlb = TLBHierarchy.from_machine(MachineConfig())  # not registered
    va = 0x200000
    table.map(va, memory.allocator.alloc_pages(0), PageSize.SIZE_4K)
    tlb.fill(9, va, PageSize.SIZE_4K)
    with sanitizer.enabled():
        table.unmap(va)  # stale entry, but the TLB predates the sanitizer


# --------------------------------------------------------------------- #
# Probes are non-mutating
# --------------------------------------------------------------------- #

def test_tlb_probe_touches_no_stats_or_lru():
    tlb = TLBHierarchy.from_machine(MachineConfig())
    tlb.fill(1, 0x1000, PageSize.SIZE_4K)
    before = (tlb.l1.stats.hits, tlb.l1.stats.misses,
              tlb.stlb.stats.hits, tlb.stlb.stats.misses)
    assert tlb.probe(1, 0x1000, PageSize.SIZE_4K)
    assert not tlb.probe(1, 0x5000, PageSize.SIZE_4K)
    assert not tlb.probe(2, 0x1000, PageSize.SIZE_4K)
    after = (tlb.l1.stats.hits, tlb.l1.stats.misses,
             tlb.stlb.stats.hits, tlb.stlb.stats.misses)
    assert after == before


def test_pwc_peek_touches_no_stats():
    pwc = PageWalkCache(MachineConfig().pwc, top_level=4)
    pwc.fill(0x200000, 1, 0xABC000)
    before = (pwc.stats.hits, pwc.stats.misses)
    assert pwc.peek(0x200000, 1) == 0xABC000
    assert pwc.peek(0x40000000, 1) is None
    assert pwc.peek(0x200000, 9) is None  # level outside the PWC
    assert (pwc.stats.hits, pwc.stats.misses) == before


# --------------------------------------------------------------------- #
# Correct code stays clean under the sanitizer
# --------------------------------------------------------------------- #

def test_unmap_after_shootdown_is_clean():
    with sanitizer.enabled():
        memory = PhysicalMemory(16 * MB)
        table = RadixPageTable(memory, asid=3)
        tlb = TLBHierarchy.from_machine(MachineConfig())
        va = 0x400000
        table.map(va, memory.allocator.alloc_pages(0), PageSize.SIZE_4K)
        tlb.fill(3, va, PageSize.SIZE_4K)
        tlb.flush()  # the shootdown
        table.unmap(va)


def test_relocation_after_pwc_flush_is_clean():
    with sanitizer.enabled():
        memory = PhysicalMemory(16 * MB)
        table = RadixPageTable(memory)
        pwc = PageWalkCache(MachineConfig().pwc, top_level=4)
        va = 0x200000
        table.map(va, memory.allocator.alloc_pages(0), PageSize.SIZE_4K)
        pwc.fill(va, 1, frame_to_addr(table.table_frame(va, 1)))
        pwc.flush()
        table.relocate_table(va, 1,
                             memory.allocator.alloc_pages(0, movable=False))


def test_released_host_frames_can_back_another_guest():
    with sanitizer.enabled():
        domain = 1
        sanitizer.claim_frames(domain, 100, 4, 1)
        sanitizer.claim_frames(domain, 100, 4, 1)  # same owner: fine
        sanitizer.release_frames(domain, 100, 4)
        sanitizer.claim_frames(domain, 100, 4, 2)  # after release: fine
        sanitizer.claim_frames(2, 100, 4, 3)  # other domain: no conflict
        with pytest.raises(sanitizer.SanitizerError):
            sanitizer.claim_frames(domain, 102, 1, 3)


def test_native_simulation_is_clean_under_sanitizer():
    with sanitizer.enabled():
        config = SimConfig(scale=4096, nrefs=2000, seed=7, sanitize=True)
        sim = ENVIRONMENTS["native"]("GUPS", config)
        for design in ("vanilla", "dmt"):
            stats = sim.run(design)
            assert stats.walks > 0
