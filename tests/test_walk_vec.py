"""Oracle parity for the batched and native stage-2 replay engines.

``walk_vec.replay_walks_vec`` and ``kernels.replay_walks_native`` must
be bit-identical to the scalar ``replay_walks`` oracle: same
:class:`WalkStats` (including the step breakdown on the vec path), same
walker/fetcher counters, and the same memory-subsystem state (cache
sets + LRU order, PWC tables + thinning credits, the ECPT cuckoo-walk
cache) after the replay. Designs the engines do not support must
transparently fall back to the scalar path under ``engine="auto"``.
The parity cases run against both batched engines (the ``ENGINES``
parametrization); on the native engine the same assertions hold
whichever kernel backend (numba or pure Python) is active.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.registers import RegisterSet
from repro.hw.config import xeon_gold_6138
from repro.sim.kernels import HAVE_NUMBA
from repro.sim.machine import ENVIRONMENTS, SimConfig
from repro.sim.simulator import Stage1Cache, replay_walks
from repro.sim.sweep import run_group
from repro.sim.walk_vec import replay_walks_vec, supports

#: Both batched stage-2 engines; the parity suite runs each against the
#: scalar oracle.
ENGINES = ("vec", "native")

#: What ``engine="auto"`` resolves to in this process: the native
#: kernels when the compiled backend imported, else the vec engine.
AUTO_ENGINE = "native" if HAVE_NUMBA else "vec"

#: Every (environment, design) pair the batched engine vectorizes —
#: since the ECPT/FPT/Agile/ASAP planners landed, that is the full
#: design grid of all three environments.
SUPPORTED = [
    ("native", "vanilla"), ("native", "fpt"), ("native", "ecpt"),
    ("native", "asap"), ("native", "dmt"),
    ("virt", "vanilla"), ("virt", "shadow"), ("virt", "fpt"),
    ("virt", "ecpt"), ("virt", "agile"), ("virt", "asap"),
    ("virt", "dmt"), ("virt", "pvdmt"),
    ("nested", "vanilla"), ("nested", "pvdmt"),
]

#: DMT flavours and the register set their fetcher consults.
DMT_CASES = [
    ("native", "dmt", RegisterSet.NATIVE),
    ("virt", "dmt", RegisterSet.GUEST),
    ("virt", "pvdmt", RegisterSet.GUEST),
    ("nested", "pvdmt", RegisterSet.NESTED),
]

PARITY_CASES = [(env, design, thp, seed)
                for env, design in SUPPORTED
                for thp in (False, True)
                for seed in ((0, 3) if not thp else (0,))]


def _config(thp=False, seed=0):
    return SimConfig(scale=4096, nrefs=3000, thp=thp, seed=seed,
                     record_refs=True)


def _build_pair(env, design, config, workload="GUPS"):
    """Two independent machines + walkers with identical initial state."""
    env_cls = ENVIRONMENTS[env]
    sim_s, sim_v = env_cls(workload, config), env_cls(workload, config)
    assert np.array_equal(sim_s.tlb.miss_vas, sim_v.tlb.miss_vas)
    return sim_s.walker(design), sim_v.walker(design), sim_s.tlb.miss_vas


def _pwc_state(pwc):
    view = pwc.batch_view()
    return ([tuple(table.items()) for table in view.tables],
            list(view.credit), view.stats)


def _memsys_state(walker):
    """Everything replay mutates, in a directly comparable shape.

    Insertion order IS the LRU order of the set dicts and PWC tables,
    so snapshots keep it (plain dict equality would ignore it).
    """
    memsys = walker.memsys
    state = {
        "caches": [(cache.stats,
                    {idx: tuple(ways) for idx, ways in cache._sets.items()})
                   for cache in memsys.caches.levels],
        "memory_accesses": memsys.caches.memory_accesses,
        "pwc": _pwc_state(memsys.pwc),
        "guest_pwc": _pwc_state(memsys.guest_pwc),
    }
    npwc = memsys.nested_pwc
    view = npwc.batch_view()
    state["nested_pwc"] = (tuple(view.table.items()), npwc.credit, view.stats)
    return state


def _walker_counters(walker):
    return (walker.walks, walker.total_cycles, walker.fallbacks)


def _design_state(walker):
    """Mutable design-side state outside the memory subsystem.

    ECPT's cuckoo-walk cache is LRU-ordered like the cache sets, so its
    entry *order* is part of the snapshot; ASAP keeps a prefetch count
    plus a full inner radix walker whose counters the batched path must
    reproduce.
    """
    state = {}
    for attr in ("ecpt", "guest_ecpt", "host_ecpt"):
        tables = getattr(walker, attr, None)
        if tables is not None:
            cwc = tables.cwc
            state[attr] = (tuple(cwc._entries.items()),
                           cwc.hits, cwc.misses)
    if hasattr(walker, "prefetches"):
        state["prefetches"] = walker.prefetches
    inner = getattr(walker, "_walker", None)
    if inner is not None:
        state["inner"] = _walker_counters(inner)
    return state


def _assert_parity(walker_scalar, walker_vec, miss_vas, engine="vec"):
    if engine == "native":
        # The kernels carry no step tags (collection delegates to the
        # vec runners), so the native leg compares stats and the full
        # post-replay state without step collection.
        stats_scalar = replay_walks(walker_scalar, miss_vas,
                                    collect_steps=False, engine="scalar")
        stats_vec = replay_walks(walker_vec, miss_vas,
                                 collect_steps=False, engine="native")
    else:
        stats_scalar = replay_walks(walker_scalar, miss_vas,
                                    collect_steps=True, engine="scalar")
        stats_vec = replay_walks_vec(walker_vec, miss_vas,
                                     collect_steps=True)
    assert stats_scalar.engine == "scalar" and stats_vec.engine == engine
    assert stats_scalar == stats_vec
    assert stats_scalar.step_breakdown() == stats_vec.step_breakdown()
    assert _walker_counters(walker_scalar) == _walker_counters(walker_vec)
    assert _memsys_state(walker_scalar) == _memsys_state(walker_vec)
    assert _design_state(walker_scalar) == _design_state(walker_vec)
    for attr in ("fetcher", "fallback_walker"):
        scalar_part = getattr(walker_scalar, attr, None)
        vec_part = getattr(walker_vec, attr, None)
        assert (scalar_part is None) == (vec_part is None)
        if scalar_part is None:
            continue
        if attr == "fetcher":
            assert (scalar_part.hits, scalar_part.fallbacks) == \
                (vec_part.hits, vec_part.fallbacks)
        else:
            assert _walker_counters(scalar_part) == _walker_counters(vec_part)
    return stats_scalar


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("env,design,thp,seed", PARITY_CASES)
def test_vec_replay_matches_scalar_oracle(env, design, thp, seed, engine):
    config = _config(thp=thp, seed=seed)
    walker_scalar, walker_vec, miss_vas = _build_pair(env, design, config)
    assert supports(walker_scalar) and supports(walker_vec)
    stats = _assert_parity(walker_scalar, walker_vec, miss_vas,
                           engine=engine)
    assert stats.walks > 0 and stats.ref_count > 0


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("env,design,which", DMT_CASES)
def test_vec_replay_matches_scalar_on_dmt_fallbacks(env, design, which,
                                                    engine):
    """Prune the register file so fetcher misses exercise the fallback."""
    config = _config(seed=3)
    walker_scalar, walker_vec, miss_vas = _build_pair(
        env, design, config, workload="Redis")
    for walker in (walker_scalar, walker_vec):
        register_file = walker.fetcher.register_file
        registers = register_file.registers(which)
        kept = set(sorted(set(r.vma_base for r in registers))[::2])
        register_file.load(which, [r for r in registers
                                   if r.vma_base in kept])
    stats = _assert_parity(walker_scalar, walker_vec, miss_vas,
                           engine=engine)
    assert stats.fallbacks > 0, "pruning must force register misses"


@pytest.mark.parametrize("env,design,pte_share", [
    ("native", "vanilla", None),    # Table 3 default: single-set L1(pte)
    ("native", "vanilla", 0.25),    # wide L1(pte): the multi-set variant
    ("virt", "shadow", None),
])
def test_vec_chunk_runner_matches_scalar_without_step_collection(
        env, design, pte_share):
    """Without step collection radix-native replays take the fused
    chunk runner (inlined probe + hierarchy, counters flushed per
    chunk); a small chunk size exercises the flush boundaries and
    ``pte_share`` selects between its single-set-L1 and general
    variants."""
    config = _config(seed=1)
    if pte_share is not None:
        machine = replace(xeon_gold_6138(), pte_cache_share=pte_share)
        config = replace(config, machine=machine)
    walker_scalar, walker_vec, miss_vas = _build_pair(env, design, config)
    if pte_share is not None:
        l1 = walker_vec.memsys.caches.levels[0]
        assert l1.batch_view().num_sets > 1
    stats_scalar = replay_walks(walker_scalar, miss_vas, engine="scalar")
    stats_vec = replay_walks_vec(walker_vec, miss_vas, chunk=512)
    assert stats_vec.engine == "vec"
    assert stats_scalar == stats_vec
    assert _walker_counters(walker_scalar) == _walker_counters(walker_vec)
    assert _memsys_state(walker_scalar) == _memsys_state(walker_vec)


def test_auto_engine_falls_back_to_scalar():
    """Every design now has a planner, so the remaining genuine
    fallbacks are environmental — here a sanitized run, whose runtime
    hooks the batched engine would bypass. ``auto`` must fall back and
    record why; ``vec`` must refuse with the same reason."""
    from repro.analysis import sanitizer
    from repro.sim.walk_vec import unsupported_reason

    try:
        config = replace(_config(), sanitize=True)
        sim = ENVIRONMENTS["native"]("GUPS", config)
        walker = sim.walker("vanilla")
        assert not supports(walker)
        reason = unsupported_reason(walker)
        assert "sanitizer" in reason
        stats = replay_walks(walker, sim.tlb.miss_vas[:64], engine="auto")
        assert stats.engine == "scalar"
        assert stats.fallback_reason == reason
        with pytest.raises(ValueError, match="sanitizer"):
            replay_walks(sim.walker("vanilla"), sim.tlb.miss_vas[:64],
                         engine="vec")
    finally:
        sanitizer.reset()


def test_auto_engine_prefers_native_when_compiled():
    """``auto`` resolves to the native kernels only when the compiled
    backend imported; with the pure-Python backend it stays on vec (the
    uncompiled kernels are bit-identical but slower), and only an
    explicit ``engine="native"`` runs them."""
    sim = ENVIRONMENTS["native"]("GUPS", _config())
    stats = replay_walks(sim.walker("ecpt"), sim.tlb.miss_vas[:64],
                         engine="auto")
    assert stats.engine == AUTO_ENGINE
    if HAVE_NUMBA:
        assert stats.fallback_reason is None
    else:
        assert stats.fallback_reason is None  # vec path, nothing fell back


def test_explicit_native_records_backend_fallback_reason():
    """``engine="native"`` always runs the kernels; when numba is absent
    the stats must say the uncompiled backend ran (never silently
    masquerade as the compiled engine)."""
    from repro.sim.kernels import UNAVAILABLE_REASON

    sim = ENVIRONMENTS["native"]("GUPS", _config())
    stats = replay_walks(sim.walker("vanilla"), sim.tlb.miss_vas[:64],
                         engine="native")
    assert stats.engine == "native"
    if HAVE_NUMBA:
        assert stats.fallback_reason is None
    else:
        assert stats.fallback_reason == UNAVAILABLE_REASON
        assert "numba" in stats.fallback_reason


def test_native_step_collection_delegates_to_vec():
    """Step collection needs the interpreted runners' latency tags; the
    native engine must hand off and say so, bit-identically."""
    from repro.sim.kernels.replay import STEP_COLLECTION_REASON

    config = _config()
    walker_scalar, walker_native, miss_vas = _build_pair(
        "native", "vanilla", config)
    stats_scalar = replay_walks(walker_scalar, miss_vas,
                                collect_steps=True, engine="scalar")
    stats_native = replay_walks(walker_native, miss_vas,
                                collect_steps=True, engine="native")
    assert stats_native.engine == "native"
    assert stats_native.fallback_reason == STEP_COLLECTION_REASON
    assert stats_scalar == stats_native
    assert stats_scalar.step_breakdown() == stats_native.step_breakdown()
    assert _memsys_state(walker_scalar) == _memsys_state(walker_native)


def test_replay_rejects_unknown_engine():
    sim = ENVIRONMENTS["native"]("GUPS", _config())
    with pytest.raises(ValueError):
        replay_walks(sim.walker("vanilla"), sim.tlb.miss_vas[:8],
                     engine="turbo")


def test_stage1_cache_shares_miss_stream_across_environments():
    """One trace + TLB filter serves native, virt, and nested machines."""
    cache = Stage1Cache()
    config = _config()
    sims = [ENVIRONMENTS[env]("GUPS", config, stage1=cache)
            for env in ("native", "virt", "nested")]
    assert cache.computed == 1 and cache.reused == 2
    assert sims[0].stage1_reused is False
    assert all(sim.stage1_reused for sim in sims[1:])
    for sim in sims[1:]:
        assert np.array_equal(sims[0].tlb.miss_vas, sim.tlb.miss_vas)
        assert sim.stage1_seconds == sims[0].stage1_seconds > 0.0


def test_run_group_reports_stage1_reuse_telemetry(tmp_path):
    artifact_dir = str(tmp_path / "artifacts")
    task = (("native", "virt"), "GUPS", False, ("vanilla",),
            dict(scale=4096, nrefs=3000), None, artifact_dir)
    cells = run_group(task)
    assert [cell["env"] for cell in cells] == ["native", "virt"]
    assert [cell["stage1_reused"] for cell in cells] == [False, True]
    assert [cell["stage1_source"] for cell in cells] == ["computed", "memo"]
    assert cells[0]["stage1_seconds"] == cells[1]["stage1_seconds"] > 0.0
    assert all(cell["walk_engine"] == AUTO_ENGINE for cell in cells)
    assert all(cell["stage2_fallback_reason"] is None for cell in cells)
    # A rerun of the group (fresh Stage1Cache, as in a new worker or a
    # new process) serves stage 1 from the on-disk artifact cache.
    warm = run_group(task)
    assert warm[0]["stage1_source"] == "disk"
    assert warm[0]["mean_latency"] == cells[0]["mean_latency"]
