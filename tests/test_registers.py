"""Tests for the DMT register file (Figure 13)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import PAGE_SHIFT, PageSize
from repro.core.registers import (
    DMTRegister,
    DMTRegisterFile,
    REGISTERS_PER_SET,
    RegisterSet,
)


def reg(base_vpn=0x7F000, size_pages=1024, tea_pfn=0x100,
        page_size=PageSize.SIZE_4K, present=True, gtea_id=None):
    return DMTRegister(base_vpn, tea_pfn, size_pages, page_size, present, gtea_id)


class TestEncoding:
    def test_encode_fits_192_bits(self):
        raw = reg().encode()
        assert raw < 1 << 192

    def test_roundtrip(self):
        original = reg(gtea_id=7, page_size=PageSize.SIZE_2M, present=False)
        decoded = DMTRegister.decode(original.encode(), paravirt=True)
        assert decoded == original

    def test_non_pv_decode_drops_gtea(self):
        decoded = DMTRegister.decode(reg(gtea_id=7).encode(), paravirt=False)
        assert decoded.gtea_id is None

    def test_field_overflow_rejected(self):
        with pytest.raises(ValueError):
            reg(base_vpn=1 << 52).encode()
        with pytest.raises(ValueError):
            reg(tea_pfn=1 << 52).encode()
        with pytest.raises(ValueError):
            reg(size_pages=1 << 44).encode()

    @given(
        st.integers(0, (1 << 52) - 1),
        st.integers(0, (1 << 52) - 1),
        st.integers(1, (1 << 44) - 1),
        st.sampled_from(list(PageSize)),
        st.booleans(),
        st.integers(0, 4095),
    )
    @settings(max_examples=100)
    def test_roundtrip_property(self, vpn, pfn, size, psize, present, gtea):
        original = DMTRegister(vpn, pfn, size, psize, present, gtea)
        assert DMTRegister.decode(original.encode(), paravirt=True) == original


class TestTranslationArithmetic:
    def test_figure7_pte_address(self):
        # VMA at 0x7F000*4K, TEA at frame 0x100: page i's PTE is at
        # TEA_base + i*8 (Figure 7).
        register = reg()
        va = register.vma_base + 5 * 4096 + 0x123
        assert register.pte_addr(va) == (0x100 << PAGE_SHIFT) + 5 * 8

    def test_huge_page_indexing(self):
        register = reg(page_size=PageSize.SIZE_2M, base_vpn=0x200, size_pages=64)
        va = register.vma_base + 3 * (2 << 20) + 0x5555
        assert register.pte_addr(va) == (0x100 << PAGE_SHIFT) + 3 * 8

    def test_pte_addr_with_override_base(self):
        # pvDMT resolves the base through the gTEA table instead
        register = reg()
        va = register.vma_base + 4096
        assert register.pte_addr(va, tea_base_addr=0xAB000) == 0xAB000 + 8

    def test_covers(self):
        register = reg(base_vpn=0x100, size_pages=2)
        assert register.covers(0x100 << 12)
        assert register.covers((0x102 << 12) - 1)
        assert not register.covers(0x102 << 12)
        with pytest.raises(ValueError):
            register.pte_addr(0x102 << 12)


class TestRegisterFile:
    def test_three_sets_of_sixteen(self):
        rf = DMTRegisterFile()
        assert REGISTERS_PER_SET == 16
        for which in RegisterSet:
            assert rf.registers(which) == []

    def test_load_and_lookup(self):
        rf = DMTRegisterFile()
        rf.load(RegisterSet.NATIVE, [reg()])
        hits = rf.lookup(RegisterSet.NATIVE, 0x7F000 << 12)
        assert len(hits) == 1
        assert rf.lookup(RegisterSet.GUEST, 0x7F000 << 12) == []

    def test_overflow_rejected(self):
        rf = DMTRegisterFile()
        with pytest.raises(ValueError):
            rf.load(RegisterSet.NATIVE, [reg()] * 17)

    def test_present_bit_gates_lookup(self):
        rf = DMTRegisterFile()
        rf.load(RegisterSet.NATIVE, [reg(present=False)])
        assert not rf.covered(RegisterSet.NATIVE, 0x7F000 << 12)

    def test_multi_size_parallel_lookup(self):
        # a VMA with both 4K and 2M TEAs has one register per size (§4.4)
        rf = DMTRegisterFile()
        rf.load(RegisterSet.NATIVE, [
            reg(base_vpn=0x40000000 >> 12, size_pages=1024),
            reg(base_vpn=0x40000000 >> 21, size_pages=2,
                page_size=PageSize.SIZE_2M, tea_pfn=0x200),
        ])
        assert len(rf.lookup(RegisterSet.NATIVE, 0x40000000)) == 2

    def test_reload_replaces_set(self):
        rf = DMTRegisterFile()
        rf.load(RegisterSet.NATIVE, [reg()])
        rf.load(RegisterSet.NATIVE, [reg(base_vpn=0x999)])
        assert len(rf.registers(RegisterSet.NATIVE)) == 1
        assert rf.reloads == 2

    def test_clear(self):
        rf = DMTRegisterFile()
        rf.load(RegisterSet.GUEST, [reg()])
        rf.clear(RegisterSet.GUEST)
        assert rf.registers(RegisterSet.GUEST) == []
