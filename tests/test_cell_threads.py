"""Two-level executor and stage-2 result cache (DESIGN.md §15).

Thread parity: replaying a machine's designs with ``cell_threads=N``
must be bit-identical to sequential replay — same :class:`WalkStats`
*and* same end state of everything replay mutates (cache sets, PWCs,
the ECPT CWC, ASAP's inner walker), across all fifteen supported
(environment, design) pairs.

Result cache: a warm sweep over a shared artifact directory must serve
every stage-2 cell from disk (zero replays) and emit a byte-identical
document; corrupted payloads evict and recompute; bumping the cost
model version invalidates every cached result.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.sim.artifacts import ArtifactCache
from repro.sim.machine import ENVIRONMENTS, SimConfig
from repro.sim.simulator import Stage1Cache
from repro.sim.sweep import (
    effective_split,
    grid_tasks,
    run_design_stats,
    run_group,
    run_sweep,
)

from tests.test_walk_vec import _design_state, _memsys_state

CONFIG = dict(scale=4096, nrefs=2500, seed=3)

#: All fifteen supported (environment, design) pairs.
ALL_PAIRS = [(env, design)
             for env, env_cls in sorted(ENVIRONMENTS.items())
             for design in env_cls.designs]


def _run_cells(sim, designs, cell_threads):
    """{design: (stats, walker)} via the prepare/execute/commit pipeline.

    Mirrors ``run_design_stats`` but keeps each cell's walker so tests
    can compare the mutated end state, not just the returned stats.
    """
    from concurrent.futures import ThreadPoolExecutor

    out = {}
    if cell_threads <= 1:
        for design in designs:
            prep = sim.prepare_run(design)
            out[design] = (prep.commit(prep.execute()), prep.walker)
        return out
    with ThreadPoolExecutor(max_workers=cell_threads) as executor:
        staged = []
        for design in designs:
            prep = sim.prepare_run(design)
            if prep.threadable and not prep.ready:
                staged.append((design, prep,
                               executor.submit(prep.execute)))
            else:
                prep.commit(prep.execute())
                staged.append((design, prep, None))
        for design, prep, future in staged:
            stats = (prep.commit(future.result()) if future is not None
                     else prep.stats)
            out[design] = (stats, prep.walker)
    return out


def test_thread_parity_all_pairs():
    """cell_threads=4 replays all 15 pairs bit-identically to 1."""
    config = SimConfig(**CONFIG)
    stage1 = Stage1Cache()
    for env, env_cls in sorted(ENVIRONMENTS.items()):
        designs = list(env_cls.designs)
        seq = _run_cells(env_cls("GUPS", config, stage1=stage1),
                         designs, cell_threads=1)
        par = _run_cells(env_cls("GUPS", config, stage1=stage1),
                         designs, cell_threads=4)
        for design in designs:
            stats_seq, walker_seq = seq[design]
            stats_par, walker_par = par[design]
            assert stats_seq == stats_par, f"{env}/{design}: stats diverged"
            assert _memsys_state(walker_seq) == _memsys_state(walker_par), \
                f"{env}/{design}: memory-subsystem end state diverged"
            assert _design_state(walker_seq) == _design_state(walker_par), \
                f"{env}/{design}: design end state diverged"
    assert len(ALL_PAIRS) == 15


@pytest.mark.parametrize("env,design", [("native", "vanilla"),
                                        ("native", "dmt"),
                                        ("virt", "pvdmt")])
def test_prepare_replay_native_matches_scalar_oracle(env, design):
    """prepare_replay_native().execute() off-thread == the scalar oracle."""
    from concurrent.futures import ThreadPoolExecutor

    from repro.sim.kernels import prepare_replay_native
    from repro.sim.simulator import replay_walks

    config = SimConfig(**CONFIG)
    stage1 = Stage1Cache()
    oracle_sim = ENVIRONMENTS[env]("GUPS", config, stage1=stage1)
    oracle_walker = oracle_sim.walker(design)
    oracle = replay_walks(oracle_walker, oracle_sim.tlb.miss_vas,
                          engine="scalar")

    sim = ENVIRONMENTS[env]("GUPS", config, stage1=stage1)
    walker = sim.walker(design)
    prepared = prepare_replay_native(walker, sim.tlb.miss_vas)
    with ThreadPoolExecutor(max_workers=1) as pool:
        stats = pool.submit(prepared.execute).result()
    # engine/fallback_reason are compare=False provenance fields; the
    # replayed numbers and the mutated machine state are the contract.
    assert stats == oracle
    assert _memsys_state(walker) == _memsys_state(oracle_walker)
    assert _design_state(walker) == _design_state(oracle_walker)


def test_run_design_stats_matches_sim_run():
    config = SimConfig(**CONFIG)
    stage1 = Stage1Cache()
    env_cls = ENVIRONMENTS["virt"]
    designs = list(env_cls.designs)
    # The oracle is one machine replaying designs in order — cell
    # results legitimately depend on earlier cells' lazy first-touch
    # population of shared structures, which is exactly why prepares
    # stay sequential on the two-level executor.
    oracle_sim = env_cls("GUPS", config, stage1=stage1)
    oracle = {d: oracle_sim.run(d) for d in designs}
    threaded = run_design_stats(env_cls("GUPS", config, stage1=stage1),
                                designs, cell_threads=4)
    assert threaded == oracle


def _stable(cells):
    from repro.sim.jobs import stable_cells

    return stable_cells(cells)


def test_run_group_accepts_legacy_7_tuple_and_cell_threads():
    legacy = (("native", "virt"), "GUPS", False, ("vanilla", "dmt"),
              dict(CONFIG), None, None)
    threaded = legacy + (4,)
    cells_legacy = run_group(legacy)
    cells_threaded = run_group(threaded)
    assert _stable(cells_threaded) == _stable(cells_legacy)
    for cell in cells_threaded:
        assert cell["stage2_source"] == "computed"
        assert cell["group_seconds"] > 0.0


def test_grid_tasks_and_split_carry_cell_threads():
    task = grid_tasks(("native",), ["GUPS"], cell_threads=3)[0]
    assert task[7] == 3
    assert grid_tasks(("native",), ["GUPS"])[0][7] == 1
    assert effective_split(4, 10, 2) == (4, 2)
    assert effective_split(8, 2, None) == (2, 1)


# --------------------------------------------------------------------- #
# stage-2 result cache
# --------------------------------------------------------------------- #

def _sim(artifact_dir, env="native", **overrides):
    kwargs = dict(CONFIG)
    kwargs.update(overrides)
    stage1 = Stage1Cache(artifacts=ArtifactCache(str(artifact_dir)))
    return ENVIRONMENTS[env]("GUPS", SimConfig(**kwargs), stage1=stage1)


def test_result_cache_cold_then_warm(tmp_path, monkeypatch):
    cold = _sim(tmp_path)
    stats_cold = cold.run("dmt")
    assert cold.stage2_source("dmt") == "computed"

    warm = _sim(tmp_path)

    def explode(*args, **kwargs):
        raise AssertionError("warm run must not replay stage 2")

    monkeypatch.setattr("repro.sim.machine.replay_walks", explode)
    stats_warm = warm.run("dmt")
    assert warm.stage2_source("dmt") == "disk"
    assert stats_warm == stats_cold
    assert stats_warm.engine == stats_cold.engine
    assert stats_warm.step_cycles == stats_cold.step_cycles
    assert warm._result_artifacts().result_hits >= 1


def test_result_cache_key_separates_designs_and_config(tmp_path):
    sim = _sim(tmp_path)
    sim.run("dmt")
    other_design = _sim(tmp_path)
    other_design.run("vanilla")
    assert other_design.stage2_source("vanilla") == "computed"
    other_seed = _sim(tmp_path, seed=4)
    other_seed.run("dmt")
    assert other_seed.stage2_source("dmt") == "computed"


def test_result_cache_invalidated_by_cost_model_bump(tmp_path, monkeypatch):
    _sim(tmp_path).run("dmt")
    monkeypatch.setattr("repro.core.costs.COST_MODEL_VERSION", 999)
    bumped = _sim(tmp_path)
    bumped.run("dmt")
    assert bumped.stage2_source("dmt") == "computed"


def test_result_cache_evicts_corrupted_payload(tmp_path):
    sim = _sim(tmp_path)
    stats = sim.run("dmt")
    artifacts = sim._result_artifacts()
    key = sim._stage2_key("dmt", False)
    from repro.sim.artifacts import digest

    key_digest = digest("stage2", key)
    sidecar_path = [p for p in tmp_path.rglob("*.json")
                    if key_digest in p.name]
    assert len(sidecar_path) == 1
    sidecar_path = sidecar_path[0]
    doc = json.loads(sidecar_path.read_text())
    doc["payload"]["stats"]["total_cycles"] += 1
    sidecar_path.write_text(json.dumps(doc))

    assert artifacts.load_result("stage2", key) is None
    assert not sidecar_path.exists(), "corrupt entry must be evicted"
    recomputed = _sim(tmp_path)
    assert recomputed.run("dmt") == stats
    assert recomputed.stage2_source("dmt") == "computed"


def test_sanitize_bypasses_result_cache(tmp_path):
    _sim(tmp_path).run("dmt")
    sanitized = _sim(tmp_path, sanitize=True)
    sanitized.run("dmt")
    assert sanitized.stage2_source("dmt") == "computed"


def test_warm_sweep_serves_stage2_from_disk_byte_identical(tmp_path):
    kwargs = dict(envs=("native",), workloads=["GUPS"],
                  designs=("vanilla", "dmt", "ecpt"), workers=1,
                  artifact_dir=str(tmp_path / "cache"), **CONFIG)
    cold = run_sweep(cell_threads=1, **kwargs)
    warm = run_sweep(cell_threads=2, **kwargs)
    assert [c["stage2_source"] for c in cold["cells"]] == ["computed"] * 3
    assert [c["stage2_source"] for c in warm["cells"]] == ["disk"] * 3
    blob_cold = json.dumps(_stable(cold["cells"]), sort_keys=True)
    blob_warm = json.dumps(_stable(warm["cells"]), sort_keys=True)
    assert blob_warm == blob_cold, \
        "warm sweep must emit a byte-identical stable document"
    assert warm["meta"]["cell_threads"] == 2
    assert warm["meta"]["parallelism"] == 2


# --------------------------------------------------------------------- #
# warm stage-1 artifacts stay memory-mapped (regression pin)
# --------------------------------------------------------------------- #

def test_warm_run_miss_stream_is_memmapped(tmp_path):
    """The warm path must mmap cached traces/miss streams, not copy.

    ``Stage1Cache.fetch`` and ``_generate_trace`` both load with
    ``mmap=True``; this pins that so a plain ``np.load`` regression
    (whole-array copy per warm run) can't sneak back in.
    """
    _sim(tmp_path).run("vanilla")  # populate the artifact cache
    warm = _sim(tmp_path)
    assert warm.stage1_source == "disk"
    backing = warm.tlb.miss_vas
    seen_memmap = isinstance(backing, np.memmap)
    while isinstance(backing, np.ndarray) and backing.base is not None:
        backing = backing.base
        seen_memmap = seen_memmap or isinstance(backing, np.memmap)
    assert seen_memmap, \
        "warm miss stream must stay a view of the on-disk memmap"
