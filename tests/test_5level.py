"""Tests for 5-level paging support (§2.1.1)."""

import pytest

from repro.sim import NativeSimulation, SimConfig, VirtSimulation

CFG5 = SimConfig(scale=4096, nrefs=4000, levels=5, record_refs=True)
CFG4 = SimConfig(scale=4096, nrefs=4000, levels=4, record_refs=True)


@pytest.fixture(scope="module")
def native5():
    return NativeSimulation("GUPS", CFG5)


@pytest.fixture(scope="module")
def virt5():
    return VirtSimulation("GUPS", CFG5)


class TestFiveLevelWalks:
    def test_native_cold_walk_is_five_references(self, native5):
        walker = native5.walker("vanilla")
        result = walker.translate(native5.tlb.miss_vas[0])
        assert [r.tag for r in result.refs] == ["L5", "L4", "L3", "L2", "L1"]

    def test_nested_cold_walk_is_35_references(self, virt5):
        """§2.1.2: 'With 5 levels, it takes up to 35 memory references.'"""
        walker = virt5.walker("vanilla")
        result = walker.translate(virt5.tlb.miss_vas[0])
        assert len(result.refs) == 35

    def test_translations_remain_correct(self, virt5):
        for design in ("vanilla", "dmt", "pvdmt"):
            walker = virt5.walker(design)
            for va in virt5.tlb.miss_vas[:50]:
                gpa, _ = virt5.process.page_table.translate(va)
                assert walker.translate(va).pa == virt5.vm.gpa_to_hpa(gpa), design


class TestDMTDepthInvariance:
    def test_dmt_still_one_reference(self, native5):
        walker = native5.walker("dmt")
        result = walker.translate(native5.tlb.miss_vas[0])
        assert not result.fallback
        assert len(result.refs) == 1, \
            "DMT fetches the leaf directly regardless of tree depth (§3)"

    def test_pvdmt_still_two_references(self, virt5):
        walker = virt5.walker("pvdmt")
        result = walker.translate(virt5.tlb.miss_vas[0])
        assert not result.fallback
        assert result.sequential_steps == 2

    def test_dmt_advantage_grows_with_depth(self):
        lat = {}
        for levels, cfg in ((4, CFG4), (5, CFG5)):
            sim = NativeSimulation("GUPS", cfg)
            lat[levels] = (sim.run("vanilla").mean_latency,
                           sim.run("dmt").mean_latency)
        speedup4 = lat[4][0] / lat[4][1]
        speedup5 = lat[5][0] / lat[5][1]
        assert speedup5 >= speedup4 * 0.95
        # the baseline walk itself got slower with the extra level
        assert lat[5][0] >= lat[4][0] * 0.98
