"""Tests for page sharing: fork/COW and shared mappings under DMT."""

import pytest

from repro.arch import PAGE_SIZE, PageSize
from repro.core.dmt_os import DMTLinux
from repro.core.fetcher import DMTFetcher
from repro.kernel.kernel import Kernel
from repro.kernel.page_table import PTE_WRITE
from repro.kernel.sharing import FrameRefs, SharingManager

MB = 1 << 20


@pytest.fixture
def kernel():
    return Kernel(memory_bytes=256 * MB)


@pytest.fixture
def sharing(kernel):
    return SharingManager(kernel)


class TestFrameRefs:
    def test_base_count_is_one(self):
        refs = FrameRefs()
        assert refs.get(42) == 1
        assert not refs.is_shared(42)

    def test_inc_dec(self):
        refs = FrameRefs()
        assert refs.inc(42) == 2
        assert refs.is_shared(42)
        assert refs.dec(42) == 1
        assert not refs.is_shared(42)
        assert refs.dec(42) == 0


class TestForkCOW:
    def test_fork_shares_frames(self, kernel, sharing):
        parent = kernel.create_process("parent")
        vma = parent.mmap(2 * MB, populate=True)
        free_before = kernel.memory.allocator.free_frames
        child = sharing.fork(parent)
        # no data frames copied at fork time (only the child's table pages)
        assert free_before - kernel.memory.allocator.free_frames <= 8
        for offset in (0, PAGE_SIZE, vma.size - 1):
            assert child.page_table.translate(vma.start + offset)[0] == \
                parent.page_table.translate(vma.start + offset)[0]

    def test_fork_write_protects_both_sides(self, kernel, sharing):
        parent = kernel.create_process("parent")
        vma = parent.mmap(MB, populate=True)
        child = sharing.fork(parent)
        for proc in (parent, child):
            _, pte, _ = proc.page_table.lookup(vma.start)
            assert not pte & PTE_WRITE

    def test_cow_splits_on_write(self, kernel, sharing):
        parent = kernel.create_process("parent")
        vma = parent.mmap(MB, populate=True)
        child = sharing.fork(parent)
        before_pa = parent.page_table.translate(vma.start)[0]
        child_pa = sharing.write(child, vma.start)
        assert child_pa != before_pa, "the writer gets a private copy"
        assert parent.page_table.translate(vma.start)[0] == before_pa
        assert sharing.cow_faults == 1

    def test_last_owner_write_restores_permission_in_place(self, kernel, sharing):
        parent = kernel.create_process("parent")
        vma = parent.mmap(MB, populate=True)
        child = sharing.fork(parent)
        sharing.write(child, vma.start)       # child split away
        parent_pa = sharing.write(parent, vma.start)
        # parent was the last owner: no copy, frame stays
        assert parent_pa == parent.page_table.translate(vma.start)[0]
        _, pte, _ = parent.page_table.lookup(vma.start)
        assert pte & PTE_WRITE

    def test_untouched_pages_stay_shared(self, kernel, sharing):
        parent = kernel.create_process("parent")
        vma = parent.mmap(MB, populate=True)
        child = sharing.fork(parent)
        sharing.write(child, vma.start)  # only page 0 splits
        assert child.page_table.translate(vma.start + PAGE_SIZE)[0] == \
            parent.page_table.translate(vma.start + PAGE_SIZE)[0]


class TestSharedMappings:
    def test_share_mapping_visible_both_ways(self, kernel, sharing):
        a = kernel.create_process("a")
        src = a.mmap(MB, populate=True)
        b = kernel.create_process("b")
        dst = sharing.share_mapping(a, src, b)
        for offset in (0, MB - 1):
            assert a.page_table.translate(src.start + offset)[0] == \
                b.page_table.translate(dst.start + offset)[0]

    def test_release_keeps_frames_until_last_owner(self, kernel, sharing):
        a = kernel.create_process("a")
        src = a.mmap(MB, populate=True)
        b = kernel.create_process("b")
        dst = sharing.share_mapping(a, src, b)
        frame_pa = a.page_table.translate(src.start)[0]
        sharing.release_range(b, dst.start, dst.size)
        # a's view still intact
        assert a.page_table.translate(src.start)[0] == frame_pa


class TestSharingUnderDMT:
    def test_forked_child_gets_its_own_teas(self, kernel, sharing):
        dmt = DMTLinux(kernel)
        parent = kernel.create_process("parent")
        vma = parent.mmap(4 * MB, populate=True)
        child = sharing.fork(parent)
        p_tea = dmt.manager_for(parent).clusters[0].all_teas()[0]
        c_tea = dmt.manager_for(child).clusters[0].all_teas()[0]
        assert p_tea.base_frame != c_tea.base_frame, \
            "PTEs are per-process even when frames are shared (§3)"

    def test_dmt_fetch_correct_for_both_processes(self, kernel, sharing):
        dmt = DMTLinux(kernel)
        parent = kernel.create_process("parent")
        vma = parent.mmap(4 * MB, populate=True)
        child = sharing.fork(parent)
        fetcher = DMTFetcher(dmt.register_file)
        for proc in (parent, child):
            kernel.context_switch(proc)
            result = fetcher.translate_native(
                vma.start + 0x123, kernel.memory.read_word,
                lambda a, t, g: None)
            assert result.pa == proc.page_table.translate(vma.start + 0x123)[0]
            assert result.references == 1

    def test_cow_write_keeps_dmt_consistent(self, kernel, sharing):
        dmt = DMTLinux(kernel)
        parent = kernel.create_process("parent")
        vma = parent.mmap(4 * MB, populate=True)
        child = sharing.fork(parent)
        new_pa = sharing.write(child, vma.start)
        kernel.context_switch(child)
        fetcher = DMTFetcher(dmt.register_file)
        result = fetcher.translate_native(vma.start, kernel.memory.read_word,
                                          lambda a, t, g: None)
        assert result.pa == new_pa, \
            "the split PTE is visible to the fetcher immediately (no copies)"
