"""Tests for the Elastic Cuckoo Page Tables substrate and walkers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import PAGE_SIZE, PageSize
from repro.hw.config import xeon_gold_6138
from repro.kernel.kernel import Kernel
from repro.kernel.page_table import make_pte, pte_frame
from repro.mem.physmem import PhysicalMemory
from repro.translation.base import MemorySubsystem
from repro.translation.ecpt import (
    CuckooTable,
    ECPTNativeWalker,
    ECPTNestedWalker,
    ElasticCuckooPageTables,
)
from repro.virt.hypervisor import Hypervisor

MB = 1 << 20
BASE = 0x7F00_0000_0000


@pytest.fixture
def memory():
    return PhysicalMemory(256 * MB)


@pytest.fixture
def table(memory):
    return CuckooTable(memory, PageSize.SIZE_4K, initial_buckets=64)


class TestCuckooTable:
    def test_insert_lookup(self, table):
        table.insert(100, make_pte(7))
        addr, pte = table.lookup(100)
        assert pte_frame(pte) == 7
        assert table.lookup(101) is None

    def test_update_in_place(self, table):
        table.insert(100, make_pte(7))
        table.insert(100, make_pte(9))
        assert pte_frame(table.lookup(100)[1]) == 9

    def test_remove(self, table):
        table.insert(100, make_pte(7))
        assert table.remove(100)
        assert table.lookup(100) is None
        assert not table.remove(100)

    def test_grouped_vpns_share_a_line(self, table):
        # ECPT packs 8 consecutive VPNs per 64-byte bucket line
        table.insert(800, make_pte(1))
        table.insert(801, make_pte(2))
        addr0 = table.lookup(800)[0]
        addr1 = table.lookup(801)[0]
        assert addr0 >> 6 == addr1 >> 6
        assert addr1 - addr0 == 8

    def test_candidate_addrs_one_per_way(self, table):
        addrs = table.candidate_addrs(1234)
        assert len(addrs) == table.ways
        assert len(set(a >> 6 for a in addrs)) == table.ways

    def test_elastic_resize_preserves_contents(self, memory):
        table = CuckooTable(memory, PageSize.SIZE_4K, initial_buckets=8)
        entries = {vpn: make_pte(vpn + 1) for vpn in range(0, 4096, 8)}
        for vpn, pte in entries.items():
            table.insert(vpn, pte)
        assert table.resizes > 0, "the table must have grown elastically"
        for vpn, pte in entries.items():
            assert table.lookup(vpn)[1] == pte

    def test_cuckoo_relocation_under_load(self, memory):
        table = CuckooTable(memory, PageSize.SIZE_4K, initial_buckets=32)
        # fill to a load where kicks must happen but resize may not
        for vpn in range(0, 60 * 8, 8):
            table.insert(vpn, make_pte(vpn))
        for vpn in range(0, 60 * 8, 8):
            assert table.lookup(vpn) is not None

    @given(st.dictionaries(st.integers(0, 1 << 20), st.integers(1, 1 << 30),
                           min_size=1, max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_dict_equivalence(self, mapping):
        memory = PhysicalMemory(64 * MB)
        table = CuckooTable(memory, PageSize.SIZE_4K, initial_buckets=16)
        for vpn, frame in mapping.items():
            table.insert(vpn, make_pte(frame & ((1 << 40) - 1)))
        for vpn, frame in mapping.items():
            assert pte_frame(table.lookup(vpn)[1]) == frame & ((1 << 40) - 1)


class TestECPTSet:
    def test_translate_multiple_sizes(self, memory):
        ecpt = ElasticCuckooPageTables(memory)
        ecpt.map(BASE, 100, PageSize.SIZE_4K)
        ecpt.map(BASE + (1 << 21), 512, PageSize.SIZE_2M)
        assert ecpt.translate(BASE) == (100 * PAGE_SIZE, PageSize.SIZE_4K)
        pa, size = ecpt.translate(BASE + (1 << 21) + 0x123)
        assert size == PageSize.SIZE_2M
        assert pa == 512 * PAGE_SIZE + 0x123

    def test_load_from_radix_mirror(self, memory):
        kernel = Kernel(memory=memory)
        proc = kernel.create_process()
        vma = proc.mmap(4 * MB, populate=True)
        ecpt = ElasticCuckooPageTables(memory)
        assert ecpt.load_from_radix(proc.page_table) == 1024
        for offset in (0, PAGE_SIZE, vma.size - 1):
            assert ecpt.translate(vma.start + offset) == \
                proc.page_table.translate(vma.start + offset)

    def test_candidate_probes_span_sizes_and_ways(self, memory):
        ecpt = ElasticCuckooPageTables(memory)
        probes = ecpt.candidate_probes(BASE)
        assert len(probes) == 9  # 3 sizes x 3 ways

    def test_unmap(self, memory):
        ecpt = ElasticCuckooPageTables(memory)
        ecpt.map(BASE, 100, PageSize.SIZE_4K)
        assert ecpt.unmap(BASE, PageSize.SIZE_4K)
        assert ecpt.translate(BASE) is None


class TestECPTWalkers:
    def test_native_one_sequential_step(self, memory):
        kernel = Kernel(memory=memory)
        proc = kernel.create_process()
        vma = proc.mmap(4 * MB, populate=True)
        ecpt = ElasticCuckooPageTables(memory)
        ecpt.load_from_radix(proc.page_table)
        walker = ECPTNativeWalker(ecpt, MemorySubsystem(xeon_gold_6138()))
        result = walker.translate(vma.start + 0x123)
        assert result.pa == proc.page_table.translate(vma.start + 0x123)[0]
        assert result.sequential_steps <= 1 or len(result.refs) == 1

    def test_nested_three_sequential_steps(self):
        host = Kernel(memory_bytes=512 * MB)
        vm = Hypervisor(host).create_vm(128 * MB)
        proc = vm.guest_kernel.create_process()
        vma = proc.mmap(4 * MB, populate=True)
        guest_ecpt = ElasticCuckooPageTables(vm.guest_memory)
        guest_ecpt.load_from_radix(proc.page_table)
        vm.back_range(0, vm.memory_bytes)
        host_ecpt = ElasticCuckooPageTables(host.memory)
        host_ecpt.load_from_radix(vm.ept)
        walker = ECPTNestedWalker(guest_ecpt, host_ecpt, vm,
                                  MemorySubsystem(xeon_gold_6138()))
        result = walker.translate(vma.start + 0x321)
        gpa, _ = proc.page_table.translate(vma.start + 0x321)
        assert result.pa == vm.gpa_to_hpa(gpa)
        # critical path: three sequential fetches (the "3 sequential,
        # up to 81 parallel" of §3.1); non-grouped refs are the critical ones
        critical = [r for r in result.refs if r.group < 0]
        assert len(critical) == 3
