"""Tests for TEAs and the TEA manager (§4.3)."""

import pytest

from repro.arch import PAGE_SIZE, PageSize
from repro.core.tea import TEA, TEAManager, granule_shift
from repro.kernel.page_table import RadixPageTable
from repro.mem.buddy import BuddyAllocator, ContiguityError
from repro.mem.fragmentation import fragment
from repro.mem.physmem import PhysicalMemory

MB = 1 << 20
BASE = 0x7F00_0000_0000  # 2 MB- and 1 GB-aligned


@pytest.fixture
def manager():
    return TEAManager(BuddyAllocator(1 << 14))


class TestGranularity:
    def test_granule_shifts(self):
        # one 4 KB leaf-table page covers 2 MB of VA (512 PTEs), one L2
        # table page covers 1 GB
        assert 1 << granule_shift(PageSize.SIZE_4K) == 2 * MB
        assert 1 << granule_shift(PageSize.SIZE_2M) == 1 << 30


class TestCreate:
    def test_create_sizes_tea_by_span(self, manager):
        teas = manager.create(BASE, BASE + 8 * MB, PageSize.SIZE_4K)
        assert len(teas) == 1
        assert teas[0].npages == 4  # 8 MB / 2 MB per table page

    def test_unaligned_span_rounds_to_granules(self, manager):
        teas = manager.create(BASE + 4096, BASE + 2 * MB + 4096, PageSize.SIZE_4K)
        assert teas[0].va_start == BASE
        assert teas[0].npages == 2

    def test_tea_is_orders_of_magnitude_smaller_than_vma(self, manager):
        # §4.2.2: "a 4KB page of TEA covers 2MB VMA"
        teas = manager.create(BASE, BASE + 64 * MB, PageSize.SIZE_4K)
        assert teas[0].nbytes * 512 == 64 * MB

    def test_owned_granules_are_trimmed(self, manager):
        manager.create(BASE, BASE + 4 * MB, PageSize.SIZE_4K)
        teas = manager.create(BASE + 2 * MB, BASE + 8 * MB, PageSize.SIZE_4K)
        # granules [BASE, BASE+4M) already owned -> new TEA starts at +4M
        assert teas[0].va_start == BASE + 4 * MB

    def test_fully_owned_span_yields_nothing(self, manager):
        manager.create(BASE, BASE + 4 * MB, PageSize.SIZE_4K)
        assert manager.create(BASE, BASE + 4 * MB, PageSize.SIZE_4K) == []


class TestSplitOnFragmentation:
    def test_fragmented_memory_forces_split(self):
        buddy = BuddyAllocator(1 << 14)
        # leave only scattered pairs of free frames
        held = [buddy.alloc_pages(0, movable=False) for _ in range(1 << 14)]
        for i in range(0, len(held), 8):
            buddy.free_pages(held[i])
            buddy.free_pages(held[i + 1])  # buddies coalesce to order-1
        manager = TEAManager(buddy)
        teas = manager.create(BASE, BASE + 16 * MB, PageSize.SIZE_4K)
        # request was 8 contiguous pages; only runs of 2 exist
        assert len(teas) == 4
        assert manager.splits >= 2
        assert sum(t.npages for t in teas) == 8
        # coverage is exact and ordered
        spans = sorted((t.va_start, t.va_end) for t in teas)
        assert spans[0][0] == BASE and spans[-1][1] == BASE + 16 * MB

    def test_single_granule_failure_raises(self):
        buddy = BuddyAllocator(64)
        for _ in range(64):
            buddy.alloc_pages(0, movable=False)  # exhaust memory entirely
        manager = TEAManager(buddy)
        with pytest.raises(ContiguityError):
            manager.create(BASE, BASE + 2 * MB, PageSize.SIZE_4K)


class TestAddressArithmetic:
    def test_pte_addr_matches_radix_leaf(self):
        memory = PhysicalMemory(64 * MB)
        manager = TEAManager(memory.allocator)
        tea = manager.create(BASE, BASE + 4 * MB, PageSize.SIZE_4K)[0]

        class Policy:
            def place_table(self, level, va, page_size):
                return manager.frame_for_table(va, PageSize.SIZE_4K) \
                    if level == 1 else None

            def table_released(self, frame, level, va):
                return manager.owns_frame(frame)

        table = RadixPageTable(memory, placement=Policy())
        for i in (0, 1, 511, 512, 1023):
            va = BASE + i * PAGE_SIZE
            slot = table.map(va, 100 + i)
            assert slot == tea.pte_addr(va), (
                "TEA arithmetic must land on the identical PTE the radix "
                "tree uses — DMT keeps a single copy of each PTE (§3)"
            )

    def test_frame_for_table(self, manager):
        tea = manager.create(BASE, BASE + 8 * MB, PageSize.SIZE_4K)[0]
        assert tea.frame_for_table(BASE) == tea.base_frame
        assert tea.frame_for_table(BASE + 5 * MB) == tea.base_frame + 2
        with pytest.raises(ValueError):
            tea.frame_for_table(BASE + 9 * MB)

    def test_out_of_span_pte_addr_rejected(self, manager):
        tea = manager.create(BASE, BASE + 2 * MB, PageSize.SIZE_4K)[0]
        with pytest.raises(ValueError):
            tea.pte_addr(BASE - 1)


class TestExpand:
    def test_in_place_expansion(self, manager):
        tea = manager.create(BASE, BASE + 4 * MB, PageSize.SIZE_4K)[0]
        new_tea, migration = manager.expand(tea, BASE + 8 * MB)
        assert migration is None
        assert new_tea is tea
        assert tea.va_end == BASE + 8 * MB
        assert manager.owner_of(BASE + 6 * MB, PageSize.SIZE_4K) is tea

    def test_expansion_by_migration(self, manager):
        tea = manager.create(BASE, BASE + 4 * MB, PageSize.SIZE_4K)[0]
        # block in-place growth
        blocker = manager.allocator.alloc_contig(1)
        assert blocker == tea.base_frame + tea.npages
        target, migration = manager.expand(tea, BASE + 8 * MB)
        assert migration is not None
        assert not target.present, "P-bit stays clear during migration (§4.6.1)"
        manager.finish_migration(migration)
        assert target.present
        assert manager.owner_of(BASE, PageSize.SIZE_4K) is target
        assert tea.tea_id not in manager.teas  # source retired and freed

    def test_migration_moves_leaf_tables(self):
        memory = PhysicalMemory(64 * MB)
        manager = TEAManager(memory.allocator)
        tea = manager.create(BASE, BASE + 4 * MB, PageSize.SIZE_4K)[0]

        class Policy:
            def place_table(self, level, va, page_size):
                return manager.frame_for_table(va, PageSize.SIZE_4K) \
                    if level == 1 else None

            def table_released(self, frame, level, va):
                return manager.owns_frame(frame)

        table = RadixPageTable(memory, placement=Policy())
        table.map(BASE, 100)
        blocker = memory.allocator.alloc_contig(1)
        target, migration = manager.expand(tea, BASE + 8 * MB, page_table=table)
        manager.finish_migration(migration)
        # the mapping still translates and now lives in the new TEA
        assert table.translate(BASE)[0] == 100 * PAGE_SIZE
        assert table.walk_steps(BASE)[-1].pte_addr == target.pte_addr(BASE)


class TestShrinkDelete:
    def test_shrink_releases_tail(self, manager):
        tea = manager.create(BASE, BASE + 8 * MB, PageSize.SIZE_4K)[0]
        free_before = manager.allocator.free_frames
        manager.shrink(tea, BASE + 4 * MB)
        assert tea.va_end == BASE + 4 * MB
        assert manager.allocator.free_frames == free_before + 2
        assert manager.owner_of(BASE + 6 * MB, PageSize.SIZE_4K) is None

    def test_shrink_to_zero_deletes(self, manager):
        tea = manager.create(BASE, BASE + 4 * MB, PageSize.SIZE_4K)[0]
        manager.shrink(tea, BASE)
        assert tea.tea_id not in manager.teas

    def test_delete_frees_frames(self, manager):
        free_before = manager.allocator.free_frames
        tea = manager.create(BASE, BASE + 8 * MB, PageSize.SIZE_4K)[0]
        manager.delete(tea)
        assert manager.allocator.free_frames == free_before
        assert manager.owner_of(BASE, PageSize.SIZE_4K) is None

    def test_double_delete_rejected(self, manager):
        tea = manager.create(BASE, BASE + 2 * MB, PageSize.SIZE_4K)[0]
        manager.delete(tea)
        with pytest.raises(KeyError):
            manager.delete(tea)


class TestLedger:
    def test_management_time_recorded(self, manager):
        manager.create(BASE, BASE + 8 * MB, PageSize.SIZE_4K)
        assert manager.ledger.total_us > 0
        assert "tea_create" in manager.ledger.by_op()
