"""Tests for the radix page table."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import PAGE_SIZE, PageSize
from repro.kernel.page_table import (
    PTE_ACCESSED,
    PTE_DIRTY,
    PTE_HUGE,
    PTE_PRESENT,
    RadixPageTable,
    TablePlacementPolicy,
    make_pte,
    pte_frame,
)
from repro.mem.physmem import PhysicalMemory

MB = 1 << 20
BASE = 0x7F00_0000_0000


@pytest.fixture
def memory():
    return PhysicalMemory(128 * MB)


@pytest.fixture
def table(memory):
    return RadixPageTable(memory)


class TestMapping:
    def test_map_translate_roundtrip(self, table):
        slot = table.map(BASE, 100)
        assert table.translate(BASE) == (100 * PAGE_SIZE, PageSize.SIZE_4K)
        assert table.translate(BASE + 0x123) == (100 * PAGE_SIZE + 0x123,
                                                 PageSize.SIZE_4K)
        assert table.memory.read_word(slot) == make_pte(100)

    def test_unmapped_translates_to_none(self, table):
        assert table.translate(BASE) is None

    def test_unmap(self, table):
        table.map(BASE, 100)
        assert table.unmap(BASE) == 100
        assert table.translate(BASE) is None
        assert table.unmap(BASE) is None

    def test_huge_page_2m(self, table):
        table.map(BASE, 512, PageSize.SIZE_2M)
        pa, size = table.translate(BASE + 0x12345)
        assert size == PageSize.SIZE_2M
        assert pa == 512 * PAGE_SIZE + 0x12345

    def test_huge_page_1g(self, table):
        table.map(BASE, 512 * 512, PageSize.SIZE_1G)
        pa, size = table.translate(BASE + 0x1234567)
        assert size == PageSize.SIZE_1G

    def test_huge_page_requires_alignment(self, table):
        with pytest.raises(ValueError):
            table.map(BASE, 100, PageSize.SIZE_2M)  # frame not 512-aligned

    def test_mapping_under_huge_page_rejected(self, table):
        table.map(BASE, 512, PageSize.SIZE_2M)
        with pytest.raises(ValueError):
            table.map(BASE + PAGE_SIZE, 7, PageSize.SIZE_4K)

    def test_table_page_accounting(self, table):
        assert table.table_pages == 1  # root only
        table.map(BASE, 100)
        assert table.table_pages == 4  # root + L3 + L2 + L1
        table.map(BASE + PAGE_SIZE, 101)  # same leaf table
        assert table.table_pages == 4

    def test_five_level_tree(self, memory):
        table5 = RadixPageTable(memory, levels=5)
        table5.map(BASE, 99)
        assert table5.translate(BASE)[0] == 99 * PAGE_SIZE
        assert len(table5.walk_steps(BASE)) == 5

    def test_invalid_level_count(self, memory):
        with pytest.raises(ValueError):
            RadixPageTable(memory, levels=3)


class TestWalkSteps:
    def test_walk_is_four_sequential_fetches(self, table):
        table.map(BASE, 100)
        steps = table.walk_steps(BASE)
        assert [s.level for s in steps] == [4, 3, 2, 1]
        assert steps[-1].is_leaf
        assert pte_frame(steps[-1].pte_value) == 100
        # every step's entry address must be unique physical memory
        assert len({s.pte_addr for s in steps}) == 4

    def test_walk_shortens_for_huge_pages(self, table):
        table.map(BASE, 512, PageSize.SIZE_2M)
        steps = table.walk_steps(BASE)
        assert [s.level for s in steps] == [4, 3, 2]
        assert steps[-1].pte_value & PTE_HUGE

    def test_walk_stops_at_non_present(self, table):
        steps = table.walk_steps(BASE)
        assert len(steps) == 1
        assert not steps[0].pte_value & PTE_PRESENT

    def test_leaf_pte_addr_matches_walk(self, table):
        table.map(BASE, 100)
        addr, size = table.leaf_pte_addr(BASE)
        assert addr == table.walk_steps(BASE)[-1].pte_addr


class TestAccessedDirty:
    def test_set_accessed(self, table):
        table.map(BASE, 100)
        table.set_accessed_dirty(BASE)
        _, pte, _ = table.lookup(BASE)
        assert pte & PTE_ACCESSED
        assert not pte & PTE_DIRTY

    def test_set_dirty(self, table):
        table.map(BASE, 100)
        table.set_accessed_dirty(BASE, dirty=True)
        _, pte, _ = table.lookup(BASE)
        assert pte & PTE_DIRTY

    def test_unmapped_raises(self, table):
        with pytest.raises(KeyError):
            table.set_accessed_dirty(BASE)


class TestWriteHook:
    def test_hook_sees_pte_writes(self, memory):
        writes = []
        table = RadixPageTable(memory, write_hook=lambda a, v: writes.append((a, v)))
        table.map(BASE, 100)
        # 3 intermediate table entries + 1 leaf
        assert len(writes) == 4
        table.unmap(BASE)
        assert writes[-1][1] == 0

    def test_ad_updates_do_not_trap(self, memory):
        writes = []
        table = RadixPageTable(memory, write_hook=lambda a, v: writes.append(a))
        table.map(BASE, 100)
        count = len(writes)
        table.set_accessed_dirty(BASE, dirty=True)
        assert len(writes) == count  # A/D updates bypass the hook


class TestPlacementPolicy:
    def test_policy_controls_leaf_frames(self, memory):
        reserved = memory.allocator.alloc_contig(4)

        class Policy(TablePlacementPolicy):
            def place_table(self, level, va, page_size):
                return reserved if level == 1 else None

            def table_released(self, frame, level, va):
                return frame == reserved

        table = RadixPageTable(memory, placement=Policy())
        slot = table.map(BASE, 100)
        assert slot >> 12 == reserved  # leaf PTE lives in the reserved frame
        table.destroy()  # must not free the policy-owned frame
        memory.allocator.free_contig(reserved, 4)


class TestRelocation:
    def test_relocate_leaf_table(self, table, memory):
        table.map(BASE, 100)
        table.map(BASE + PAGE_SIZE, 101)
        new_frame = memory.allocator.alloc_pages(0, movable=False)
        old_frame = table.relocate_table(BASE, 1, new_frame)
        # translations survive and walks now land in the new frame
        assert table.translate(BASE)[0] == 100 * PAGE_SIZE
        assert table.translate(BASE + PAGE_SIZE)[0] == 101 * PAGE_SIZE
        assert table.walk_steps(BASE)[-1].pte_addr >> 12 == new_frame
        memory.allocator.free_pages(old_frame)

    def test_relocate_missing_table_raises(self, table, memory):
        with pytest.raises(KeyError):
            table.relocate_table(BASE, 1, 50)


class TestDestroy:
    def test_destroy_frees_table_pages(self, memory):
        table = RadixPageTable(memory)
        before = memory.allocator.free_frames
        table.map(BASE, 100)
        table.destroy()
        assert memory.allocator.free_frames == before + 1  # root freed too


class TestProperties:
    @given(st.sets(st.integers(0, 1 << 24), min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_many_mappings_translate_independently(self, vpns):
        memory = PhysicalMemory(256 * MB)
        table = RadixPageTable(memory)
        mapping = {}
        for i, vpn in enumerate(sorted(vpns)):
            va = BASE + vpn * PAGE_SIZE
            table.map(va, 1000 + i)
            mapping[va] = 1000 + i
        for va, frame in mapping.items():
            assert table.translate(va) == (frame * PAGE_SIZE, PageSize.SIZE_4K)
        assert table.mapped_pages == len(mapping)
