"""Tests for VMAs and address spaces."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import PAGE_SIZE
from repro.kernel.vma import VMA, AddressSpace, VMAEvent

MB = 1 << 20


@pytest.fixture
def space():
    return AddressSpace()


class TestVMA:
    def test_basic_properties(self):
        vma = VMA(0x1000, 0x5000, name="heap")
        assert vma.size == 0x4000
        assert vma.pages == 4
        assert vma.contains(0x1000) and vma.contains(0x4FFF)
        assert not vma.contains(0x5000)

    def test_rejects_empty_or_unaligned(self):
        with pytest.raises(ValueError):
            VMA(0x2000, 0x2000)
        with pytest.raises(ValueError):
            VMA(0x2001, 0x3000)

    def test_overlaps(self):
        vma = VMA(0x2000, 0x4000)
        assert vma.overlaps(0x3000, 0x5000)
        assert vma.overlaps(0x1000, 0x2001)
        assert not vma.overlaps(0x4000, 0x5000)
        assert not vma.overlaps(0x1000, 0x2000)


class TestMmap:
    def test_mmap_finds_gap(self, space):
        first = space.mmap(4 * MB)
        second = space.mmap(4 * MB)
        assert not first.overlaps(second.start, second.end)

    def test_mmap_fixed_address(self, space):
        vma = space.mmap(MB, addr=0x10000000)
        assert vma.start == 0x10000000

    def test_mmap_rejects_overlap(self, space):
        space.mmap(MB, addr=0x10000000)
        with pytest.raises(ValueError):
            space.mmap(MB, addr=0x10000000)

    def test_mmap_rounds_length_up(self, space):
        vma = space.mmap(PAGE_SIZE + 1)
        assert vma.size == 2 * PAGE_SIZE

    def test_find(self, space):
        vma = space.mmap(MB, addr=0x10000000)
        assert space.find(0x10000000) is vma
        assert space.find(0x10000000 + MB - 1) is vma
        assert space.find(0x10000000 + MB) is None
        assert space.find(0x0) is None


class TestMunmapSplitGrow:
    def test_munmap_whole(self, space):
        vma = space.mmap(MB, addr=0x10000000)
        removed = space.munmap(vma.start, vma.size)
        assert removed == [vma]
        assert len(space) == 0

    def test_munmap_middle_splits(self, space):
        space.mmap(4 * MB, addr=0x10000000)
        space.munmap(0x10000000 + MB, MB)
        assert len(space) == 2
        assert space.find(0x10000000) is not None
        assert space.find(0x10000000 + MB) is None
        assert space.find(0x10000000 + 2 * MB) is not None

    def test_split(self, space):
        vma = space.mmap(2 * MB, addr=0x10000000)
        low, high = space.split(vma, 0x10000000 + MB)
        assert low.end == high.start == 0x10000000 + MB
        assert len(space) == 2

    def test_split_validates_point(self, space):
        vma = space.mmap(2 * MB, addr=0x10000000)
        with pytest.raises(ValueError):
            space.split(vma, vma.start)
        with pytest.raises(ValueError):
            space.split(vma, vma.start + 7)

    def test_grow(self, space):
        vma = space.mmap(MB, addr=0x10000000)
        space.grow(vma, MB)
        assert vma.size == 2 * MB

    def test_grow_blocked_by_neighbour(self, space):
        vma = space.mmap(MB, addr=0x10000000)
        space.mmap(MB, addr=0x10000000 + MB)
        with pytest.raises(ValueError):
            space.grow(vma, MB)

    def test_shrink(self, space):
        vma = space.mmap(2 * MB, addr=0x10000000)
        space.shrink(vma, MB)
        assert vma.size == MB
        with pytest.raises(ValueError):
            space.shrink(vma, 4 * MB)


class TestHooks:
    def test_events_fire(self, space):
        events = []
        space.add_hook(lambda ev, vma: events.append(ev))
        vma = space.mmap(4 * MB, addr=0x10000000)
        space.grow(vma, MB)
        space.shrink(vma, 4 * MB)
        space.split(vma, 0x10000000 + 2 * MB)
        space.munmap(0x10000000, MB)
        kinds = [e for e in events]
        assert kinds[0] is VMAEvent.CREATED
        assert VMAEvent.GROWN in kinds
        assert VMAEvent.SHRUNK in kinds
        assert VMAEvent.SPLIT in kinds
        # munmap of a partial range fires SPLIT then REMOVED
        assert kinds[-1] is VMAEvent.REMOVED

    def test_remove_hook(self, space):
        events = []
        hook = lambda ev, vma: events.append(ev)
        space.add_hook(hook)
        space.remove_hook(hook)
        space.mmap(MB)
        assert events == []


class TestInvariants:
    @given(st.lists(st.tuples(st.integers(1, 64), st.booleans()),
                    min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_vmas_never_overlap_and_stay_sorted(self, script):
        space = AddressSpace()
        for pages, unmap_one in script:
            space.mmap(pages * PAGE_SIZE)
            if unmap_one and len(space) > 1:
                victim = space.vmas()[len(space) // 2]
                space.munmap(victim.start, victim.size // 2 or PAGE_SIZE)
            vmas = space.vmas()
            for a, b in zip(vmas, vmas[1:]):
                assert a.end <= b.start, "address space must stay sorted/disjoint"
