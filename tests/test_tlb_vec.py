"""Equivalence of the vectorized TLB-filter engine with the scalar oracle.

The vectorized stage-1 engine must emit a **bit-identical** miss stream
to the dict-backed :class:`~repro.hw.tlb.TLBHierarchy` path: all seven
workloads, both page-size modes, accept-rate thinning on and off.
"""

import numpy as np
import pytest

from repro.arch import PageSize
from repro.hw.config import xeon_gold_6138
from repro.kernel.kernel import Kernel
from repro.sim.simulator import (
    SizeClassifier,
    make_size_lookup,
    tlb_accept_rates,
    tlb_filter,
    tlb_filter_scalar,
)
from repro.sim.sweep import ALL_WORKLOADS
from repro.sim.tlb_vec import classify_trace, filter_misses
from repro.workloads import generators

SCALE = 4096
NREFS = 2500
_MB = 1 << 20

_setups = {}


def setup_for(workload_name: str, thp: bool):
    """Kernel + installed workload + trace, cached per (workload, thp)."""
    key = (workload_name, thp)
    if key not in _setups:
        workload = generators.get(workload_name, SCALE)
        ws = workload.working_set_bytes()
        kernel = Kernel(memory_bytes=ws * 2 + 256 * _MB, thp_enabled=thp)
        process = kernel.create_process(workload.name)
        layout = workload.install(process)
        trace = workload.generate_trace(layout, NREFS, seed=1)
        paper_ws = int(workload.paper_working_set_gb * (1 << 30))
        _setups[key] = (process.page_table, trace, ws, paper_ws)
    return _setups[key]


@pytest.mark.parametrize("thp", [False, True], ids=["4KB", "THP"])
@pytest.mark.parametrize("workload", ALL_WORKLOADS)
def test_miss_stream_bit_identical(workload, thp):
    machine = xeon_gold_6138()
    page_table, trace, ws, paper_ws = setup_for(workload, thp)
    thinning = tlb_accept_rates(machine, ws, paper_ws)
    for accept in (None, thinning):
        scalar = tlb_filter_scalar(trace, machine,
                                   make_size_lookup(page_table),
                                   accept_rates=accept)
        vec = tlb_filter(trace, machine, make_size_lookup(page_table),
                         accept_rates=accept, engine="vec")
        label = (workload, thp, "thinned" if accept else "raw")
        assert vec.miss_vas.dtype == np.int64
        assert vec.total_refs == scalar.total_refs == NREFS
        assert np.array_equal(vec.miss_vas, scalar.miss_vas), label


class TestEngineUnits:
    def test_empty_trace(self):
        machine = xeon_gold_6138()
        result = tlb_filter(np.empty(0, dtype=np.int64), machine,
                            lambda va: PageSize.SIZE_4K)
        assert result.miss_count == 0 and result.total_refs == 0

    def test_unknown_engine_rejected(self):
        machine = xeon_gold_6138()
        with pytest.raises(ValueError):
            tlb_filter(np.zeros(1, dtype=np.int64), machine,
                       lambda va: PageSize.SIZE_4K, engine="quantum")

    def test_asid_keys_distinguish_processes(self):
        """Two ASIDs touching the same VPNs must not alias in the TLB."""
        machine = xeon_gold_6138()
        trace = np.arange(64, dtype=np.int64) << 12

        def size_4k(va):
            return PageSize.SIZE_4K

        for asid in (1, 7):
            scalar = tlb_filter_scalar(trace, machine, size_4k, asid=asid)
            vec = tlb_filter(trace, machine, size_4k, asid=asid)
            assert np.array_equal(vec.miss_vas, scalar.miss_vas)

    def test_plain_callable_size_lookup(self):
        """The vec engine accepts any SizeLookup, not just SizeClassifier."""
        machine = xeon_gold_6138()
        trace = np.array([0x1000, 0x200000, 0x1000, 0x400000],
                         dtype=np.int64)
        misses = filter_misses(trace, machine, lambda va: PageSize.SIZE_4K)
        assert misses.tolist() == [0x1000, 0x200000, 0x400000]

    def test_classifier_batch_matches_scalar_calls(self):
        page_table, trace, _, _ = setup_for("Redis", True)
        batch = SizeClassifier(page_table).batch(trace)
        scalar_lookup = SizeClassifier(page_table)
        expected = [int(scalar_lookup(int(va))) for va in trace.tolist()]
        assert batch.tolist() == expected

    def test_classify_trace_one_lookup_per_unit(self):
        calls = []

        def counting_lookup(va):
            calls.append(va)
            return PageSize.SIZE_2M

        trace = np.array([0x200000, 0x200abc, 0x3fffff, 0x400000],
                         dtype=np.int64)
        shifts = classify_trace(trace, counting_lookup)
        assert shifts.tolist() == [21, 21, 21, 21]
        assert len(calls) == 2  # two distinct 2 MB units

    def test_chunk_boundaries_preserve_state(self):
        """State carries across chunks: tiny chunks == one big chunk."""
        machine = xeon_gold_6138()
        page_table, trace, ws, paper_ws = setup_for("GUPS", False)
        accept = tlb_accept_rates(machine, ws, paper_ws)
        whole = filter_misses(trace, machine, make_size_lookup(page_table),
                              accept_rates=accept)
        chunked = filter_misses(trace, machine, make_size_lookup(page_table),
                                accept_rates=accept, chunk=17)
        assert np.array_equal(whole, chunked)
