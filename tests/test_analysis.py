"""Tests for costs, the CACTI-like model, and report rendering."""

import pytest

from repro.analysis.cacti import (
    REFERENCE_DIE_MM2,
    REFERENCE_TDP_W,
    dmt_register_cost,
)
from repro.analysis.report import banner, format_cdf, format_series, format_table
from repro.core.costs import Environment, ManagementLedger


class TestCacti:
    def test_paper_configuration_calibration(self):
        """§6.3: 4.87 mW leakage, 0.03 mm^2 per MMU at 22 nm."""
        cost = dmt_register_cost()
        assert cost.leakage_mw == pytest.approx(4.87, rel=0.01)
        assert cost.area_mm2 == pytest.approx(0.03, rel=0.01)

    def test_overheads_are_marginal(self):
        cost = dmt_register_cost()
        assert cost.tdp_fraction < 1e-4      # vs 125 W TDP
        assert cost.die_fraction < 1e-4      # vs 694 mm^2 die

    def test_scaling_with_registers(self):
        base = dmt_register_cost(registers_per_set=16)
        double = dmt_register_cost(registers_per_set=32)
        assert double.leakage_mw > base.leakage_mw
        assert double.area_mm2 > base.area_mm2


class TestLedger:
    def test_records_and_totals(self):
        ledger = ManagementLedger()
        ledger.record("tea_create", extra_us=10)
        ledger.record("tea_delete")
        assert ledger.total_us > 0
        assert set(ledger.by_op()) == {"tea_create", "tea_delete"}
        assert ledger.total_ms == pytest.approx(ledger.total_us / 1000)

    def test_environment_multipliers(self):
        ledgers = {env: ManagementLedger(env) for env in Environment}
        for ledger in ledgers.values():
            ledger.record("tea_create")
        native = ledgers[Environment.NATIVE].total_us
        assert ledgers[Environment.VIRTUALIZED].total_us == pytest.approx(native * 10)
        assert ledgers[Environment.NESTED].total_us == pytest.approx(native * 50)

    def test_unknown_op_costs_only_extra(self):
        ledger = ManagementLedger()
        ledger.record("mystery", extra_us=5)
        assert ledger.total_us == pytest.approx(5)


class TestReport:
    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", 3.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.50" in text and "3.00" in text

    def test_format_series(self):
        text = format_series("speedup", {"GUPS": 1.5, "Redis": 1.2}, unit="x")
        assert "GUPS=1.50x" in text

    def test_format_cdf(self):
        points = [(1, 0.25), (2, 0.5), (3, 0.75), (4, 1.0)]
        text = format_cdf("spec", points)
        assert "p50=2" in text and "p100=4" in text
        assert format_cdf("empty", []) == "empty: (empty)"

    def test_banner(self):
        assert "hello" in banner("hello")
