"""Tests for trace statistics (generator validation) and result export."""

import numpy as np
import pytest

from repro.analysis.export import read_csv, speedup_rows, write_csv, write_json
from repro.kernel.kernel import Kernel
from repro.workloads import get
from repro.workloads.stats import reuse_distance_profile, trace_stats

MB = 1 << 20


def _trace(name, nrefs=15000, scale=4096):
    kernel = Kernel(memory_bytes=512 * MB)
    proc = kernel.create_process()
    workload = get(name, scale)
    layout = workload.install(proc, populate=False)
    return workload.generate_trace(layout, nrefs, seed=0)


class TestTraceStats:
    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            trace_stats(np.array([], dtype=np.int64))

    def test_uniform_trace_metrics(self):
        stats = trace_stats(_trace("GUPS"))
        assert stats.refs == 15000
        assert stats.top1pct_share < 0.1, "GUPS has no hot set"
        assert stats.sequential_fraction < 0.05

    def test_generators_order_by_locality(self):
        """The documented access patterns must be measurable (DESIGN §2)."""
        gups = trace_stats(_trace("GUPS"))
        btree = trace_stats(_trace("BTree"))
        graph = trace_stats(_trace("Graph500"))
        assert btree.top1pct_share > gups.top1pct_share * 2, \
            "BTree's root levels concentrate references; GUPS does not"
        assert graph.sequential_fraction > gups.sequential_fraction, \
            "Graph500's frontier scans are sequential; GUPS is random"

    def test_reuse_profile_sums_to_one(self):
        profile = reuse_distance_profile(_trace("BTree", nrefs=4000))
        assert sum(profile.values()) == pytest.approx(1.0)
        # BTree's hot upper levels reuse within short distances
        assert profile[16] > 0.05

    def test_reuse_profile_gups_is_cold(self):
        profile = reuse_distance_profile(_trace("GUPS", nrefs=4000))
        assert profile["inf"] > 0.6, "uniform random rarely reuses a page"


class TestExport:
    def test_csv_roundtrip(self, tmp_path):
        path = write_csv(tmp_path / "t.csv", ["a", "b"], [[1, 2], ["x", 3.5]])
        rows = read_csv(path)
        assert rows == [{"a": "1", "b": "2"}, {"a": "x", "b": "3.5"}]

    def test_json_write(self, tmp_path):
        path = write_json(tmp_path / "nested" / "r.json", {"k": [1, 2]})
        assert path.exists()
        import json
        assert json.loads(path.read_text()) == {"k": [1, 2]}

    def test_speedup_rows(self):
        rows = speedup_rows({"GUPS": {"vanilla": 100.0, "dmt": 50.0},
                             "Redis": {"vanilla": 80.0}})
        assert rows == [["GUPS", "dmt", 2.0]]
