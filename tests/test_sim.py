"""Tests for the simulation engine and the §5 performance model."""

import dataclasses
import warnings

import pytest

from repro.hw.config import xeon_gold_6138
from repro.sim.calibration import CALIBRATION, IDEAL_SECONDS, profile
from repro.sim.machine import (
    NativeSimulation,
    NestedSimulation,
    SimConfig,
    VirtSimulation,
)
from repro.sim.perfmodel import apply_model, baseline_times, model_from_stats
from repro.sim.simulator import WalkStats, geomean

SMALL = SimConfig(scale=4096, nrefs=6000)


@pytest.fixture(scope="module")
def native_sim():
    return NativeSimulation("GUPS", SMALL)


@pytest.fixture(scope="module")
def virt_sim():
    return VirtSimulation("GUPS", SMALL)


class TestNativeSimulation:
    def test_tlb_filter_produces_misses(self, native_sim):
        assert native_sim.tlb.total_refs == SMALL.nrefs
        assert 0 < native_sim.tlb.miss_count <= SMALL.nrefs
        # GUPS over a working set >> TLB reach misses badly
        assert native_sim.tlb.miss_rate > 0.5

    def test_all_designs_run(self, native_sim):
        for design in native_sim.designs:
            stats = native_sim.run(design)
            assert stats.walks > 0
            assert stats.mean_latency > 0

    def test_dmt_beats_vanilla(self, native_sim):
        vanilla = native_sim.run("vanilla")
        dmt = native_sim.run("dmt")
        assert dmt.mean_latency < vanilla.mean_latency, \
            "DMT must speed up native page walks (Fig. 14)"
        assert dmt.fallback_rate < 0.01, \
            "registers must cover 99+% of walks (§6.1)"

    def test_run_is_cached(self, native_sim):
        assert native_sim.run("vanilla") is native_sim.run("vanilla")

    def test_unknown_design(self, native_sim):
        with pytest.raises(KeyError):
            native_sim.walker("nope")


class TestVirtSimulation:
    def test_paper_ordering_of_designs(self, virt_sim):
        """Figure 15's qualitative ordering: pvDMT fastest, then DMT, and
        every advanced design beats vanilla nested paging."""
        latency = {d: virt_sim.run(d).mean_latency
                   for d in ("vanilla", "ecpt", "dmt", "pvdmt")}
        assert latency["pvdmt"] < latency["dmt"] < latency["vanilla"]
        assert latency["pvdmt"] < latency["ecpt"] < latency["vanilla"]

    def test_pvdmt_coverage(self, virt_sim):
        stats = virt_sim.run("pvdmt")
        assert stats.fallback_rate < 0.01

    def test_shadow_walks_fast_but_spt_maintained(self, virt_sim):
        shadow = virt_sim.run("shadow")
        vanilla = virt_sim.run("vanilla")
        # the walk itself is native-speed; the cost of shadow paging is the
        # VM exits, which the perf model charges from calibration (§2.2)
        assert shadow.mean_latency < vanilla.mean_latency
        assert virt_sim.shadow().spt.mapped_pages > 0


class TestNestedSimulation:
    def test_pvdmt_nested_runs_and_wins(self):
        sim = NestedSimulation("GUPS", SMALL)
        vanilla = sim.run("vanilla")
        pvdmt = sim.run("pvdmt")
        assert pvdmt.walks > 0 and vanilla.walks > 0
        assert pvdmt.fallback_rate < 0.05
        # pvDMT: at most 3 references; baseline 2D walk: many more
        assert pvdmt.mean_latency < vanilla.mean_latency * 1.5


class TestCalibration:
    def test_profiles_for_all_workloads(self):
        for name in ("Redis", "Memcached", "GUPS", "BTree", "Canneal",
                     "XSBench", "Graph500"):
            assert profile(name) is not None
        with pytest.raises(KeyError):
            profile("nope")

    def test_average_walk_fractions_match_section_2_2(self):
        """§2.2: average PW overhead 21% native / 43% virt / 48% nested."""
        native = sum(p.native.pw_frac for p in CALIBRATION.values()) / 7
        virt = sum(p.virt_npt.pw_frac for p in CALIBRATION.values()) / 7
        nested = sum(p.nested.pw_frac for p in CALIBRATION.values()) / 7
        assert native == pytest.approx(0.21, abs=0.03)
        assert virt == pytest.approx(0.43, abs=0.03)
        assert nested == pytest.approx(0.48, abs=0.03)

    def test_virtualization_slowdown_shape(self):
        """§2.2: virtualization ~1.46x, nested ~4.13x (GUPS 13.9x)."""
        ratios = []
        for name, prof in CALIBRATION.items():
            t_native = prof.native.total_seconds()
            ratios.append(prof.virt_npt.total_seconds() / t_native)
        assert 1.25 <= geomean(ratios) <= 1.65
        gups = CALIBRATION["GUPS"]
        nested_ratio = gups.nested.total_seconds() / gups.native.total_seconds()
        assert nested_ratio == pytest.approx(13.9, rel=0.15)

    def test_overfull_fractions_rejected(self):
        from repro.sim.calibration import EnvProfile
        with pytest.raises(ValueError):
            EnvProfile(0.6, 0.6, 0.5).total_seconds()


class TestPerfModel:
    def test_identity_when_no_improvement(self):
        model = apply_model("GUPS", "native", "same", 100.0, 100.0)
        assert model.app_speedup == pytest.approx(1.0)
        assert model.pw_speedup == pytest.approx(1.0)

    def test_walk_speedup_translates_to_app_speedup(self):
        model = apply_model("GUPS", "virt_npt", "dmt", 200.0, 100.0)
        assert model.pw_speedup == pytest.approx(2.0)
        # app speedup is bounded by the walk fraction (55% for GUPS virt)
        assert 1.0 < model.app_speedup < 2.0
        expected = 1.0 / (1 - 0.55 + 0.55 / 2.0)
        assert model.app_speedup == pytest.approx(expected, rel=1e-6)

    def test_removing_shadow_overhead(self):
        """pvDMT under nested virtualization removes shadow-paging exits."""
        kept = apply_model("GUPS", "nested", "x", 100, 100,
                           retained_other_fraction=1.0)
        removed = apply_model("GUPS", "nested", "x", 100, 100,
                              retained_other_fraction=0.0)
        assert removed.app_speedup > kept.app_speedup
        assert kept.app_speedup == pytest.approx(1.0)

    def test_model_from_stats(self):
        vanilla = WalkStats("vanilla", walks=10, total_cycles=1000)
        target = WalkStats("dmt", walks=10, total_cycles=500)
        model = model_from_stats("Redis", "virt_npt", vanilla, target)
        assert model.pw_speedup == pytest.approx(2.0)
        assert model.design == "dmt"

    def test_zero_vanilla_overhead_rejected(self):
        """A zero baseline overhead is a broken replay, not ratio 1.0."""
        with pytest.raises(ValueError, match="o_sim_vanilla"):
            apply_model("GUPS", "native", "dmt", 0.0, 100.0)

    def test_zero_vanilla_stats_rejected(self):
        vanilla = WalkStats("vanilla", walks=0, total_cycles=0)
        target = WalkStats("dmt", walks=10, total_cycles=500)
        with pytest.raises(ValueError, match="o_sim_vanilla"):
            model_from_stats("Redis", "virt_npt", vanilla, target)

    def test_baseline_times_normalized_shape(self):
        """Figure 4: virt > native, nested >> native for every workload."""
        for name in CALIBRATION:
            times = baseline_times(name)
            assert times["virt_npt"]["total"] > times["native"]["total"]
            assert times["nested"]["total"] > times["virt_npt"]["total"]
            assert times["virt_spt"]["total"] > times["virt_npt"]["total"]

    def test_thp_reduces_walk_fraction(self):
        for name in CALIBRATION:
            t4k = baseline_times(name, thp=False)
            thp = baseline_times(name, thp=True)
            frac_4k = t4k["virt_npt"]["pw"] / t4k["virt_npt"]["total"]
            frac_thp = thp["virt_npt"]["pw"] / thp["virt_npt"]["total"]
            assert frac_thp < frac_4k


class TestGeomean:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0
        assert geomean([5.0]) == pytest.approx(5.0)

    def test_clean_input_emits_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_nonpositive_values_warn(self):
        """A zero/negative design stat must not inflate the mean silently."""
        with pytest.warns(RuntimeWarning, match="non-positive"):
            assert geomean([2.0, 0.0, 8.0]) == pytest.approx(4.0)
        with pytest.warns(RuntimeWarning, match="non-positive"):
            assert geomean([-1.0]) == 0.0


class TestSimConfigSmall:
    def test_small_overrides_only_scale_and_nrefs(self):
        cfg = SimConfig(scale=512, nrefs=50_000, seed=7, thp=True, levels=5,
                        warmup_fraction=0.2, record_refs=True,
                        register_count=8, bubble_threshold=0.05,
                        scale_mmu_caches=False, engine="scalar")
        small = cfg.small(nrefs=123, scale=64)
        assert small.nrefs == 123 and small.scale == 64

    def test_small_propagates_every_field(self):
        """small() must carry every field over — including ones added
        after it was written (it once dropped scale_mmu_caches)."""
        overrides = {"seed": 9, "thp": True, "levels": 5,
                     "warmup_fraction": 0.25, "record_refs": True,
                     "register_count": 4, "bubble_threshold": 0.07,
                     "scale_mmu_caches": False, "engine": "scalar"}
        cfg = SimConfig(**overrides)
        small = cfg.small()
        for field in dataclasses.fields(SimConfig):
            if field.name in ("scale", "nrefs"):
                continue
            assert getattr(small, field.name) == getattr(cfg, field.name), \
                f"small() dropped SimConfig.{field.name}"
