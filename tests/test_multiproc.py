"""Tests for the multi-process context-switch simulation (§4.1)."""

import pytest

from repro.sim.machine import SimConfig
from repro.sim.multiproc import REGISTER_RELOAD_CYCLES, MultiProcessSimulation

CFG = SimConfig(scale=8192, nrefs=3000)


@pytest.fixture(scope="module")
def sim():
    return MultiProcessSimulation(["GUPS", "Canneal"], CFG, quantum_misses=100)


class TestScheduling:
    def test_switch_count_matches_quanta(self, sim):
        stats = sim.run("dmt")
        total_misses = sum(len(s) for s in sim.miss_streams)
        expected_min = total_misses // 100 - 2
        assert stats.switches >= max(2, expected_min // 2)
        assert stats.register_reload_cycles == \
            stats.switches * REGISTER_RELOAD_CYCLES

    def test_coverage_survives_switching(self, sim):
        """Register reloads restore 99+% coverage after every switch."""
        stats = sim.run("dmt")
        assert stats.per_design["dmt"]["fallback_rate"] < 0.01

    def test_dmt_beats_vanilla_under_interference(self, sim):
        dmt = sim.run("dmt").per_design["dmt"]
        vanilla = sim.run("vanilla").per_design["vanilla"]
        assert dmt["mean_latency"] < vanilla["mean_latency"], \
            "cross-process PTE-cache interference hurts 4-fetch walks more"

    def test_switch_overhead_is_minor(self, sim):
        stats = sim.run("dmt")
        assert stats.per_design["dmt"]["switch_overhead_fraction"] < 0.15, \
            "register reloads must not dominate translation cost (§4.1)"

    def test_reload_cycles_charged_into_latency(self, sim):
        """mean_latency must include the register-reload cost of switches."""
        stats = sim.run("dmt")
        design = stats.per_design["dmt"]
        assert design["charged_cycles"] == \
            design["walk_cycles"] + stats.register_reload_cycles
        assert design["mean_latency"] == pytest.approx(
            design["charged_cycles"] / design["walks"])
        assert design["mean_latency"] > \
            design["walk_cycles"] / design["walks"]
        # and the overhead fraction's denominator contains its numerator
        assert design["switch_overhead_fraction"] == pytest.approx(
            stats.register_reload_cycles / design["charged_cycles"])

    def test_unknown_design_rejected(self, sim):
        with pytest.raises(KeyError):
            sim.run("ecpt")

    def test_every_stream_fully_consumed(self, sim):
        stats = sim.run("dmt")
        total = sum(len(s) for s in sim.miss_streams)
        assert stats.per_design["dmt"]["walks"] == total
