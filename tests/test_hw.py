"""Tests for the hardware models: caches, TLBs, PWCs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import PageSize
from repro.hw.cache import CacheHierarchy, SetAssociativeCache
from repro.hw.config import CacheConfig, PWCConfig, TLBConfig, xeon_gold_6138
from repro.hw.pwc import NestedPWC, PageWalkCache
from repro.hw.tlb import TLB, TLBHierarchy


class TestCacheConfig:
    def test_table3_geometry(self):
        machine = xeon_gold_6138()
        assert machine.l1d.size_bytes == 32 * 1024 and machine.l1d.assoc == 8
        assert machine.l2.size_bytes == 1024 * 1024 and machine.l2.assoc == 16
        assert machine.llc.size_bytes == 22 * 1024 * 1024 and machine.llc.assoc == 11
        assert (machine.l1d.latency, machine.l2.latency, machine.llc.latency) == (4, 14, 54)
        assert machine.memory_latency == 200
        assert machine.l2_stlb.entries == 1536 and machine.l2_stlb.assoc == 12
        assert machine.pwc.entries_per_level == (2, 4, 32)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", 64, 8, 64).num_sets


class TestSetAssociativeCache:
    def make(self, sets=4, assoc=2):
        return SetAssociativeCache(CacheConfig("t", sets * assoc * 64, assoc, 64))

    def test_miss_then_hit(self):
        cache = self.make()
        assert not cache.lookup(0x1000)
        cache.install(0x1000)
        assert cache.lookup(0x1000)

    def test_lru_eviction(self):
        cache = self.make(sets=1, assoc=2)
        cache.install(0x000)
        cache.install(0x040)
        cache.lookup(0x000)         # make 0x000 most recent
        assert cache.install(0x080) == 1  # evicts line 1 (0x040)
        assert cache.contains(0x000)
        assert not cache.contains(0x040)

    def test_same_line_no_duplicate(self):
        cache = self.make()
        cache.install(0x1000)
        cache.install(0x1008)  # same 64B line
        assert cache.contains(0x1000) and cache.contains(0x1038)

    def test_invalidate(self):
        cache = self.make()
        cache.install(0x1000)
        cache.invalidate(0x1000)
        assert not cache.contains(0x1000)


class TestHierarchy:
    def test_latency_progression(self):
        machine = xeon_gold_6138()
        hierarchy = CacheHierarchy.from_machine(machine)
        assert hierarchy.access(0x1000).latency == 200   # cold: memory
        assert hierarchy.access(0x1000).latency == 4     # now in L1

    def test_install_on_miss_fills_all_levels(self):
        hierarchy = CacheHierarchy.from_machine(xeon_gold_6138())
        hierarchy.access(0x1000)
        for cache in hierarchy.levels:
            assert cache.contains(0x1000)

    def test_pte_side_capacity_scaled(self):
        machine = xeon_gold_6138()
        hierarchy = CacheHierarchy.pte_side(machine)
        assert hierarchy.access(0x1000).latency == 200
        assert hierarchy.access(0x1000).latency == 4  # survives in the L1 slice
        # each level keeps only the PT share of its capacity
        for level, full in zip(hierarchy.levels,
                               (machine.l1d, machine.l2, machine.llc)):
            assert level.config.size_bytes < full.size_bytes

    def test_probe_does_not_allocate(self):
        hierarchy = CacheHierarchy.pte_side(xeon_gold_6138())
        assert hierarchy.probe(0x9000).latency == 200
        assert hierarchy.probe(0x9000).latency == 200  # still not cached
        hierarchy.access(0x9000)
        assert hierarchy.probe(0x9000).latency < 200

    def test_warm_avoids_latency(self):
        hierarchy = CacheHierarchy.pte_side(xeon_gold_6138())
        hierarchy.warm(0x2000)
        assert hierarchy.access(0x2000).latency < 200


class TestTLB:
    def test_hierarchy_refill(self):
        machine = xeon_gold_6138()
        tlbs = TLBHierarchy.from_machine(machine)
        assert not tlbs.lookup(1, 0x1000, PageSize.SIZE_4K)
        tlbs.fill(1, 0x1000, PageSize.SIZE_4K)
        assert tlbs.lookup(1, 0x1000, PageSize.SIZE_4K)

    def test_asid_isolation(self):
        tlbs = TLBHierarchy.from_machine(xeon_gold_6138())
        tlbs.fill(1, 0x1000, PageSize.SIZE_4K)
        assert not tlbs.lookup(2, 0x1000, PageSize.SIZE_4K)

    def test_huge_pages_one_entry(self):
        tlbs = TLBHierarchy.from_machine(xeon_gold_6138())
        tlbs.fill(1, 0x40000000, PageSize.SIZE_2M)
        # any address in the same 2 MB page hits
        assert tlbs.lookup(1, 0x40000000 + 0x123456, PageSize.SIZE_2M)

    def test_l1_eviction_backed_by_stlb(self):
        small = TLBHierarchy(TLBConfig("l1", 4, 4), TLBConfig("stlb", 64, 4))
        for i in range(16):
            small.fill(1, i << 12, PageSize.SIZE_4K)
        # early entries evicted from L1 but still in the STLB
        assert small.lookup(1, 0 << 12, PageSize.SIZE_4K)

    def test_capacity_miss(self):
        tiny = TLB(TLBConfig("t", 4, 4))
        for i in range(8):
            tiny.install(1, i << 12, PageSize.SIZE_4K)
        hits = sum(tiny.lookup(1, i << 12, PageSize.SIZE_4K) for i in range(8))
        assert hits == 4

    def test_invalidate_asid(self):
        tlb = TLB(TLBConfig("t", 16, 4))
        tlb.install(1, 0x1000, PageSize.SIZE_4K)
        tlb.install(2, 0x1000, PageSize.SIZE_4K)
        tlb.invalidate_asid(1)
        assert not tlb.lookup(1, 0x1000, PageSize.SIZE_4K)
        assert tlb.lookup(2, 0x1000, PageSize.SIZE_4K)


class TestPWC:
    def test_fill_then_skip(self):
        pwc = PageWalkCache(PWCConfig())
        va = 0x7F00_1234_5000
        assert pwc.best_entry(va) == (4, None)
        pwc.fill(va, 3, 0xAAAA000)
        level, addr = pwc.best_entry(va)
        assert (level, addr) == (3, 0xAAAA000)
        pwc.fill(va, 1, 0xBBBB000)
        assert pwc.best_entry(va) == (1, 0xBBBB000)  # deepest wins

    def test_keys_are_va_prefixes(self):
        pwc = PageWalkCache(PWCConfig())
        pwc.fill(0x7F00_0000_0000, 1, 0xAAAA000)
        # same 2 MB region -> same L1-table entry
        assert pwc.best_entry(0x7F00_0000_5000)[1] == 0xAAAA000
        # different 2 MB region -> miss
        assert pwc.best_entry(0x7F00_0020_0000) == (4, None)

    def test_capacity_eviction(self):
        pwc = PageWalkCache(PWCConfig(entries_per_level=(1, 1, 2)))
        pwc.fill(0 << 21, 1, 0x1000)
        pwc.fill(1 << 21, 1, 0x2000)
        pwc.fill(2 << 21, 1, 0x3000)
        assert pwc.best_entry(0 << 21) == (4, None)  # evicted

    def test_accept_rate_thinning(self):
        pwc = PageWalkCache(PWCConfig(entries_per_level=(4, 4, 4)),
                            accept_rates=(1.0, 1.0, 0.25))
        pwc.fill(0x0, 1, 0x9000)
        hits = sum(pwc.best_entry(0x0)[1] is not None for _ in range(100))
        assert hits == 25  # deterministic 1-in-4 acceptance

    def test_nested_pwc(self):
        npwc = NestedPWC(PWCConfig())
        assert npwc.get(42) is None
        npwc.fill(42, 999)
        assert npwc.get(42) == 999

    def test_nested_pwc_thinning(self):
        npwc = NestedPWC(PWCConfig(), accept_rate=0.5)
        npwc.fill(42, 999)
        hits = sum(npwc.get(42) is not None for _ in range(100))
        assert hits == 50
