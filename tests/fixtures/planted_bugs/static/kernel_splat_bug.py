# dmtlint-scope: kernels
"""Planted bugs for rule L603: variadic signatures and call splatting.

Never imported — lint test data only (see ../README.md).
"""


def _jit(fn):
    return fn


@_jit
def _pair_sum(a, b):
    return a + b


@_jit
def _fanout(values, *more):  # planted L603: *args in a kernel signature
    return _pair_sum(*values)  # planted L603: star splatting at a call
