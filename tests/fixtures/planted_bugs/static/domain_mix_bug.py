"""Planted bugs for rule L501: arithmetic across address domains.

Never imported — lint test data only (see ../README.md).
"""


def span(gva, gpa):
    return gva + gpa  # planted L501: guest-virtual plus guest-physical


def deadline(vpn, cycles):
    return vpn < cycles  # planted L501: page number compared to time


def packed_key(vpn, cycles):
    # waived: packed (vpn, cycles) LRU key, split again on read
    return vpn + cycles  # dmtlint: ignore[L501]
