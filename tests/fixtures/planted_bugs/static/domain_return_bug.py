"""Planted bug for rule L503: return contradicts the declared domain.

Never imported — lint test data only (see ../README.md).
"""


# dmtlint-domain: return=hpa
def _resolve(vpn):
    return vpn  # planted L503: declared to return an hPA, returns a VPN
