# dmtlint-scope: streaming
"""Planted bug: whole-stream materialization in streaming-scoped code.

The chunk iterator exists so the full trace never lives in memory;
both functions below quietly restore the monolithic footprint.
"""

import numpy as np


def filter_all(chunks):
    # L701: gathers every chunk into one array — the monolithic trace
    whole = np.concatenate(list(chunks))
    return whole[whole % 2 == 0]


def box_segment(segment):
    # L702: boxes the segment into Python objects, duplicating it
    return [va * 2 for va in segment.tolist()]
