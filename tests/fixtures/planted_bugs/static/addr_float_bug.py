"""Planted bugs for rule L1: address arithmetic leaving the int domain.

Never imported — lint test data only (see ../README.md).
"""


def split_region(va, pa):
    mid = va / 2            # planted L101: true division on an address
    scaled = float(pa) * 2  # planted L102: float() on an address
    return mid, scaled


def suppressed_division(pa):
    return pa / 2  # dmtlint: ignore[L101]
