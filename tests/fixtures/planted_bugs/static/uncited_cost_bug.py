# dmtlint-scope: costs
"""Planted bug for rule L301: calibrated constant without provenance.

Never imported — lint test data only (see ../README.md).
"""

TEA_ALLOC_MS = 13.27  # §6.3: cited, so this one is fine

WALK_PENALTY_US = 17.5  # planted L301: calibrated but uncited
