# dmtlint-scope: kernels
"""Planted bug: a public kernel that declares no scalar oracle (L402).

The function name is referenced from the test corpus so L401 stays
quiet — the only finding is the missing ``Oracle:`` docstring line.
"""


def distilled_probe_kernel(state, key):
    """Look up ``key`` in the packed state arrays."""
    return state[0] == key
