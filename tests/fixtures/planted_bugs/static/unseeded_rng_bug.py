"""Planted bugs for rule L2: nondeterministic random number generation.

Never imported — lint test data only (see ../README.md).
"""
import random

import numpy as np


def jitter():
    rng = np.random.default_rng()  # planted L201: no seed
    return rng.normal() + random.random()  # planted L202: global RNG


def salted_seed(name):
    return np.random.default_rng(hash(name))  # planted L204: salted hash
