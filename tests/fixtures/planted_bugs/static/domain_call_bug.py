"""Planted bug for rule L502: argument contradicts the parameter domain.

Never imported — lint test data only (see ../README.md).
"""


def _lookup(hpa):
    return hpa + 8


def probe(gpa):
    return _lookup(gpa)  # planted L502: gPA handed to an hPA parameter
