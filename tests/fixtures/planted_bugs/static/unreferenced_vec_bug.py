# dmtlint-scope: vec
"""Planted bug for rule L401: public engine function with no oracle test.

The function name below must not appear in any ``tests/test_*.py`` —
the detection test assembles it from pieces to keep it out of the L4
corpus. Never imported — lint test data only (see ../README.md).
"""


def quantized_filter_hop(values):
    return values
