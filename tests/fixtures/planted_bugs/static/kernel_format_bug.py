# dmtlint-scope: kernels
"""Planted bugs for rule L604: string formatting inside a jit kernel.

Never imported — lint test data only (see ../README.md).
"""


def _jit(fn):
    return fn


@_jit
def _label_row(code):
    text = f"code={code}"  # planted L604: f-strings do not compile
    tag = "row-%d" % code  # planted L604: %-formatting does not compile
    return text, tag
