# dmtlint-scope: kernels
"""Planted bug for rule L602: a closure inside a jit kernel.

Never imported — lint test data only (see ../README.md).
"""


def _jit(fn):
    return fn


@_jit
def _scan_rows(values, n):
    def _bump(x):  # planted L602: nested functions do not compile
        return x + 1

    return values[0] + n
