# dmtlint-scope: kernels
"""Planted bug for rule L601: dict construction inside a jit kernel.

``@_jit`` is the fixture stand-in for ``repro.sim.kernels.backend.jit``.
Never imported — lint test data only (see ../README.md).
"""


def _jit(fn):
    return fn


@_jit
def _index_rows(keys, n):
    seen = {}  # planted L601: dicts are unsupported in nopython mode
    for i in range(n):
        seen[keys[i]] = i
    return seen
