# dmtlint-scope: result-path
"""Planted bug for rule L203: hash-ordered iteration on the result path.

Never imported — lint test data only (see ../README.md).
"""


def ordered_output(values):
    pending = set(values)
    return [item for item in pending]  # planted L203: hash order
