# dmtlint-scope: kernels
"""Planted bug for rule L605: a reflected list inside a jit kernel.

Never imported — lint test data only (see ../README.md).
"""


def _jit(fn):
    return fn


@_jit
def _triple(n):
    out = [0, 0, 0]  # planted L605: preallocate an ndarray instead
    out[0] = n
    return out
