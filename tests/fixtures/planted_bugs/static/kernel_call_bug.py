# dmtlint-scope: kernels
"""Planted bugs for rule L607: calls outside the kernel whitelist.

Never imported — lint test data only (see ../README.md).
"""
import numpy as np


def _jit(fn):
    return fn


@_jit
def _smooth_rows(values, n):
    total = np.sum(values)  # planted L607: np.sum is not whitelisted
    values.sort()  # planted L607: method calls are outside the whitelist
    return total + n
