"""Planted bugs for rule L103: magic page-geometry constants.

Never imported — lint test data only (see ../README.md).
"""


def unit_of(va):
    return va >> 21  # planted L103: should be PageSize.SIZE_2M


def offset_of(addr):
    return addr & 0xFFF  # planted L103: should be page_offset(addr)
