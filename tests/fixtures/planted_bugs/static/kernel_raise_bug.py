# dmtlint-scope: kernels
"""Planted bugs for rule L606: exception handling beyond the subset.

Never imported — lint test data only (see ../README.md).
"""


def _jit(fn):
    return fn


@_jit
def _guard_row(code):
    if code < 0:
        raise KeyError("negative")  # planted L606: not a whitelisted class
    if code > 64:
        raise ValueError(code)  # planted L606: non-constant argument
    return code
