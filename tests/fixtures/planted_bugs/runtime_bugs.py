"""Planted runtime translation bugs (the fault-injection harness).

Each ``plant_*`` function builds a minimal machine, injects one
specific invariant violation, and performs the operation whose
``--sanitize`` hook must catch it. Every function must raise
:class:`repro.analysis.sanitizer.SanitizerError` while the sanitizer
is active — and complete silently while it is off, since the planted
bugs are semantic, not crashes. See ``tests/test_sanitizer.py``.
"""

from repro.arch import PageSize
from repro.core.tea import TEAManager, granule_shift
from repro.hw.config import MachineConfig
from repro.hw.pwc import PageWalkCache
from repro.hw.tlb import TLBHierarchy
from repro.kernel.kernel import Kernel
from repro.kernel.page_table import RadixPageTable
from repro.mem.buddy import BuddyAllocator
from repro.mem.physmem import PhysicalMemory, frame_to_addr
from repro.virt.hypervisor import Hypervisor

MB = 1 << 20
GRANULE = 1 << granule_shift(PageSize.SIZE_4K)  # 2 MB of VA per TEA page


def plant_misaligned_tea():
    """TEA bookkeeping corruption: the VA span loses granule alignment.

    The next management operation (here: growth) must reject the TEA —
    a misaligned base breaks the register arithmetic of Figure 7.
    """
    manager = TEAManager(BuddyAllocator(4096))
    tea = manager.create(0, 2 * GRANULE, PageSize.SIZE_4K)[0]
    # corruption: the span slides off its granule alignment (same length,
    # so the physical-run bookkeeping still looks plausible)
    tea.va_start += 0x1000
    tea.va_end += 0x1000
    manager.expand(tea, 3 * GRANULE + 0x1000)


def plant_out_of_range_pte():
    """A leaf PTE pointing past the end of its physical memory domain."""
    memory = PhysicalMemory(16 * MB)
    table = RadixPageTable(memory)
    table.map(0x40000000, memory.total_frames + 7, PageSize.SIZE_4K)


def plant_cross_guest_aliasing():
    """One host-contiguous frame run inserted into two guests (§4.5.2).

    A buggy ``KVM_HC_ALLOC_TEA`` handler that reuses a live backing run
    would let one guest read another's PTEs through its gTEA.
    """
    host = Kernel(memory_bytes=128 * MB)
    hypervisor = Hypervisor(host)
    vm1 = hypervisor.create_vm(16 * MB)
    vm2 = hypervisor.create_vm(16 * MB)
    run = host.memory.allocator.alloc_contig(4, movable=False)
    vm1.map_host_frames(run, 4)
    vm2.map_host_frames(run, 4)  # aliasing: must be caught


def plant_stale_tlb_after_unmap():
    """Unmap without a TLB shootdown: a stale translation stays live."""
    memory = PhysicalMemory(16 * MB)
    table = RadixPageTable(memory, asid=7)
    tlb = TLBHierarchy.from_machine(MachineConfig())
    va = 0x200000
    table.map(va, memory.allocator.alloc_pages(0), PageSize.SIZE_4K)
    tlb.fill(7, va, PageSize.SIZE_4K)
    table.unmap(va)  # missing tlb.flush(): must be caught


def plant_stale_pwc_after_relocation():
    """Table relocation without flushing the page-walk cache."""
    memory = PhysicalMemory(16 * MB)
    table = RadixPageTable(memory)
    pwc = PageWalkCache(MachineConfig().pwc, top_level=4)
    va = 0x200000
    table.map(va, memory.allocator.alloc_pages(0), PageSize.SIZE_4K)
    old_frame = table.table_frame(va, 1)
    pwc.fill(va, 1, frame_to_addr(old_frame))
    new_frame = memory.allocator.alloc_pages(0, movable=False)
    table.relocate_table(va, 1, new_frame)  # missing pwc.flush()


def plant_botched_tea_migration():
    """A TEA migration that forgets to rewrite parent entries.

    ``relocate_table`` is stubbed to a no-op, modelling a kernel that
    copies table pages without repointing the radix tree; after
    ``finish_migration`` the leaf tables are outside the new TEA run,
    so the DMT fetcher and the x86 walker would read different bytes.
    """
    memory = PhysicalMemory(64 * MB)
    table = RadixPageTable(memory)
    manager = TEAManager(memory.allocator)
    for granule in range(2):
        table.map(granule * GRANULE, memory.allocator.alloc_pages(0),
                  PageSize.SIZE_4K)
    tea = manager.create(0, 2 * GRANULE, PageSize.SIZE_4K)[0]
    # fault injection: contiguity exhausted, and a relocate that does
    # nothing but report the table's current frame
    memory.allocator.expand_contig = lambda *args: False
    table.relocate_table = lambda va, level, frame: table.table_frame(va, level)
    target, migration = manager.expand(tea, 4 * GRANULE, page_table=table)
    assert migration is not None
    manager.finish_migration(migration)


ALL_PLANTS = [
    plant_misaligned_tea,
    plant_out_of_range_pte,
    plant_cross_guest_aliasing,
    plant_stale_tlb_after_unmap,
    plant_stale_pwc_after_relocation,
    plant_botched_tea_migration,
]
