"""Tests for the observability layer (:mod:`repro.obs`).

Covers the metrics registry contract (``counter`` / ``gauge`` /
``histogram`` aggregation, ``registry`` / ``set_registry`` / ``scoped``
swapping, ``slug`` naming), trace spans (``enable`` / ``disable`` /
``active`` / ``span`` nesting, ``read_events``, ``peak_rss_kb``), the
bench-regression gate (``load_document``, ``bench_walks_per_second``,
``compare_bench``, ``compare_sweep``, ``trajectory_record``,
``append_trajectory``, ``run_gate``), and their integration with the
sweep runner (span wall times agreeing with cell telemetry).
"""

import json
import os

import pytest

from repro.arch import PageSize
from repro.hw.config import xeon_gold_6138
from repro.hw.tlb import TLB
from repro.obs import metrics, regress, trace
from repro.obs.metrics import MetricsRegistry
from repro.sim.sweep import run_group, run_sweep


# --------------------------------------------------------------------- #
# metrics registry
# --------------------------------------------------------------------- #

class TestMetricsRegistry:
    def test_counter_sums_across_instances(self):
        with metrics.scoped() as reg:
            a = metrics.counter("walks.total")
            b = metrics.counter("walks.total")
            a.inc()
            b.inc(3)
            assert reg.snapshot() == {"walks.total": 4}

    def test_counter_reset(self):
        with metrics.scoped() as reg:
            c = metrics.counter("x")
            c.inc(5)
            reg.reset()
            assert c.value == 0
            assert reg.snapshot() == {"x": 0}

    def test_gauge_last_set_wins(self):
        with metrics.scoped() as reg:
            g1 = metrics.gauge("depth")
            g2 = metrics.gauge("depth")
            g1.set(5)
            g2.set(7)
            assert reg.snapshot()["depth"] == 7
            g1.set(1)
            assert reg.snapshot()["depth"] == 1

    def test_histogram_expands_to_summary_fields(self):
        with metrics.scoped() as reg:
            h = metrics.histogram("latency")
            for value in (1, 2, 3):
                h.observe(value)
            snap = reg.snapshot()
            assert snap["latency.count"] == 3
            assert snap["latency.sum"] == 6
            assert snap["latency.mean"] == pytest.approx(2.0)
            assert snap["latency.min"] == 1
            assert snap["latency.max"] == 3

    def test_kind_mismatch_rejected(self):
        with metrics.scoped():
            metrics.counter("metric.name")
            with pytest.raises(TypeError):
                metrics.gauge("metric.name")

    def test_snapshot_prefix_filter(self):
        with metrics.scoped() as reg:
            metrics.counter("tlb.hits").inc()
            metrics.counter("cache.hits").inc()
            assert set(reg.snapshot(prefix="tlb.")) == {"tlb.hits"}
            assert set(reg.names()) == {"cache.hits", "tlb.hits"}

    def test_set_registry_swaps_active(self):
        fresh = MetricsRegistry()
        previous = metrics.set_registry(fresh)
        try:
            assert metrics.registry() is fresh
            metrics.counter("only.here").inc()
            assert fresh.snapshot() == {"only.here": 1}
        finally:
            metrics.set_registry(previous)
        assert metrics.registry() is previous

    def test_slug_normalizes_structure_names(self):
        assert metrics.slug("L1D(pte)") == "l1d_pte"
        assert metrics.slug("L2 STLB") == "l2_stlb"
        assert metrics.slug("dmt-native") == "dmt_native"

    def test_tlb_stats_register_and_stay_compatible(self):
        """Structures keep their attribute API while feeding the registry."""
        with metrics.scoped() as reg:
            tlb = TLB(xeon_gold_6138().l1d_tlb)
            assert not tlb.lookup(1, 0x1000, PageSize.SIZE_4K)
            tlb.install(1, 0x1000, PageSize.SIZE_4K)
            assert tlb.lookup(1, 0x1000, PageSize.SIZE_4K)
            # compatibility properties (read and write)
            assert tlb.stats.hits == 1 and tlb.stats.misses == 1
            assert tlb.stats.accesses == 2
            tlb.stats.hits += 10
            snap = reg.snapshot(prefix="tlb.")
            name = [n for n in snap if n.endswith(".hits")][0]
            assert snap[name] == 11


# --------------------------------------------------------------------- #
# trace spans
# --------------------------------------------------------------------- #

class TestTraceSpans:
    def test_span_is_noop_when_disabled(self):
        assert not trace.active()
        with trace.span("anything", tag=1) as sp:
            assert sp is None

    def test_span_nesting_and_attrs(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        trace.enable(path)
        try:
            with trace.span("parent", tag="outer") as sp:
                sp["walks"] = 42
                with trace.span("child"):
                    pass
        finally:
            trace.disable()
        assert not trace.active()
        events = trace.read_events(path)
        assert [e["name"] for e in events] == ["child", "parent"]
        child, parent = events
        assert parent["parent_id"] is None and parent["depth"] == 0
        assert child["parent_id"] == parent["span_id"]
        assert child["depth"] == 1
        assert parent["tag"] == "outer" and parent["walks"] == 42
        for event in events:
            assert event["seconds"] >= 0.0
            assert event["pid"] == os.getpid()
            assert "rss_delta_kb" in event and "start_unix" in event

    def test_enable_is_idempotent_for_same_path(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        first = trace.enable(path)
        try:
            assert trace.enable(path) is first
            assert trace.active()
        finally:
            trace.disable()

    def test_enable_appends_across_sessions(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        for _ in range(2):
            trace.enable(path)
            try:
                with trace.span("tick"):
                    pass
            finally:
                trace.disable()
        assert len(trace.read_events(path)) == 2

    def test_peak_rss_is_positive(self):
        assert trace.peak_rss_kb() > 0


# --------------------------------------------------------------------- #
# regression gate
# --------------------------------------------------------------------- #

def _bench_doc(wps_factor: float = 1.0):
    """A BENCH_engine.json-shaped document with scaled throughput."""
    return {"stage2": [
        {"design": "vanilla", "walks": 10_000,
         "vec_seconds": 0.5 / wps_factor},
        {"design": "dmt", "walks": 10_000,
         "vec_seconds": 0.25 / wps_factor},
    ]}


def _sweep_doc(latency: float = 100.0, wps: float = 50_000.0,
               error: bool = False):
    cell = {"env": "native", "workload": "GUPS", "design": "vanilla",
            "thp": False, "mean_latency": latency,
            "walks_per_second": wps}
    if error:
        cell = {"env": "native", "workload": "GUPS", "design": "vanilla",
                "thp": False, "error": "RuntimeError: boom"}
    return {"meta": {"wall_seconds": 1.0}, "cells": [cell]}


def _stream_doc(rps: float = 2_000_000.0, rss_kb: int = 200_000):
    """A BENCH_stage1_stream.json-shaped document."""
    return {"meta": {"bench": "stage1_stream"},
            "stream": {"nrefs": 10_000_000, "chunk": 1 << 20,
                       "refs_per_sec": rps, "peak_rss_kb": rss_kb}}


class TestRegressGate:
    def test_bench_walks_per_second(self):
        wps = regress.bench_walks_per_second(_bench_doc())
        assert wps["vanilla"] == pytest.approx(20_000.0)
        assert wps["dmt"] == pytest.approx(40_000.0)

    def test_compare_bench_clean_within_tolerance(self):
        # 10% slower stays inside the default 15% tolerance
        assert regress.compare_bench(_bench_doc(0.9), _bench_doc()) == []

    def test_compare_bench_flags_20pct_regression(self):
        found = regress.compare_bench(_bench_doc(0.8), _bench_doc())
        assert {r.metric for r in found} == {"walks_per_second"}
        assert len(found) == 2  # both designs regressed
        assert all(r.current < r.limit for r in found)

    def test_compare_bench_missing_design(self):
        current = {"stage2": [_bench_doc()["stage2"][0]]}
        found = regress.compare_bench(current, _bench_doc())
        assert [r.metric for r in found] == ["missing_cell"]
        assert "dmt" in found[0].key

    def test_compare_bench_group_floor(self):
        base = dict(_bench_doc(),
                    group={"speedup": 2.6, "floor": 2.0,
                           "cell_threads": 4})
        slow = dict(_bench_doc(), group={"speedup": 1.4})
        found = regress.compare_bench(slow, base)
        assert [r.key for r in found] == ["bench:group:cell_threads"]
        fast = dict(_bench_doc(), group={"speedup": 2.4})
        assert regress.compare_bench(fast, base) == []
        # null floor (interpreter backend): never enforced
        null = dict(_bench_doc(), group={"speedup": 0.9, "floor": None})
        assert regress.compare_bench(
            null, dict(_bench_doc(),
                       group={"speedup": 1.0, "floor": None})) == []

    def test_trajectory_records_stage2_warmth_and_group_wall(self):
        sweep = _sweep_doc()
        sweep["meta"]["cell_threads"] = 4
        sweep["cells"][0].update(stage2_source="disk", group_seconds=1.5)
        record = regress.trajectory_record(None, sweep, [], 0.15, 0.01)
        assert record["sweep"]["stage2_warm_hit_ratio"] == 1.0
        assert record["sweep"]["group_wall_seconds"] == 1.5
        assert record["sweep"]["cell_threads"] == 4
        bench = dict(_bench_doc(),
                     group={"cell_threads": 4, "speedup": 2.5,
                            "floor": 2.0, "kernel_backend": "numba"})
        record = regress.trajectory_record(bench, None, [], 0.15, 0.01)
        assert record["bench_group"]["speedup"] == 2.5
        assert record["bench_group"]["kernel_backend"] == "numba"

    def test_compare_stream_throughput_and_footprint(self):
        base = _stream_doc()
        assert regress.compare_stream(_stream_doc(), base) == []
        # throughput drop past tolerance
        slow = _stream_doc(rps=1_500_000.0)
        assert [r.metric for r in regress.compare_stream(slow, base)] \
            == ["refs_per_sec"]
        # footprint growth past tolerance — the materialization signal
        fat = _stream_doc(rss_kb=500_000)
        assert [r.metric for r in regress.compare_stream(fat, base)] \
            == ["peak_rss_kb"]
        # within tolerance both ways
        assert regress.compare_stream(
            _stream_doc(rps=1_900_000.0, rss_kb=210_000), base) == []

    def test_compare_stream_empty_documents(self):
        assert regress.compare_stream({}, _stream_doc()) != []  # no data
        assert regress.compare_stream(_stream_doc(), {}) == []  # no baseline

    def test_trajectory_record_includes_stream(self):
        record = regress.trajectory_record(None, None, [], 0.15, 0.01,
                                           stream=_stream_doc())
        assert record["stage1_stream"]["peak_rss_kb"] == 200_000
        assert record["stage1_stream"]["refs_per_sec"] == 2_000_000.0

    def test_compare_sweep_latency_is_tight(self):
        # mean_latency is deterministic: +2% trips the 1% tolerance
        found = regress.compare_sweep(_sweep_doc(latency=102.0),
                                      _sweep_doc())
        assert [r.metric for r in found] == ["mean_latency"]
        # ... but +0.5% does not
        assert regress.compare_sweep(_sweep_doc(latency=100.5),
                                     _sweep_doc()) == []

    def test_compare_sweep_throughput_is_loose(self):
        found = regress.compare_sweep(_sweep_doc(wps=40_000.0), _sweep_doc())
        assert [r.metric for r in found] == ["walks_per_second"]
        assert regress.compare_sweep(_sweep_doc(wps=45_000.0),
                                     _sweep_doc()) == []

    def test_compare_sweep_error_and_missing_cells(self):
        found = regress.compare_sweep(_sweep_doc(error=True), _sweep_doc())
        assert [r.metric for r in found] == ["error_cell"]
        found = regress.compare_sweep({"cells": []}, _sweep_doc())
        assert [r.metric for r in found] == ["missing_cell"]

    def test_trajectory_record_and_append(self, tmp_path):
        record = regress.trajectory_record(_bench_doc(), _sweep_doc(), [],
                                           0.15, 0.01)
        assert record["status"] == "clean"
        assert record["bench_walks_per_second"]["vanilla"] == \
            pytest.approx(20_000.0)
        assert record["sweep"]["cells"] == 1
        store = str(tmp_path / "BENCH_trajectory.json")
        regress.append_trajectory(store, record)
        document = regress.append_trajectory(store, record)
        assert len(document["records"]) == 2
        assert regress.load_document(store)["records"][0]["status"] == "clean"

    def _write(self, path, document):
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        return str(path)

    def test_run_gate_exit_codes(self, tmp_path):
        baseline = self._write(tmp_path / "baseline.json", _bench_doc())
        regressed = self._write(tmp_path / "regressed.json", _bench_doc(0.8))
        clean = self._write(tmp_path / "clean.json", _bench_doc(1.0))
        trajectory = str(tmp_path / "BENCH_trajectory.json")
        lines = []

        # a synthetic 20% walks/sec regression exits non-zero ...
        assert regress.run_gate(
            bench_path=regressed, baseline_bench_path=baseline,
            trajectory_path=trajectory, stream_path=None,
            out=lines.append) == 1
        assert any("REGRESSION" in line for line in lines)
        assert not os.path.exists(trajectory)

        # ... a clean run exits 0 and appends to the trajectory ...
        assert regress.run_gate(
            bench_path=clean, baseline_bench_path=baseline,
            trajectory_path=trajectory, stream_path=None,
            out=lines.append) == 0
        assert len(regress.load_document(trajectory)["records"]) == 1

        # ... and nothing to compare is a usage error.
        assert regress.run_gate(
            bench_path=str(tmp_path / "absent.json"),
            baseline_bench_path=baseline,
            trajectory_path=None, stream_path=None,
            out=lines.append) == 2

    def test_run_gate_stream_comparison(self, tmp_path):
        baseline = self._write(tmp_path / "stream_base.json", _stream_doc())
        fat = self._write(tmp_path / "stream_fat.json",
                          _stream_doc(rss_kb=500_000))
        clean = self._write(tmp_path / "stream_ok.json", _stream_doc())
        assert regress.run_gate(
            bench_path=None, baseline_bench_path=None,
            stream_path=fat, baseline_stream_path=baseline,
            trajectory_path=None, out=lambda line: None) == 1
        trajectory = str(tmp_path / "BENCH_trajectory.json")
        assert regress.run_gate(
            bench_path=None, baseline_bench_path=None,
            stream_path=clean, baseline_stream_path=baseline,
            trajectory_path=trajectory, out=lambda line: None) == 0
        record = regress.load_document(trajectory)["records"][-1]
        assert record["stage1_stream"]["peak_rss_kb"] == 200_000

    def test_run_gate_missing_sweep_baseline_is_usage_error(self, tmp_path):
        sweep = self._write(tmp_path / "sweep.json", _sweep_doc())
        assert regress.run_gate(
            bench_path=None, baseline_bench_path=None, sweep_path=sweep,
            baseline_sweep_path=str(tmp_path / "absent.json"),
            trajectory_path=None, out=lambda line: None) == 2

    def test_run_gate_sweep_comparison(self, tmp_path):
        baseline = self._write(tmp_path / "base_sweep.json", _sweep_doc())
        bad = self._write(tmp_path / "bad_sweep.json",
                          _sweep_doc(latency=150.0))
        assert regress.run_gate(
            bench_path=None, baseline_bench_path=None, sweep_path=bad,
            baseline_sweep_path=baseline, trajectory_path=None,
            out=lambda line: None) == 1

    def test_cli_regress_command(self, tmp_path):
        from repro.__main__ import main

        baseline = self._write(tmp_path / "baseline.json", _bench_doc())
        current = self._write(tmp_path / "current.json", _bench_doc(0.8))
        assert main(["regress", "--bench", current,
                     "--baseline-bench", baseline,
                     "--no-trajectory"]) == 1


# --------------------------------------------------------------------- #
# sweep integration
# --------------------------------------------------------------------- #

class TestSweepIntegration:
    def test_unknown_design_raises_early(self):
        with pytest.raises(KeyError, match="unknown design"):
            run_sweep(envs=["native"], workloads=["GUPS"],
                      designs=["vanilla", "bogus"], workers=1,
                      scale=4096, nrefs=2000)

    def test_run_group_emits_error_cell_for_unknown_design(self):
        task = (("native",), "GUPS", False, ("vanilla", "bogus"),
                dict(scale=4096, nrefs=2000), None, None)
        cells = run_group(task)
        good = [c for c in cells if "error" not in c]
        bad = [c for c in cells if "error" in c]
        assert [c["design"] for c in good] == ["vanilla"]
        assert len(bad) == 1
        assert bad[0]["design"] == "bogus"
        assert "unknown design" in bad[0]["error"]

    def test_sweep_trace_spans_agree_with_cell_telemetry(self, tmp_path):
        trace_path = str(tmp_path / "sweep_trace.jsonl")
        document = run_sweep(
            envs=["native"], workloads=["GUPS"],
            designs=["vanilla", "dmt"], workers=1,
            scale=4096, nrefs=3000, trace_path=trace_path,
        )
        assert document["meta"]["trace"] == trace_path
        assert document["meta"]["metrics"] == {
            "sweep.groups": 1, "sweep.cells": 2, "sweep.error_cells": 0}
        assert not trace.active()  # run_sweep closed the stream

        events = trace.read_events(trace_path)
        names = [e["name"] for e in events]
        assert "sweep.run_group" in names and "sweep.build_sim" in names
        assert "stage1" in names and "stage1.tlb_filter" in names

        cells = {c["design"]: c for c in document["cells"]}
        replays = {e["design"]: e for e in events
                   if e["name"] == "stage2.replay"}
        assert set(replays) == {"vanilla", "dmt"}
        for design, span_event in replays.items():
            cell = cells[design]
            assert span_event["env"] == "native"
            assert span_event["walks"] == cell["walks"]
            # the cell timer wraps the span, so they agree up to the
            # (tiny) bookkeeping outside the span
            assert span_event["seconds"] <= cell["replay_seconds"]
            assert span_event["seconds"] == pytest.approx(
                cell["replay_seconds"], rel=0.25, abs=0.05)

        stage1 = [e for e in events if e["name"] == "stage1"][0]
        assert stage1["misses"] == cells["vanilla"]["miss_count"]
        assert stage1["refs"] == cells["vanilla"]["total_refs"]
        assert stage1["seconds"] <= cells["vanilla"]["stage1_seconds"]
        assert stage1["seconds"] == pytest.approx(
            cells["vanilla"]["stage1_seconds"], rel=0.25, abs=0.05)
