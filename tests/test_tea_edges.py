"""TEA manager edge cases: empty VMAs, boundary spans, reallocation."""

from repro.arch import PageSize
from repro.core.tea import TEAManager, granule_shift
from repro.kernel.page_table import RadixPageTable
from repro.mem.buddy import BuddyAllocator
from repro.mem.physmem import PhysicalMemory

MB = 1 << 20
GRANULE = 1 << granule_shift(PageSize.SIZE_4K)  # 2 MB of VA per TEA page


def test_zero_length_vma_creates_no_tea():
    manager = TEAManager(BuddyAllocator(1024))
    free_before = manager.allocator.free_frames
    assert manager.create(3 * GRANULE, 3 * GRANULE, PageSize.SIZE_4K) == []
    assert manager.teas == {}
    assert manager.allocator.free_frames == free_before


def test_vma_collapsing_to_owned_granules_creates_no_tea():
    manager = TEAManager(BuddyAllocator(1024))
    manager.create(0, 2 * GRANULE, PageSize.SIZE_4K)
    # a sub-granule VMA inside an owned span needs no new leaf tables
    assert manager.create(GRANULE + 0x1000, GRANULE + 0x3000,
                          PageSize.SIZE_4K) == []


def test_vma_spanning_a_tea_boundary_trims_to_unowned_granules():
    manager = TEAManager(BuddyAllocator(4096))
    first = manager.create(0, 2 * GRANULE, PageSize.SIZE_4K)[0]
    created = manager.create(GRANULE, 4 * GRANULE, PageSize.SIZE_4K)
    assert len(created) == 1
    second = created[0]
    # the overlapping granule stays with its original owner
    assert (second.va_start, second.va_end) == (2 * GRANULE, 4 * GRANULE)
    assert manager.owner_of(GRANULE, PageSize.SIZE_4K) is first
    assert manager.owner_of(2 * GRANULE, PageSize.SIZE_4K) is second
    assert manager.owner_of(3 * GRANULE, PageSize.SIZE_4K) is second
    # register arithmetic resolves every granule to a distinct TEA frame
    frames = {manager.frame_for_table(g * GRANULE, PageSize.SIZE_4K)
              for g in range(4)}
    assert len(frames) == 4


def test_tea_inplace_expansion_when_contiguity_allows():
    manager = TEAManager(BuddyAllocator(4096))
    tea = manager.create(0, GRANULE, PageSize.SIZE_4K)[0]
    grown, migration = manager.expand(tea, 2 * GRANULE)
    assert migration is None and grown is tea
    assert tea.npages == 2
    assert manager.owner_of(GRANULE, PageSize.SIZE_4K) is tea


def test_tea_reallocation_after_vma_growth():
    memory = PhysicalMemory(64 * MB)
    table = RadixPageTable(memory)
    manager = TEAManager(memory.allocator)
    for granule in range(2):
        table.map(granule * GRANULE, memory.allocator.alloc_pages(0),
                  PageSize.SIZE_4K)
    tea = manager.create(0, 2 * GRANULE, PageSize.SIZE_4K)[0]
    old_base = tea.base_frame
    # force the migration path: in-place contiguity exhausted
    memory.allocator.expand_contig = lambda *args: False
    target, migration = manager.expand(tea, 6 * GRANULE, page_table=table)
    assert migration is not None and target is not tea
    assert not target.present  # P-bit clear until migration completes (§4.3)
    finished = manager.finish_migration(migration)
    assert finished is target and target.present
    assert (target.va_start, target.va_end) == (0, 6 * GRANULE)
    assert target.npages == 6
    # the old TEA is retired and its run released
    assert tea.tea_id not in manager.teas
    assert not manager.owns_frame(old_base)
    # every leaf table landed where the register arithmetic expects it
    for granule in range(2):
        va = granule * GRANULE
        assert table.table_frame(va, 1) == target.frame_for_table(va)
    # ownership rebound to the new TEA across the whole grown span
    for granule in range(6):
        assert manager.owner_of(granule * GRANULE, PageSize.SIZE_4K) is target
