"""The streaming stage-0→1 pipeline: bit-identity and constant memory.

Contract under test (DESIGN.md §13): for every workload, seed, and
chunk size — dividing or not — the concatenated chunk stream equals the
monolithic trace draw for draw; the streamed TLB filter emits the same
miss stream and reaches the same TLB/credit end state as the one-shot
filter; and the machine-level streaming path is byte-identical to the
monolithic path, cold or warm, with or without an artifact cache.
"""

import dataclasses

import numpy as np
import pytest

from repro.arch import PageSize
from repro.hw.config import xeon_gold_6138
from repro.kernel.kernel import Kernel
from repro.sim import tlb_vec
from repro.sim.artifacts import ArtifactCache
from repro.sim.machine import (
    DEFAULT_STREAM_CHUNK,
    STREAM_NREFS_THRESHOLD,
    NativeSimulation,
    SimConfig,
)
from repro.sim.simulator import Stage1Cache, make_size_lookup
from repro.workloads import catalogue, get

MB = 1 << 20
WORKLOADS = sorted(catalogue(4096))
SEEDS = (1, 7)
#: 977 is prime (never divides nrefs); 512 and 4096 exercise small and
#: page-sized chunks. nrefs=5000 is not a multiple of any of them.
CHUNKS = (512, 977, 4096)
NREFS = 5000


def _layout(name, scale=4096):
    kernel = Kernel(memory_bytes=512 * MB)
    proc = kernel.create_process()
    wl = get(name, scale)
    return wl, wl.install(proc, populate=False), proc


# --------------------------------------------------------------------- #
# Satellite 3: generator chunk parity, all workloads x seeds x chunks
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("name", WORKLOADS)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("chunk", CHUNKS)
def test_chunked_trace_is_bit_identical(name, seed, chunk):
    wl, layout, _ = _layout(name)
    mono = wl.generate_trace(layout, NREFS, seed=seed)
    pieces = list(wl.generate_trace_chunks(layout, NREFS, seed=seed,
                                           chunk=chunk))
    assert all(p.dtype == np.int64 for p in pieces)
    # every chunk but the last is exactly chunk-sized
    assert all(len(p) == chunk for p in pieces[:-1])
    assert np.array_equal(np.concatenate(pieces), mono), name


@pytest.mark.parametrize("name", WORKLOADS)
def test_chunked_trace_tiny_nrefs_edges(name):
    wl, layout, _ = _layout(name)
    for nrefs in (0, 1, 2, 3, 5):
        mono = wl.generate_trace(layout, nrefs, seed=3)
        pieces = list(wl.generate_trace_chunks(layout, nrefs, seed=3,
                                               chunk=2))
        got = (np.concatenate(pieces) if pieces
               else np.empty(0, dtype=np.int64))
        assert np.array_equal(got, mono), (name, nrefs)


def test_chunk_must_be_positive():
    wl, layout, _ = _layout("GUPS")
    with pytest.raises(ValueError):
        list(wl.generate_trace_chunks(layout, 100, seed=0, chunk=0))


# --------------------------------------------------------------------- #
# TLBFilterStream: state carried across chunk boundaries
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("accept", [None,
                                    {PageSize.SIZE_4K: 0.37,
                                     PageSize.SIZE_2M: 0.81}])
@pytest.mark.parametrize("chunk", CHUNKS)
def test_stream_filter_matches_one_shot(accept, chunk):
    wl, layout, proc = _layout("Redis")
    trace = wl.generate_trace(layout, NREFS, seed=1)
    machine = xeon_gold_6138()
    lookup = make_size_lookup(proc.page_table)

    mono = tlb_vec.filter_misses(trace, machine, lookup,
                                 accept_rates=accept)
    oracle = tlb_vec.TLBFilterStream(machine, lookup, accept_rates=accept)
    oracle_misses = oracle.feed(trace)

    stream = tlb_vec.TLBFilterStream(machine, lookup, accept_rates=accept)
    segments = [stream.feed(trace[i:i + chunk])
                for i in range(0, len(trace), chunk)]
    got = np.concatenate([s for s in segments if s.size]) \
        if any(s.size for s in segments) else np.empty(0, dtype=np.int64)

    assert np.array_equal(mono, oracle_misses)
    assert np.array_equal(got, mono)
    assert stream.total_refs == oracle.total_refs == len(trace)
    assert stream.total_misses == len(mono)
    # identical TLB way lists and thinning credits after the last chunk
    assert stream.end_state() == oracle.end_state()


def test_stream_filter_empty_chunk_is_noop():
    wl, layout, proc = _layout("GUPS")
    stream = tlb_vec.TLBFilterStream(xeon_gold_6138(),
                                     make_size_lookup(proc.page_table))
    out = stream.feed(np.empty(0, dtype=np.int64))
    assert out.size == 0 and stream.total_refs == 0


# --------------------------------------------------------------------- #
# Machine level: streaming == monolithic, cold and warm
# --------------------------------------------------------------------- #

BASE = SimConfig(scale=2048, nrefs=40_000, seed=3)


def test_resolved_stream_chunk_policy():
    assert BASE.resolved_stream_chunk() is None  # below threshold
    forced = dataclasses.replace(BASE, stream_chunk=9000)
    assert forced.resolved_stream_chunk() == 9000
    off = dataclasses.replace(BASE, nrefs=STREAM_NREFS_THRESHOLD,
                              stream_chunk=0)
    assert off.resolved_stream_chunk() is None   # 0 forces monolithic
    auto = dataclasses.replace(BASE, nrefs=STREAM_NREFS_THRESHOLD)
    assert auto.resolved_stream_chunk() == DEFAULT_STREAM_CHUNK
    scalar = dataclasses.replace(BASE, nrefs=STREAM_NREFS_THRESHOLD,
                                 engine="scalar")
    assert scalar.resolved_stream_chunk() is None  # vec-only auto


def test_stream_chunk_rejects_scalar_engine():
    with pytest.raises(ValueError):
        SimConfig(stream_chunk=1000, engine="scalar")
    with pytest.raises(ValueError):
        SimConfig(stream_chunk=-1)


@pytest.mark.parametrize("name", ["GUPS", "Redis", "BTree"])
def test_machine_streaming_matches_monolithic(name):
    mono = NativeSimulation(name, dataclasses.replace(BASE, stream_chunk=0))
    stream = NativeSimulation(name,
                              dataclasses.replace(BASE, stream_chunk=7001))
    assert mono.stage1_streamed is False
    assert stream.stage1_streamed is True
    assert stream.tlb.total_refs == mono.tlb.total_refs
    assert np.array_equal(np.asarray(stream.tlb.miss_vas),
                          np.asarray(mono.tlb.miss_vas)), name


def test_machine_streaming_matches_monolithic_1m_gups():
    """The issue's 10^6-reference acceptance check."""
    cfg = SimConfig(scale=1024, nrefs=1_000_000, seed=0)
    mono = NativeSimulation("GUPS", dataclasses.replace(cfg, stream_chunk=0))
    stream = NativeSimulation(
        "GUPS", dataclasses.replace(cfg, stream_chunk=1 << 17))
    assert np.array_equal(np.asarray(stream.tlb.miss_vas),
                          np.asarray(mono.tlb.miss_vas))
    assert stream.tlb.total_refs == mono.tlb.total_refs == 1_000_000


def test_streaming_persists_segmented_artifacts(tmp_path):
    cfg = dataclasses.replace(BASE, stream_chunk=9000)
    cold = NativeSimulation(
        "Redis", cfg, stage1=Stage1Cache(artifacts=ArtifactCache(
            str(tmp_path))))
    assert cold.stage1_source == "computed"

    # warm run: the segmented stage-1 entry is served from disk
    warm_cache = ArtifactCache(str(tmp_path))
    warm = NativeSimulation("Redis", cfg,
                            stage1=Stage1Cache(artifacts=warm_cache))
    assert warm.stage1_source == "disk"
    assert warm_cache.seg_hits >= 1
    assert np.array_equal(np.asarray(warm.tlb.miss_vas),
                          np.asarray(cold.tlb.miss_vas))

    # a monolithic run against the same cache reads the segmented entry
    mono = NativeSimulation(
        "Redis", dataclasses.replace(cfg, stream_chunk=0),
        stage1=Stage1Cache(artifacts=ArtifactCache(str(tmp_path))))
    assert mono.stage1_source == "disk"
    assert np.array_equal(np.asarray(mono.tlb.miss_vas),
                          np.asarray(cold.tlb.miss_vas))


def test_streaming_reuses_spilled_trace_segments(tmp_path):
    """Evicting stage 1 but keeping the trace segments: the second
    streaming run replays the stored trace instead of regenerating."""
    import glob
    import json
    import os

    cfg = dataclasses.replace(BASE, stream_chunk=9000)
    cold = NativeSimulation(
        "GUPS", cfg, stage1=Stage1Cache(artifacts=ArtifactCache(
            str(tmp_path))))
    for path in glob.glob(os.path.join(str(tmp_path), "*.json")):
        with open(path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("stage") == "stage1":
            ArtifactCache(str(tmp_path)).evict(
                os.path.basename(path)[:-len(".json")])
    rerun_cache = ArtifactCache(str(tmp_path))
    rerun = NativeSimulation("GUPS", cfg,
                             stage1=Stage1Cache(artifacts=rerun_cache))
    assert rerun.stage1_source == "computed"
    assert rerun_cache.seg_hits >= 1  # the trace segments were read back
    assert np.array_equal(np.asarray(rerun.tlb.miss_vas),
                          np.asarray(cold.tlb.miss_vas))


def test_stream_bench_budget_gate(tmp_path):
    """benchmarks/bench_stage1_stream.py is CI's RSS tripwire: it must
    write its document and exit 0 under a generous budget, and exit 1
    when the budget is impossibly tight."""
    import json
    import os
    import subprocess
    import sys

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    script = os.path.join(root, "benchmarks", "bench_stage1_stream.py")
    out = str(tmp_path / "bench.json")
    base = [sys.executable, script, "--workload", "GUPS", "--scale",
            "1024", "--nrefs", "200000", "--chunk", "65536"]
    env = dict(os.environ, PYTHONPATH=os.path.join(root, "src"))

    ok = subprocess.run(base + ["--rss-budget-mb", "4096", "--out", out],
                        env=env, capture_output=True, text=True)
    assert ok.returncode == 0, ok.stderr
    with open(out, encoding="utf-8") as handle:
        document = json.load(handle)
    record = document["stream"]
    assert document["meta"]["bench"] == "stage1_stream"
    assert record["streamed"] is True
    assert record["total_refs"] == 200000
    assert record["refs_per_sec"] > 0 and record["peak_rss_kb"] > 0

    tight = subprocess.run(base + ["--rss-budget-mb", "10", "--out", "-"],
                           env=env, capture_output=True, text=True)
    assert tight.returncode == 1
    assert "exceeds" in tight.stderr


def test_streaming_cell_field_is_deterministic():
    """``stage1_streamed`` must depend only on the config (the CI
    regress gate compares it between cold and warm sweep runs)."""
    cfg = dataclasses.replace(BASE, stream_chunk=9000)
    runs = [NativeSimulation("GUPS", cfg).stage1_streamed
            for _ in range(2)]
    assert runs == [True, True]
