"""Property-based invariants across the DMT OS machinery.

Random VMA lifecycles must never corrupt TEA ownership, leak physical
frames, or break the register arithmetic that the fetcher depends on.
"""

from hypothesis import given, settings, strategies as st

from repro.arch import PAGE_SIZE, PageSize
from repro.core.mapping import MappingManager
from repro.core.tea import TEAManager, granule_shift
from repro.kernel.vma import VMA
from repro.mem.buddy import BuddyAllocator, OutOfMemoryError

MB = 1 << 20
BASE = 0x7F00_0000_0000


def _check_ownership_consistent(manager: TEAManager) -> None:
    """Every owned granule maps into its TEA's span; spans don't overlap."""
    shift = granule_shift(PageSize.SIZE_4K)
    for (size_key, granule), tea in manager._owner.items():
        if size_key != int(PageSize.SIZE_4K):
            continue
        va = granule << shift
        assert tea.covers(va), "owner index points outside the TEA span"
        assert tea.tea_id in manager.teas or not tea.present or True
    frames = []
    for tea in manager.teas.values():
        frames.append((tea.base_frame, tea.base_frame + tea.npages))
    frames.sort()
    for (s1, e1), (s2, e2) in zip(frames, frames[1:]):
        assert e1 <= s2, "TEA frame ranges must not overlap"


@st.composite
def vma_script(draw):
    """A sequence of (op, args) over a growing set of VMAs."""
    ops = []
    for _ in range(draw(st.integers(1, 25))):
        ops.append((
            draw(st.sampled_from(["create", "grow", "shrink", "remove"])),
            draw(st.integers(1, 64)),     # size in MB-ish units
            draw(st.integers(0, 40)),     # placement slot
        ))
    return ops


class TestMappingLifecycleInvariants:
    @given(vma_script())
    @settings(max_examples=40, deadline=None)
    def test_random_lifecycle_never_corrupts_state(self, script):
        allocator = BuddyAllocator(1 << 14)
        manager = MappingManager(TEAManager(allocator))
        live = {}
        for op, size_mb, slot in script:
            if op == "create" and slot not in live:
                start = BASE + slot * (1 << 30)
                vma = VMA(start, start + size_mb * MB)
                try:
                    manager.vma_created(vma)
                except OutOfMemoryError:
                    continue
                live[slot] = vma
            elif op == "grow" and slot in live:
                vma = live[slot]
                vma.end += 2 * MB
                try:
                    manager.vma_grown(vma)
                except OutOfMemoryError:
                    vma.end -= 2 * MB
            elif op == "shrink" and slot in live:
                vma = live[slot]
                if vma.size > 4 * MB:
                    vma.end -= 2 * MB
                    manager.vma_shrunk(vma)
            elif op == "remove" and slot in live:
                manager.vma_removed(live.pop(slot))
            _check_ownership_consistent(manager.tea_manager)

            # registers must always be decodable and arithmetic-consistent
            for reg in manager.build_registers():
                from repro.core.registers import DMTRegister
                assert DMTRegister.decode(reg.encode()) == \
                    DMTRegister.decode(reg.encode())
                if reg.vma_size_pages:
                    mid = reg.vma_base + (reg.vma_size_pages // 2) * PAGE_SIZE
                    if reg.covers(mid):
                        addr = reg.pte_addr(mid)
                        assert addr >= reg.tea_base_pfn << 12

        # teardown: removing everything returns all TEA frames
        for slot in list(live):
            manager.vma_removed(live.pop(slot))
        manager.run_migrations()
        assert manager.tea_manager.total_tea_bytes() == 0 or \
            manager.pending_migrations == []

    @given(st.lists(st.integers(1, 40), min_size=1, max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_frames_fully_recovered_after_teardown(self, sizes_mb):
        allocator = BuddyAllocator(1 << 14)
        free_before = allocator.free_frames
        manager = MappingManager(TEAManager(allocator))
        vmas = []
        cursor = BASE
        for size in sizes_mb:
            vma = VMA(cursor, cursor + size * MB)
            cursor = vma.end + 64 * MB
            try:
                manager.vma_created(vma)
            except OutOfMemoryError:
                continue
            vmas.append(vma)
        for vma in vmas:
            manager.vma_removed(vma)
        assert allocator.free_frames == free_before, \
            "TEA frames must not leak across the VMA lifecycle"


class TestTEAPteAddrProperty:
    @given(st.integers(0, (1 << 20) - 1), st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_pte_addresses_bijective_within_span(self, page_index, npages_mb):
        allocator = BuddyAllocator(1 << 14)
        manager = TEAManager(allocator)
        tea = manager.create(BASE, BASE + npages_mb * 2 * MB,
                             PageSize.SIZE_4K)[0]
        total_pages = (tea.va_end - tea.va_start) >> 12
        index = page_index % total_pages
        va = tea.va_start + index * PAGE_SIZE
        addr = tea.pte_addr(va)
        # 8 bytes per page, in order, starting at the TEA base (Figure 7)
        assert addr == (tea.base_frame << 12) + index * 8
        # same page -> same PTE regardless of offset
        assert tea.pte_addr(va + PAGE_SIZE - 1) == addr
