"""dmtlint: planted-bug detection, engine mechanics, repo cleanliness."""

import json
from pathlib import Path

import pytest

from repro.analysis.lint import LintConfig, lint_file, lint_paths, main

REPO = Path(__file__).resolve().parents[1]
PACKAGE = REPO / "src" / "repro"
STATIC = REPO / "tests" / "fixtures" / "planted_bugs" / "static"

#: Expected rule IDs per planted static fixture — and nothing else.
EXPECTED = {
    "addr_float_bug.py": {"L101", "L102"},
    "magic_mask_bug.py": {"L103"},
    "unseeded_rng_bug.py": {"L201", "L202", "L204"},
    "set_iteration_bug.py": {"L203"},
    "uncited_cost_bug.py": {"L301"},
    "unreferenced_vec_bug.py": {"L401"},
    "undeclared_kernel_bug.py": {"L402"},
    "domain_mix_bug.py": {"L501"},
    "domain_call_bug.py": {"L502"},
    "domain_return_bug.py": {"L503"},
    "kernel_dict_bug.py": {"L601"},
    "kernel_closure_bug.py": {"L602"},
    "kernel_splat_bug.py": {"L603"},
    "kernel_format_bug.py": {"L604"},
    "kernel_list_bug.py": {"L605"},
    "kernel_raise_bug.py": {"L606"},
    "kernel_call_bug.py": {"L607"},
    "stream_materialize_bug.py": {"L701", "L702"},
}


def rules_of(path, **config_kwargs):
    return {v.rule for v in lint_paths([path], LintConfig(**config_kwargs))}


# --------------------------------------------------------------------- #
# Planted-bug detection (acceptance criterion)
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("fixture,expected", sorted(EXPECTED.items()))
def test_planted_static_bug_detected(fixture, expected):
    assert rules_of(STATIC / fixture) == expected


def test_every_static_fixture_is_exercised():
    assert {p.name for p in STATIC.glob("*.py")} == set(EXPECTED)


def test_l401_names_the_untested_function():
    # assembled from pieces so the name stays out of the L4 corpus
    name = "quantized" + "_filter" + "_hop"
    violations = lint_paths([STATIC / "unreferenced_vec_bug.py"])
    assert [v.rule for v in violations] == ["L401"]
    assert name in violations[0].message


def test_l402_requires_declared_oracle():
    # the kernels scope implies vec, so both L401 and L402 are in play;
    # naming distilled_probe_kernel here keeps it in the L401 corpus
    violations = lint_paths([STATIC / "undeclared_kernel_bug.py"])
    assert [v.rule for v in violations] == ["L402"]
    assert "distilled_probe_kernel" in violations[0].message


def test_l7_needs_streaming_scope():
    # the same materializing code outside the streaming scope is fine
    source = ("import numpy as np\n"
              "def gather(chunks):\n"
              "    return np.concatenate(list(chunks))\n")
    assert lint_file(Path("elsewhere.py"), source=source) == []
    scoped = "# dmtlint-scope: streaming\n" + source
    rules = {v.rule for v in lint_file(Path("elsewhere.py"), source=scoped)}
    assert rules == {"L701"}


def test_l7_scopes_the_streaming_path_files():
    from repro.analysis.lint.engine import STREAMING_FILES, FileContext

    for parent, name in STREAMING_FILES:
        path = PACKAGE / ("sim" if parent == "sim" else "workloads") / name
        ctx = FileContext(path, path.read_text(encoding="utf-8"),
                          LintConfig())
        assert "streaming" in ctx.scopes, path


def test_repro_package_is_lint_clean():
    violations = lint_paths([PACKAGE])
    assert violations == [], "\n".join(v.render() for v in violations)


# --------------------------------------------------------------------- #
# Engine mechanics
# --------------------------------------------------------------------- #

def test_scope_pragma_gates_scoped_rules():
    source = "pending = set([3, 1, 2])\nout = [x for x in pending]\n"
    path = Path("inline.py")  # not under sim/core/translation
    assert not lint_file(path, source=source)
    pragma = "# dmtlint-scope: result-path\n" + source
    assert {v.rule for v in lint_file(path, source=pragma)} == {"L203"}


def test_blanket_ignore_suppresses_everything():
    source = "half = va / 2  # dmtlint: ignore\n"
    assert not lint_file(Path("inline.py"), source=source)


def test_targeted_ignore_suppresses_only_named_rule():
    source = "half = va / float(va)  # dmtlint: ignore[L102]\n"
    assert {v.rule for v in lint_file(Path("inline.py"), source=source)} \
        == {"L101"}


def test_syntax_error_reports_l000(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def (:\n", encoding="utf-8")
    assert rules_of(bad) == {"L000"}


def test_rule_selection_by_family():
    assert rules_of(STATIC, rules={"L1"}) == {"L101", "L102", "L103"}
    assert rules_of(STATIC, rules={"L203"}) == {"L203"}


def test_l4_skipped_without_a_corpus(tmp_path):
    config = LintConfig(tests_dir=tmp_path)  # empty corpus
    violations = lint_paths([STATIC / "unreferenced_vec_bug.py"], config)
    assert violations == []


# --------------------------------------------------------------------- #
# L5 address-domain dataflow
# --------------------------------------------------------------------- #

def test_l501_flags_cross_domain_addition_inline():
    source = "def f(gva, gpa):\n    return gva + gpa\n"
    violations = lint_file(Path("inline.py"), source=source)
    assert [v.rule for v in violations] == ["L501"]
    assert violations[0].evidence == "left=gva right=gpa"


def test_l501_allows_page_offset_and_frame_arithmetic():
    # Figure 7 register arithmetic: all of this is domain-correct.
    source = (
        "def f(va, va_start, base_frame, shift, nbytes):\n"
        "    granule = (va - va_start) >> shift\n"
        "    frame = base_frame + granule\n"
        "    tail = nbytes - (va - va_start)\n"
        "    return frame, tail\n"
    )
    assert not lint_file(Path("inline.py"), source=source)


def test_l502_crosses_call_graph_through_returns():
    # gpa_of_page() returns a gpa (name-seeded); feeding it to an
    # hpa parameter two calls later is caught interprocedurally.
    source = (
        "def gpa_of_page(page):\n"
        "    return page << 12\n"
        "def _read(hpa):\n"
        "    return hpa + 8\n"
        "def walk(page):\n"
        "    return _read(gpa_of_page(page))\n"
    )
    violations = lint_file(Path("inline.py"), source=source)
    assert [v.rule for v in violations] == ["L502"]


def test_domain_annotation_any_marks_polymorphic_params():
    source = (
        "# dmtlint-domain: va=any -- keyed by either space\n"
        "def _probe(va):\n"
        "    return va + 8\n"
        "def host_walk(gpa):\n"
        "    return _probe(gpa)\n"
    )
    assert not lint_file(Path("inline.py"), source=source)


def test_domain_annotation_overrides_name_seeding():
    source = (
        "# dmtlint-domain: return=gpa\n"
        "def map_host_frames(n):\n"
        "    return n\n"
        "def _fill(gpa):\n"
        "    return gpa\n"
        "def serve(n):\n"
        "    return _fill(map_host_frames(n))\n"
    )
    assert not lint_file(Path("inline.py"), source=source)


def test_l501_waivable_with_targeted_ignore():
    source = "def f(vpn, cycles):\n" \
             "    return vpn + cycles  # dmtlint: ignore[L501]\n"
    assert not lint_file(Path("inline.py"), source=source)


def test_l6_flags_dict_kernel_without_numba(tmp_path):
    # acceptance criterion: a kernel edited to use a dict is flagged
    # statically, numba not required
    kernels = tmp_path / "sim" / "kernels"
    kernels.mkdir(parents=True)
    kernel = kernels / "broken.py"
    kernel.write_text(
        "from repro.sim.kernels.backend import jit\n\n\n"
        "@jit\ndef _lut(keys, n):\n"
        "    table = {}\n"
        "    for i in range(n):\n"
        "        table[keys[i]] = i\n"
        "    return table\n",
        encoding="utf-8",
    )
    assert rules_of(kernel) == {"L601"}


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #

def test_cli_exit_codes_and_summary(capsys):
    assert main([str(PACKAGE)]) == 0
    assert "— clean" in capsys.readouterr().out
    assert main([str(STATIC)]) == 1
    out = capsys.readouterr().out
    assert "L101" in out and "violation(s)" in out


def test_cli_json_output(capsys):
    assert main([str(STATIC), "--rules", "L3", "--json"]) == 1
    findings = json.loads(capsys.readouterr().out)
    assert [f["rule"] for f in findings] == ["L301"]
    assert findings[0]["path"].endswith("uncited_cost_bug.py")


def test_cli_format_json_is_one_finding_per_line(capsys):
    assert main([str(STATIC / "domain_call_bug.py"),
                 "--format", "json"]) == 1
    lines = capsys.readouterr().out.strip().splitlines()
    findings = [json.loads(line) for line in lines]  # round-trips
    assert [f["rule"] for f in findings] == ["L502"]
    record = findings[0]
    assert set(record) >= {"rule", "path", "line", "col", "message",
                           "evidence"}
    assert record["evidence"] == "arg=gpa param=hpa:hpa"


def test_cli_format_github_emits_error_annotations(capsys):
    assert main([str(STATIC / "domain_return_bug.py"),
                 "--format", "github"]) == 1
    out = capsys.readouterr().out
    assert "::error file=" in out
    assert "title=dmtlint L503" in out


def test_cli_missing_path(capsys):
    assert main([str(REPO / "no_such_dir")]) == 2
    assert "no such path" in capsys.readouterr().err
