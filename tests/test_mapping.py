"""Tests for VMA-to-TEA mapping management (§4.2)."""

import pytest

from repro.arch import PAGE_SIZE, PageSize
from repro.core.mapping import MappingManager
from repro.core.tea import TEAManager
from repro.kernel.vma import VMA
from repro.mem.buddy import BuddyAllocator

MB = 1 << 20
BASE = 0x7F00_0000_0000


@pytest.fixture
def manager():
    return MappingManager(TEAManager(BuddyAllocator(1 << 14)))


class TestClusterCreation:
    def test_new_vma_gets_cluster_and_tea(self, manager):
        vma = VMA(BASE, BASE + 8 * MB, name="heap")
        cluster = manager.vma_created(vma)
        assert cluster.covered_bytes == 8 * MB
        assert len(cluster.teas[PageSize.SIZE_4K]) == 1

    def test_distant_vmas_stay_separate(self, manager):
        manager.vma_created(VMA(BASE, BASE + 8 * MB))
        manager.vma_created(VMA(BASE + 100 * MB, BASE + 108 * MB))
        assert len(manager.clusters) == 2

    def test_adjacent_vmas_merge_under_threshold(self, manager):
        # 8 MB + 8 KB bubble + 8 MB: bubble ratio 0.05% << 2%
        manager.vma_created(VMA(BASE, BASE + 8 * MB))
        cluster = manager.vma_created(
            VMA(BASE + 8 * MB + 8192, BASE + 16 * MB + 8192)
        )
        assert len(manager.clusters) == 1
        assert manager.merges == 1
        assert cluster.va_end == BASE + 16 * MB + 8192
        assert cluster.bubble_ratio < 0.02

    def test_merge_respects_bubble_threshold(self, manager):
        # 2 MB + 2 MB gap + 2 MB: 33% bubbles >> 2% -> no merge (§4.2.1)
        manager.vma_created(VMA(BASE, BASE + 2 * MB))
        manager.vma_created(VMA(BASE + 4 * MB, BASE + 6 * MB))
        assert len(manager.clusters) == 2
        assert manager.merges == 0

    def test_merge_is_iterative(self, manager):
        # many small adjacent VMAs collapse into one cluster (Memcached, §2.3)
        start = BASE
        for _ in range(20):
            manager.vma_created(VMA(start, start + 2 * MB))
            start += 2 * MB + 2 * PAGE_SIZE
        assert len(manager.clusters) == 1

    def test_custom_threshold(self):
        strict = MappingManager(TEAManager(BuddyAllocator(1 << 14)),
                                bubble_threshold=0.0001)
        strict.vma_created(VMA(BASE, BASE + 8 * MB))
        strict.vma_created(VMA(BASE + 8 * MB + 8192, BASE + 16 * MB))
        assert len(strict.clusters) == 2


class TestVMALifecycle:
    def test_grow_expands_tea(self, manager):
        vma = VMA(BASE, BASE + 4 * MB)
        cluster = manager.vma_created(vma)
        vma.end = BASE + 8 * MB
        manager.vma_grown(vma)
        assert cluster.va_end == BASE + 8 * MB
        tea = cluster.teas[PageSize.SIZE_4K][0]
        assert tea.va_end >= BASE + 8 * MB

    def test_shrink_trims_tea(self, manager):
        vma = VMA(BASE, BASE + 8 * MB)
        cluster = manager.vma_created(vma)
        vma.end = BASE + 4 * MB
        manager.vma_shrunk(vma)
        assert cluster.va_end == BASE + 4 * MB
        tea = cluster.teas[PageSize.SIZE_4K][0]
        assert tea.va_end == BASE + 4 * MB

    def test_remove_deletes_cluster_and_teas(self, manager):
        free_before = manager.tea_manager.allocator.free_frames
        vma = VMA(BASE, BASE + 8 * MB)
        manager.vma_created(vma)
        manager.vma_removed(vma)
        assert manager.clusters == []
        assert manager.tea_manager.allocator.free_frames == free_before


class TestRegisterSelection:
    def test_largest_mappings_win_registers(self):
        manager = MappingManager(TEAManager(BuddyAllocator(1 << 14)),
                                 register_count=2)
        sizes_mb = [2, 64, 4, 32, 8]
        start = BASE
        for size in sizes_mb:
            manager.vma_created(VMA(start, start + size * MB))
            start += size * MB + 64 * MB  # keep clusters separate
        registers = manager.build_registers()
        assert len(registers) == 2
        spans = sorted(
            ((r.vma_size_pages << 12) >> 20 for r in registers), reverse=True
        )
        assert spans == [64, 32], "§4.2: the largest VMAs get the registers"

    def test_register_encodes_tea_base(self, manager):
        vma = VMA(BASE, BASE + 8 * MB)
        cluster = manager.vma_created(vma)
        register = manager.build_registers()[0]
        tea = cluster.teas[PageSize.SIZE_4K][0]
        assert register.tea_base_pfn == tea.base_frame
        assert register.vma_base == tea.va_start
        assert register.present

    def test_gtea_ids_attached(self, manager):
        vma = VMA(BASE, BASE + 8 * MB)
        cluster = manager.vma_created(vma)
        tea = cluster.teas[PageSize.SIZE_4K][0]
        register = manager.build_registers({tea.tea_id: 5})[0]
        assert register.gtea_id == 5

    def test_split_teas_take_multiple_registers(self):
        buddy = BuddyAllocator(1 << 14)
        held = [buddy.alloc_pages(0, movable=False) for _ in range(1 << 14)]
        for i in range(0, len(held), 8):
            buddy.free_pages(held[i])
            buddy.free_pages(held[i + 1])
        manager = MappingManager(TEAManager(buddy))
        manager.vma_created(VMA(BASE, BASE + 16 * MB))
        registers = manager.build_registers()
        assert len(registers) == 4  # contiguity forced four split TEAs
        # together the split registers tile the full VMA
        spans = sorted((r.vma_base, r.vma_end) for r in registers)
        assert spans[0][0] == BASE and spans[-1][1] == BASE + 16 * MB


class TestMigrationUpkeep:
    def test_blocked_growth_migrates_and_recovers(self, manager):
        vma = VMA(BASE, BASE + 4 * MB)
        cluster = manager.vma_created(vma)
        tea = cluster.teas[PageSize.SIZE_4K][0]
        blocker = manager.tea_manager.allocator.alloc_contig(1)
        assert blocker == tea.base_frame + tea.npages
        vma.end = BASE + 8 * MB
        manager.vma_grown(vma)
        assert manager.pending_migrations
        # registers built mid-migration carry a cleared P-bit
        register = manager.build_registers()[0]
        assert not register.present
        manager.run_migrations()
        assert not manager.pending_migrations
        register = manager.build_registers()[0]
        assert register.present
