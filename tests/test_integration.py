"""Cross-design integration tests: correctness, determinism, invariants.

The strongest check in the suite: every translation design, in every
environment, must produce the *same physical address* as the software
composition of the page tables — on real miss streams, not hand-picked
addresses.
"""

import numpy as np
import pytest

from repro.sim import (
    NativeSimulation,
    NestedSimulation,
    SimConfig,
    VirtSimulation,
)

CFG = SimConfig(scale=4096, nrefs=5000, record_refs=True)


@pytest.fixture(scope="module")
def native_sim():
    return NativeSimulation("Redis", CFG)


@pytest.fixture(scope="module")
def virt_sim():
    return VirtSimulation("Redis", CFG)


@pytest.fixture(scope="module")
def nested_sim():
    return NestedSimulation("GUPS", CFG)


class TestTranslationCorrectness:
    """Every design translates every sampled miss to the right PA."""

    def test_native_designs_agree(self, native_sim):
        expected = {
            va: native_sim.process.page_table.translate(va)[0]
            for va in native_sim.tlb.miss_vas[:200]
        }
        for design in native_sim.designs:
            walker = native_sim.walker(design)
            for va, pa in expected.items():
                result = walker.translate(va)
                assert result.pa == pa, (design, hex(va))

    def test_virt_designs_agree(self, virt_sim):
        expected = {}
        for va in virt_sim.tlb.miss_vas[:120]:
            gpa, _ = virt_sim.process.page_table.translate(va)
            expected[va] = virt_sim.vm.gpa_to_hpa(gpa)
        for design in virt_sim.designs:
            if design == "shadow":
                continue  # sPT pre-dates lazily backed pages; checked below
            walker = virt_sim.walker(design)
            for va, pa in expected.items():
                result = walker.translate(va)
                assert result.pa == pa, (design, hex(va))

    def test_shadow_agrees_after_sync(self, virt_sim):
        pager = virt_sim.shadow()
        pager.sync()
        walker = virt_sim.walker("shadow")
        for va in virt_sim.tlb.miss_vas[:120]:
            gpa, _ = virt_sim.process.page_table.translate(va)
            assert walker.translate(va).pa == virt_sim.vm.gpa_to_hpa(gpa)

    def test_nested_designs_agree(self, nested_sim):
        for va in nested_sim.tlb.miss_vas[:80]:
            l2pa, _ = nested_sim.process.page_table.translate(va)
            l0pa = nested_sim.nested.l2pa_to_l0pa(l2pa)
            for design in nested_sim.designs:
                walker = nested_sim.walker(design)
                assert walker.translate(va).pa == l0pa, (design, hex(va))


class TestReferenceCounts:
    """Table 6 checked on live machines rather than paper numbers."""

    def test_pvdmt_never_exceeds_two_refs_virtualized(self, virt_sim):
        walker = virt_sim.walker("pvdmt")
        for va in virt_sim.tlb.miss_vas[:300]:
            result = walker.translate(va)
            if not result.fallback:
                assert result.sequential_steps <= 2

    def test_dmt_never_exceeds_three_refs_virtualized(self, virt_sim):
        walker = virt_sim.walker("dmt")
        for va in virt_sim.tlb.miss_vas[:300]:
            result = walker.translate(va)
            if not result.fallback:
                assert result.sequential_steps <= 3

    def test_pvdmt_never_exceeds_three_refs_nested(self, nested_sim):
        walker = nested_sim.walker("pvdmt")
        for va in nested_sim.tlb.miss_vas[:200]:
            result = walker.translate(va)
            if not result.fallback:
                assert result.sequential_steps <= 3

    def test_vanilla_nested_bounded_by_24(self, virt_sim):
        walker = virt_sim.walker("vanilla")
        for va in virt_sim.tlb.miss_vas[:300]:
            assert len(walker.translate(va).refs) <= 24


class TestDeterminism:
    def test_identical_configs_identical_results(self):
        a = NativeSimulation("GUPS", SimConfig(scale=4096, nrefs=3000, seed=3))
        b = NativeSimulation("GUPS", SimConfig(scale=4096, nrefs=3000, seed=3))
        assert np.array_equal(a.tlb.miss_vas, b.tlb.miss_vas)
        for design in ("vanilla", "dmt"):
            assert a.run(design).total_cycles == b.run(design).total_cycles

    def test_seed_changes_trace(self):
        a = NativeSimulation("GUPS", SimConfig(scale=4096, nrefs=3000, seed=3))
        b = NativeSimulation("GUPS", SimConfig(scale=4096, nrefs=3000, seed=4))
        assert not np.array_equal(a.tlb.miss_vas, b.tlb.miss_vas)

    def test_engines_agree_end_to_end(self):
        """The vec and scalar stage-1 engines feed identical machines."""
        vec = NativeSimulation("GUPS", SimConfig(scale=4096, nrefs=3000,
                                                 seed=3, engine="vec"))
        scalar = NativeSimulation("GUPS", SimConfig(scale=4096, nrefs=3000,
                                                    seed=3, engine="scalar"))
        assert np.array_equal(vec.tlb.miss_vas, scalar.tlb.miss_vas)
        assert vec.run("dmt").total_cycles == scalar.run("dmt").total_cycles


class TestCoverageClaims:
    """§6.1: DMT registers cover 99+% of walk requests in all environments."""

    def test_native_coverage(self, native_sim):
        assert native_sim.run("dmt").fallback_rate < 0.01

    def test_virt_coverage(self, virt_sim):
        assert virt_sim.run("pvdmt").fallback_rate < 0.01

    def test_nested_coverage(self, nested_sim):
        assert nested_sim.run("pvdmt").fallback_rate < 0.01


class TestTHPSimulation:
    def test_thp_native_dmt_wins_with_shorter_walks(self):
        sim = NativeSimulation("GUPS", SimConfig(scale=4096, nrefs=5000,
                                                 thp=True, record_refs=True))
        vanilla = sim.run("vanilla")
        dmt = sim.run("dmt")
        assert dmt.mean_latency < vanilla.mean_latency
        # with 2 MB pages the radix walk stops at L2: at most 3 refs
        walker = sim.walker("vanilla")
        for va in sim.tlb.miss_vas[:100]:
            assert len(walker.translate(va).refs) <= 3

    def test_thp_fetcher_selects_huge_tea(self):
        sim = NativeSimulation("GUPS", SimConfig(scale=4096, nrefs=5000,
                                                 thp=True, record_refs=True))
        walker = sim.walker("dmt")
        from repro.arch import PageSize
        result = walker.translate(sim.tlb.miss_vas[0])
        assert result.page_size == PageSize.SIZE_2M
