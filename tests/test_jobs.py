"""Resumable sweep jobs: spec hashing, journal durability, scheduler.

The core contract under test (ISSUE 9 / DESIGN.md §14): kill a sweep
job at *any* point — after k of n shards, even mid-append so the
journal's last record is torn — resume it, and the assembled document's
cells are identical to an uninterrupted run's for every (env, workload,
design, thp) key, modulo wall-time/pid/RSS telemetry
(``VOLATILE_CELL_KEYS``). Worker-death and timeout failures retry with
backoff; exhausted retries degrade to per-(env, design) error cells.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.obs import metrics
from repro.obs import trace as obs_trace
from repro.sim import jobs
from repro.sim.jobs import journal as jn
from repro.sim.jobs.scheduler import JobScheduler
from repro.sim.jobs.spec import JobSpec
from repro.sim.sweep import (dead_group_cells, effective_workers, run_group,
                             run_sweep)

GRID = dict(envs=["native"], workloads=["GUPS", "Redis", "BTree"],
            designs=["vanilla", "dmt"])
CONFIG = dict(scale=4096, nrefs=2000)

#: Sentinel file for the suicidal/sleepy pool workers below; the path
#: travels to fork-spawned workers through the environment.
_SENTINEL_VAR = "REPRO_TEST_JOBS_SENTINEL"


def small_spec(**overrides) -> JobSpec:
    params = {**GRID, **CONFIG, **overrides}
    return JobSpec.build(**params)


def reference_cells():
    document = run_sweep(workers=1, **GRID, **CONFIG)
    return jobs.stable_cells(document["cells"])


@pytest.fixture(scope="module")
def reference():
    return reference_cells()


def _suicidal_run_group(task):
    """SIGKILL this worker once (first call), then behave normally."""
    sentinel = os.environ[_SENTINEL_VAR]
    if not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return run_group(task)


def _sleepy_run_group(task):
    """Hang far past any test timeout once (first call), then behave."""
    sentinel = os.environ[_SENTINEL_VAR]
    if not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8"):
            pass
        time.sleep(300)
    return run_group(task)


def _die_run_group(task):
    """A pool worker that SIGKILLs itself before reporting anything."""
    os.kill(os.getpid(), signal.SIGKILL)


def tear_last_shard_record(path: str) -> None:
    """Truncate the journal mid-way through its last ``shard`` record,
    as a crash during the append would."""
    with open(path, "rb") as handle:
        data = handle.read()
    offset, cut = 0, None
    for line in data.split(b"\n"):
        end = offset + len(line)
        if b'"type": "shard"' in line:
            cut = end - 7
        offset = end + 1
    if cut is None:
        cut = len(data) - 7
    with open(path, "r+b") as handle:
        handle.truncate(cut)


# --------------------------------------------------------------------- #
# spec hashing
# --------------------------------------------------------------------- #

class TestJobSpec:
    def test_job_id_is_stable(self):
        assert small_spec().job_id == small_spec().job_id

    def test_job_id_ignores_argument_order_in_config(self):
        a = JobSpec.build(**GRID, scale=4096, nrefs=2000)
        b = JobSpec.build(**GRID, nrefs=2000, scale=4096)
        assert a.job_id == b.job_id

    @pytest.mark.parametrize("override", [
        dict(nrefs=2001), dict(seed=7), dict(workloads=["GUPS"]),
        dict(designs=["vanilla"]), dict(envs=["virt"]),
        dict(thp_modes=(True,)),
    ])
    def test_job_id_tracks_result_determining_params(self, override):
        assert small_spec().job_id != small_spec(**override).job_id

    def test_canonical_round_trip(self):
        spec = small_spec()
        clone = JobSpec.from_canonical(
            json.loads(json.dumps(spec.canonical())))
        assert clone == spec and clone.job_id == spec.job_id

    def test_shards_cover_the_grid_in_task_order(self):
        spec = JobSpec.build(envs=["native"], workloads=["GUPS", "Redis"],
                             thp_modes=(False, True))
        assert [s.shard_id for s in spec.shards()] == [
            "GUPS@4k", "GUPS@thp", "Redis@4k", "Redis@thp"]

    def test_build_validates_grid(self):
        with pytest.raises(KeyError, match="unknown environment"):
            JobSpec.build(envs=["bogus"])
        with pytest.raises(KeyError, match="unknown design"):
            JobSpec.build(envs=["native"], designs=["bogus"])

    def test_task_matches_group_task_shape(self):
        spec = small_spec()
        shard = spec.shards()[0]
        task = spec.task(shard, "t.jsonl", "cache")
        assert task == (("native",), "GUPS", False, ("vanilla", "dmt"),
                        CONFIG, "t.jsonl", "cache", 1)

    def test_task_cell_threads_is_runtime_only(self):
        """cell_threads rides in the task tuple but never the job_id."""
        spec = small_spec()
        shard = spec.shards()[0]
        assert spec.task(shard, None, None, cell_threads=4)[7] == 4
        assert spec.task(shard, None, None, cell_threads=0)[7] == 1
        assert "cell_threads" not in json.dumps(spec.canonical())


# --------------------------------------------------------------------- #
# journal durability
# --------------------------------------------------------------------- #

class TestJournal:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with jn.Journal(path) as journal:
            journal.append({"type": "job", "job_id": "x"})
            journal.append({"type": "shard", "shard_id": "GUPS@4k",
                            "cells": [{"env": "native"}]})
        records, torn = jn.read_journal(path)
        assert not torn
        assert [r["type"] for r in records] == ["job", "shard"]
        assert jn.completed_shards(records)["GUPS@4k"]["cells"] == [
            {"env": "native"}]

    def test_missing_file_reads_empty(self, tmp_path):
        assert jn.read_journal(str(tmp_path / "nope.jsonl")) == ([], False)

    @pytest.mark.parametrize("chop", [1, 5, 40])
    def test_torn_tail_is_dropped(self, tmp_path, chop):
        path = str(tmp_path / "journal.jsonl")
        with jn.Journal(path) as journal:
            journal.append({"type": "job", "job_id": "x"})
            journal.append({"type": "shard", "shard_id": "a", "cells": []})
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - chop)
        records, torn = jn.read_journal(path)
        assert torn
        assert [r["type"] for r in records] == ["job"]

    def test_non_object_line_treated_as_torn(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"type": "job", "job_id": "x"}\n[1, 2]\n')
        records, torn = jn.read_journal(path)
        assert torn and len(records) == 1


# --------------------------------------------------------------------- #
# kill-and-resume identity
# --------------------------------------------------------------------- #

def interrupt_after(k):
    """A run_fn that completes ``k`` groups, then dies like a SIGKILL."""
    state = {"done": 0}

    def run(task):
        if state["done"] >= k:
            raise KeyboardInterrupt
        state["done"] += 1
        return run_group(task)

    return run


class TestKillResumeIdentity:
    @pytest.mark.parametrize("k", [0, 1, 2])
    @pytest.mark.parametrize("torn", [False, True])
    def test_resume_after_killing_k_of_n(self, tmp_path, reference,
                                         k, torn):
        """Journal round-trip property: kill after k of 3 shards (with
        and without tearing the last shard record mid-append), resume,
        and the merged document equals an uninterrupted run's."""
        job_dir = str(tmp_path / "job")
        spec = small_spec()
        scheduler = JobScheduler(spec, job_dir, workers=1,
                                 run_fn=interrupt_after(k))
        with pytest.raises(KeyboardInterrupt):
            scheduler.run()
        path = jn.journal_path(job_dir)
        records, _ = jn.read_journal(path)
        assert len(jn.completed_shards(records)) == k
        if torn:
            tear_last_shard_record(path)
        journaled = len(jn.completed_shards(jn.read_journal(path)[0]))
        assert journaled == (max(k - 1, 0) if torn else k)

        document = jobs.resume(job_dir, workers=1)
        assert jobs.stable_cells(document["cells"]) == reference
        assert document["meta"]["job"]["resumed_groups"] == journaled
        assert document["meta"]["metrics"]["sweep.resumed_groups"] == \
            journaled
        assert not document["meta"].get("partial")
        final_records, final_torn = jn.read_journal(path)
        assert not final_torn and jn.is_done(final_records)

    def test_resume_of_finished_job_serves_everything_from_journal(
            self, tmp_path, reference):
        job_dir = str(tmp_path / "job")
        spec = small_spec()
        JobScheduler(spec, job_dir, workers=1).run()
        with metrics.scoped():
            document = jobs.resume(job_dir, workers=1)
        assert document["meta"]["job"]["resumed_groups"] == 3
        assert jobs.stable_cells(document["cells"]) == reference

    def test_out_path_partial_flush_on_interrupt(self, tmp_path):
        job_dir = str(tmp_path / "job")
        out = str(tmp_path / "doc.json")
        scheduler = JobScheduler(small_spec(), job_dir, workers=1,
                                 out_path=out, run_fn=interrupt_after(1))
        with pytest.raises(KeyboardInterrupt):
            scheduler.run()
        with open(out, encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["meta"]["partial"] is True
        assert len(document["meta"]["missing_groups"]) == 2
        assert {c["workload"] for c in document["cells"]} == {"GUPS"}

    def test_mismatched_grid_in_job_dir_is_refused(self, tmp_path):
        job_dir = str(tmp_path / "job")
        with pytest.raises(KeyboardInterrupt):
            JobScheduler(small_spec(), job_dir, workers=1,
                         run_fn=interrupt_after(1)).run()
        other = small_spec(nrefs=2001)
        with pytest.raises(ValueError, match="refusing to mix grids"):
            JobScheduler(other, job_dir, workers=1).run()


# --------------------------------------------------------------------- #
# worker death, timeout, cancel
# --------------------------------------------------------------------- #

class TestSchedulerFailures:
    def test_worker_death_is_retried(self, tmp_path, reference,
                                     monkeypatch):
        monkeypatch.setenv(_SENTINEL_VAR, str(tmp_path / "sentinel"))
        job_dir = str(tmp_path / "job")
        scheduler = JobScheduler(small_spec(), job_dir, workers=2,
                                 backoff=0.01,
                                 run_fn=_suicidal_run_group)
        document = scheduler.run()
        assert jobs.stable_cells(document["cells"]) == reference
        assert document["meta"]["job"]["retried_shards"] >= 1
        assert document["meta"]["job"]["failed_shards"] == []
        records, _ = jn.read_journal(jn.journal_path(job_dir))
        retries = [r for r in records if r["type"] == "retry"]
        assert retries and all("shard_id" in r and "backoff_seconds" in r
                               for r in retries)

    def test_shard_timeout_is_retried_on_a_fresh_pool(self, tmp_path,
                                                      reference,
                                                      monkeypatch):
        monkeypatch.setenv(_SENTINEL_VAR, str(tmp_path / "sentinel"))
        job_dir = str(tmp_path / "job")
        scheduler = JobScheduler(small_spec(), job_dir, workers=2,
                                 shard_timeout=2.0, backoff=0.01,
                                 run_fn=_sleepy_run_group)
        document = scheduler.run()
        assert jobs.stable_cells(document["cells"]) == reference
        records, _ = jn.read_journal(jn.journal_path(job_dir))
        timeouts = [r for r in records if r["type"] == "retry"
                    and "TimeoutError" in r["error"]]
        assert timeouts

    def test_exhausted_retries_degrade_to_error_cells(self, tmp_path):
        job_dir = str(tmp_path / "job")

        def always_broken(task):
            raise OSError("worker exploded")

        spec = small_spec(workloads=["GUPS"])
        scheduler = JobScheduler(spec, job_dir, workers=1, max_retries=1,
                                 backoff=0.01, run_fn=always_broken)
        document = scheduler.run()
        assert document["meta"]["job"]["failed_shards"] == ["GUPS@4k"]
        # one fabricated error cell per requested design
        assert [c.get("design") for c in document["cells"]] == [
            "dmt", "vanilla"]
        assert all("worker exploded" in c["error"]
                   for c in document["cells"])
        records, _ = jn.read_journal(jn.journal_path(job_dir))
        assert [r["type"] for r in records if r["type"] in
                ("retry", "failed")] == ["retry", "failed"]

    def test_cancel_drains_and_resume_finishes(self, tmp_path, reference):
        job_dir = str(tmp_path / "job")

        def cancel_after_first(task):
            cells = run_group(task)
            jobs.cancel(job_dir)
            return cells

        scheduler = JobScheduler(small_spec(), job_dir, workers=1,
                                 run_fn=cancel_after_first)
        document = scheduler.run()
        assert document["meta"]["partial"] is True
        assert document["meta"]["job"]["cancelled"] is True
        assert len(document["meta"]["missing_groups"]) == 2
        records, _ = jn.read_journal(jn.journal_path(job_dir))
        assert jn.is_cancelled(records)

        os.remove(jn.cancel_path(job_dir))
        final = jobs.resume(job_dir, workers=1)
        assert jobs.stable_cells(final["cells"]) == reference


# --------------------------------------------------------------------- #
# client surface
# --------------------------------------------------------------------- #

class TestClient:
    def test_submit_is_content_addressed_and_idempotent(self, tmp_path):
        base = str(tmp_path / "jobs")
        spec = small_spec(workloads=["GUPS"])
        job_dir, document = jobs.submit(spec, base_dir=base, workers=1)
        assert job_dir == os.path.join(base, spec.job_id)
        assert not document["meta"].get("partial")
        with metrics.scoped():
            job_dir2, document2 = jobs.submit(spec, base_dir=base,
                                              workers=1)
        assert job_dir2 == job_dir
        assert document2["meta"]["job"]["resumed_groups"] == 1

    def test_status_and_tail_on_live_journal(self, tmp_path):
        job_dir = str(tmp_path / "job")
        scheduler = JobScheduler(small_spec(), job_dir, workers=1,
                                 run_fn=interrupt_after(2))
        with pytest.raises(KeyboardInterrupt):
            scheduler.run()
        summary = jobs.status(job_dir)
        assert summary["state"] == "in-progress"
        assert summary["groups_done"] == 2
        assert summary["groups_total"] == 3
        assert summary["cells_journaled"] == 4
        rendered = jobs.format_status(summary)
        assert "2/3 group(s)" in rendered
        lines = []
        jobs.tail(job_dir, count=100, emit=lines.append)
        assert any(line.startswith("shard ") for line in lines)

    def test_resume_without_journal_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no job journal"):
            jobs.resume(str(tmp_path / "empty"))

    def test_cancel_of_finished_job_reports_false(self, tmp_path):
        job_dir = str(tmp_path / "job")
        jobs.submit(small_spec(workloads=["GUPS"]), job_dir=job_dir,
                    workers=1)
        assert jobs.cancel(job_dir) is False

    def test_cli_jobs_round_trip(self, tmp_path, capsys):
        from repro.__main__ import main

        job_dir = str(tmp_path / "cli-job")
        args = ["--workloads", "GUPS", "--designs", "vanilla,dmt",
                "--scale", "4096", "--nrefs", "2000", "--workers", "1",
                "--no-artifact-cache"]
        assert main(["jobs", "submit", "--job-dir", job_dir] + args) == 0
        assert main(["jobs", "status", job_dir]) == 0
        out = capsys.readouterr().out
        assert "[done]" in out
        assert main(["jobs", "resume", job_dir, "--workers", "1",
                     "--no-artifact-cache"]) == 0

    def test_cli_sweep_resume(self, tmp_path, capsys):
        from repro.__main__ import main

        job_dir = str(tmp_path / "sweep-job")
        out_path = str(tmp_path / "doc.json")
        args = ["sweep", "--resume", job_dir, "--workloads", "GUPS",
                "--designs", "vanilla,dmt", "--scale", "4096",
                "--nrefs", "2000", "--workers", "1",
                "--no-artifact-cache", "--out", out_path]
        assert main(args) == 0
        with open(out_path, encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["meta"]["job"]["job_id"]
        assert len(document["cells"]) == 2


# --------------------------------------------------------------------- #
# run_sweep satellites (ISSUE 9 bugfixes)
# --------------------------------------------------------------------- #

class TestRunSweepDurability:
    def test_interrupted_sweep_flushes_partial_document(self, tmp_path):
        """An interrupt after the first group must not discard it."""
        out = str(tmp_path / "sweep.json")
        calls = {"n": 0}

        def explode_after_first(message):
            calls["n"] += 1
            if calls["n"] >= 1:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_sweep(envs=["native"], workloads=["GUPS", "Redis"],
                      designs=["vanilla"], workers=1, out_path=out,
                      progress=explode_after_first, **CONFIG)
        with open(out, encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["meta"]["partial"] is True
        assert document["meta"]["completed_groups"] == 1
        assert [c["workload"] for c in document["cells"]] == ["GUPS"]

    def test_no_partial_flag_on_clean_sweep(self, tmp_path):
        out = str(tmp_path / "sweep.json")
        document = run_sweep(envs=["native"], workloads=["GUPS"],
                             designs=["vanilla"], workers=1,
                             out_path=out, **CONFIG)
        assert "partial" not in document["meta"]
        with open(out, encoding="utf-8") as handle:
            assert "partial" not in json.load(handle)["meta"]

    def test_sweep_leaves_callers_trace_stream_open(self, tmp_path):
        """run_sweep must not close a tracer the caller opened."""
        trace_path = str(tmp_path / "trace.jsonl")
        obs_trace.enable(trace_path)
        try:
            run_sweep(envs=["native"], workloads=["GUPS"],
                      designs=["vanilla"], workers=1,
                      trace_path=trace_path, **CONFIG)
            assert obs_trace.active(), \
                "run_sweep closed a caller-owned trace stream"
        finally:
            obs_trace.disable()
        # ... but still closes a stream it opened itself
        run_sweep(envs=["native"], workloads=["GUPS"],
                  designs=["vanilla"], workers=1,
                  trace_path=trace_path, **CONFIG)
        assert not obs_trace.active()


class TestRunSweepTelemetry:
    def test_meta_workers_records_effective_pool_size(self):
        document = run_sweep(envs=["native"], workloads=["GUPS"],
                             designs=["vanilla"], workers=8, **CONFIG)
        assert document["meta"]["workers"] == 1  # one task runs inline
        assert document["meta"]["requested_workers"] == 8

    @pytest.mark.parametrize("workers,tasks,expected", [
        (0, 5, 1), (1, 5, 1), (4, 1, 1), (4, 2, 2), (2, 5, 2), (8, 3, 3),
    ])
    def test_effective_workers(self, workers, tasks, expected):
        assert effective_workers(workers, tasks) == expected

    def test_dead_group_cell_count_matches_healthy_group(self):
        """A dead worker's fabricated cells must cover exactly the cells
        a healthy run of the same task would have produced."""
        task = (("native",), "GUPS", False, ("vanilla", "dmt"),
                dict(CONFIG), None, None)
        healthy = run_group(task)
        dead = dead_group_cells(task, OSError("worker died"))
        assert len(dead) == len(healthy)
        assert {(c["env"], c["design"]) for c in dead} == \
            {(c["env"], c["design"]) for c in healthy}
        assert all("worker died" in c["error"] for c in dead)

    def test_dead_group_cells_fall_back_to_env_designs(self):
        """Sweeping all designs (designs=None): one cell per env design."""
        from repro.sim.machine import ENVIRONMENTS

        task = (("native",), "GUPS", False, None, dict(CONFIG), None, None)
        dead = dead_group_cells(task, OSError("boom"))
        assert [c["design"] for c in dead] == \
            list(ENVIRONMENTS["native"].designs)

    def test_dead_worker_in_pool_yields_per_design_cells(self, monkeypatch):
        """End to end: a SIGKILLed pool worker degrades to per-(env,
        design) error cells, not one design=None cell per env."""
        import repro.sim.sweep as sweep_mod

        monkeypatch.setattr(sweep_mod, "run_group", _die_run_group)
        document = sweep_mod.run_sweep(
            envs=["native"], workloads=["GUPS", "Redis"],
            designs=["vanilla", "dmt"], workers=2, **CONFIG)
        assert len(document["cells"]) == 4
        assert sorted((c["workload"], c["design"])
                      for c in document["cells"]) == [
            ("GUPS", "dmt"), ("GUPS", "vanilla"),
            ("Redis", "dmt"), ("Redis", "vanilla")]
        assert all("error" in c for c in document["cells"])
