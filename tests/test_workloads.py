"""Tests for workload generators, SPEC profiles, and VMA statistics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.vma_stats import (
    cdf,
    cluster_adjacent,
    cluster_count,
    coverage_count,
    total_mapped,
    vma_stats,
)
from repro.kernel.kernel import Kernel
from repro.workloads import catalogue, get, spec2006_layouts, spec2017_layouts

MB = 1 << 20
SCALE = 2048


class TestCatalogue:
    def test_seven_workloads(self):
        names = set(catalogue(SCALE))
        assert names == {"Redis", "Memcached", "GUPS", "BTree", "Canneal",
                         "XSBench", "Graph500"}

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get("Postgres")

    def test_table1_vma_characteristics(self):
        """The synthetic layouts reproduce Table 1's three statistics."""
        for name, wl in catalogue(1024).items():
            layout = [(s, e) for s, e, _ in wl.layout()]
            stats = vma_stats(layout)
            assert stats.total == wl.paper_total_vmas, name
            assert abs(stats.cov99 - wl.paper_cov99) <= 2, name
            assert abs(stats.clusters - wl.paper_clusters) <= 1, name

    def test_working_sets_scale(self):
        small = get("GUPS", 4096).working_set_bytes()
        large = get("GUPS", 1024).working_set_bytes()
        assert large == small * 4


class TestTraces:
    @pytest.mark.parametrize("name", sorted(catalogue(SCALE)))
    def test_trace_stays_inside_hot_vmas(self, name):
        kernel = Kernel(memory_bytes=512 * MB)
        proc = kernel.create_process()
        wl = get(name, 4096)
        layout = wl.install(proc, populate=False)
        trace = wl.generate_trace(layout, 5000, seed=1)
        assert len(trace) == 5000
        spans = [(v.start, v.end) for v in layout.hot_vmas]
        samples = trace[::97]
        for va in samples.tolist():
            assert any(s <= va < e for s, e in spans), hex(va)

    def test_traces_deterministic(self):
        kernel = Kernel(memory_bytes=256 * MB)
        proc = kernel.create_process()
        wl = get("Redis", 4096)
        layout = wl.install(proc, populate=False)
        t1 = wl.generate_trace(layout, 2000, seed=7)
        t2 = wl.generate_trace(layout, 2000, seed=7)
        assert np.array_equal(t1, t2)
        t3 = wl.generate_trace(layout, 2000, seed=8)
        assert not np.array_equal(t1, t3)

    def test_trace_salt_is_interpreter_stable(self):
        """The per-workload RNG salt must not come from builtin hash():
        str hashes are salted by PYTHONHASHSEED, which once made every
        trace — and every downstream latency — vary run to run."""
        import zlib

        kernel = Kernel(memory_bytes=256 * MB)
        proc = kernel.create_process()
        wl = get("Redis", 4096)
        layout = wl.install(proc, populate=False)
        expected_rng = np.random.default_rng(7 ^ zlib.crc32(b"Redis"))
        pieces = list(wl.chunk_fn(wl, layout, 2000, expected_rng, 512))
        expected = np.concatenate(pieces).astype(np.int64)
        assert np.array_equal(wl.generate_trace(layout, 2000, seed=7),
                              expected)

    def test_gups_is_uniform(self):
        kernel = Kernel(memory_bytes=256 * MB)
        proc = kernel.create_process()
        wl = get("GUPS", 4096)
        layout = wl.install(proc, populate=False)
        trace = wl.generate_trace(layout, 20000, seed=0)
        # unique pages touched should approach the VMA's page count
        # (ws at scale 4096 is 32 MB = 8192 pages): poor locality
        total_pages = layout.main.size >> 12
        pages = np.unique(trace >> 12)
        assert len(pages) > 0.75 * total_pages

    def test_btree_reuses_upper_levels(self):
        kernel = Kernel(memory_bytes=256 * MB)
        proc = kernel.create_process()
        wl = get("BTree", 4096)
        layout = wl.install(proc, populate=False)
        trace = wl.generate_trace(layout, 20000, seed=0)
        pages, counts = np.unique(trace >> 12, return_counts=True)
        # root pages are touched once per lookup: far hotter than leaves
        assert counts.max() > 50


class TestSpecProfiles:
    def test_workload_counts(self):
        assert len(spec2006_layouts()) == 30
        assert len(spec2017_layouts()) == 47

    def test_stats_within_paper_ranges(self):
        """Table 1 bottom: 2006 totals 18-39 / cov 1-14 / clusters 1-8;
        2017 totals 24-70 / 1-21 / 1-12."""
        for layout in spec2006_layouts().values():
            stats = vma_stats(layout)
            assert 18 <= stats.total <= 40
            assert 1 <= stats.cov99 <= 14
            assert 1 <= stats.clusters <= 9
        for layout in spec2017_layouts().values():
            stats = vma_stats(layout)
            assert 24 <= stats.total <= 71
            assert 1 <= stats.cov99 <= 21
            assert 1 <= stats.clusters <= 13

    def test_deterministic(self):
        a = spec2006_layouts(seed=1)
        b = spec2006_layouts(seed=1)
        assert a == b


class TestVMAStats:
    def test_coverage_count_simple(self):
        layout = [(0, 100 * MB), (200 * MB, 201 * MB), (300 * MB, 301 * MB)]
        assert coverage_count(layout, 0.99) == 2
        assert coverage_count(layout, 0.5) == 1
        assert coverage_count(layout, 1.0) == 3

    def test_cluster_adjacent_merges_small_bubbles(self):
        layout = [(0, 10 * MB), (10 * MB + 4096, 20 * MB)]
        clusters = cluster_adjacent(layout, bubble_allowance=0.02)
        assert len(clusters) == 1

    def test_cluster_adjacent_respects_allowance(self):
        layout = [(0, 10 * MB), (15 * MB, 25 * MB)]  # 20% bubble
        clusters = cluster_adjacent(layout, bubble_allowance=0.02)
        assert len(clusters) == 2

    def test_cluster_count_memcached_shape(self):
        # hundreds of adjacent slabs with tiny bubbles in two groups -> 2
        layout = []
        start = 0
        for i in range(100):
            if i == 50:
                start += 500 * MB
            layout.append((start, start + MB))
            start += MB + 4096
        assert cluster_count(layout) == 2

    def test_cdf(self):
        points = cdf([3, 1, 2])
        assert points == [(1, 1 / 3), (2, 2 / 3), (3, 1.0)]

    @given(st.lists(st.tuples(st.integers(0, 1 << 20), st.integers(1, 1000)),
                    min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_coverage_monotone_in_fraction(self, raw):
        cursor = 0
        layout = []
        for gap, pages in raw:
            cursor += gap * 4096
            layout.append((cursor, cursor + pages * 4096))
            cursor += pages * 4096
        c50 = coverage_count(layout, 0.5)
        c99 = coverage_count(layout, 0.99)
        assert 1 <= c50 <= c99 <= len(layout)
        assert cluster_count(layout) <= len(layout)
        assert total_mapped(layout) == sum(e - s for s, e in layout)
