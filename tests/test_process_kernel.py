"""Tests for processes, demand paging, THP, and the kernel facade."""

import pytest

from repro.arch import PAGE_SIZE, PageSize
from repro.kernel.kernel import Kernel
from repro.kernel.process import PageFaultError
from repro.kernel.thp import demote, khugepaged_pass, promotable_ranges, promote

MB = 1 << 20


@pytest.fixture
def kernel():
    return Kernel(memory_bytes=128 * MB)


class TestProcess:
    def test_populate_backs_every_page(self, kernel):
        proc = kernel.create_process()
        vma = proc.mmap(4 * MB)
        assert proc.populate(vma) == 1024
        assert proc.resident_pages() == 1024
        for offset in (0, PAGE_SIZE, vma.size - 1):
            assert proc.page_table.translate(vma.start + offset) is not None

    def test_touch_demand_faults(self, kernel):
        proc = kernel.create_process()
        vma = proc.mmap(MB)
        assert proc.resident_pages() == 0
        pa = proc.touch(vma.start + 0x123)
        assert pa % PAGE_SIZE == 0x123
        assert proc.resident_pages() == 1

    def test_touch_outside_vma_faults(self, kernel):
        proc = kernel.create_process()
        with pytest.raises(PageFaultError):
            proc.touch(0xDEAD000)

    def test_munmap_releases_frames(self, kernel):
        proc = kernel.create_process()
        free_before = kernel.memory.allocator.free_frames
        vma = proc.mmap(2 * MB, populate=True)
        proc.munmap(vma.start, vma.size)
        assert proc.resident_pages() == 0
        # all data frames returned (table pages may remain)
        assert kernel.memory.allocator.free_frames >= free_before - 8

    def test_page_table_bytes_accounting(self, kernel):
        proc = kernel.create_process()
        base = proc.page_table_bytes()
        proc.mmap(2 * MB, populate=True)
        assert proc.page_table_bytes() > base


class TestTHPPopulate:
    def test_thp_kernel_uses_huge_pages(self):
        kernel = Kernel(memory_bytes=128 * MB, thp_enabled=True)
        proc = kernel.create_process()
        vma = proc.mmap(4 * MB, populate=True)
        _, size = proc.page_table.translate(vma.start)
        assert size == PageSize.SIZE_2M

    def test_unaligned_tail_uses_base_pages(self):
        kernel = Kernel(memory_bytes=128 * MB, thp_enabled=True)
        proc = kernel.create_process()
        vma = proc.mmap(2 * MB + PAGE_SIZE, populate=True)
        assert proc.page_table.translate(vma.start)[1] == PageSize.SIZE_2M
        assert proc.page_table.translate(vma.end - 1)[1] == PageSize.SIZE_4K


class TestTHPPromotion:
    def test_promotable_ranges(self, kernel):
        proc = kernel.create_process()
        vma = proc.mmap(4 * MB, populate=True)
        ranges = promotable_ranges(proc, vma)
        assert len(ranges) == 2
        assert all(base % (2 * MB) == 0 for base in ranges)

    def test_promote_then_demote_preserves_mapping(self, kernel):
        proc = kernel.create_process()
        vma = proc.mmap(2 * MB, populate=True)
        assert promote(proc, vma.start)
        assert proc.page_table.translate(vma.start)[1] == PageSize.SIZE_2M
        demote(proc, vma.start)
        assert proc.page_table.translate(vma.start)[1] == PageSize.SIZE_4K
        # every page still mapped after the round trip
        for offset in range(0, 2 * MB, PAGE_SIZE):
            assert proc.page_table.translate(vma.start + offset) is not None

    def test_khugepaged_pass(self, kernel):
        proc = kernel.create_process()
        proc.mmap(4 * MB, populate=True)
        assert khugepaged_pass(proc) == 2
        assert khugepaged_pass(proc) == 0  # idempotent

    def test_demote_requires_huge_mapping(self, kernel):
        proc = kernel.create_process()
        vma = proc.mmap(2 * MB, populate=True)
        with pytest.raises(ValueError):
            demote(proc, vma.start)


class TestKernel:
    def test_context_switch_hooks(self, kernel):
        switched = []
        kernel.add_context_switch_hook(lambda p: switched.append(p.pid))
        p1 = kernel.create_process()
        p2 = kernel.create_process()
        kernel.context_switch(p2)
        kernel.context_switch(p1)
        assert switched[-2:] == [p2.pid, p1.pid]

    def test_cannot_switch_to_foreign_process(self, kernel):
        other = Kernel(memory_bytes=16 * MB)
        foreign = other.create_process()
        with pytest.raises(ValueError):
            kernel.context_switch(foreign)

    def test_exit_process_releases_everything(self, kernel):
        free_before = kernel.memory.allocator.free_frames
        proc = kernel.create_process()
        proc.mmap(2 * MB, populate=True)
        kernel.exit_process(proc)
        assert kernel.memory.allocator.free_frames == free_before
        assert proc.pid not in kernel.processes

    def test_page_table_bytes_sums_processes(self, kernel):
        p1 = kernel.create_process()
        p2 = kernel.create_process()
        p1.mmap(MB, populate=True)
        p2.mmap(MB, populate=True)
        assert kernel.page_table_bytes() == \
            p1.page_table_bytes() + p2.page_table_bytes()
