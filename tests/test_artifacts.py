"""The cross-run artifact cache: digests, durability, concurrency.

The contract of :mod:`repro.sim.artifacts`: content addresses are
stable across interpreter invocations (no salted ``hash()`` anywhere in
the key path), a corrupt or mismatched entry is evicted and reported as
a plain miss, concurrent writers of the same key never expose a torn
artifact, and :class:`~repro.sim.simulator.Stage1Cache` transparently
extends its memo through the cache to disk.
"""

import json
import os
import subprocess
import sys
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.sim.artifacts import ArtifactCache, digest
from repro.sim.simulator import Stage1Cache, TLBFilterResult

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

KEY = ["GUPS", 4096, 3000, 0, False, 4]


def test_digest_is_deterministic_and_key_sensitive():
    assert digest("stage1", KEY) == digest("stage1", list(KEY))
    assert digest("stage1", KEY) != digest("trace", KEY)
    assert digest("stage1", KEY) != digest("stage1", KEY[:-1] + [5])
    # tuples canonicalize like lists (JSON has no tuple type)
    assert digest("stage1", tuple(KEY)) == digest("stage1", KEY)


def _subprocess_digest(hash_seed: str) -> str:
    code = ("from repro.sim.artifacts import digest;"
            "print(digest('stage1', ['GUPS', 4096, 3000, 0, False, 4]))")
    env = dict(os.environ,
               PYTHONHASHSEED=hash_seed,
               PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    out = subprocess.run([sys.executable, "-c", code], capture_output=True,
                         text=True, env=env, check=True)
    return out.stdout.strip()


def test_digest_stable_across_interpreter_runs():
    """Fresh interpreters with different hash randomization agree —
    the property a *cross-run* cache lives or dies by."""
    digests = {_subprocess_digest(seed) for seed in ("0", "1", "12345")}
    assert digests == {digest("stage1", KEY)}


def test_store_load_round_trip(tmp_path):
    cache = ArtifactCache(str(tmp_path))
    array = np.arange(64, dtype=np.int64) * 7
    cache.store_array("stage1", KEY, array, {"total_refs": 3000})
    loaded = cache.load_array("stage1", KEY)
    assert loaded is not None
    out, meta = loaded
    assert np.array_equal(out, array) and out.dtype == np.int64
    assert meta == {"total_refs": 3000}
    assert cache.hits == 1 and cache.misses == 0


def test_missing_entry_is_a_miss(tmp_path):
    cache = ArtifactCache(str(tmp_path))
    assert cache.load_array("stage1", KEY) is None
    assert cache.misses == 1 and cache.evictions == 0


def test_corrupt_payload_evicts_then_recomputes(tmp_path):
    cache = ArtifactCache(str(tmp_path))
    array = np.arange(32, dtype=np.int64)
    key_digest = cache.store_array("stage1", KEY, array)
    npy_path = os.path.join(str(tmp_path), key_digest + ".npy")
    with open(npy_path, "wb") as handle:
        handle.write(b"\x93NUMPY garbage")  # torn write / bit rot
    assert cache.load_array("stage1", KEY) is None
    assert cache.evictions == 1
    assert not os.path.exists(npy_path)
    # the caller's recovery path: recompute, store, load again
    cache.store_array("stage1", KEY, array)
    loaded = cache.load_array("stage1", KEY)
    assert loaded is not None and np.array_equal(loaded[0], array)


def test_truncated_sidecar_evicts(tmp_path):
    cache = ArtifactCache(str(tmp_path))
    key_digest = cache.store_array("trace", KEY,
                                   np.arange(8, dtype=np.int64))
    meta_path = os.path.join(str(tmp_path), key_digest + ".json")
    with open(meta_path, "w", encoding="utf-8") as handle:
        handle.write('{"schema": 1, "stage"')
    assert cache.load_array("trace", KEY) is None
    assert cache.evictions == 1


def test_mismatched_sidecar_evicts(tmp_path):
    """A sidecar that answers to the digest but not the key (digest
    scheme change, collision) must be evicted, not served."""
    cache = ArtifactCache(str(tmp_path))
    key_digest = cache.store_array("stage1", KEY,
                                   np.arange(8, dtype=np.int64))
    meta_path = os.path.join(str(tmp_path), key_digest + ".json")
    with open(meta_path, encoding="utf-8") as handle:
        sidecar = json.load(handle)
    sidecar["key"][1] = 8192
    with open(meta_path, "w", encoding="utf-8") as handle:
        json.dump(sidecar, handle)
    assert cache.load_array("stage1", KEY) is None
    assert cache.evictions == 1
    assert not os.path.exists(meta_path)


def _worker_round_trips(args):
    root, worker_id, rounds = args
    cache = ArtifactCache(root)
    array = np.arange(256, dtype=np.int64)  # same key -> same content
    served = 0
    for _ in range(rounds):
        cache.store_array("stage1", KEY, array, {"total_refs": 3000})
        loaded = cache.load_array("stage1", KEY)
        if loaded is not None:
            assert np.array_equal(loaded[0], array), worker_id
            served += 1
    return served


def test_concurrent_workers_share_one_cache_dir(tmp_path):
    """Racing writers/readers of one digest never see a torn artifact
    (loads may miss mid-replace, but must never return wrong bytes)."""
    jobs = [(str(tmp_path), worker, 20) for worker in range(4)]
    with ProcessPoolExecutor(max_workers=4) as pool:
        served = list(pool.map(_worker_round_trips, jobs))
    assert sum(served) > 0
    cache = ArtifactCache(str(tmp_path))
    loaded = cache.load_array("stage1", KEY)
    assert loaded is not None
    assert np.array_equal(loaded[0], np.arange(256, dtype=np.int64))


def _write_segments(cache, stage="stage1", key=KEY, parts=(10, 7, 5)):
    writer = cache.segment_writer(stage, key, meta={"origin": "test"})
    offset = 0
    arrays = []
    for rows in parts:
        array = (np.arange(rows, dtype=np.int64) + offset) << 12
        writer.append(array)
        arrays.append(array)
        offset += rows
    writer.commit({"total_refs": offset})
    return writer, np.concatenate(arrays)


def test_segment_writer_round_trip(tmp_path):
    cache = ArtifactCache(str(tmp_path))
    writer, expected = _write_segments(cache)
    loaded = cache.load_array("stage1", KEY)
    assert loaded is not None
    out, meta = loaded
    assert np.array_equal(out, expected) and out.dtype == np.int64
    assert meta == {"origin": "test", "total_refs": len(expected)}
    assert cache.hits == 1 and cache.seg_hits == 1
    assert cache.seg_misses == 0

    reader = cache.open_segments("stage1", KEY)
    assert reader is not None and len(reader) == 3
    assert reader.total_rows == len(expected)
    assert np.array_equal(reader.concatenated(), expected)
    segments = list(reader)
    assert [len(seg) for seg in segments] == [10, 7, 5]
    assert np.array_equal(np.concatenate(segments), expected)


def test_segment_writer_reader_skips_hit_counters(tmp_path):
    cache = ArtifactCache(str(tmp_path))
    writer, expected = _write_segments(cache)
    assert np.array_equal(writer.reader().concatenated(), expected)
    assert cache.hits == 0 and cache.seg_hits == 0


def test_segment_writer_abort_removes_segments(tmp_path):
    cache = ArtifactCache(str(tmp_path))
    writer = cache.segment_writer("stage1", KEY)
    writer.append(np.arange(4, dtype=np.int64))
    writer.abort()
    assert os.listdir(str(tmp_path)) == []
    assert cache.load_array("stage1", KEY) is None


def test_corrupt_segment_evicts_whole_entry(tmp_path):
    """One rotten segment must take down the manifest and every other
    segment: a partially-valid segmented entry is worse than a miss."""
    cache = ArtifactCache(str(tmp_path))
    writer, _ = _write_segments(cache)
    victim = os.path.join(str(tmp_path), writer.key_digest + ".seg1.npy")
    with open(victim, "wb") as handle:
        handle.write(b"\x93NUMPY garbage")
    assert cache.load_array("stage1", KEY) is None
    assert cache.seg_evictions == 1 and cache.evictions == 1
    leftovers = [name for name in os.listdir(str(tmp_path))
                 if name.startswith(writer.key_digest)]
    assert leftovers == []
    # recovery: rewrite, then load cleanly
    _write_segments(cache)
    loaded = cache.load_array("stage1", KEY)
    assert loaded is not None


def test_corrupt_segment_raises_mid_iteration(tmp_path):
    from repro.sim.artifacts import CorruptSegment

    cache = ArtifactCache(str(tmp_path))
    writer, _ = _write_segments(cache)
    reader = cache.open_segments("stage1", KEY)
    victim = os.path.join(str(tmp_path), writer.key_digest + ".seg2.npy")
    with open(victim, "wb") as handle:
        handle.write(b"nonsense")
    with pytest.raises(CorruptSegment):
        list(reader)
    assert cache.seg_evictions == 1


def test_open_segments_on_monolithic_entry_is_a_seg_miss(tmp_path):
    cache = ArtifactCache(str(tmp_path))
    cache.store_array("stage1", KEY, np.arange(8, dtype=np.int64))
    assert cache.open_segments("stage1", KEY) is None
    assert cache.seg_misses == 1
    # but the monolithic load still works
    assert cache.load_array("stage1", KEY) is not None


def test_stage1_cache_round_trips_through_disk(tmp_path):
    cold = Stage1Cache(artifacts=ArtifactCache(str(tmp_path)))
    miss_vas = np.arange(100, dtype=np.int64) << 12
    built = []

    def build():
        built.append(1)
        return TLBFilterResult(miss_vas, 3000)

    key = tuple(KEY)
    result = cold.fetch(key, build)
    assert built == [1] and cold.last_source == "computed"
    assert cold.fetch(key, build) is result and cold.last_source == "memo"

    # a fresh process re-opens the directory: served from disk, build
    # never runs, and the miss stream is byte-identical
    warm = Stage1Cache(artifacts=ArtifactCache(str(tmp_path)))
    def must_not_build():
        raise AssertionError("warm fetch must not recompute stage 1")
    served = warm.fetch(key, must_not_build)
    assert warm.last_source == "disk" and warm.last_reused
    assert served.total_refs == 3000
    assert np.array_equal(served.miss_vas, miss_vas)
    assert warm.last_seconds == pytest.approx(cold.last_seconds)


def test_stage1_cache_without_artifacts_never_touches_disk(tmp_path):
    cache = Stage1Cache()
    assert cache.artifacts is None
    result = cache.fetch(("k",), lambda: TLBFilterResult(
        np.arange(4, dtype=np.int64), 4))
    assert cache.last_source == "computed"
    assert cache.fetch(("k",), lambda: None) is result
    assert cache.last_source == "memo"
