"""Integration tests for DMT-Linux: hooks, placement, registers, fetcher."""

import pytest

from repro.arch import PAGE_SIZE, PageSize
from repro.core.dmt_os import DMTLinux, DMTPlacementPolicy
from repro.core.fetcher import DMTFetcher
from repro.core.registers import RegisterSet
from repro.kernel.kernel import Kernel

MB = 1 << 20


@pytest.fixture
def kernel():
    return Kernel(memory_bytes=256 * MB)


@pytest.fixture
def dmt(kernel):
    return DMTLinux(kernel)


def null_fetch(addr, tag, group):
    pass


class TestPlacement:
    def test_leaf_tables_land_in_teas(self, kernel, dmt):
        proc = kernel.create_process()
        vma = proc.mmap(8 * MB, populate=True)
        manager = dmt.manager_for(proc)
        tea = manager.clusters[0].teas[PageSize.SIZE_4K][0]
        for offset in (0, 3 * MB, vma.size - PAGE_SIZE):
            leaf_addr = proc.page_table.walk_steps(vma.start + offset)[-1].pte_addr
            assert tea.base_frame <= (leaf_addr >> 12) < tea.base_frame + tea.npages

    def test_policy_counters(self, kernel, dmt):
        proc = kernel.create_process()
        proc.mmap(4 * MB, populate=True)
        policy = proc.page_table.placement
        assert isinstance(policy, DMTPlacementPolicy)
        assert policy.placed > 0

    def test_thp_kernel_gets_both_tea_sizes(self):
        kernel = Kernel(memory_bytes=256 * MB, thp_enabled=True)
        dmt = DMTLinux(kernel)
        proc = kernel.create_process()
        proc.mmap(8 * MB, populate=True)
        cluster = dmt.manager_for(proc).clusters[0]
        assert cluster.teas[PageSize.SIZE_4K]
        assert cluster.teas[PageSize.SIZE_2M]
        # the 2 MB leaf PTE lives in the 2M TEA
        tea2m = cluster.teas[PageSize.SIZE_2M][0]
        leaf = proc.page_table.walk_steps(proc.addr_space.vmas()[0].start)[-1]
        assert tea2m.base_frame <= (leaf.pte_addr >> 12) < \
            tea2m.base_frame + tea2m.npages


class TestRegisters:
    def test_context_switch_reloads(self, kernel, dmt):
        p1 = kernel.create_process()
        p1.mmap(4 * MB, populate=True)
        p2 = kernel.create_process()
        p2.mmap(2 * MB, populate=True)
        kernel.context_switch(p1)
        regs1 = dmt.register_file.registers(RegisterSet.NATIVE)
        kernel.context_switch(p2)
        regs2 = dmt.register_file.registers(RegisterSet.NATIVE)
        assert regs1 and regs2
        # both processes mmap at the same virtual base, but their TEAs live
        # in different physical frames — the reload must swap them
        assert regs1[0].tea_base_pfn != regs2[0].tea_base_pfn

    def test_munmap_drops_registers(self, kernel, dmt):
        proc = kernel.create_process()
        vma = proc.mmap(4 * MB, populate=True)
        assert dmt.reload_registers(proc)
        proc.munmap(vma.start, vma.size)
        assert dmt.reload_registers(proc) == []


class TestFetcherIntegration:
    def test_fetch_agrees_with_radix_walk(self, kernel, dmt):
        proc = kernel.create_process()
        vma = proc.mmap(8 * MB, populate=True)
        dmt.reload_registers(proc)
        fetcher = DMTFetcher(dmt.register_file)
        for offset in (0, 0x1234, 5 * MB + 0x567, vma.size - 1):
            result = fetcher.translate_native(
                vma.start + offset, kernel.memory.read_word, null_fetch)
            assert result.references == 1, "native DMT is one memory reference (§3)"
            expected = proc.page_table.translate(vma.start + offset)[0]
            assert result.pa == expected

    def test_uncovered_address_falls_back(self, kernel, dmt):
        proc = kernel.create_process()
        proc.mmap(4 * MB, populate=True)
        dmt.reload_registers(proc)
        fetcher = DMTFetcher(dmt.register_file)
        result = fetcher.translate_native(0x1234000, kernel.memory.read_word,
                                          null_fetch)
        assert result.fallback
        assert fetcher.fallbacks == 1

    def test_unpopulated_page_faults(self, kernel, dmt):
        proc = kernel.create_process()
        vma = proc.mmap(4 * MB)  # mapped but never touched
        dmt.reload_registers(proc)
        fetcher = DMTFetcher(dmt.register_file)
        result = fetcher.translate_native(vma.start, kernel.memory.read_word,
                                          null_fetch)
        assert result.fault and not result.fallback

    def test_thp_parallel_probe_selects_correct_size(self):
        kernel = Kernel(memory_bytes=256 * MB, thp_enabled=True)
        dmt = DMTLinux(kernel)
        proc = kernel.create_process()
        vma = proc.mmap(4 * MB + PAGE_SIZE, populate=True)
        dmt.reload_registers(proc)
        fetcher = DMTFetcher(dmt.register_file)
        fetches = []
        huge = fetcher.translate_native(
            vma.start + 0x3000, kernel.memory.read_word,
            lambda a, t, g: fetches.append(g))
        assert huge.page_size == PageSize.SIZE_2M
        assert huge.pa == proc.page_table.translate(vma.start + 0x3000)[0]
        assert len(set(fetches)) == 1, "per-size probes go out in parallel (§4.4)"
        small = fetcher.translate_native(
            vma.end - 1, kernel.memory.read_word, null_fetch)
        assert small.page_size == PageSize.SIZE_4K


class TestManagementLedger:
    def test_init_time_management_is_recorded(self, kernel, dmt):
        proc = kernel.create_process()
        proc.mmap(8 * MB, populate=True)
        assert dmt.management_ms() > 0

    def test_nested_environment_multiplier(self):
        from repro.core.costs import Environment, ManagementLedger
        native = ManagementLedger(Environment.NATIVE)
        nested = ManagementLedger(Environment.NESTED)
        native.record("tea_create")
        nested.record("tea_create")
        assert nested.total_us == pytest.approx(native.total_us * 50)
