"""Tests for the on-demand (lazy) TEA allocation policy (§7)."""

import pytest

from repro.arch import PAGE_SIZE, PageSize
from repro.core.dmt_os import DMTLinux
from repro.core.fetcher import DMTFetcher
from repro.core.tea import TEAManager
from repro.kernel.kernel import Kernel
from repro.mem.buddy import BuddyAllocator

MB = 1 << 20


@pytest.fixture
def kernel():
    return Kernel(memory_bytes=256 * MB)


@pytest.fixture
def lazy_dmt(kernel):
    return DMTLinux(kernel, tea_policy="lazy")


class TestEnsureGranule:
    def test_creates_one_page_tea(self):
        manager = TEAManager(BuddyAllocator(1 << 12))
        frame = manager.ensure_granule(0x7F00_0000_0000, PageSize.SIZE_4K)
        assert frame is not None
        tea = manager.owner_of(0x7F00_0000_0000, PageSize.SIZE_4K)
        assert tea.npages == 1

    def test_idempotent(self):
        manager = TEAManager(BuddyAllocator(1 << 12))
        first = manager.ensure_granule(0x7F00_0000_0000, PageSize.SIZE_4K)
        assert manager.ensure_granule(0x7F00_0000_0000, PageSize.SIZE_4K) == first
        assert len(manager.teas) == 1

    def test_dynamic_expansion_keeps_runs_contiguous(self):
        """Sequential touch order grows one TEA instead of fragmenting."""
        manager = TEAManager(BuddyAllocator(1 << 12))
        base = 0x7F00_0000_0000
        for i in range(8):
            manager.ensure_granule(base + i * 2 * MB, PageSize.SIZE_4K)
        assert len(manager.teas) == 1, "adjacent granules must expand in place"
        tea = manager.owner_of(base, PageSize.SIZE_4K)
        assert tea.npages == 8

    def test_sparse_touches_make_separate_teas(self):
        manager = TEAManager(BuddyAllocator(1 << 12))
        base = 0x7F00_0000_0000
        manager.ensure_granule(base, PageSize.SIZE_4K)
        manager.ensure_granule(base + 100 * MB, PageSize.SIZE_4K)
        assert len(manager.teas) == 2

    def test_exhausted_memory_returns_none(self):
        buddy = BuddyAllocator(8)
        for _ in range(8):
            buddy.alloc_pages(0, movable=False)
        manager = TEAManager(buddy)
        assert manager.ensure_granule(0, PageSize.SIZE_4K) is None


class TestLazyDMTLinux:
    def test_rejects_bad_policy(self, kernel):
        with pytest.raises(ValueError):
            DMTLinux(kernel, tea_policy="whatever")

    def test_no_tea_until_touch(self, kernel, lazy_dmt):
        proc = kernel.create_process()
        proc.mmap(64 * MB, name="big-file")
        manager = lazy_dmt.manager_for(proc)
        assert manager.tea_manager.total_tea_bytes() == 0

    def test_sparse_access_saves_memory(self, kernel, lazy_dmt):
        """§7's motivating case: mmap a large file, touch a small part."""
        proc = kernel.create_process()
        vma = proc.mmap(64 * MB, name="big-file")
        for offset in range(0, 4 * MB, PAGE_SIZE):  # touch 1/16th
            proc.touch(vma.start + offset)
        tea_bytes = lazy_dmt.manager_for(proc).tea_manager.total_tea_bytes()
        eager_bytes = (64 * MB // (2 * MB)) * PAGE_SIZE
        assert tea_bytes == (4 * MB // (2 * MB)) * PAGE_SIZE
        assert tea_bytes < eager_bytes / 8

    def test_fetcher_works_over_lazy_teas(self, kernel, lazy_dmt):
        proc = kernel.create_process()
        vma = proc.mmap(16 * MB, name="heap")
        proc.populate(vma)
        lazy_dmt.reload_registers(proc)
        fetcher = DMTFetcher(lazy_dmt.register_file)
        result = fetcher.translate_native(
            vma.start + 5 * MB, kernel.memory.read_word, lambda a, t, g: None)
        assert result.pa == proc.page_table.translate(vma.start + 5 * MB)[0]
        assert result.references == 1

    def test_dense_population_fragments_but_stays_covered(self, kernel, lazy_dmt):
        """The lazy policy's cost: data allocations interleave with TEA
        growth, defeating in-place expansion, so a densely touched VMA ends
        up with one TEA per granule — more registers than eager's one.
        This is why the paper defaults to eager allocation (§7)."""
        proc = kernel.create_process()
        vma = proc.mmap(16 * MB, name="heap")
        proc.populate(vma)
        manager = lazy_dmt.manager_for(proc)
        registers = manager.build_registers()
        assert 1 <= len(registers) <= 16 * MB // (2 * MB)
        covered = sum(r.vma_size_pages << 12 for r in registers)
        assert covered == 16 * MB, "every granule still register-covered"
