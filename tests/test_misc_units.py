"""Unit tests for smaller pieces: recorder semantics, scaling math, CLI."""

import pytest

from repro.arch import PAGE_SHIFT, PageSize
from repro.hw.config import xeon_gold_6138
from repro.kernel.kernel import Kernel
from repro.sim.simulator import tlb_accept_rates
from repro.translation.base import (
    MemorySubsystem,
    WalkRecorder,
    WalkResult,
    pwc_accept_rates,
)
from repro.translation.dmt import machine_reader
from repro.virt.hypervisor import Hypervisor

MB = 1 << 20
GB = 1 << 30


class TestWalkRecorder:
    def _memsys(self):
        return MemorySubsystem(xeon_gold_6138())

    def test_sequential_fetches_sum(self):
        rec = WalkRecorder(self._memsys())
        rec.fetch(0x1000, "a")
        rec.fetch(0x2000, "b")
        assert rec.finish() == 400  # two cold memory accesses
        assert rec.ref_count == 2

    def test_grouped_fetches_take_max(self):
        memsys = self._memsys()
        memsys.caches.warm(0x1000)  # one probe will be fast
        rec = WalkRecorder(memsys)
        rec.fetch_grouped(0x1000, "fast", group=1)
        rec.fetch_grouped(0x9000, "slow", group=1)
        assert rec.finish() == 200  # slowest member of the group

    def test_group_boundary_closes(self):
        rec = WalkRecorder(self._memsys())
        rec.fetch_grouped(0x1000, "a", group=1)
        rec.fetch_grouped(0x9000, "b", group=2)  # new group: sequential
        assert rec.finish() == 400

    def test_charge_adds_flat_cycles(self):
        rec = WalkRecorder(self._memsys())
        rec.charge(7)
        assert rec.finish() == 7

    def test_record_refs_off_skips_memrefs(self):
        memsys = MemorySubsystem(xeon_gold_6138(), record_refs=False)
        rec = WalkRecorder(memsys)
        rec.fetch(0x1000, "a")
        assert rec.refs == [] and rec.ref_count == 1


class TestWalkResultSteps:
    def test_sequential_steps_collapse_groups(self):
        from repro.translation.base import MemRef
        refs = [
            MemRef(1, "a", 10, "L2", group=1),
            MemRef(2, "a", 10, "L2", group=1),
            MemRef(3, "b", 10, "L2"),
            MemRef(4, "c", 10, "L2", group=2),
        ]
        assert WalkResult(0, 0, refs).sequential_steps == 3


class TestScalingMath:
    def test_pwc_rates_match_reach_ratio(self):
        machine = xeon_gold_6138()
        rates = pwc_accept_rates(machine.pwc, 256 * MB, 128 * GB)
        # L4-level PWC (2 entries x 512 GB) hits at both scales: rate 1
        assert rates[0] == pytest.approx(1.0)
        # bottom level: 64 MB reach; paper hit 64M/128G, sim hit 64M/256M
        expected = (64 * MB / (128 * GB)) / (64 * MB / (256 * MB))
        assert rates[2] == pytest.approx(expected)
        assert all(0 < r <= 1 for r in rates)

    def test_tlb_rates_per_page_size(self):
        machine = xeon_gold_6138()
        rates = tlb_accept_rates(machine, 256 * MB, 128 * GB)
        assert rates[PageSize.SIZE_4K] < rates[PageSize.SIZE_2M] <= 1.0
        # 1 GB entries reach 1.5 TB: hit at both scales
        assert rates[PageSize.SIZE_1G] == pytest.approx(1.0)

    def test_no_thinning_at_paper_scale(self):
        machine = xeon_gold_6138()
        rates = pwc_accept_rates(machine.pwc, 128 * GB, 128 * GB)
        assert all(r == pytest.approx(1.0) for r in rates)


class TestMachineReader:
    def test_single_level_chain(self):
        host = Kernel(memory_bytes=128 * MB)
        vm = Hypervisor(host).create_vm(32 * MB)
        vm.guest_memory.write_word(0x5000, 0xCAFE)
        hpa = vm.gpa_to_hpa(0x5000)
        reader = machine_reader(host.memory, [vm])
        assert reader(hpa) == 0xCAFE

    def test_host_addresses_read_host_store(self):
        host = Kernel(memory_bytes=128 * MB)
        vm = Hypervisor(host).create_vm(32 * MB)
        host.memory.write_word(0x7000, 0xBEEF)
        reader = machine_reader(host.memory, [vm])
        assert reader(0x7000) == 0xBEEF

    def test_two_level_chain(self):
        from repro.virt.nested import NestedSetup
        host = Kernel(memory_bytes=256 * MB)
        nested = NestedSetup(host, 64 * MB, 32 * MB)
        nested.l2_vm.guest_memory.write_word(0x3000, 0x1234)
        l0pa = nested.l2pa_to_l0pa(0x3000)
        reader = machine_reader(host.memory, [nested.l1_vm, nested.l2_vm])
        assert reader(l0pa) == 0x1234


class TestCLI:
    def test_list_command(self, capsys):
        from repro.__main__ import main
        assert main(["list", "--scale", "4096"]) == 0
        out = capsys.readouterr().out
        assert "GUPS" in out and "pvdmt" in out

    def test_table1_command(self, capsys):
        from repro.__main__ import main
        assert main(["table1"]) == 0
        assert "Memcached" in capsys.readouterr().out

    def test_run_command(self, capsys):
        from repro.__main__ import main
        code = main(["run", "--workload", "GUPS", "--env", "native",
                     "--designs", "vanilla,dmt", "--nrefs", "2000",
                     "--scale", "8192"])
        assert code == 0
        out = capsys.readouterr().out
        assert "walk speedup" in out

    def test_run_rejects_unknown_design(self, capsys):
        from repro.__main__ import main
        code = main(["run", "--workload", "GUPS", "--env", "native",
                     "--designs", "wat", "--nrefs", "1000",
                     "--scale", "8192"])
        assert code == 2

    def test_run_exposes_levels_and_register_count(self, capsys):
        from repro.__main__ import main
        code = main(["run", "--workload", "GUPS", "--env", "native",
                     "--designs", "vanilla,dmt", "--nrefs", "1500",
                     "--scale", "8192", "--levels", "5",
                     "--register-count", "8", "--engine", "scalar"])
        assert code == 0
        assert "walk speedup" in capsys.readouterr().out

    def test_sweep_command_writes_cell_telemetry(self, capsys, tmp_path):
        import json

        from repro.__main__ import main
        out = tmp_path / "sweep.json"
        code = main(["sweep", "--env", "native", "--workloads", "GUPS",
                     "--designs", "vanilla,dmt", "--nrefs", "1500",
                     "--scale", "8192", "--workers", "1",
                     "--out", str(out)])
        assert code == 0
        document = json.loads(out.read_text())
        assert document["meta"]["cells"] == 2
        by_design = {cell["design"]: cell for cell in document["cells"]}
        assert set(by_design) == {"vanilla", "dmt"}
        for cell in by_design.values():
            assert cell["walks"] > 0
            assert cell["replay_seconds"] > 0
            assert cell["walks_per_second"] > 0
            assert cell["peak_rss_kb"] > 0
        assert by_design["vanilla"]["walk_speedup"] == pytest.approx(1.0)

    def test_sweep_rejects_unknown_env(self, capsys):
        from repro.__main__ import main
        assert main(["sweep", "--env", "marsbase", "--workers", "1"]) == 2
