"""Unit tests for the native kernel package.

The deep bit-identity guarantees live in ``tests/test_walk_vec.py``
(the parity suite runs every supported pair through the native engine
against the scalar oracle, on whichever backend imported). This module
covers the pieces under that: backend selection, the ``array_view()``
writeback contract on every structure the kernels mutate, the
structure primitives against their live oracles, and the zero-copy
memmap transfer of cached artifacts across worker processes.
"""

import hashlib
import subprocess
import sys

import numpy as np
import pytest

from repro.arch import PAGE_SHIFT
from repro.hw.cache import CacheHierarchy
from repro.hw.config import xeon_gold_6138
from repro.sim.artifacts import ArtifactCache
from repro.sim.kernels import (
    BACKEND,
    HAVE_NUMBA,
    UNAVAILABLE_REASON,
    jit,
    replay_walks_native,
)
from repro.sim.kernels import designs, primitives, radix
from repro.sim.kernels.replay import _cache_state, _cwc_state, _pwc_state
from repro.sim.machine import ENVIRONMENTS, SimConfig
from repro.translation.ecpt import CuckooWalkCache


def _hierarchy():
    return CacheHierarchy.from_machine(xeon_gold_6138())


def _sets_state(caches):
    return [(cache.stats,
             {idx: tuple(ways) for idx, ways in cache._sets.items()})
            for cache in caches.levels]


def test_backend_selection():
    assert BACKEND == ("numba" if HAVE_NUMBA else "python")
    assert (UNAVAILABLE_REASON is None) == HAVE_NUMBA
    decorated = jit(lambda: 0)
    assert callable(decorated)


def test_kernel_catalog_is_decorated():
    """Every public kernel went through ``jit`` — a numba dispatcher
    when compiled (exposing ``py_func``), the plain function otherwise."""
    kernels = [
        primitives.cache_access, primitives.cache_access_cols,
        primitives.cache_probe, primitives.pwc_probe, primitives.pwc_fill,
        primitives.npwc_resolve, primitives.cwc_get, primitives.cwc_put,
        radix.radix_native_chunk, radix.radix_nested_chunk,
        designs.dmt_native_chunk, designs.dmt_nested_chunk,
        designs.ops_chunk, designs.agile_chunk,
        designs.asap_native_chunk, designs.asap_nested_chunk,
    ]
    for kernel in kernels:
        assert callable(kernel)
        assert hasattr(kernel, "py_func") == HAVE_NUMBA


def test_cache_array_view_writeback_roundtrip():
    """view + immediate writeback reproduces sets AND their LRU order."""
    caches = _hierarchy()
    rng = np.random.default_rng(7)
    for addr in rng.integers(0, 1 << 30, 4000).tolist():
        caches.access(addr)
    before = _sets_state(caches)
    for level in caches.levels:
        level.array_view().writeback()
    assert _sets_state(caches) == before


def test_cache_access_primitive_matches_hierarchy():
    oracle, subject = _hierarchy(), _hierarchy()
    cs, _views, finish = _cache_state(subject)
    rng = np.random.default_rng(11)
    addrs = rng.integers(0, 1 << 28, 3000).tolist()
    for i, addr in enumerate(addrs):
        if i % 5 == 4:
            expected = oracle.probe(addr).latency
            primitives.cache_probe(cs, addr)
        else:
            expected = oracle.access(addr).latency
            assert primitives.cache_access(cs, addr) == expected
    finish(None, None)
    assert _sets_state(subject) == _sets_state(oracle)
    assert subject.memory_accesses == oracle.memory_accesses


def test_cache_access_cols_matches_plain_access():
    plain, cols = _hierarchy(), _hierarchy()
    cs_a, _va, fin_a = _cache_state(plain)
    cs_b, _vb, fin_b = _cache_state(cols)
    shifts = [level.array_view() for level in plain.levels]
    rng = np.random.default_rng(13)
    for addr in rng.integers(0, 1 << 28, 2000).tolist():
        lines = []
        for view in shifts:
            line = addr >> view.line_shift
            lines += [line, line % view.num_sets]
        assert (primitives.cache_access(cs_a, addr)
                == primitives.cache_access_cols(cs_b, *lines))
    fin_a(None, None)
    fin_b(None, None)
    assert _sets_state(cols) == _sets_state(plain)


def test_pwc_primitives_match_oracle():
    """pwc_probe/pwc_fill against the live ``best_entry``/``fill``."""
    config = SimConfig(scale=4096, nrefs=500, seed=2)
    sims = [ENVIRONMENTS["native"]("GUPS", config) for _ in range(2)]
    oracle, subject = sims[0].walker("vanilla").memsys.pwc, \
        sims[1].walker("vanilla").memsys.pwc
    top = oracle.top_level
    ps, finish = _pwc_state(subject)
    n_offsets = len(subject._tables)
    rng = np.random.default_rng(17)
    vas = rng.integers(0, 1 << 40, 2000).tolist()
    for i, va in enumerate(vas):
        if i % 3 == 0:
            offset = i % n_offsets
            level = top - 1 - offset
            oracle.fill(va, level, i)
            primitives.pwc_fill(ps, offset,
                                (va >> PAGE_SHIFT) >> int(ps[4][offset]),
                                i)
        else:
            level, _addr = oracle.best_entry(va)
            start = primitives.pwc_probe(ps, va >> PAGE_SHIFT)
            # scalar hit at level L resumes there; the kernel returns
            # how many chain steps are skipped — the same quantity
            assert start == top - level
    finish(None, None)
    assert [tuple(t._entries.items()) for t in subject._tables] == \
        [tuple(t._entries.items()) for t in oracle._tables]
    assert subject._credit == oracle._credit
    assert subject.stats == oracle.stats


def test_cwc_primitives_match_oracle():
    oracle, subject = CuckooWalkCache(64), CuckooWalkCache(64)
    ws, finish = _cwc_state(subject)
    rng = np.random.default_rng(19)
    for i in range(3000):
        size = int(rng.integers(0, 3)) * 9 + 12
        group = int(rng.integers(0, 100))
        if i % 2 == 0:
            way = oracle.get(size, group)
            got = primitives.cwc_get(ws, (group << 6) | size)
            assert got == (-1 if way is None else way)
        else:
            way = int(rng.integers(0, 8))
            oracle.put(size, group, way)
            primitives.cwc_put(ws, (group << 6) | size, way)
    finish(None, None)
    assert tuple(subject._entries.items()) == tuple(oracle._entries.items())
    assert (subject.hits, subject.misses) == (oracle.hits, oracle.misses)


def test_replay_walks_native_rejects_unsupported():
    from repro.analysis import sanitizer
    try:
        config = SimConfig(scale=4096, nrefs=500, seed=0, sanitize=True)
        sim = ENVIRONMENTS["native"]("GUPS", config)
        with pytest.raises(ValueError, match="sanitizer"):
            replay_walks_native(sim.walker("vanilla"),
                                sim.tlb.miss_vas[:32])
    finally:
        sanitizer.reset()


_WORKER = """
import hashlib, sys
import numpy as np
from repro.sim.artifacts import ArtifactCache

cache = ArtifactCache(sys.argv[1])
loaded = cache.load_array("stage1", ["memmap-test"], mmap=True)
array, _meta = loaded
assert isinstance(array, np.memmap), type(array)
assert not array.flags.writeable
print(hashlib.sha256(array.tobytes()).hexdigest())
"""


def test_memmap_miss_stream_identical_across_workers(tmp_path):
    """Sweep-worker transfer: the same artifact mapped in independent
    processes is byte-identical to the stored miss stream."""
    root = str(tmp_path / "artifacts")
    cache = ArtifactCache(root)
    rng = np.random.default_rng(23)
    miss_vas = rng.integers(0, 1 << 47, 20000).astype(np.int64)
    cache.store_array("stage1", ["memmap-test"], miss_vas, {})
    expected = hashlib.sha256(miss_vas.tobytes()).hexdigest()

    digests = []
    for _ in range(2):
        out = subprocess.run(
            [sys.executable, "-c", _WORKER, root],
            capture_output=True, text=True, check=True)
        digests.append(out.stdout.strip())
    assert digests == [expected, expected]

    # and in-process: mmap load is a read-only view of the same bytes
    array, _meta = cache.load_array("stage1", ["memmap-test"], mmap=True)
    assert isinstance(array, np.memmap)
    assert hashlib.sha256(array.tobytes()).hexdigest() == expected
