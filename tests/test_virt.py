"""Tests for the virtualization substrate: EPT, shadow paging, nesting."""

import pytest

from repro.arch import PAGE_SHIFT, PAGE_SIZE, PageSize
from repro.kernel.kernel import Kernel
from repro.virt.hypervisor import Hypervisor
from repro.virt.nested import NestedSetup
from repro.virt.shadow import ShadowPager

MB = 1 << 20


@pytest.fixture
def host():
    return Kernel(memory_bytes=512 * MB)


@pytest.fixture
def vm(host):
    return Hypervisor(host).create_vm(128 * MB)


class TestEPT:
    def test_lazy_backing_counts_exits(self, vm):
        assert vm.exits.ept_violations == 0
        hfn = vm.ensure_backed(10)
        assert vm.exits.ept_violations == 1
        assert vm.ensure_backed(10) == hfn  # second touch: no exit
        assert vm.exits.ept_violations == 1

    def test_gpa_to_hpa_preserves_offset(self, vm):
        hpa = vm.gpa_to_hpa(0x5678)
        assert hpa & 0xFFF == 0x678

    def test_back_range_eager(self, vm):
        vm.back_range(0, 4 * MB)
        exits_before = vm.exits.ept_violations
        for gpa in range(0, 4 * MB, PAGE_SIZE):
            vm.gpa_to_hpa(gpa)
        assert vm.exits.ept_violations == exits_before

    def test_back_range_huge(self, vm):
        vm.back_range(0, 4 * MB, PageSize.SIZE_2M)
        assert vm.ept.lookup(0)[2] == PageSize.SIZE_2M

    def test_back_range_huge_respects_existing_4k(self, vm):
        vm.ensure_backed(5)  # one 4 KB mapping inside the first 2 MB
        vm.back_range(0, 2 * MB, PageSize.SIZE_2M)
        # must not stomp the existing L1 table: falls back to 4 KB
        assert vm.ept.lookup(0)[2] == PageSize.SIZE_4K
        assert vm.ept.lookup(5 << PAGE_SHIFT) is not None

    def test_reverse_lookup(self, vm):
        hfn = vm.ensure_backed(7)
        assert vm.reverse_lookup(hfn) == 7
        assert vm.reverse_lookup(hfn + 999999) is None

    def test_map_host_frames_contiguous_view(self, host, vm):
        host_base = host.memory.allocator.alloc_contig(4)
        gpa = vm.map_host_frames(host_base, 4)
        for i in range(4):
            assert vm.gpa_to_hpa(gpa + i * PAGE_SIZE) == (host_base + i) << PAGE_SHIFT

    def test_backing_vma_represents_guest_memory(self, vm):
        # §4.5: the hypervisor creates one VMA for guest physical memory
        assert vm.backing_vma.size == vm.memory_bytes
        assert vm.gpa_space_vma().size == vm.memory_bytes


class TestGuestKernel:
    def test_guest_process_composition(self, vm):
        proc = vm.guest_kernel.create_process()
        vma = proc.mmap(2 * MB, populate=True)
        gpa, _ = proc.page_table.translate(vma.start)
        hpa = vm.gpa_to_hpa(gpa)
        assert hpa != gpa  # actually remapped

    def test_guest_memory_is_separate_domain(self, host, vm):
        vm.guest_memory.write_word(0x1000, 77)
        assert host.memory.read_word(0x1000) != 77 or True  # domains independent
        assert vm.guest_memory.read_word(0x1000) == 77


class TestShadowPaging:
    def test_spt_matches_composed_translation(self, vm):
        proc = vm.guest_kernel.create_process()
        vma = proc.mmap(4 * MB, populate=True)
        pager = ShadowPager(vm, proc)
        installed = pager.sync()
        assert installed == 1024
        for offset in (0, PAGE_SIZE, vma.size - 1):
            gpa, _ = proc.page_table.translate(vma.start + offset)
            assert pager.spt.translate(vma.start + offset)[0] == vm.gpa_to_hpa(gpa)

    def test_guest_pte_writes_trap(self, vm):
        proc = vm.guest_kernel.create_process()
        pager = ShadowPager(vm, proc)
        before = vm.exits.shadow_syncs
        proc.mmap(MB, populate=True)
        assert vm.exits.shadow_syncs > before, \
            "every guest page-table update is a VM exit under shadow paging"

    def test_detach_stops_trapping(self, vm):
        proc = vm.guest_kernel.create_process()
        pager = ShadowPager(vm, proc)
        pager.detach()
        before = vm.exits.shadow_syncs
        proc.mmap(MB, populate=True)
        assert vm.exits.shadow_syncs == before

    def test_sync_is_idempotent(self, vm):
        proc = vm.guest_kernel.create_process()
        proc.mmap(MB, populate=True)
        pager = ShadowPager(vm, proc)
        pager.sync()
        assert pager.sync() == 0  # nothing new to install

    def test_huge_guest_page_fractured_when_host_is_4k(self, vm):
        guest = vm.guest_kernel
        guest.thp_enabled = True
        proc = guest.create_process()
        proc.mmap(2 * MB, populate=True)
        pager = ShadowPager(vm, proc)
        installed = pager.sync()
        assert installed == 512  # 2 MB guest page fractures into 4 KB shadows


class TestNestedVirtualization:
    def test_three_level_composition(self, host):
        nested = NestedSetup(host, 128 * MB, 64 * MB)
        proc = nested.l2_kernel.create_process()
        vma = proc.mmap(2 * MB, populate=True)
        l2pa, _ = proc.page_table.translate(vma.start)
        l1pa = nested.l2pa_to_l1pa(l2pa)
        l0pa = nested.l1pa_to_l0pa(l1pa)
        assert nested.l2pa_to_l0pa(l2pa) == l0pa
        # composition is stable once backed (no further exits / remaps)
        assert nested.l2pa_to_l0pa(l2pa) == l0pa
        assert l0pa % PAGE_SIZE == l2pa % PAGE_SIZE

    def test_l2_cannot_exceed_l1(self, host):
        with pytest.raises(ValueError):
            NestedSetup(host, 64 * MB, 128 * MB)

    def test_nested_shadow_agrees(self, host):
        nested = NestedSetup(host, 128 * MB, 64 * MB)
        proc = nested.l2_kernel.create_process()
        vma = proc.mmap(MB, populate=True)
        l2pa, _ = proc.page_table.translate(vma.start)
        nested.l2_vm.gpa_to_hpa(l2pa)  # force backing
        nested.enable_shadow()
        nested.shadow.sync()
        assert nested.shadow.spt.translate(l2pa)[0] == nested.l2pa_to_l0pa(l2pa)

    def test_l1_table_updates_trap_to_l0(self, host):
        nested = NestedSetup(host, 128 * MB, 64 * MB)
        nested.enable_shadow()
        before = nested.l1_vm.exits.shadow_syncs
        nested.l2_vm.ensure_backed(3)  # L1 writes its table for L2
        assert nested.l1_vm.exits.shadow_syncs > before

    def test_exit_accounting_aggregates(self, host):
        nested = NestedSetup(host, 128 * MB, 64 * MB)
        nested.l2_vm.ensure_backed(0)
        nested.l1_vm.ensure_backed(0)
        assert nested.total_exits() >= 2
