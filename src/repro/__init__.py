"""repro — a reproduction of "Direct Memory Translation for Virtualized
Clouds" (Zhang et al., ASPLOS 2024).

The package implements DMT/pvDMT and every substrate its evaluation
depends on: an x86-64 virtual-memory model (buddy allocator, VMAs, radix
page tables, THP), a KVM-style hypervisor with nested paging, shadow
paging and nested virtualization, the MMU-side hardware (TLBs, caches,
page-walk caches), four comparison translation designs (ECPT, FPT, Agile
Paging, ASAP), synthetic versions of the seven evaluation workloads, and
a trace-driven simulator with the paper's §5 performance model.

Quick start::

    from repro.sim import NativeSimulation, SimConfig

    sim = NativeSimulation("GUPS", SimConfig(scale=1024, nrefs=20_000))
    vanilla = sim.run("vanilla")
    dmt = sim.run("dmt")
    print(f"page-walk speedup: {vanilla.mean_latency / dmt.mean_latency:.2f}x")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

__version__ = "1.0.0"

from repro.arch import PageSize

__all__ = ["PageSize", "__version__"]
