"""Command-line interface: run one simulation, a sweep, or a figure.

Examples::

    python -m repro list
    python -m repro run --workload GUPS --env virt --designs vanilla,pvdmt
    python -m repro run --workload Redis --env native --thp --nrefs 40000
    python -m repro run --workload GUPS --env native --levels 5
    python -m repro run --workload GUPS --env virt --walk-engine scalar
    python -m repro sweep --env native --workers 4
    python -m repro sweep --env native,virt --pages both --out sweep.json
    python -m repro sweep --env native --trace trace.jsonl
    python -m repro sweep --env native --artifact-cache /tmp/repro-cache
    python -m repro sweep --env native --resume jobs/grid-a
    python -m repro jobs submit --env native --workers 4
    python -m repro jobs status .repro-jobs/<job_id>
    python -m repro jobs tail .repro-jobs/<job_id> --follow
    python -m repro jobs resume .repro-jobs/<job_id>
    python -m repro jobs cancel .repro-jobs/<job_id>
    python -m repro run --workload GUPS --env virt --artifact-cache cache/
    python -m repro regress --sweep sweep.json
    python -m repro table1
    python -m repro lint
    python -m repro run --workload GUPS --env native --sanitize
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import format_table
from repro.analysis.vma_stats import vma_stats
from repro.obs import trace as obs_trace
from repro.sim import ENVIRONMENTS, SimConfig
from repro.sim.perfmodel import model_from_stats
from repro.workloads import catalogue

_ENV_TO_CALIBRATION = {"native": "native", "virt": "virt_npt",
                       "nested": "nested"}


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for name, workload in catalogue(args.scale).items():
        rows.append([name, workload.working_set_bytes() >> 20,
                     workload.paper_working_set_gb, workload.description])
    print(format_table(
        ["Workload", "ws (MiB)", "paper ws (GB)", "description"], rows,
        title=f"Workloads at scale 1/{args.scale}",
    ))
    print("\nEnvironments:", ", ".join(sorted(ENVIRONMENTS)))
    for env, cls in sorted(ENVIRONMENTS.items()):
        print(f"  {env:7s} designs: {', '.join(cls.designs)}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    env_cls = ENVIRONMENTS[args.env]
    config = SimConfig(scale=args.scale, nrefs=args.nrefs, seed=args.seed,
                       thp=args.thp, levels=args.levels,
                       register_count=args.register_count,
                       engine=args.engine, walk_engine=args.walk_engine,
                       sanitize=args.sanitize,
                       stream_chunk=args.stream_chunk)
    stage1 = None
    if args.artifact_cache and not args.no_artifact_cache:
        from repro.sim.artifacts import ArtifactCache
        from repro.sim.simulator import Stage1Cache

        stage1 = Stage1Cache(artifacts=ArtifactCache(args.artifact_cache))
    if args.trace:
        obs_trace.enable(args.trace)
    try:
        print(f"building {args.env} machine for {args.workload} "
              f"(scale 1/{args.scale}, {args.nrefs} refs, "
              f"{'THP' if args.thp else '4KB'}) ...")
        sim = env_cls(args.workload, config, stage1=stage1)
        source = f", stage 1 from {sim.stage1_source}" if stage1 else ""
        print(f"TLB miss rate {sim.tlb.miss_rate:.1%} "
              f"({sim.tlb.miss_count} walks{source})\n")

        designs = (args.designs.split(",") if args.designs
                   else list(env_cls.designs))
        unknown = set(designs) - set(env_cls.designs)
        if unknown:
            print(f"unknown design(s) for {args.env}: {sorted(unknown)}",
                  file=sys.stderr)
            return 2

        try:
            from repro.sim.sweep import run_design_stats

            stats = run_design_stats(sim, designs,
                                     cell_threads=args.cell_threads)
            vanilla = stats.get("vanilla") or sim.run("vanilla")
        except ValueError as error:
            # e.g. --walk-engine vec forced onto a design with no batched
            # path; restrict --designs or use auto/scalar.
            print(f"error: {error}", file=sys.stderr)
            return 2
        rows = []
        for design, st in stats.items():
            row = [design, st.mean_latency,
                   (vanilla.mean_latency / st.mean_latency
                    if st.mean_latency else 0),
                   f"{st.fallback_rate:.2%}"]
            try:
                model = model_from_stats(args.workload,
                                         _ENV_TO_CALIBRATION[args.env],
                                         vanilla, st, thp=args.thp)
                row.append(model.app_speedup)
            except (KeyError, ValueError):
                # no calibration profile for the pair, or a degenerate
                # zero-overhead baseline — the table still prints.
                row.append("-")
            rows.append(row)
        print(format_table(
            ["design", "cycles/walk", "walk speedup", "fallback",
             "app speedup"],
            rows,
        ))
        if args.trace:
            print(f"trace spans appended to {args.trace}")
    finally:
        if args.trace:
            obs_trace.disable()
    return 0


def _grid_args(args: argparse.Namespace):
    """Parse the shared sweep-grid flags into run_sweep-style values."""
    envs = [env for env in args.env.split(",") if env]
    thp_modes = {"4k": (False,), "thp": (True,), "both": (False, True)}
    workloads = [w for w in args.workloads.split(",") if w] \
        if args.workloads else None
    designs = [d for d in args.designs.split(",") if d] \
        if args.designs else None
    artifact_dir = None if args.no_artifact_cache \
        else (args.artifact_cache or ".repro-artifacts")
    return envs, workloads, designs, thp_modes[args.pages], artifact_dir


def _config_kwargs(args: argparse.Namespace) -> dict:
    """The SimConfig kwargs shared by sweep and jobs submit."""
    return dict(scale=args.scale, nrefs=args.nrefs, seed=args.seed,
                levels=args.levels, register_count=args.register_count,
                walk_engine=args.walk_engine, sanitize=args.sanitize,
                stream_chunk=args.stream_chunk)


def _print_sweep_summary(document: dict, args: argparse.Namespace,
                         artifact_dir) -> int:
    from repro.sim.sweep import summarize

    meta = document["meta"]
    title = (f"Sweep: {meta['cells']} cells in "
             f"{meta['wall_seconds']:.1f}s ({meta['workers']} worker(s))")
    job = meta.get("job")
    if job:
        title += (f" — job {job['job_id']}: {job['resumed_groups']} "
                  f"group(s) from journal, {job['retried_shards']} "
                  f"retried shard(s)")
    print(format_table(
        ["env", "workload", "pages", "design", "cycles/walk",
         "walk speedup", "walks/s", "peak RSS"],
        summarize(document),
        title=title,
    ))
    if args.out:
        print(f"\nwrote {meta['cells']} cells to {args.out}")
    if args.trace:
        print(f"trace spans appended to {args.trace}")
    if artifact_dir:
        disk = sum(1 for cell in document["cells"]
                   if cell.get("stage1_source") == "disk")
        print(f"artifact cache {artifact_dir}: {disk} cell(s) served "
              f"stage 1 from disk")
    errors = meta["metrics"]["sweep.error_cells"]
    if errors:
        print(f"warning: {errors} error cell(s) in the sweep",
              file=sys.stderr)
    if meta.get("partial"):
        print(f"warning: partial sweep — missing group(s): "
              f"{meta.get('missing_groups')}", file=sys.stderr)
        return 1
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sim.sweep import run_sweep

    envs, workloads, designs, thp_modes, artifact_dir = _grid_args(args)
    unknown = set(envs) - set(ENVIRONMENTS)
    if unknown:
        print(f"unknown environment(s): {sorted(unknown)}", file=sys.stderr)
        return 2
    try:
        document = run_sweep(
            envs=envs, workloads=workloads, designs=designs,
            thp_modes=thp_modes, workers=args.workers,
            out_path=args.out, progress=print, trace_path=args.trace,
            artifact_dir=artifact_dir, resume_dir=args.resume,
            cell_threads=args.cell_threads,
            **_config_kwargs(args),
        )
    except KeyError as error:
        # unknown design: no swept environment provides it
        print(f"error: {error.args[0] if error.args else error}",
              file=sys.stderr)
        return 2
    return _print_sweep_summary(document, args, artifact_dir)


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.sim import jobs

    if args.jobs_command == "submit":
        envs, workloads, designs, thp_modes, artifact_dir = _grid_args(args)
        try:
            spec = jobs.JobSpec.build(envs=envs, workloads=workloads,
                                      designs=designs, thp_modes=thp_modes,
                                      **_config_kwargs(args))
        except KeyError as error:
            print(f"error: {error.args[0] if error.args else error}",
                  file=sys.stderr)
            return 2
        job_dir, document = jobs.submit(
            spec, base_dir=args.dir, job_dir=args.job_dir,
            workers=args.workers, shard_timeout=args.timeout,
            max_retries=args.max_retries, out_path=args.out,
            progress=print, trace_path=args.trace,
            artifact_dir=artifact_dir, cell_threads=args.cell_threads)
        print(f"job {spec.job_id} journaled under {job_dir}")
        return _print_sweep_summary(document, args, artifact_dir)
    if args.jobs_command == "status":
        info = jobs.status(args.job_dir)
        print(jobs.format_status(info))
        return 2 if info["state"] == "missing" else 0
    if args.jobs_command == "tail":
        try:
            jobs.tail(args.job_dir, count=args.count, follow=args.follow)
        except KeyboardInterrupt:
            pass
        return 0
    if args.jobs_command == "resume":
        try:
            document = jobs.resume(
                args.job_dir, workers=args.workers,
                shard_timeout=args.timeout, max_retries=args.max_retries,
                out_path=args.out, progress=print, trace_path=args.trace,
                cell_threads=args.cell_threads,
                artifact_dir=None if args.no_artifact_cache
                else (args.artifact_cache or ".repro-artifacts"))
        except FileNotFoundError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        job = document["meta"]["job"]
        print(f"job {job['job_id']}: {job['resumed_groups']} group(s) "
              f"from journal, {job['retried_shards']} retried shard(s)")
        return 1 if document["meta"].get("partial") else 0
    if args.jobs_command == "cancel":
        if jobs.cancel(args.job_dir):
            print(f"cancel requested for {args.job_dir}")
            return 0
        print(f"{args.job_dir}: job already finished", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled jobs command {args.jobs_command!r}")


def _cmd_regress(args: argparse.Namespace) -> int:
    from repro.obs import regress

    return regress.run_gate(
        bench_path=args.bench,
        baseline_bench_path=args.baseline_bench,
        sweep_path=args.sweep,
        baseline_sweep_path=args.baseline_sweep,
        tolerance=args.tolerance,
        latency_tolerance=args.latency_tolerance,
        trajectory_path=None if args.no_trajectory else args.trajectory,
        stream_path=args.stream_bench,
        baseline_stream_path=args.baseline_stream_bench,
    )


def _cmd_table1(args: argparse.Namespace) -> int:
    rows = []
    for name, workload in catalogue(min(args.scale, 1024)).items():
        layout = [(s, e) for s, e, _ in workload.layout()]
        stats = vma_stats(layout)
        rows.append([name, stats.total, stats.cov99, stats.clusters])
    print(format_table(["Workload", "Total", "99% Cov.", "Clusters"], rows,
                       title="Table 1: VMA characteristics"))
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "lint":
        # dmtlint owns its own argument parser (free-form paths).
        from repro.analysis.lint import main as lint_main

        return lint_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of 'Direct Memory Translation for "
                    "Virtualized Clouds' (ASPLOS 2024)",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--scale", type=int, default=1024,
                        help="working-set divisor vs the paper (default 1024)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", parents=[common],
                   help="list workloads, environments, designs")
    sub.add_parser("table1", parents=[common],
                   help="print the Table 1 reproduction")

    simopts = argparse.ArgumentParser(add_help=False)
    simopts.add_argument("--nrefs", type=int, default=20_000)
    simopts.add_argument("--seed", type=int, default=0)
    simopts.add_argument("--levels", type=int, choices=(4, 5), default=4,
                         help="radix page-table depth (§2.1.1's 5-level "
                              "extension; default 4)")
    simopts.add_argument("--register-count", type=int, default=16,
                         help="DMT registers per set (default 16, Fig. 13)")
    simopts.add_argument("--walk-engine",
                         choices=("auto", "native", "vec", "scalar"),
                         default="auto",
                         help="stage-2 replay engine: 'native' runs the "
                              "compiled chunk kernels (pure-Python "
                              "fallback without numba, recorded in "
                              "WalkStats.fallback_reason), 'vec' batches "
                              "walks per design, 'scalar' is the "
                              "reference oracle, 'auto' picks native "
                              "when compiled, else vec, when the design "
                              "supports it (default)")
    simopts.add_argument("--stream-chunk", type=int, default=None,
                         metavar="REFS",
                         help="stream stage 0->1 in chunks of this many "
                              "references (constant memory, bit-identical "
                              "results); 0 forces the monolithic path; "
                              "default: auto-stream above "
                              "8M references")
    simopts.add_argument("--sanitize", action="store_true",
                         help="enable the runtime translation sanitizer "
                              "(invariant checks on TEAs, PTEs, TLB/PWC "
                              "coherence, pvDMT isolation)")
    simopts.add_argument("--trace", default=None, metavar="PATH",
                         help="append trace spans (stage-1 filter, stage-2 "
                              "replays, sweep groups) to this JSONL file")
    simopts.add_argument("--artifact-cache", default=None, metavar="DIR",
                         help="persist stage-0 traces and stage-1 miss "
                              "streams to this content-addressed cache "
                              "directory and reuse them across runs "
                              "(sweep default: .repro-artifacts; run "
                              "default: off)")
    simopts.add_argument("--no-artifact-cache", action="store_true",
                         help="disable the on-disk artifact cache")

    run = sub.add_parser("run", parents=[common, simopts],
                         help="simulate one workload/environment")
    run.add_argument("--workload", default="GUPS")
    run.add_argument("--env", choices=sorted(ENVIRONMENTS), default="native")
    run.add_argument("--designs", default="",
                     help="comma-separated subset (default: all)")
    run.add_argument("--thp", action="store_true",
                     help="transparent huge pages in every layer")
    run.add_argument("--engine", choices=("vec", "scalar"), default="vec",
                     help="stage-1 TLB-filter engine (scalar = reference "
                          "oracle)")
    run.add_argument("--cell-threads", type=int, default=1,
                     help="replay this many designs on concurrent threads "
                          "(nogil native kernels; default: 1)")

    gridopts = argparse.ArgumentParser(add_help=False)
    gridopts.add_argument("--env", default="native",
                          help="comma-separated environments "
                               "(default: native)")
    gridopts.add_argument("--workloads", default="",
                          help="comma-separated subset (default: all seven)")
    gridopts.add_argument("--designs", default="",
                          help="comma-separated subset "
                               "(default: all per env)")
    gridopts.add_argument("--pages", choices=("4k", "thp", "both"),
                          default="4k",
                          help="page-size modes to sweep (default: 4k)")
    gridopts.add_argument("--workers", type=int, default=None,
                          help="worker processes (default: all cores)")
    gridopts.add_argument("--cell-threads", type=int, default=1,
                          help="replay threads per worker process: each "
                               "group's (env, design) cells fan out over "
                               "nogil native kernels (default: 1)")

    sweep = sub.add_parser("sweep", parents=[common, simopts, gridopts],
                           help="run the workload×design grid in parallel")
    sweep.add_argument("--out", default="sweep_results.json",
                       help="JSON result store (default: sweep_results.json)")
    sweep.add_argument("--resume", default=None, metavar="DIR",
                       help="run as a durable job journaled under DIR: "
                            "completed groups persist as they finish and "
                            "an interrupted sweep restarts from the "
                            "journal, re-running only missing groups "
                            "(a fresh DIR starts a new job)")

    jobopts = argparse.ArgumentParser(add_help=False)
    jobopts.add_argument("--timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-shard timeout; a shard past it is "
                              "retried on a fresh pool (default: none)")
    jobopts.add_argument("--max-retries", type=int, default=2,
                         help="re-runs of a shard after worker-death/"
                              "timeout failures (default: 2)")
    jobopts.add_argument("--out", default=None,
                         help="also write the assembled sweep JSON here")

    jobs_parser = sub.add_parser(
        "jobs", help="resumable sharded sweep jobs (submit/status/tail/"
                     "resume/cancel)")
    jobs_sub = jobs_parser.add_subparsers(dest="jobs_command", required=True)
    jobs_submit = jobs_sub.add_parser(
        "submit", parents=[common, simopts, gridopts, jobopts],
        help="journal a sweep grid as a job and run it to completion")
    jobs_submit.add_argument("--dir", default=".repro-jobs",
                             help="base directory; the job lands in "
                                  "<dir>/<job_id> (default: .repro-jobs)")
    jobs_submit.add_argument("--job-dir", default=None,
                             help="explicit job directory (overrides "
                                  "--dir/<job_id>)")
    jobs_status = jobs_sub.add_parser("status",
                                      help="summarize a job's journal")
    jobs_status.add_argument("job_dir")
    jobs_tail = jobs_sub.add_parser("tail",
                                    help="print journal records as they "
                                         "are appended")
    jobs_tail.add_argument("job_dir")
    jobs_tail.add_argument("-n", "--count", type=int, default=20,
                           help="journal records to print (default 20)")
    jobs_tail.add_argument("--follow", action="store_true",
                           help="keep streaming until the job ends")
    jobs_resume = jobs_sub.add_parser(
        "resume", parents=[jobopts],
        help="re-run the missing shards of an interrupted job")
    jobs_resume.add_argument("job_dir")
    jobs_resume.add_argument("--workers", type=int, default=None)
    jobs_resume.add_argument("--cell-threads", type=int, default=1,
                             help="replay threads per worker process "
                                  "(default: 1)")
    jobs_resume.add_argument("--trace", default=None, metavar="PATH")
    jobs_resume.add_argument("--artifact-cache", default=None, metavar="DIR")
    jobs_resume.add_argument("--no-artifact-cache", action="store_true")
    jobs_cancel = jobs_sub.add_parser(
        "cancel", help="ask the running scheduler to drain and stop")
    jobs_cancel.add_argument("job_dir")

    regress = sub.add_parser(
        "regress",
        help="compare bench/sweep artifacts against archived baselines; "
             "exit non-zero on regression")
    from repro.obs.regress import (
        DEFAULT_BENCH,
        DEFAULT_BENCH_BASELINE,
        DEFAULT_LATENCY_TOLERANCE,
        DEFAULT_STREAM_BASELINE,
        DEFAULT_STREAM_BENCH,
        DEFAULT_SWEEP_BASELINE,
        DEFAULT_TOLERANCE,
        DEFAULT_TRAJECTORY,
    )
    regress.add_argument("--bench", default=DEFAULT_BENCH,
                         help=f"current engine bench (default {DEFAULT_BENCH};"
                              " skipped when absent)")
    regress.add_argument("--baseline-bench", default=DEFAULT_BENCH_BASELINE,
                         help="archived engine-bench baseline "
                              f"(default {DEFAULT_BENCH_BASELINE})")
    regress.add_argument("--stream-bench", default=DEFAULT_STREAM_BENCH,
                         help="current streaming stage-1 bench (default "
                              f"{DEFAULT_STREAM_BENCH}; skipped when "
                              "absent)")
    regress.add_argument("--baseline-stream-bench",
                         default=DEFAULT_STREAM_BASELINE,
                         help="archived streaming stage-1 baseline "
                              f"(default {DEFAULT_STREAM_BASELINE})")
    regress.add_argument("--sweep", default=None,
                         help="current sweep document to compare "
                              "(default: bench only)")
    regress.add_argument("--baseline-sweep", default=DEFAULT_SWEEP_BASELINE,
                         help="archived sweep baseline "
                              f"(default {DEFAULT_SWEEP_BASELINE})")
    regress.add_argument("--tolerance", type=float,
                         default=DEFAULT_TOLERANCE,
                         help="relative slack on walks/sec throughput "
                              f"(default {DEFAULT_TOLERANCE})")
    regress.add_argument("--latency-tolerance", type=float,
                         default=DEFAULT_LATENCY_TOLERANCE,
                         help="relative slack on deterministic mean_latency "
                              f"(default {DEFAULT_LATENCY_TOLERANCE})")
    regress.add_argument("--trajectory", default=DEFAULT_TRAJECTORY,
                         help="performance-history store appended to on "
                              f"clean runs (default {DEFAULT_TRAJECTORY})")
    regress.add_argument("--no-trajectory", action="store_true",
                         help="do not append to the trajectory store")

    # handled before parsing (free-form paths); listed here for --help only
    sub.add_parser("lint", help="run dmtlint, the simulator-invariant "
                                "static-analysis pass (rules L1-L7)")

    args = parser.parse_args(argv)
    handler = {"list": _cmd_list, "run": _cmd_run, "sweep": _cmd_sweep,
               "jobs": _cmd_jobs, "table1": _cmd_table1,
               "regress": _cmd_regress}
    return handler[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
