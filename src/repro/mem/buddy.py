"""Binary buddy allocator over a flat physical frame space.

This is the Linux-style substrate DMT-Linux builds on: page-table pages,
TEAs, and data frames all come from here. It supports:

* ``alloc_pages(order)`` / ``free_pages(frame, order)`` — classic buddy ops;
* ``alloc_contig(npages)`` — the ``alloc_contig_pages`` analogue DMT uses
  for TEAs (§4.3), which fails when no contiguous run exists;
* movable/unmovable frame tagging and ``compact()`` — the on-demand
  defragmentation DMT-Linux instructs the allocator to perform;
* the free-memory fragmentation index (FMFI) used by §6.3's fragmentation
  experiment.

Frames are integers (frame numbers). Physical byte addresses are
``frame << PAGE_SHIFT``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set


MAX_ORDER = 11  # Linux: free lists for 2^0 .. 2^10 pages


class OutOfMemoryError(Exception):
    """No frames (or no suitably contiguous frames) are available."""


class ContiguityError(OutOfMemoryError):
    """Enough free frames exist but not as one contiguous run."""


@dataclass
class BuddyStats:
    allocations: int = 0
    frees: int = 0
    contig_allocations: int = 0
    contig_failures: int = 0
    compactions: int = 0
    pages_migrated: int = 0


class BuddyAllocator:
    """Binary buddy allocator with contiguous allocation and compaction."""

    def __init__(self, total_frames: int, base_frame: int = 0):
        if total_frames <= 0:
            raise ValueError("total_frames must be positive")
        self.base_frame = base_frame
        self.total_frames = total_frames
        self.stats = BuddyStats()
        # free_lists[order] = insertion-ordered dict of block-start frames
        self.free_lists: List[Dict[int, None]] = [{} for _ in range(MAX_ORDER)]
        # frame -> order, for allocated block heads
        self._allocated: Dict[int, int] = {}
        self._movable: Set[int] = set()
        self._seed_free_space()

    def _seed_free_space(self) -> None:
        frame = self.base_frame
        remaining = self.total_frames
        while remaining > 0:
            order = min(MAX_ORDER - 1, remaining.bit_length() - 1)
            # block start must be aligned to its size relative to base 0
            while order > 0 and frame % (1 << order) != 0:
                order -= 1
            self.free_lists[order][frame] = None
            frame += 1 << order
            remaining -= 1 << order

    # ------------------------------------------------------------------ #
    # Core buddy operations
    # ------------------------------------------------------------------ #

    def alloc_pages(self, order: int = 0, movable: bool = True) -> int:
        """Allocate a 2^order-frame block; returns the first frame number."""
        if not 0 <= order < MAX_ORDER:
            raise ValueError(f"order {order} out of range")
        for current in range(order, MAX_ORDER):
            if self.free_lists[current]:
                frame = next(iter(self.free_lists[current]))
                self.free_lists[current].pop(frame)
                # split back down to the requested order
                while current > order:
                    current -= 1
                    buddy = frame + (1 << current)
                    self.free_lists[current][buddy] = None
                self._allocated[frame] = order
                if movable:
                    self._movable.add(frame)
                self.stats.allocations += 1
                return frame
        raise OutOfMemoryError(f"no free block of order {order}")

    def free_pages(self, frame: int, order: Optional[int] = None) -> None:
        """Free a previously allocated block, coalescing with its buddy."""
        actual = self._allocated.pop(frame, None)
        if actual is None:
            raise ValueError(f"frame {frame} is not an allocated block head")
        if order is not None and order != actual:
            raise ValueError(f"frame {frame} was allocated at order {actual}, not {order}")
        self._movable.discard(frame)
        self.stats.frees += 1
        current = actual
        while current < MAX_ORDER - 1:
            buddy = frame ^ (1 << current)
            if buddy in self.free_lists[current]:
                self.free_lists[current].pop(buddy)
                frame = min(frame, buddy)
                current += 1
            else:
                break
        self.free_lists[current][frame] = None

    # ------------------------------------------------------------------ #
    # Contiguous allocation (alloc_contig_pages analogue)
    # ------------------------------------------------------------------ #

    def alloc_contig(self, npages: int, movable: bool = False) -> int:
        """Allocate ``npages`` physically contiguous frames.

        Mirrors ``alloc_contig_pages``: round up to block granularity by
        composing adjacent buddy blocks. Raises :class:`ContiguityError`
        when no contiguous run can be assembled (the caller — DMT's TEA
        manager — then splits the request, §4.2.2).
        """
        if npages <= 0:
            raise ValueError("npages must be positive")
        run = self._find_free_run(npages)
        if run is None:
            self.stats.contig_failures += 1
            raise ContiguityError(f"no contiguous run of {npages} frames")
        self._carve_run(run, npages)
        self._allocated[run] = -npages  # negative order marks a contig block
        if movable:
            self._movable.add(run)
        self.stats.contig_allocations += 1
        return run

    def free_contig(self, frame: int, npages: int) -> None:
        """Free a block returned by :meth:`alloc_contig` (free_contig_range)."""
        recorded = self._allocated.pop(frame, None)
        if recorded != -npages:
            raise ValueError(f"frame {frame} is not a {npages}-frame contig block")
        self._movable.discard(frame)
        self.stats.frees += 1
        self._release_run(frame, npages)

    def expand_contig(self, frame: int, npages: int, extra: int) -> bool:
        """Try to grow a contig block in place by ``extra`` frames.

        Returns True on success (the block is now ``npages + extra`` frames).
        This models in-place TEA expansion (§4.3); failure means the caller
        must migrate to a fresh TEA.
        """
        if self._allocated.get(frame) != -npages:
            raise ValueError(f"frame {frame} is not a {npages}-frame contig block")
        start = frame + npages
        run = self._find_free_run_at(start, extra)
        if not run:
            return False
        self._carve_run(start, extra)
        self._allocated[frame] = -(npages + extra)
        return True

    def shrink_contig(self, frame: int, npages: int, new_npages: int) -> None:
        """Release the tail of a contig block, keeping its base in place."""
        if self._allocated.get(frame) != -npages:
            raise ValueError(f"frame {frame} is not a {npages}-frame contig block")
        if not 0 < new_npages <= npages:
            raise ValueError("new_npages must be within the current block")
        if new_npages == npages:
            return
        self._allocated[frame] = -new_npages
        self._release_run(frame + new_npages, npages - new_npages)

    def _find_free_run(self, npages: int) -> Optional[int]:
        """Locate a free contiguous run of >= npages frames, smallest start."""
        free = self._free_frame_intervals()
        for start, length in free:
            if length >= npages:
                return start
        return None

    def _find_free_run_at(self, start: int, npages: int) -> bool:
        for istart, length in self._free_frame_intervals():
            if istart <= start and start + npages <= istart + length:
                return True
        return False

    def _free_frame_intervals(self) -> List[tuple]:
        """Merged (start, length) intervals of free frames, sorted by start."""
        blocks = sorted(
            (frame, 1 << order)
            for order, frames in enumerate(self.free_lists)
            for frame in frames
        )
        merged: List[List[int]] = []
        for start, length in blocks:
            if merged and merged[-1][0] + merged[-1][1] == start:
                merged[-1][1] += length
            else:
                merged.append([start, length])
        return [(s, l) for s, l in merged]

    def _carve_run(self, start: int, npages: int) -> None:
        """Remove [start, start+npages) from the free lists, re-freeing edges."""
        end = start + npages
        for order in range(MAX_ORDER):
            overlapping = [
                frame
                for frame in self.free_lists[order]
                if frame < end and frame + (1 << order) > start
            ]
            for frame in overlapping:
                self.free_lists[order].pop(frame)
                # give back the pieces outside [start, end)
                self._release_raw(frame, min(frame + (1 << order), start) - frame)
                tail_start = max(frame, end)
                self._release_raw(tail_start, frame + (1 << order) - tail_start)

    def _release_raw(self, start: int, npages: int) -> None:
        """Insert raw frames into the free lists without buddy coalescing."""
        while npages > 0:
            order = min(MAX_ORDER - 1, npages.bit_length() - 1)
            while order > 0 and start % (1 << order) != 0:
                order -= 1
            self.free_lists[order][start] = None
            start += 1 << order
            npages -= 1 << order

    def _release_run(self, start: int, npages: int) -> None:
        """Free a contiguous run with best-effort buddy coalescing."""
        # Insert as raw blocks, then coalesce pairs greedily.
        self._release_raw(start, npages)
        self._coalesce()

    def _coalesce(self) -> None:
        changed = True
        while changed:
            changed = False
            for order in range(MAX_ORDER - 1):
                frames = self.free_lists[order]
                for frame in sorted(frames):
                    buddy = frame ^ (1 << order)
                    if frame in frames and buddy in frames:
                        frames.pop(frame)
                        frames.pop(buddy)
                        self.free_lists[order + 1][min(frame, buddy)] = None
                        changed = True

    # ------------------------------------------------------------------ #
    # Fragmentation and compaction
    # ------------------------------------------------------------------ #

    @property
    def free_frames(self) -> int:
        return sum(len(frames) << order for order, frames in enumerate(self.free_lists))

    @property
    def allocated_frames(self) -> int:
        return self.total_frames - self.free_frames

    def fragmentation_index(self, order: int = 9) -> float:
        """Free-memory fragmentation index for ``order`` (Linux FMFI).

        0 means free memory is perfectly contiguous for this order; values
        approaching 1 mean free memory exists only as small blocks. §6.3
        fragments memory to FMFI ~= 0.99 before measuring DMT overhead.
        """
        requested = 1 << order
        total_free = self.free_frames
        if total_free == 0:
            return 0.0
        blocks_sufficient = sum(
            len(frames)
            for ord_, frames in enumerate(self.free_lists)
            if (1 << ord_) >= requested
        )
        if blocks_sufficient:
            return 0.0
        total_blocks = sum(len(frames) for frames in self.free_lists)
        return 1.0 - (total_free / requested) / total_blocks

    def compact(self) -> int:
        """Migrate movable blocks toward high addresses to create contiguity.

        A simplified memory compactor: movable allocated blocks are
        relocated into free space at the top of the zone, merging the freed
        space at the bottom. Returns the number of migrated frames. Callers
        that relocate real contents (the kernel model) must re-map via the
        returned relocation table of :meth:`compact_with_map`.
        """
        migrated, _ = self.compact_with_map()
        return migrated

    def compact_with_map(self) -> tuple:
        """Compaction that also returns {old_frame: new_frame} per block head."""
        self.stats.compactions += 1
        relocation: Dict[int, int] = {}
        migrated = 0
        movable = sorted(self._movable)
        for frame in movable:
            order = self._allocated.get(frame)
            if order is None:
                continue
            npages = (1 << order) if order >= 0 else -order
            alignment = (1 << order) if order > 0 else 1
            target = self._highest_free_run(npages, above=frame + npages, alignment=alignment)
            if target is None:
                continue
            self._carve_run(target, npages)
            self._allocated.pop(frame)
            self._movable.discard(frame)
            self._allocated[target] = order
            self._movable.add(target)
            self._release_run(frame, npages)
            relocation[frame] = target
            migrated += npages
        self.stats.pages_migrated += migrated
        return migrated, relocation

    def _highest_free_run(self, npages: int, above: int, alignment: int = 1) -> Optional[int]:
        best = None
        for start, length in self._free_frame_intervals():
            if start < above:
                # only the part of the interval above the threshold counts
                cut = above - start
                start, length = above, length - cut
            if length < npages:
                continue
            candidate = (start + length - npages) & ~(alignment - 1)
            if candidate >= start and (best is None or candidate > best):
                best = candidate
        return best

    def owned_blocks(self) -> Iterable[tuple]:
        """Yield (frame, npages, movable) for every allocated block."""
        for frame, order in sorted(self._allocated.items()):
            npages = (1 << order) if order >= 0 else -order
            yield frame, npages, frame in self._movable
