"""Fragmentation tooling.

Reproduces the methodology of §6.3: before measuring DMT's management
overhead the authors fragment memory with the tool from Ingens [40] until
the free-memory fragmentation index (FMFI) reaches 0.99. ``fragment``
drives a :class:`~repro.mem.buddy.BuddyAllocator` into that state by
allocating scattered order-0 pages and freeing every other one.
"""

from __future__ import annotations

import random
from typing import List

from repro.mem.buddy import BuddyAllocator, OutOfMemoryError


def fragment(
    allocator: BuddyAllocator,
    target_index: float = 0.99,
    order: int = 9,
    fill_fraction: float = 0.95,
    seed: int = 0,
) -> float:
    """Fragment free memory until ``fragmentation_index(order)`` >= target.

    Fills ``fill_fraction`` of memory with single frames, then frees a
    random half of them so free memory consists of isolated frames.
    Returns the achieved index.
    """
    rng = random.Random(seed)
    held: List[int] = []
    # Fill *all* of free memory with pinned single frames: any surviving
    # high-order free block keeps the index at 0.
    try:
        while True:
            held.append(allocator.alloc_pages(0, movable=False))
    except OutOfMemoryError:
        pass
    # Free scattered frames until (1 - fill_fraction) of memory is free
    # again; freeing non-adjacent frames leaves only order-0 free blocks.
    rng.shuffle(held)
    to_free = int(allocator.total_frames * (1.0 - fill_fraction))
    freed = 0
    for frame in held:
        if freed >= to_free and allocator.fragmentation_index(order) >= target_index:
            break
        allocator.free_pages(frame)
        freed += 1
    # keep the rest pinned so compaction cannot trivially undo the state
    return allocator.fragmentation_index(order)
