"""Physical-memory substrate: buddy allocator, frame space, fragmentation."""

from repro.mem.buddy import (
    BuddyAllocator,
    ContiguityError,
    OutOfMemoryError,
    MAX_ORDER,
)
from repro.mem.fragmentation import fragment
from repro.mem.physmem import PhysicalMemory, addr_to_frame, frame_to_addr

__all__ = [
    "BuddyAllocator",
    "ContiguityError",
    "OutOfMemoryError",
    "MAX_ORDER",
    "fragment",
    "PhysicalMemory",
    "addr_to_frame",
    "frame_to_addr",
]
