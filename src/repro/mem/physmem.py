"""Physical memory: a frame space fronted by a buddy allocator.

``PhysicalMemory`` is the single authority for frame ownership in a
simulated machine. It stores 8-byte words for page-table pages only (data
pages carry no contents — the simulator never needs them), which lets the
radix walkers read real PTE values from real physical addresses.
"""

from __future__ import annotations

from typing import Dict

from repro.arch import PAGE_SHIFT, PAGE_SIZE, PTE_SIZE
from repro.mem.buddy import BuddyAllocator


def frame_to_addr(frame: int) -> int:
    return frame << PAGE_SHIFT

def addr_to_frame(addr: int) -> int:
    return addr >> PAGE_SHIFT


class PhysicalMemory:
    """Flat physical memory with word-granular storage for metadata pages."""

    def __init__(self, total_bytes: int):
        if total_bytes % PAGE_SIZE:
            raise ValueError("total_bytes must be page aligned")
        self.total_frames = total_bytes // PAGE_SIZE
        self.allocator = BuddyAllocator(self.total_frames)
        # sparse storage: word address (byte addr // 8) -> value
        self._words: Dict[int, int] = {}

    @property
    def total_bytes(self) -> int:
        return self.total_frames * PAGE_SIZE

    def read_word(self, addr: int) -> int:
        if addr % PTE_SIZE:
            raise ValueError(f"unaligned word read at {addr:#x}")
        return self._words.get(addr // PTE_SIZE, 0)

    def write_word(self, addr: int, value: int) -> None:
        if addr % PTE_SIZE:
            raise ValueError(f"unaligned word write at {addr:#x}")
        if value:
            self._words[addr // PTE_SIZE] = value
        else:
            self._words.pop(addr // PTE_SIZE, None)

    def clear_page(self, frame: int) -> None:
        base = frame_to_addr(frame) // PTE_SIZE
        for word in range(PAGE_SIZE // PTE_SIZE):
            self._words.pop(base + word, None)

    def copy_page(self, src_frame: int, dst_frame: int) -> None:
        src = frame_to_addr(src_frame) // PTE_SIZE
        dst = frame_to_addr(dst_frame) // PTE_SIZE
        for word in range(PAGE_SIZE // PTE_SIZE):
            value = self._words.get(src + word)
            if value is None:
                self._words.pop(dst + word, None)
            else:
                self._words[dst + word] = value
