"""Vectorized stage-2 walk replay (the batched simulation engine).

The scalar stage-2 loop calls ``walker.translate(va)`` once per TLB
miss: every walk allocates a ``WalkRecorder`` and a ``WalkResult``,
re-reads static page-table words, re-derives table indices, and builds
tag strings — even in bulk mode. This module is the batched
replacement, following the :mod:`repro.sim.tlb_vec` pattern:

1. **Vectorized precompute** (NumPy + one planning pass): every stage-2
   statistic depends only on the miss's 4 KB VPN, and the translation
   structures are static during a replay — so the engine plans each
   *unique* VPN once, in first-occurrence order. A plan precomputes the
   walk chain's PTE fetch addresses, the PWC fill keys/values, and (for
   DMT) the exact fetch groups the register file would issue, captured
   by running the real :class:`~repro.core.fetcher.DMTFetcher` with a
   recording callback.
2. **Chunked state machine**: the sequential, history-dependent state —
   PTE-cache LRU sets, PWC/nested-PWC LRU tables, credit-counter
   thinning — runs in a tight chunked loop over the live flat dicts
   exposed by ``batch_view()`` (:mod:`repro.hw.cache`,
   :mod:`repro.hw.pwc`). Every LRU touch, install, eviction, and
   float credit update replicates the scalar operation in the scalar
   order, so cycles, ref counts, fallbacks, step breakdowns, and the
   post-replay cache/PWC state are **bit-identical** to the oracle.

Supported walkers (via :meth:`~repro.translation.base.Walker.batch_spec`):
radix native/shadow, radix nested, and every DMT/pvDMT variant
(register hit -> direct TEA fetch groups; register miss -> the radix
fallback plan, with the attempt's cache traffic applied uncounted,
exactly like the scalar ``_run``). ECPT/FPT/Agile/ASAP return no spec
and route to the scalar loop; ``tests/test_walk_vec.py`` pins parity.

The planning pass preserves lazy first-touch side effects (EPT
backfill, shadow-table extension) by visiting unique VPNs in
first-occurrence order — and, for DMT, by planning register-miss
fallbacks in a second pass over only the VPNs whose attempt fell back,
which is the order the scalar loop would have touched them.
"""

from __future__ import annotations

import gc
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.analysis import sanitizer
from repro.arch import (
    ENTRIES_PER_TABLE,
    PAGE_SHIFT,
    PAGE_SIZE,
    PTE_SIZE,
    TABLE_INDEX_BITS,
    PageSize,
)
from repro.kernel.page_table import PTE_HUGE, PTE_PRESENT, pte_frame
from repro.translation.base import BatchSpec, MemorySubsystem, Walker

#: Misses processed per chunk; bounds the transient Python-list
#: footprint regardless of miss-stream length.
DEFAULT_CHUNK = 1 << 16

_IDX_MASK = ENTRIES_PER_TABLE - 1
_OFFSET_MASK = PAGE_SIZE - 1
_LEAF_BYTES = {1: PageSize.SIZE_4K.bytes, 2: PageSize.SIZE_2M.bytes,
               3: PageSize.SIZE_1G.bytes}

#: Chain-node memo sentinels (a table frame may legitimately be 0).
_DEAD = object()    # not-present PTE: the chain ends here
_LEAF = object()    # leaf PTE (level 1 or PS bit)
_NEXT = object()    # interior PTE: payload is the next table's address


def supports(walker: Walker) -> bool:
    """True when ``walker`` has a batched path bit-identical to scalar.

    False routes the replay to the scalar loop: designs without a
    :meth:`~repro.translation.base.Walker.batch_spec`, sanitized runs
    (the sanitizer hooks the scalar structures), and non-standard cache
    hierarchies (the inlined access path is unrolled for the 3-level
    PTE-side hierarchy of Table 3).
    """
    if sanitizer.active():
        return False
    spec = walker.batch_spec()
    return _spec_supported(spec, walker.memsys)


def _spec_supported(spec: Optional[BatchSpec],
                    memsys: MemorySubsystem) -> bool:
    if spec is None:
        return False
    if len(memsys.caches.levels) != 3:
        return False
    if spec.kind == "radix-native":
        return spec.page_table is not None
    if spec.kind == "radix-nested":
        return spec.guest_pt is not None and spec.vm is not None
    if spec.kind == "dmt":
        if spec.attempt is None or spec.fetcher is None \
                or spec.fallback is None:
            return False
        fallback_spec = spec.fallback.batch_spec()
        return (fallback_spec is not None
                and fallback_spec.kind in ("radix-native", "radix-nested")
                and _spec_supported(fallback_spec, memsys))
    return False


# --------------------------------------------------------------------- #
# Flat-state primitives
# --------------------------------------------------------------------- #

def _make_access(caches):
    """The inlined 3-level hierarchy access: ``addr -> latency``.

    Replicates ``CacheHierarchy.access`` (probe L1/L2/LLC in order,
    install into every missed level, charge the satisfying level's
    round trip) over the live set dicts — dict probes keep membership
    *misses* O(1), and misses dominate the PTE-side reference stream.
    Stats accumulate in locals and flush via the returned finalizer.
    Also returns the context tuple ``(views, memory_latency, counters)``
    so the columnar radix runner can inline the same logic over the
    same shared state.
    """
    v1, v2, v3 = (level.batch_view() for level in caches.levels)
    s1, ls1, ns1, a1, lat1 = v1.sets, v1.line_shift, v1.num_sets, v1.assoc, v1.latency
    s2, ls2, ns2, a2, lat2 = v2.sets, v2.line_shift, v2.num_sets, v2.assoc, v2.latency
    s3, ls3, ns3, a3, lat3 = v3.sets, v3.line_shift, v3.num_sets, v3.assoc, v3.latency
    mem_latency = caches.memory_latency
    # hits L1/L2/LLC, misses L1/L2/LLC, memory accesses
    counters = [0, 0, 0, 0, 0, 0, 0]

    def access(addr: int) -> int:
        line1 = addr >> ls1
        idx1 = line1 % ns1
        ways1 = s1.get(idx1)
        if ways1 is not None and line1 in ways1:
            del ways1[line1]
            ways1[line1] = None
            counters[0] += 1
            return lat1
        counters[3] += 1
        line2 = addr >> ls2
        idx2 = line2 % ns2
        ways2 = s2.get(idx2)
        if ways2 is not None and line2 in ways2:
            del ways2[line2]
            ways2[line2] = None
            counters[1] += 1
            latency = lat2
        else:
            counters[4] += 1
            line3 = addr >> ls3
            idx3 = line3 % ns3
            ways3 = s3.get(idx3)
            if ways3 is not None and line3 in ways3:
                del ways3[line3]
                ways3[line3] = None
                counters[2] += 1
                latency = lat3
            else:
                counters[5] += 1
                counters[6] += 1
                latency = mem_latency
                if ways3 is None:
                    s3[idx3] = {line3: None}
                else:
                    if len(ways3) >= a3:
                        del ways3[next(iter(ways3))]
                    ways3[line3] = None
            if ways2 is None:
                s2[idx2] = {line2: None}
            else:
                if len(ways2) >= a2:
                    del ways2[next(iter(ways2))]
                ways2[line2] = None
        if ways1 is None:
            s1[idx1] = {line1: None}
        else:
            if len(ways1) >= a1:
                del ways1[next(iter(ways1))]
            ways1[line1] = None
        return latency

    def finalize() -> None:
        for view, hit_i, miss_i in ((v1, 0, 3), (v2, 1, 4), (v3, 2, 5)):
            view.stats.hits += counters[hit_i]
            view.stats.misses += counters[miss_i]
        caches.memory_accesses += counters[6]

    return access, finalize, ((v1, v2, v3), mem_latency, counters)


def _make_pwc_probe(view) -> Tuple[Callable[[int], int], Callable[[], None]]:
    """Inlined ``PageWalkCache.best_entry`` returning a chain index.

    Probes offsets deepest-first; a hit at offset ``o`` (LRU-touched
    even when credit thinning later rejects it, exactly like the scalar
    ``_LRUTable.get``) resumes the walk at chain index ``o + 1``; a full
    miss starts at index 0 (the root). The cached table *address* is not
    needed — plans precompute every chain address from the static table.
    Also returns ``(order, accept, credit, counters)`` so the native
    chunk runner can inline the same probe over the same shared state.
    """
    accept = view.accept
    credit = view.credit
    # Deepest-first probe order with the table refs and shifts hoisted
    # (the dict objects are stable; fills mutate them in place).
    order = tuple((view.tables[offset], view.key_shifts[offset] - PAGE_SHIFT,
                   offset)
                  for offset in range(len(view.tables) - 1, -1, -1))
    counters = [0, 0]  # hits, misses

    if accept is None:
        def probe(vpn: int) -> int:
            for table, shift, offset in order:
                key = vpn >> shift
                if key in table:
                    value = table.pop(key)
                    table[key] = value
                    counters[0] += 1
                    return offset + 1
            counters[1] += 1
            return 0
    else:
        def probe(vpn: int) -> int:
            for table, shift, offset in order:
                key = vpn >> shift
                if key in table:
                    value = table.pop(key)
                    table[key] = value
                    credit[offset] += accept[offset]
                    if credit[offset] >= 1.0:
                        credit[offset] -= 1.0
                        counters[0] += 1
                        return offset + 1
            counters[1] += 1
            return 0

    def finalize() -> None:
        view.stats.hits += counters[0]
        view.stats.misses += counters[1]

    return probe, finalize, (order, accept, credit, counters)


# --------------------------------------------------------------------- #
# Planners
# --------------------------------------------------------------------- #

def _build_radix_native_columns(page_table, top_level: int, n_offsets: int,
                                uniq_vpns: List[int], views):
    """Column-major native walk chains over a static radix table.

    All per-step quantities a replayed walk needs are precomputed with
    NumPy into flat row-major lists of stride ``top_level``: the cache
    line and set index per hierarchy level (so the hot loop does only
    dict operations, no address arithmetic) and the PWC fill key/value
    (key ``-1`` where the scalar walk would not fill — the leaf step, a
    dead or huge-page terminal, or an offset beyond the PWC depth).
    Page-table reads are pure (``PhysicalMemory.read_word``), one per
    distinct table node via a ``(level, prefix)`` memo, so the
    level-major traversal order cannot diverge from the scalar walk.

    Returns ``(slots, columns)``: ``slots[vpn] = (row_base, chain_len)``
    and ``columns = (line/idx per level ..., fill_key, fill_val)``.
    """
    read = page_table.memory.read_word
    root = page_table.root_frame
    vpn_arr = np.asarray(uniq_vpns, dtype=np.int64)
    n = int(vpn_arr.size)
    lengths = np.zeros(n, dtype=np.int64)
    # Levels sharing a line size (and set count) share one column.
    line_cache: dict = {}
    idx_cache: dict = {}
    line_mats, idx_mats = [], []
    for view in views:
        line_mat = line_cache.get(view.line_shift)
        if line_mat is None:
            line_mat = np.zeros((n, top_level), dtype=np.int64)
            line_cache[view.line_shift] = line_mat
        idx_key = (view.line_shift, view.num_sets)
        idx_mat = idx_cache.get(idx_key)
        if idx_mat is None:
            idx_mat = np.zeros((n, top_level), dtype=np.int64)
            idx_cache[idx_key] = idx_mat
        line_mats.append(line_mat)
        idx_mats.append(idx_mat)
    fkey_mat = np.full((n, top_level), -1, dtype=np.int64)
    fval_mat = np.zeros((n, top_level), dtype=np.int64)

    nodes: dict = {}
    active = np.arange(n)
    frames = np.full(n, root, dtype=np.int64)
    for depth, level in enumerate(range(top_level, 0, -1)):
        shift = TABLE_INDEX_BITS * (level - 1)
        sub = vpn_arr[active]
        index = (sub >> shift) & _IDX_MASK
        addr = (frames << PAGE_SHIFT) + index * PTE_SIZE
        for line_shift, line_mat in line_cache.items():
            line_mat[active, depth] = addr >> line_shift
        for (line_shift, num_sets), idx_mat in idx_cache.items():
            idx_mat[active, depth] = (addr >> line_shift) % num_sets
        lengths[active] = depth + 1
        if level == 1:
            break
        prefix = sub >> shift
        uniq_p, first, inverse = np.unique(
            prefix, return_index=True, return_inverse=True)
        next_frames = np.zeros(uniq_p.size, dtype=np.int64)
        continues = np.zeros(uniq_p.size, dtype=bool)
        addr_list = addr.tolist()
        first_list = first.tolist()
        for j, p in enumerate(uniq_p.tolist()):
            node = nodes.get((level, p))
            if node is None:
                pte = read(addr_list[first_list[j]])
                if not pte & PTE_PRESENT:
                    node = _DEAD
                elif pte & PTE_HUGE:
                    node = _LEAF
                else:
                    node = pte_frame(pte)
                nodes[(level, p)] = node
            if node is not _DEAD and node is not _LEAF:
                continues[j] = True
                next_frames[j] = node
        cont_rows = continues[inverse]
        frame_rows = next_frames[inverse]
        if depth < n_offsets:
            fkey_mat[active, depth] = np.where(cont_rows, prefix, -1)
            fval_mat[active, depth] = np.where(
                cont_rows, frame_rows << PAGE_SHIFT, 0)
        active = active[cont_rows]
        frames = frame_rows[cont_rows]
        if active.size == 0:
            break

    lengths_list = lengths.tolist()
    slots = {vpn: (row * top_level, lengths_list[row])
             for row, vpn in enumerate(uniq_vpns)}
    flattened: dict = {}

    def flatten(mat):
        out = flattened.get(id(mat))
        if out is None:
            out = mat.ravel().tolist()
            flattened[id(mat)] = out
        return out

    columns = tuple(flatten(mat)
                    for pair in zip(line_mats, idx_mats) for mat in pair)
    return slots, columns + (fkey_mat.ravel().tolist(),
                             fval_mat.ravel().tolist())


def _build_radix_nested_plans(guest_pt, vm, top_level: int, n_offsets: int,
                              uniq_vpns: List[int], collect: bool):
    """Per-VPN 2D walk chains: guest dimension + memoized host chains.

    A plan is ``(entries, data)``. Each guest-level entry is
    ``(gfn, hfn, hsteps, gpte_hpa, fill, gtag, htags)``: the guest-PTE
    page's guest frame (the nested-PWC key), its host frame (the fill
    value), the host-dimension fetch chain replayed on a nested-PWC
    miss, the guest-PTE's host address, and the guest-PWC fill. ``data``
    is the leaf page's host resolution, or ``None`` for a dead chain.

    Host chains are memoized per guest frame; the memo resolves
    ``vm.gpa_to_hpa`` before ``ept.walk_steps`` in first-touch order,
    which reproduces the scalar loop's lazy EPT backfill / shadow-table
    extension sequence exactly (allocation order determines addresses).
    """
    gread = guest_pt.memory.read_word
    root_gpa = guest_pt.root_frame << PAGE_SHIFT
    ept = vm.ept
    gpa_to_hpa = vm.gpa_to_hpa
    host = {}

    def resolve(gfn: int):
        entry = host.get(gfn)
        if entry is None:
            hpa = gpa_to_hpa(gfn << PAGE_SHIFT)   # lazy backing first-touch
            steps = ept.walk_steps(gfn << PAGE_SHIFT)
            entry = (hpa >> PAGE_SHIFT,
                     tuple(step.pte_addr for step in steps),
                     tuple(step.level for step in steps))
            host[gfn] = entry
        return entry

    nodes = {}
    plans = {}
    for vpn in uniq_vpns:
        entries = []
        data = None
        table_gpa = root_gpa
        level = top_level
        while True:
            index = (vpn >> (TABLE_INDEX_BITS * (level - 1))) & _IDX_MASK
            gpte_gpa = table_gpa + index * PTE_SIZE
            gfn = gpte_gpa >> PAGE_SHIFT
            hfn, hsteps, hlevels = resolve(gfn)
            gpte_hpa = (hfn << PAGE_SHIFT) | (gpte_gpa & _OFFSET_MASK)
            if collect:
                htags = tuple(f"hg{level}L{sl}" for sl in hlevels)
                gtag = f"gL{level}"
            else:
                htags = gtag = None

            prefix = vpn >> (TABLE_INDEX_BITS * (level - 1))
            cached = nodes.get((level, prefix))
            if cached is None:
                gpte = gread(gpte_gpa)
                if not gpte & PTE_PRESENT:
                    cached = (_DEAD, 0)
                elif level == 1 or gpte & PTE_HUGE:
                    cached = (_LEAF, (pte_frame(gpte), level))
                else:
                    cached = (_NEXT, pte_frame(gpte) << PAGE_SHIFT)
                nodes[(level, prefix)] = cached
            kind, payload = cached

            if kind is _NEXT:
                offset = top_level - level
                fill = (offset, prefix, payload) \
                    if 0 <= offset < n_offsets else None
                entries.append((gfn, hfn, hsteps, gpte_hpa, fill,
                                gtag, htags))
                table_gpa = payload
                level -= 1
                continue
            entries.append((gfn, hfn, hsteps, gpte_hpa, None, gtag, htags))
            if kind is _LEAF:
                leaf_frame, leaf_level = payload
                data_gpa = (leaf_frame << PAGE_SHIFT) \
                    + ((vpn << PAGE_SHIFT) & (_LEAF_BYTES[leaf_level] - 1))
                dgfn = data_gpa >> PAGE_SHIFT
                dhfn, dsteps, dlevels = resolve(dgfn)
                dtags = tuple(f"hdL{sl}" for sl in dlevels) \
                    if collect else None
                data = (dgfn, dhfn, dsteps, dtags)
            break
        plans[vpn] = (tuple(entries), data)
    return plans


def _build_dmt_plans(spec: BatchSpec, uniq_vpns: List[int], collect: bool):
    """Per-VPN DMT attempt plans, captured from the real fetcher.

    Pass 1 of the DMT planner: run the fetcher's attempt for each unique
    VPN with a *recording* fetch callback (reads only — the register
    file, gTEA tables, and page tables are static during a replay), then
    compress the captured references into parallel groups. The fetcher's
    ``hits``/``fallbacks`` counters are snapshot per attempt into the
    plan as deltas and restored afterwards; the runtime applies the
    deltas once per replayed miss, matching the scalar loop's counts.

    A plan is ``(fallback, groups, d_hits, d_fallbacks)`` where each
    group is ``(addrs, tags)``. Returns the plans plus the VPNs whose
    attempt fell back, in first-occurrence order — the order the scalar
    loop would first hand them to the radix fallback walker (pass 2
    plans those lazily so lazy page-table side effects stay in scalar
    order and non-fallback VPNs trigger none at all).
    """
    fetcher = spec.fetcher
    attempt = spec.attempt
    hits0, fallbacks0 = fetcher.hits, fetcher.fallbacks
    events = []

    def record(addr: int, tag: str, group: int) -> None:
        events.append((addr, tag, group))

    plans = {}
    fallback_vpns = []
    for vpn in uniq_vpns:
        del events[:]
        hits_before, fb_before = fetcher.hits, fetcher.fallbacks
        result = attempt(vpn << PAGE_SHIFT, record)
        d_hits = fetcher.hits - hits_before
        d_fallbacks = fetcher.fallbacks - fb_before
        groups = []
        open_id = None
        for addr, tag, group in events:
            if group != open_id:
                groups.append(([], [] if collect else None))
                open_id = group
            groups[-1][0].append(addr)
            if collect:
                groups[-1][1].append(tag)
        fell_back = bool(result.fallback)
        plans[vpn] = (
            fell_back,
            tuple((tuple(addrs), tuple(tags) if tags is not None else None)
                  for addrs, tags in groups),
            d_hits,
            d_fallbacks,
        )
        if fell_back:
            fallback_vpns.append(vpn)
    fetcher.hits, fetcher.fallbacks = hits0, fallbacks0
    return plans, fallback_vpns


# --------------------------------------------------------------------- #
# Runners
# --------------------------------------------------------------------- #

def _make_radix_runner(spec: BatchSpec, memsys: MemorySubsystem,
                       uniq_vpns: List[int], access: Callable[[int], int],
                       access_ctx, collect: bool,
                       finalizers: List[Callable[[], None]],
                       credit_walkers: Tuple = ()):
    """Build plans + the per-miss radix walk function for ``spec``.

    Returns ``(run, run_many)``. ``run(vpn, steps)`` executes one walk:
    PWC probe (with LRU touch and credit thinning), the remaining chain
    fetches, and the PWC fills — all against live flat state — and
    returns ``(cycles, nrefs, False)``. ``steps`` collects Figure 16
    ``(tag, latency)`` pairs when not None. For radix-native,
    ``run_many(vpn_list) -> (cycles, nrefs)`` additionally replays a
    whole chunk with the probe and the cache hierarchy fully inlined
    over ``access_ctx`` (the shared counters behind ``access``), every
    line/set index precomputed, and all counters held in locals that
    flush once per chunk; ``run_many`` is None otherwise. The nested
    path goes through ``access``.

    ``credit_walkers`` names walkers whose walks/cycles counters must
    mirror these walks (the DMT fallback path: the scalar loop records
    each fallback walk on the fallback walker before the DMT walker).
    """
    pwc = memsys.guest_pwc if spec.kind == "radix-nested" else memsys.pwc
    view = pwc.batch_view()
    probe, probe_fin, probe_ctx = _make_pwc_probe(view)
    finalizers.append(probe_fin)
    tables = view.tables
    capacities = view.capacities
    pwc_latency = memsys.pwc_latency
    run_many = None

    if spec.kind == "radix-native":
        (v1, v2, v3), mem_latency, counters = access_ctx
        top_level = view.top_level
        slots, columns = _build_radix_native_columns(
            spec.page_table, top_level, len(tables), uniq_vpns,
            (v1, v2, v3))
        line1, idx1, line2, idx2, line3, idx3, fkeys, fvals = columns
        tag_by_step = tuple(
            f"L{top_level - depth}" for depth in range(top_level))
        s1, a1, lat1 = v1.sets, v1.assoc, v1.latency
        s2, a2, lat2 = v2.sets, v2.assoc, v2.latency
        s3, a3, lat3 = v3.sets, v3.assoc, v3.latency
        porder, paccept, pcredit, pcounters = probe_ctx

        def run(vpn: int, steps) -> Tuple[int, int, bool]:
            base, chain_len = slots[vpn]
            cycles = pwc_latency
            start = probe(vpn)
            j = base + start
            end = base + chain_len
            while j < end:
                # Inlined CacheHierarchy.access: L1 -> L2 -> LLC -> MEM,
                # LRU touch on hit, install into every missed level.
                l1 = line1[j]
                i1 = idx1[j]
                w1 = s1.get(i1)
                if w1 is not None and l1 in w1:
                    del w1[l1]
                    w1[l1] = None
                    counters[0] += 1
                    latency = lat1
                else:
                    counters[3] += 1
                    l2 = line2[j]
                    i2 = idx2[j]
                    w2 = s2.get(i2)
                    if w2 is not None and l2 in w2:
                        del w2[l2]
                        w2[l2] = None
                        counters[1] += 1
                        latency = lat2
                    else:
                        counters[4] += 1
                        l3 = line3[j]
                        i3 = idx3[j]
                        w3 = s3.get(i3)
                        if w3 is not None and l3 in w3:
                            del w3[l3]
                            w3[l3] = None
                            counters[2] += 1
                            latency = lat3
                        else:
                            counters[5] += 1
                            counters[6] += 1
                            latency = mem_latency
                            if w3 is None:
                                s3[i3] = {l3: None}
                            else:
                                if len(w3) >= a3:
                                    del w3[next(iter(w3))]
                                w3[l3] = None
                        if w2 is None:
                            s2[i2] = {l2: None}
                        else:
                            if len(w2) >= a2:
                                del w2[next(iter(w2))]
                            w2[l2] = None
                    if w1 is None:
                        s1[i1] = {l1: None}
                    else:
                        if len(w1) >= a1:
                            del w1[next(iter(w1))]
                        w1[l1] = None
                cycles += latency
                if steps is not None:
                    steps.append((tag_by_step[j - base], latency))
                key = fkeys[j]
                if key >= 0:
                    offset = j - base
                    table = tables[offset]
                    if key in table:
                        del table[key]
                    elif len(table) >= capacities[offset]:
                        del table[next(iter(table))]
                    table[key] = fvals[j]
                j += 1
            return cycles, chain_len - start, False

        if v1.num_sets == 1 and paccept is not None and len(porder) == 3:
            # The Table 3 shape: the PTE-share-thinned L1 collapses to a
            # single set at evaluation scale (its one ways dict is
            # hoisted out of the loop — no set-index column load, no
            # s1.get per access) and the 3-offset thinned PWC probe is
            # unrolled deepest-first with its tables/shifts in locals.
            (pt2, psh2, _o2), (pt1, psh1, _o1), (pt0, psh0, _o0) = porder
            pac0, pac1, pac2 = paccept[0], paccept[1], paccept[2]

            def run_many(vpn_list) -> Tuple[int, int]:
                h1 = h2 = h3 = miss1 = miss2 = miss3 = mem = 0
                phits = pmisses = 0
                total_cycles = 0
                refs = 0
                w1 = s1.get(0)
                for vpn in vpn_list:
                    base, chain_len = slots[vpn]
                    start = 0
                    key = vpn >> psh2
                    if key in pt2:
                        pt2[key] = pt2.pop(key)   # LRU touch
                        credit = pcredit[2] + pac2
                        if credit >= 1.0:
                            pcredit[2] = credit - 1.0
                            start = 3
                        else:
                            pcredit[2] = credit
                    if start == 0:
                        key = vpn >> psh1
                        if key in pt1:
                            pt1[key] = pt1.pop(key)
                            credit = pcredit[1] + pac1
                            if credit >= 1.0:
                                pcredit[1] = credit - 1.0
                                start = 2
                            else:
                                pcredit[1] = credit
                        if start == 0:
                            key = vpn >> psh0
                            if key in pt0:
                                pt0[key] = pt0.pop(key)
                                credit = pcredit[0] + pac0
                                if credit >= 1.0:
                                    pcredit[0] = credit - 1.0
                                    start = 1
                                else:
                                    pcredit[0] = credit
                    if start:
                        phits += 1
                    else:
                        pmisses += 1
                    cycles = pwc_latency
                    j = base + start
                    end = base + chain_len
                    while j < end:
                        l1 = line1[j]
                        if w1 is not None and l1 in w1:
                            del w1[l1]
                            w1[l1] = None
                            h1 += 1
                            cycles += lat1
                        else:
                            miss1 += 1
                            l2 = line2[j]
                            i2 = idx2[j]
                            w2 = s2.get(i2)
                            if w2 is not None and l2 in w2:
                                del w2[l2]
                                w2[l2] = None
                                h2 += 1
                                cycles += lat2
                            else:
                                miss2 += 1
                                l3 = line3[j]
                                i3 = idx3[j]
                                w3 = s3.get(i3)
                                if w3 is not None and l3 in w3:
                                    del w3[l3]
                                    w3[l3] = None
                                    h3 += 1
                                    cycles += lat3
                                else:
                                    miss3 += 1
                                    mem += 1
                                    cycles += mem_latency
                                    if w3 is None:
                                        s3[i3] = {l3: None}
                                    else:
                                        if len(w3) >= a3:
                                            del w3[next(iter(w3))]
                                        w3[l3] = None
                                if w2 is None:
                                    s2[i2] = {l2: None}
                                else:
                                    if len(w2) >= a2:
                                        del w2[next(iter(w2))]
                                    w2[l2] = None
                            if w1 is None:
                                w1 = s1[0] = {l1: None}
                            else:
                                if len(w1) >= a1:
                                    del w1[next(iter(w1))]
                                w1[l1] = None
                        key = fkeys[j]
                        if key >= 0:
                            offset = j - base
                            table = tables[offset]
                            if key in table:
                                del table[key]
                            elif len(table) >= capacities[offset]:
                                del table[next(iter(table))]
                            table[key] = fvals[j]
                        j += 1
                    total_cycles += cycles
                    refs += chain_len - start
                counters[0] += h1
                counters[1] += h2
                counters[2] += h3
                counters[3] += miss1
                counters[4] += miss2
                counters[5] += miss3
                counters[6] += mem
                pcounters[0] += phits
                pcounters[1] += pmisses
                return total_cycles, refs
        else:
            def run_many(vpn_list) -> Tuple[int, int]:
                # One chunk, probe + hierarchy + fills inlined, every
                # counter in a local int flushed once at the end.
                h1 = h2 = h3 = miss1 = miss2 = miss3 = mem = 0
                phits = pmisses = 0
                total_cycles = 0
                refs = 0
                for vpn in vpn_list:
                    base, chain_len = slots[vpn]
                    start = 0
                    hit = False
                    for table, shift, offset in porder:
                        key = vpn >> shift
                        if key in table:
                            table[key] = table.pop(key)   # LRU touch
                            if paccept is None:
                                hit = True
                            else:
                                credit = pcredit[offset] + paccept[offset]
                                if credit >= 1.0:
                                    pcredit[offset] = credit - 1.0
                                    hit = True
                                else:
                                    pcredit[offset] = credit
                                    continue
                            start = offset + 1
                            break
                    if hit:
                        phits += 1
                    else:
                        pmisses += 1
                    cycles = pwc_latency
                    j = base + start
                    end = base + chain_len
                    while j < end:
                        l1 = line1[j]
                        w1 = s1.get(idx1[j])
                        if w1 is not None and l1 in w1:
                            del w1[l1]
                            w1[l1] = None
                            h1 += 1
                            cycles += lat1
                        else:
                            miss1 += 1
                            l2 = line2[j]
                            i2 = idx2[j]
                            w2 = s2.get(i2)
                            if w2 is not None and l2 in w2:
                                del w2[l2]
                                w2[l2] = None
                                h2 += 1
                                cycles += lat2
                            else:
                                miss2 += 1
                                l3 = line3[j]
                                i3 = idx3[j]
                                w3 = s3.get(i3)
                                if w3 is not None and l3 in w3:
                                    del w3[l3]
                                    w3[l3] = None
                                    h3 += 1
                                    cycles += lat3
                                else:
                                    miss3 += 1
                                    mem += 1
                                    cycles += mem_latency
                                    if w3 is None:
                                        s3[i3] = {l3: None}
                                    else:
                                        if len(w3) >= a3:
                                            del w3[next(iter(w3))]
                                        w3[l3] = None
                                if w2 is None:
                                    s2[i2] = {l2: None}
                                else:
                                    if len(w2) >= a2:
                                        del w2[next(iter(w2))]
                                    w2[l2] = None
                            i1 = idx1[j]
                            if w1 is None:
                                s1[i1] = {l1: None}
                            else:
                                if len(w1) >= a1:
                                    del w1[next(iter(w1))]
                                w1[l1] = None
                        key = fkeys[j]
                        if key >= 0:
                            offset = j - base
                            table = tables[offset]
                            if key in table:
                                del table[key]
                            elif len(table) >= capacities[offset]:
                                del table[next(iter(table))]
                            table[key] = fvals[j]
                        j += 1
                    total_cycles += cycles
                    refs += chain_len - start
                counters[0] += h1
                counters[1] += h2
                counters[2] += h3
                counters[3] += miss1
                counters[4] += miss2
                counters[5] += miss3
                counters[6] += mem
                pcounters[0] += phits
                pcounters[1] += pmisses
                return total_cycles, refs

    else:  # radix-nested
        plans = _build_radix_nested_plans(
            spec.guest_pt, spec.vm, view.top_level, len(tables),
            uniq_vpns, collect)
        nview = memsys.nested_pwc.batch_view()
        ntable = nview.table
        ncapacity = nview.capacity
        naccept = nview.accept
        # hits, misses; thinning credit (float) written back at finalize
        ncounters = [0, 0]
        ncredit = [nview.owner.credit]

        def resolve_host(gfn, hfn, hsteps, htags, steps, cycles, nrefs):
            """Nested-PWC consult + host-chain replay; returns updates."""
            hit = False
            if gfn in ntable:
                cached = ntable.pop(gfn)   # LRU touch, even when thinned
                ntable[gfn] = cached
                if naccept < 1.0:
                    credit = ncredit[0] + naccept
                    if credit >= 1.0:
                        ncredit[0] = credit - 1.0
                        hit = True
                    else:
                        ncredit[0] = credit
                else:
                    hit = True
            if hit:
                ncounters[0] += 1
                return cycles, nrefs
            ncounters[1] += 1
            if steps is None:
                for addr in hsteps:
                    cycles += access(addr)
                    nrefs += 1
            else:
                for addr, tag in zip(hsteps, htags):
                    latency = access(addr)
                    cycles += latency
                    nrefs += 1
                    steps.append((tag, latency))
            # NestedPWC.fill after the chain (scalar _host_resolve order)
            if gfn in ntable:
                del ntable[gfn]
            elif len(ntable) >= ncapacity:
                del ntable[next(iter(ntable))]
            ntable[gfn] = hfn
            return cycles, nrefs

        def run(vpn: int, steps) -> Tuple[int, int, bool]:
            entries, data = plans[vpn]
            cycles = pwc_latency
            nrefs = 0
            i = probe(vpn)
            n = len(entries)
            while i < n:
                gfn, hfn, hsteps, gpte_hpa, fill, gtag, htags = entries[i]
                cycles, nrefs = resolve_host(
                    gfn, hfn, hsteps, htags, steps, cycles, nrefs)
                latency = access(gpte_hpa)
                cycles += latency
                nrefs += 1
                if steps is not None:
                    steps.append((gtag, latency))
                if fill is not None:
                    offset, key, value = fill
                    table = tables[offset]
                    if key in table:
                        del table[key]
                    elif len(table) >= capacities[offset]:
                        del table[next(iter(table))]
                    table[key] = value
                i += 1
            if data is not None:
                dgfn, dhfn, dsteps, dtags = data
                cycles, nrefs = resolve_host(
                    dgfn, dhfn, dsteps, dtags, steps, cycles, nrefs)
            return cycles, nrefs, False

        def nested_fin() -> None:
            nview.stats.hits += ncounters[0]
            nview.stats.misses += ncounters[1]
            nview.owner.credit = ncredit[0]

        finalizers.append(nested_fin)

    if not credit_walkers:
        return run, run_many
    # DMT fallback duty: mirror each fallback walk onto the fallback
    # walker's own counters (the scalar loop records through it first).
    acc = [0, 0]

    def tracked(vpn: int, steps) -> Tuple[int, int, bool]:
        cycles, nrefs, _ = run(vpn, steps)
        acc[0] += 1
        acc[1] += cycles
        return cycles, nrefs, False

    def credit_fin() -> None:
        for target in credit_walkers:
            target.walks += acc[0]
            target.total_cycles += acc[1]

    finalizers.append(credit_fin)
    return tracked, None


def _make_dmt_runner(spec: BatchSpec, memsys: MemorySubsystem,
                     uniq_vpns: List[int], access: Callable[[int], int],
                     access_ctx, collect: bool,
                     finalizers: List[Callable[[], None]]):
    """Build the per-miss DMT run function (register hit or fallback).

    Pass 1 captures every attempt's fetch groups and counter deltas from
    the live fetcher; pass 2 plans radix fallbacks for only the VPNs
    that fell back. At runtime a register hit charges each group's
    slowest member sequentially (``WalkRecorder.fetch_grouped``
    semantics); a register miss applies the attempt's cache traffic with
    its latency discarded — exactly the scalar ``_run``, which drops the
    recorder on fallback but keeps the cache/PWC mutations — then runs
    the radix fallback walk, whose cycles and refs are the walk's result.
    """
    plans, fallback_vpns = _build_dmt_plans(spec, uniq_vpns, collect)
    fallback_spec = spec.fallback.batch_spec()
    fallback_run, _ = _make_radix_runner(
        fallback_spec, memsys, fallback_vpns, access, access_ctx, collect,
        finalizers,
        credit_walkers=(spec.fallback,) + tuple(fallback_spec.extra_walkers))
    fetcher = spec.fetcher
    acc = [0, 0]  # fetcher hits / fallbacks deltas, applied at finalize

    def run(vpn: int, steps) -> Tuple[int, int, bool]:
        fell_back, groups, d_hits, d_fallbacks = plans[vpn]
        acc[0] += d_hits
        acc[1] += d_fallbacks
        if fell_back:
            for addrs, _tags in groups:
                for addr in addrs:
                    access(addr)   # mutates caches; cycles discarded
            cycles, nrefs, _ = fallback_run(vpn, steps)
            return cycles, nrefs, True
        cycles = 0
        nrefs = 0
        for addrs, tags in groups:
            group_max = 0
            first = -1
            for addr in addrs:
                latency = access(addr)
                if latency > group_max:
                    group_max = latency
                if first < 0:
                    first = latency
            cycles += group_max
            nrefs += len(addrs)
            if steps is not None:
                steps.append((tags[0], first))
        return cycles, nrefs, False

    def fetcher_fin() -> None:
        fetcher.hits += acc[0]
        fetcher.fallbacks += acc[1]

    finalizers.append(fetcher_fin)
    return run


# --------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------- #

def replay_walks_vec(
    walker: Walker,
    miss_vas,
    warmup_fraction: float = 0.1,
    collect_steps: bool = False,
    chunk: int = DEFAULT_CHUNK,
):
    """Batched stage 2: replay a miss stream, bit-identical to scalar.

    Drop-in for :func:`repro.sim.simulator.replay_walks` on supported
    walkers (see :func:`supports`): same ``WalkStats`` (cycles, refs,
    fallbacks, step breakdown), same post-replay cache/PWC/walker state.
    Raises ``ValueError`` for unsupported walkers — callers route those
    through the scalar loop (``engine="auto"`` does this automatically).
    """
    from repro.sim.simulator import WalkStats

    if not supports(walker):
        raise ValueError(
            f"walker {walker.name!r} has no batched replay path "
            "(use the scalar engine)")
    spec = walker.batch_spec()
    memsys = walker.memsys
    record_refs = memsys.record_refs
    collect = bool(collect_steps and record_refs)

    vas = np.asarray(miss_vas, dtype=np.int64)
    stats = WalkStats(design=walker.name, engine="vec")
    total = int(vas.size)
    if total == 0:
        return stats
    vpns = vas >> PAGE_SHIFT

    # Unique VPNs in first-occurrence order: planning must touch lazily
    # populated structures in the same order the scalar loop would.
    uniq, first_index = np.unique(vpns, return_index=True)
    uniq_ordered = uniq[np.argsort(first_index, kind="stable")].tolist()

    # Planning + replay allocate at a small bounded rate; pausing the
    # cyclic collector for the duration costs nothing semantically.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        access, access_fin, access_ctx = _make_access(memsys.caches)
        finalizers: List[Callable[[], None]] = [access_fin]
        run_many = None
        if spec.kind == "dmt":
            run = _make_dmt_runner(spec, memsys, uniq_ordered, access,
                                   access_ctx, collect, finalizers)
        else:
            run, run_many = _make_radix_runner(
                spec, memsys, uniq_ordered, access, access_ctx, collect,
                finalizers)
        if collect:
            run_many = None

        warmup = int(total * warmup_fraction)
        warm_cycles = 0
        warm_fallbacks = 0
        walks = measured_cycles = refs = fallbacks = 0
        if run_many is not None:
            for start in range(0, warmup, chunk):
                cycles, _nrefs = run_many(
                    vpns[start:min(start + chunk, warmup)].tolist())
                warm_cycles += cycles
            for start in range(max(warmup, 0), total, chunk):
                chunk_vpns = vpns[start:min(start + chunk, total)].tolist()
                cycles, nrefs = run_many(chunk_vpns)
                walks += len(chunk_vpns)
                measured_cycles += cycles
                refs += nrefs
        else:
            for start in range(0, warmup, chunk):
                for vpn in vpns[start:min(start + chunk, warmup)].tolist():
                    cycles, _nrefs, fell_back = run(vpn, None)
                    warm_cycles += cycles
                    if fell_back:
                        warm_fallbacks += 1

            step_cycles = stats.step_cycles
            for start in range(max(warmup, 0), total, chunk):
                chunk_vpns = vpns[start:min(start + chunk, total)].tolist()
                if not collect:
                    for vpn in chunk_vpns:
                        cycles, nrefs, fell_back = run(vpn, None)
                        walks += 1
                        measured_cycles += cycles
                        refs += nrefs
                        if fell_back:
                            fallbacks += 1
                else:
                    for vpn in chunk_vpns:
                        steps = []
                        cycles, nrefs, fell_back = run(vpn, steps)
                        walks += 1
                        measured_cycles += cycles
                        refs += nrefs
                        if fell_back:
                            fallbacks += 1
                        position = 0
                        for tag, latency in steps:
                            position += 1
                            bucket = step_cycles.setdefault(
                                "%02d:%s" % (position, tag), [0.0, 0])
                            bucket[0] += latency
                            bucket[1] += 1
    finally:
        if gc_was_enabled:
            gc.enable()

    stats.walks = walks
    stats.total_cycles = measured_cycles
    stats.ref_count = refs if record_refs else 0
    stats.fallbacks = fallbacks

    for finalize in finalizers:
        finalize()
    all_cycles = warm_cycles + measured_cycles
    all_fallbacks = warm_fallbacks + fallbacks
    for target in (walker,) + tuple(spec.extra_walkers):
        target.walks += total
        target.total_cycles += all_cycles
        target.fallbacks += all_fallbacks
    return stats
