"""Vectorized stage-2 walk replay (the batched simulation engine).

The scalar stage-2 loop calls ``walker.translate(va)`` once per TLB
miss: every walk allocates a ``WalkRecorder`` and a ``WalkResult``,
re-reads static page-table words, re-derives table indices, and builds
tag strings — even in bulk mode. This module is the batched
replacement, following the :mod:`repro.sim.tlb_vec` pattern:

1. **Vectorized precompute** (NumPy + one planning pass): every stage-2
   statistic depends only on the miss's 4 KB VPN, and the translation
   structures are static during a replay — so the engine plans each
   *unique* VPN once, in first-occurrence order. A plan precomputes the
   walk chain's PTE fetch addresses, the PWC fill keys/values, and (for
   DMT) the exact fetch groups the register file would issue, captured
   by running the real :class:`~repro.core.fetcher.DMTFetcher` with a
   recording callback.
2. **Chunked state machine**: the sequential, history-dependent state —
   PTE-cache LRU sets, PWC/nested-PWC LRU tables, credit-counter
   thinning — runs in a tight chunked loop over the live flat dicts
   exposed by ``batch_view()`` (:mod:`repro.hw.cache`,
   :mod:`repro.hw.pwc`). Every LRU touch, install, eviction, and
   float credit update replicates the scalar operation in the scalar
   order, so cycles, ref counts, fallbacks, step breakdowns, and the
   post-replay cache/PWC state are **bit-identical** to the oracle.

Supported walkers (via :meth:`~repro.translation.base.Walker.batch_spec`):
radix native/shadow, radix nested, every DMT/pvDMT variant (register
hit -> direct TEA fetch groups; register miss -> the radix fallback
plan, with the attempt's cache traffic applied uncounted, exactly like
the scalar ``_run``), and the four prior designs — ECPT (hashed-bucket
probing with the live Cuckoo Walk Cache replayed in scalar order), FPT
(fully static flattened two-level plans), Agile Paging (shadow chain +
nested data leaf, split per walk at the guest-leaf boundary), and ASAP
(static prefetch address plans wrapped around the inner radix runner,
with the completion-max cost model). ECPT and FPT plans compile to a
small per-VPN op program (fetch / background probe / parallel group /
CWC-predicted probe step) replayed by one interpreter that reproduces
``WalkRecorder`` group episodes and the scalar step collapsing
bit-for-bit; ``tests/test_walk_vec.py`` pins parity for every design.

:func:`unsupported_reason` names why a walker cannot batch (sanitized
run, missing spec, non-standard hierarchy); ``engine="auto"`` callers
surface it as ``WalkStats.fallback_reason`` instead of silently
reporting a scalar replay.

The planning pass preserves lazy first-touch side effects (EPT
backfill, shadow-table extension) by visiting unique VPNs in
first-occurrence order — and, for DMT, by planning register-miss
fallbacks in a second pass over only the VPNs whose attempt fell back,
which is the order the scalar loop would have touched them.
"""

from __future__ import annotations

import gc
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.analysis import sanitizer
from repro.arch import (
    ENTRIES_PER_TABLE,
    PAGE_SHIFT,
    PAGE_SIZE,
    PTE_SIZE,
    TABLE_INDEX_BITS,
    PageSize,
    level_index,
)
from repro.kernel.page_table import PTE_HUGE, PTE_PRESENT, pte_frame
from repro.translation.base import BatchSpec, MemorySubsystem, Walker

#: Misses processed per chunk; bounds the transient Python-list
#: footprint regardless of miss-stream length.
DEFAULT_CHUNK = 1 << 16

_IDX_MASK = ENTRIES_PER_TABLE - 1
_OFFSET_MASK = PAGE_SIZE - 1
_LEAF_BYTES = {1: PageSize.SIZE_4K.bytes, 2: PageSize.SIZE_2M.bytes,
               3: PageSize.SIZE_1G.bytes}

#: Chain-node memo sentinels (a table frame may legitimately be 0).
_DEAD = object()    # not-present PTE: the chain ends here
_LEAF = object()    # leaf PTE (level 1 or PS bit)
_NEXT = object()    # interior PTE: payload is the next table's address


def supports(walker: Walker) -> bool:
    """True when ``walker`` has a batched path bit-identical to scalar.

    False routes the replay to the scalar loop; see
    :func:`unsupported_reason` for the specific cause (sanitized run,
    missing spec, non-standard hierarchy, incomplete spec).
    """
    return unsupported_reason(walker) is None


def unsupported_reason(walker: Walker) -> Optional[str]:
    """Why ``walker`` cannot take the batched path, or None if it can.

    The reasons are the genuine fallback conditions left after every
    design gained a planner: sanitized runs (the sanitizer hooks the
    scalar structures), walkers exposing no
    :meth:`~repro.translation.base.Walker.batch_spec`, non-standard
    cache hierarchies (the inlined access path is unrolled for the
    3-level PTE-side hierarchy of Table 3), and specs missing the
    structures their planner needs. ``engine="auto"`` callers record
    this string as ``WalkStats.fallback_reason``.
    """
    if sanitizer.active():
        return "sanitizer active: batched replay bypasses its hooks"
    return _spec_reason(walker.batch_spec(), walker.memsys)


def _spec_supported(spec: Optional[BatchSpec],
                    memsys: MemorySubsystem) -> bool:
    return _spec_reason(spec, memsys) is None


def _spec_reason(spec: Optional[BatchSpec],
                 memsys: MemorySubsystem) -> Optional[str]:
    if spec is None:
        return "walker exposes no batch spec"
    if len(memsys.caches.levels) != 3:
        return (f"{len(memsys.caches.levels)}-level PTE cache hierarchy "
                "(batched access path is unrolled for 3 levels)")
    kind = spec.kind
    if kind == "radix-native":
        return None if spec.page_table is not None \
            else "radix-native spec lacks a page table"
    if kind == "radix-nested":
        if spec.guest_pt is None or spec.vm is None:
            return "radix-nested spec lacks a guest page table or VM"
        return None
    if kind == "dmt":
        if spec.attempt is None or spec.fetcher is None \
                or spec.fallback is None:
            return "dmt spec lacks an attempt, fetcher, or fallback walker"
        fallback_spec = spec.fallback.batch_spec()
        if fallback_spec is None or fallback_spec.kind not in (
                "radix-native", "radix-nested"):
            return "dmt fallback walker has no batched radix plan"
        reason = _spec_reason(fallback_spec, memsys)
        return f"dmt fallback: {reason}" if reason else None
    if kind == "ecpt-native":
        return None if spec.ecpt is not None \
            else "ecpt-native spec lacks the cuckoo tables"
    if kind == "ecpt-nested":
        if spec.ecpt is None or spec.host_ecpt is None or spec.vm is None:
            return "ecpt-nested spec lacks guest/host cuckoo tables or VM"
        return None
    if kind == "fpt-native":
        return None if spec.fpt is not None \
            else "fpt-native spec lacks the flattened table"
    if kind == "fpt-nested":
        if spec.fpt is None or spec.host_fpt is None or spec.vm is None:
            return "fpt-nested spec lacks guest/host flattened tables or VM"
        return None
    if kind == "agile":
        if spec.guest_pt is None or spec.spt is None or spec.vm is None:
            return "agile spec lacks the guest table, shadow table, or VM"
        return None
    if kind in ("asap-native", "asap-nested"):
        if spec.inner is None:
            return f"{kind} spec lacks the inner radix walker"
        if kind == "asap-native" and spec.page_table is None:
            return "asap-native spec lacks a page table"
        if kind == "asap-nested" and (spec.guest_pt is None
                                      or spec.vm is None):
            return "asap-nested spec lacks a guest page table or VM"
        inner_spec = spec.inner.batch_spec()
        expected = "radix-native" if kind == "asap-native" else "radix-nested"
        if inner_spec is None or inner_spec.kind != expected:
            return f"{kind} inner walker has no {expected} plan"
        reason = _spec_reason(inner_spec, memsys)
        return f"{kind} inner walk: {reason}" if reason else None
    return f"unknown batch-spec kind {kind!r}"


# --------------------------------------------------------------------- #
# Flat-state primitives
# --------------------------------------------------------------------- #

def _make_access(caches):
    """The inlined 3-level hierarchy access: ``addr -> latency``.

    Replicates ``CacheHierarchy.access`` (probe L1/L2/LLC in order,
    install into every missed level, charge the satisfying level's
    round trip) over the live set dicts — dict probes keep membership
    *misses* O(1), and misses dominate the PTE-side reference stream.
    Stats accumulate in locals and flush via the returned finalizer.
    Also returns the context tuple ``(views, memory_latency, counters)``
    so the columnar radix runner can inline the same logic over the
    same shared state.
    """
    v1, v2, v3 = (level.batch_view() for level in caches.levels)
    s1, ls1, ns1, a1, lat1 = v1.sets, v1.line_shift, v1.num_sets, v1.assoc, v1.latency
    s2, ls2, ns2, a2, lat2 = v2.sets, v2.line_shift, v2.num_sets, v2.assoc, v2.latency
    s3, ls3, ns3, a3, lat3 = v3.sets, v3.line_shift, v3.num_sets, v3.assoc, v3.latency
    mem_latency = caches.memory_latency
    # hits L1/L2/LLC, misses L1/L2/LLC, memory accesses
    counters = [0, 0, 0, 0, 0, 0, 0]

    def access(addr: int) -> int:
        line1 = addr >> ls1
        idx1 = line1 % ns1
        ways1 = s1.get(idx1)
        if ways1 is not None and line1 in ways1:
            del ways1[line1]
            ways1[line1] = None
            counters[0] += 1
            return lat1
        counters[3] += 1
        line2 = addr >> ls2
        idx2 = line2 % ns2
        ways2 = s2.get(idx2)
        if ways2 is not None and line2 in ways2:
            del ways2[line2]
            ways2[line2] = None
            counters[1] += 1
            latency = lat2
        else:
            counters[4] += 1
            line3 = addr >> ls3
            idx3 = line3 % ns3
            ways3 = s3.get(idx3)
            if ways3 is not None and line3 in ways3:
                del ways3[line3]
                ways3[line3] = None
                counters[2] += 1
                latency = lat3
            else:
                counters[5] += 1
                counters[6] += 1
                latency = mem_latency
                if ways3 is None:
                    s3[idx3] = {line3: None}
                else:
                    if len(ways3) >= a3:
                        del ways3[next(iter(ways3))]
                    ways3[line3] = None
            if ways2 is None:
                s2[idx2] = {line2: None}
            else:
                if len(ways2) >= a2:
                    del ways2[next(iter(ways2))]
                ways2[line2] = None
        if ways1 is None:
            s1[idx1] = {line1: None}
        else:
            if len(ways1) >= a1:
                del ways1[next(iter(ways1))]
            ways1[line1] = None
        return latency

    def finalize() -> None:
        for view, hit_i, miss_i in ((v1, 0, 3), (v2, 1, 4), (v3, 2, 5)):
            view.stats.hits += counters[hit_i]
            view.stats.misses += counters[miss_i]
        caches.memory_accesses += counters[6]

    return access, finalize, ((v1, v2, v3), mem_latency, counters)


def _make_probe(access_ctx) -> Callable[[int], None]:
    """Inlined ``CacheHierarchy.probe``: the no-allocate background access.

    Losing parallel probes (ECPT ways, FPT multi-size slots) consult
    each level in order — LRU-touching and counting hits/misses exactly
    like ``SetAssociativeCache.lookup`` — but install nothing on a full
    miss. Shares the counters (and finalizer) of the ``access`` closure
    built by :func:`_make_access` over the same ``access_ctx``.
    """
    (v1, v2, v3), _mem_latency, counters = access_ctx
    s1, ls1, ns1 = v1.sets, v1.line_shift, v1.num_sets
    s2, ls2, ns2 = v2.sets, v2.line_shift, v2.num_sets
    s3, ls3, ns3 = v3.sets, v3.line_shift, v3.num_sets

    def probe(addr: int) -> None:
        line1 = addr >> ls1
        ways1 = s1.get(line1 % ns1)
        if ways1 is not None and line1 in ways1:
            del ways1[line1]
            ways1[line1] = None
            counters[0] += 1
            return
        counters[3] += 1
        line2 = addr >> ls2
        ways2 = s2.get(line2 % ns2)
        if ways2 is not None and line2 in ways2:
            del ways2[line2]
            ways2[line2] = None
            counters[1] += 1
            return
        counters[4] += 1
        line3 = addr >> ls3
        ways3 = s3.get(line3 % ns3)
        if ways3 is not None and line3 in ways3:
            del ways3[line3]
            ways3[line3] = None
            counters[2] += 1
            return
        counters[5] += 1
        counters[6] += 1

    return probe


def _make_pwc_probe(view) -> Tuple[Callable[[int], int], Callable[[], None]]:
    """Inlined ``PageWalkCache.best_entry`` returning a chain index.

    Probes offsets deepest-first; a hit at offset ``o`` (LRU-touched
    even when credit thinning later rejects it, exactly like the scalar
    ``_LRUTable.get``) resumes the walk at chain index ``o + 1``; a full
    miss starts at index 0 (the root). The cached table *address* is not
    needed — plans precompute every chain address from the static table.
    Also returns ``(order, accept, credit, counters)`` so the native
    chunk runner can inline the same probe over the same shared state.
    """
    accept = view.accept
    credit = view.credit
    # Deepest-first probe order with the table refs and shifts hoisted
    # (the dict objects are stable; fills mutate them in place).
    order = tuple((view.tables[offset], view.key_shifts[offset] - PAGE_SHIFT,
                   offset)
                  for offset in range(len(view.tables) - 1, -1, -1))
    counters = [0, 0]  # hits, misses

    if accept is None:
        def probe(vpn: int) -> int:
            for table, shift, offset in order:
                key = vpn >> shift
                if key in table:
                    value = table.pop(key)
                    table[key] = value
                    counters[0] += 1
                    return offset + 1
            counters[1] += 1
            return 0
    else:
        def probe(vpn: int) -> int:
            for table, shift, offset in order:
                key = vpn >> shift
                if key in table:
                    value = table.pop(key)
                    table[key] = value
                    credit[offset] += accept[offset]
                    if credit[offset] >= 1.0:
                        credit[offset] -= 1.0
                        counters[0] += 1
                        return offset + 1
            counters[1] += 1
            return 0

    def finalize() -> None:
        view.stats.hits += counters[0]
        view.stats.misses += counters[1]

    return probe, finalize, (order, accept, credit, counters)


# --------------------------------------------------------------------- #
# Planners
# --------------------------------------------------------------------- #

def _build_radix_native_columns(page_table, top_level: int, n_offsets: int,
                                uniq_vpns: List[int], views):
    """Column-major native walk chains over a static radix table.

    All per-step quantities a replayed walk needs are precomputed with
    NumPy into flat row-major lists of stride ``top_level``: the cache
    line and set index per hierarchy level (so the hot loop does only
    dict operations, no address arithmetic) and the PWC fill key/value
    (key ``-1`` where the scalar walk would not fill — the leaf step, a
    dead or huge-page terminal, or an offset beyond the PWC depth).
    Page-table reads are pure (``PhysicalMemory.read_word``), one per
    distinct table node via a ``(level, prefix)`` memo, so the
    level-major traversal order cannot diverge from the scalar walk.

    Returns ``(slots, columns)``: ``slots[vpn] = (row_base, chain_len)``
    and ``columns = (line/idx per level ..., fill_key, fill_val)``.
    """
    read = page_table.memory.read_word
    root = page_table.root_frame
    vpn_arr = np.asarray(uniq_vpns, dtype=np.int64)
    n = int(vpn_arr.size)
    lengths = np.zeros(n, dtype=np.int64)
    # Levels sharing a line size (and set count) share one column.
    line_cache: dict = {}
    idx_cache: dict = {}
    line_mats, idx_mats = [], []
    for view in views:
        line_mat = line_cache.get(view.line_shift)
        if line_mat is None:
            line_mat = np.zeros((n, top_level), dtype=np.int64)
            line_cache[view.line_shift] = line_mat
        idx_key = (view.line_shift, view.num_sets)
        idx_mat = idx_cache.get(idx_key)
        if idx_mat is None:
            idx_mat = np.zeros((n, top_level), dtype=np.int64)
            idx_cache[idx_key] = idx_mat
        line_mats.append(line_mat)
        idx_mats.append(idx_mat)
    fkey_mat = np.full((n, top_level), -1, dtype=np.int64)
    fval_mat = np.zeros((n, top_level), dtype=np.int64)

    nodes: dict = {}
    active = np.arange(n)
    frames = np.full(n, root, dtype=np.int64)
    for depth, level in enumerate(range(top_level, 0, -1)):
        shift = TABLE_INDEX_BITS * (level - 1)
        sub = vpn_arr[active]
        index = (sub >> shift) & _IDX_MASK
        addr = (frames << PAGE_SHIFT) + index * PTE_SIZE
        for line_shift, line_mat in line_cache.items():
            line_mat[active, depth] = addr >> line_shift
        for (line_shift, num_sets), idx_mat in idx_cache.items():
            idx_mat[active, depth] = (addr >> line_shift) % num_sets
        lengths[active] = depth + 1
        if level == 1:
            break
        prefix = sub >> shift
        uniq_p, first, inverse = np.unique(
            prefix, return_index=True, return_inverse=True)
        next_frames = np.zeros(uniq_p.size, dtype=np.int64)
        continues = np.zeros(uniq_p.size, dtype=bool)
        addr_list = addr.tolist()
        first_list = first.tolist()
        for j, p in enumerate(uniq_p.tolist()):
            node = nodes.get((level, p))
            if node is None:
                pte = read(addr_list[first_list[j]])
                if not pte & PTE_PRESENT:
                    node = _DEAD
                elif pte & PTE_HUGE:
                    node = _LEAF
                else:
                    node = pte_frame(pte)
                nodes[(level, p)] = node
            if node is not _DEAD and node is not _LEAF:
                continues[j] = True
                next_frames[j] = node
        cont_rows = continues[inverse]
        frame_rows = next_frames[inverse]
        if depth < n_offsets:
            fkey_mat[active, depth] = np.where(cont_rows, prefix, -1)
            fval_mat[active, depth] = np.where(
                cont_rows, frame_rows << PAGE_SHIFT, 0)
        active = active[cont_rows]
        frames = frame_rows[cont_rows]
        if active.size == 0:
            break

    lengths_list = lengths.tolist()
    slots = {vpn: (row * top_level, lengths_list[row])
             for row, vpn in enumerate(uniq_vpns)}
    flattened: dict = {}

    def flatten(mat):
        out = flattened.get(id(mat))
        if out is None:
            out = mat.ravel().tolist()
            flattened[id(mat)] = out
        return out

    columns = tuple(flatten(mat)
                    for pair in zip(line_mats, idx_mats) for mat in pair)
    return slots, columns + (fkey_mat.ravel().tolist(),
                             fval_mat.ravel().tolist())


def _build_radix_nested_plans(guest_pt, vm, top_level: int, n_offsets: int,
                              uniq_vpns: List[int], collect: bool,
                              prefetcher=None, prefetch_out=None):
    """Per-VPN 2D walk chains: guest dimension + memoized host chains.

    A plan is ``(entries, data)``. Each guest-level entry is
    ``(gfn, hfn, hsteps, gpte_hpa, fill, gtag, htags)``: the guest-PTE
    page's guest frame (the nested-PWC key), its host frame (the fill
    value), the host-dimension fetch chain replayed on a nested-PWC
    miss, the guest-PTE's host address, and the guest-PWC fill. ``data``
    is the leaf page's host resolution, or ``None`` for a dead chain.

    Host chains are memoized per guest frame; the memo resolves
    ``vm.gpa_to_hpa`` before ``ept.walk_steps`` in first-touch order,
    which reproduces the scalar loop's lazy EPT backfill / shadow-table
    extension sequence exactly (allocation order determines addresses).

    ``prefetcher`` (ASAP) is called per VPN *before* its chain is
    planned, storing its address tuple in ``prefetch_out[vpn]``: the
    scalar ASAP walker issues the prefetch — with its own lazy
    ``gpa_to_hpa`` first-touches — before each walk's resolves, so the
    planning pass must interleave the two in the same per-VPN order.
    """
    gread = guest_pt.memory.read_word
    root_gpa = guest_pt.root_frame << PAGE_SHIFT
    ept = vm.ept
    gpa_to_hpa = vm.gpa_to_hpa
    host = {}

    def resolve(gfn: int):
        entry = host.get(gfn)
        if entry is None:
            hpa = gpa_to_hpa(gfn << PAGE_SHIFT)   # lazy backing first-touch
            steps = ept.walk_steps(gfn << PAGE_SHIFT)
            entry = (hpa >> PAGE_SHIFT,
                     tuple(step.pte_addr for step in steps),
                     tuple(step.level for step in steps))
            host[gfn] = entry
        return entry

    nodes = {}
    plans = {}
    for vpn in uniq_vpns:
        if prefetcher is not None:
            prefetch_out[vpn] = prefetcher(vpn << PAGE_SHIFT)
        entries = []
        data = None
        table_gpa = root_gpa
        level = top_level
        while True:
            index = (vpn >> (TABLE_INDEX_BITS * (level - 1))) & _IDX_MASK
            gpte_gpa = table_gpa + index * PTE_SIZE
            gfn = gpte_gpa >> PAGE_SHIFT
            hfn, hsteps, hlevels = resolve(gfn)
            gpte_hpa = (hfn << PAGE_SHIFT) | (gpte_gpa & _OFFSET_MASK)
            if collect:
                htags = tuple(f"hg{level}L{sl}" for sl in hlevels)
                gtag = f"gL{level}"
            else:
                htags = gtag = None

            prefix = vpn >> (TABLE_INDEX_BITS * (level - 1))
            cached = nodes.get((level, prefix))
            if cached is None:
                gpte = gread(gpte_gpa)
                if not gpte & PTE_PRESENT:
                    cached = (_DEAD, 0)
                elif level == 1 or gpte & PTE_HUGE:
                    cached = (_LEAF, (pte_frame(gpte), level))
                else:
                    cached = (_NEXT, pte_frame(gpte) << PAGE_SHIFT)
                nodes[(level, prefix)] = cached
            kind, payload = cached

            if kind is _NEXT:
                offset = top_level - level
                fill = (offset, prefix, payload) \
                    if 0 <= offset < n_offsets else None
                entries.append((gfn, hfn, hsteps, gpte_hpa, fill,
                                gtag, htags))
                table_gpa = payload
                level -= 1
                continue
            entries.append((gfn, hfn, hsteps, gpte_hpa, None, gtag, htags))
            if kind is _LEAF:
                leaf_frame, leaf_level = payload
                data_gpa = (leaf_frame << PAGE_SHIFT) \
                    + ((vpn << PAGE_SHIFT) & (_LEAF_BYTES[leaf_level] - 1))
                dgfn = data_gpa >> PAGE_SHIFT
                dhfn, dsteps, dlevels = resolve(dgfn)
                dtags = tuple(f"hdL{sl}" for sl in dlevels) \
                    if collect else None
                data = (dgfn, dhfn, dsteps, dtags)
            break
        plans[vpn] = (tuple(entries), data)
    return plans


def _build_dmt_plans(spec: BatchSpec, uniq_vpns: List[int], collect: bool):
    """Per-VPN DMT attempt plans, captured from the real fetcher.

    Pass 1 of the DMT planner: run the fetcher's attempt for each unique
    VPN with a *recording* fetch callback (reads only — the register
    file, gTEA tables, and page tables are static during a replay), then
    compress the captured references into parallel groups. The fetcher's
    ``hits``/``fallbacks`` counters are snapshot per attempt into the
    plan as deltas and restored afterwards; the runtime applies the
    deltas once per replayed miss, matching the scalar loop's counts.

    A plan is ``(fallback, groups, d_hits, d_fallbacks)`` where each
    group is ``(addrs, tags)``. Returns the plans plus the VPNs whose
    attempt fell back, in first-occurrence order — the order the scalar
    loop would first hand them to the radix fallback walker (pass 2
    plans those lazily so lazy page-table side effects stay in scalar
    order and non-fallback VPNs trigger none at all).
    """
    fetcher = spec.fetcher
    attempt = spec.attempt
    hits0, fallbacks0 = fetcher.hits, fetcher.fallbacks
    events = []

    def record(addr: int, tag: str, group: int) -> None:
        events.append((addr, tag, group))

    plans = {}
    fallback_vpns = []
    for vpn in uniq_vpns:
        del events[:]
        hits_before, fb_before = fetcher.hits, fetcher.fallbacks
        result = attempt(vpn << PAGE_SHIFT, record)
        d_hits = fetcher.hits - hits_before
        d_fallbacks = fetcher.fallbacks - fb_before
        groups = []
        open_id = None
        for addr, tag, group in events:
            if group != open_id:
                groups.append(([], [] if collect else None))
                open_id = group
            groups[-1][0].append(addr)
            if collect:
                groups[-1][1].append(tag)
        fell_back = bool(result.fallback)
        plans[vpn] = (
            fell_back,
            tuple((tuple(addrs), tuple(tags) if tags is not None else None)
                  for addrs, tags in groups),
            d_hits,
            d_fallbacks,
        )
        if fell_back:
            fallback_vpns.append(vpn)
    fetcher.hits, fetcher.fallbacks = hits0, fallbacks0
    return plans, fallback_vpns


# dmtlint-domain: va=any -- plans probes for guest (gVA) and host (gPA) ECPTs
def _plan_ecpt_probe_step(ecpt, va: int, tag: str, collect: bool):
    """One ECPT probe step compiled to a CWC-probe op (opcode 4).

    The static part — which (size, way) hits, the candidate addresses,
    and which candidate shares the hitting line — is resolved at plan
    time with pure reads (``lookup_way``/``candidate_probes`` touch only
    ``PhysicalMemory``). The Cuckoo Walk Cache prediction is *dynamic*
    (it depends on replay history), so the op carries the CWC key and
    the true way and the interpreter replays ``CuckooWalkCache.get`` /
    ``put`` against the live entry dict at run time.
    """
    hit_addr = None
    hit_size = None
    hit_way = None
    for size, table in ecpt.tables.items():
        found = table.lookup_way(va >> int(size))
        if found is not None:
            hit_addr, _, hit_way = found
            hit_size = size
            break
    if hit_addr is not None:
        has_hit = True
        ckey = (int(hit_size), (va >> int(hit_size)) >> 3)
        hit_tag = f"{tag}-{hit_size.name}" if collect else None
        hit_line = hit_addr >> 6
    else:
        has_hit = False
        ckey = hit_tag = None
        hit_line = None
    cands = []
    matched = False
    for addr, probe_size, _vpn in ecpt.candidate_probes(va):
        crit = (hit_line is not None and addr >> 6 == hit_line
                and not matched)
        if crit:
            matched = True
        cands.append((addr,
                      f"{tag}-{probe_size.name}" if collect else None,
                      crit))
    return (4, has_hit, ckey, hit_way, hit_addr, hit_tag, tuple(cands))


def _build_ecpt_native_plans(spec: BatchSpec, uniq_vpns: List[int],
                             collect: bool):
    """Native ECPT: hash charge + one probe step per walk."""
    from repro.translation.ecpt import HASH_CYCLES

    ecpt = spec.ecpt
    return {vpn: (HASH_CYCLES,
                  (_plan_ecpt_probe_step(ecpt, vpn << PAGE_SHIFT, "ecpt",
                                         collect),))
            for vpn in uniq_vpns}


def _build_ecpt_nested_plans(spec: BatchSpec, uniq_vpns: List[int],
                             collect: bool):
    """Nested ECPT: the three sequential steps compiled to one op list.

    Step 1 host-resolves every guest candidate (a full probe step when
    the candidate shares the guest hit's line, background probes
    otherwise), step 2 fetches the resolved guest candidates, step 3
    host-resolves the data page after a fresh hash charge — all
    determined statically except the host CWC predictions, which ride
    in the opcode-4 entries. Only the *host* CWC is consulted (the
    scalar walker never touches the guest one).
    """
    from repro.translation.ecpt import HASH_CYCLES

    guest = spec.ecpt
    host = spec.host_ecpt
    plans = {}
    for vpn in uniq_vpns:
        gva = vpn << PAGE_SHIFT
        ops = []
        guest_hit = guest.translate(gva)
        g_hit_addr = None
        if guest_hit is not None:
            for size, table in guest.tables.items():
                found = table.lookup(gva >> int(size))
                if found is not None:
                    g_hit_addr = found[0]
                    break
        resolved = []
        for g_addr, _g_size, _g_vpn in guest.candidate_probes(gva):
            critical = g_hit_addr is not None \
                and (g_addr >> 6) == (g_hit_addr >> 6)
            if critical:
                ops.append(_plan_ecpt_probe_step(host, g_addr, "h-ecpt",
                                                 collect))
            else:
                for addr, _size, _hvpn in host.candidate_probes(g_addr):
                    ops.append((2, addr))
            h = host.translate(g_addr)
            if h is not None:
                resolved.append((g_addr, h[0]))
        if guest_hit is None:
            plans[vpn] = (2 * HASH_CYCLES, tuple(ops))
            continue
        gpa, _size = guest_hit
        for g_addr, h_addr in resolved:
            if g_hit_addr is not None \
                    and (g_addr >> 6) == (g_hit_addr >> 6):
                ops.append((1, h_addr, "g-ecpt" if collect else None))
            else:
                ops.append((2, h_addr))
        ops.append((0, HASH_CYCLES))
        ops.append(_plan_ecpt_probe_step(host, gpa, "hd-ecpt", collect))
        plans[vpn] = (2 * HASH_CYCLES, tuple(ops))
    return plans


def _build_fpt_native_plans(spec: BatchSpec, uniq_vpns: List[int],
                            collect: bool):
    """Native FPT: fully static two-reference plans (root + leaf slots).

    The winning leaf slot is identified at plan time exactly like the
    scalar ``_leaf_probe`` (last matching probe wins); the winner — or,
    with no winner, every slot — becomes a grouped fetch, the losers
    background probes.
    """
    fpt = spec.fpt
    read = fpt.memory.read_word
    probe_huge = spec.probe_huge
    plans = {}
    for vpn in uniq_vpns:
        va = vpn << PAGE_SHIFT
        ops = [(1, fpt.root_entry_addr(va), "F-root" if collect else None)]
        leaf = fpt._leaves.get(fpt.upper_index(va))
        if leaf is not None:
            probes = [(fpt.leaf_entry_addr(leaf, va), PageSize.SIZE_4K)]
            if probe_huge:
                huge = fpt._huge_for(va, create=False)
                if huge is not None:
                    probes.append((fpt.huge_entry_addr(huge, va),
                                   PageSize.SIZE_2M))
            hit_addr = None
            for addr, size in probes:
                pte = read(addr)
                if pte & PTE_PRESENT and \
                        bool(pte & PTE_HUGE) == (size != PageSize.SIZE_4K):
                    hit_addr = addr
            for addr, size in probes:
                if hit_addr is None or addr == hit_addr:
                    ops.append((3, 1, addr,
                                f"F-leaf-{size.name}" if collect else None))
                else:
                    ops.append((2, addr))
        plans[vpn] = (0, tuple(ops))
    return plans


def _build_fpt_nested_plans(spec: BatchSpec, uniq_vpns: List[int],
                            collect: bool):
    """Virtualized FPT: eight-reference plans, both dimensions flattened.

    Each host resolution gets a fresh per-walk group id (2, 3, ...);
    group 1 is reserved for the guest-leaf fetches, mirroring the scalar
    walker's distinct-group bookkeeping (absolute ids differ from the
    scalar ``_group_seq`` values, but group ids only need to be distinct
    within a walk — they never leave the recorder).
    """
    guest = spec.fpt
    host = spec.host_fpt
    probe_huge = spec.probe_huge
    gread = guest.memory.read_word
    hread = host.memory.read_word

    def plan_host_resolve(gpa, dim, ops, gid_box):
        ops.append((1, host.root_entry_addr(gpa),
                    f"h{dim}-root" if collect else None))
        leaf = host._leaves.get(host.upper_index(gpa))
        if leaf is None:
            return None
        gid_box[0] += 1
        gid = gid_box[0]
        probes = [(host.leaf_entry_addr(leaf, gpa), PageSize.SIZE_4K)]
        if probe_huge:
            huge = host._huge_for(gpa, create=False)
            if huge is not None:
                probes.append((host.huge_entry_addr(huge, gpa),
                               PageSize.SIZE_2M))
        hpa = None
        hit_addr = None
        for addr, size in probes:
            pte = hread(addr)
            if pte & PTE_PRESENT and \
                    bool(pte & PTE_HUGE) == (size != PageSize.SIZE_4K):
                hpa = (pte_frame(pte) << PAGE_SHIFT) + (gpa & (size.bytes - 1))
                hit_addr = addr
        for addr, _size in probes:
            if hit_addr is None or addr == hit_addr:
                ops.append((3, gid, addr,
                            f"h{dim}-leaf" if collect else None))
            else:
                ops.append((2, addr))
        return hpa

    plans = {}
    for vpn in uniq_vpns:
        gva = vpn << PAGE_SHIFT
        ops = []
        gid_box = [1]
        root_hpa = plan_host_resolve(guest.root_entry_addr(gva), "g1",
                                     ops, gid_box)
        if root_hpa is None:
            plans[vpn] = (0, tuple(ops))
            continue
        ops.append((1, root_hpa, "gF-root" if collect else None))
        leaf = guest._leaves.get(guest.upper_index(gva))
        if leaf is None:
            plans[vpn] = (0, tuple(ops))
            continue
        candidates = [(PageSize.SIZE_4K, guest.leaf_entry_addr(leaf, gva))]
        if probe_huge:
            huge = guest._huge_for(gva, create=False)
            if huge is not None:
                candidates.append((PageSize.SIZE_2M,
                                   guest.huge_entry_addr(huge, gva)))
        slots = []
        for probe_size, entry_gpa in candidates:
            pte = gread(entry_gpa)
            valid = pte & PTE_PRESENT and \
                bool(pte & PTE_HUGE) == (probe_size != PageSize.SIZE_4K)
            slots.append((probe_size, entry_gpa, pte, valid))
        any_valid = any(valid for *_, valid in slots)
        gpa = None
        for probe_size, entry_gpa, pte, valid in slots:
            if any_valid and not valid:
                continue
            entry_hpa = plan_host_resolve(entry_gpa, "g2", ops, gid_box)
            if entry_hpa is None:
                continue
            ops.append((3, 1, entry_hpa,
                        f"gF-leaf-{probe_size.name}" if collect else None))
            if valid:
                gpa = (pte_frame(pte) << PAGE_SHIFT) \
                    + (gva & (probe_size.bytes - 1))
        if gpa is None:
            plans[vpn] = (0, tuple(ops))
            continue
        plan_host_resolve(gpa, "d", ops, gid_box)
        plans[vpn] = (0, tuple(ops))
    return plans


def _build_agile_plans(spec: BatchSpec, top_level: int, n_offsets: int,
                       uniq_vpns: List[int], collect: bool):
    """Agile Paging plans: shadow chain + guest leaf + data resolution.

    ``plans[vpn] = (chain, leaf, data)``. The chain rows replay phase 1
    including the scalar quirk that a dead or huge shadow PTE does *not*
    stop the descent (the level decrements while the table frame stays
    put). ``leaf`` is the guest leaf PTE's host address (``None`` when
    the guest mapping is absent — the walk ends after the chain) and
    ``data`` the memoized host resolution of the data page. Per-VPN
    plan order (leaf ``gpa_to_hpa`` before the data resolve) preserves
    the scalar walker's lazy first-touch sequence.
    """
    guest_pt = spec.guest_pt
    spt = spec.spt
    vm = spec.vm
    sread = spt.memory.read_word
    gpa_to_hpa = vm.gpa_to_hpa
    ept = vm.ept
    chain_top = min(top_level, guest_pt.levels)
    host = {}

    def resolve(gfn: int):
        entry = host.get(gfn)
        if entry is None:
            hpa = gpa_to_hpa(gfn << PAGE_SHIFT)   # lazy backing first-touch
            steps = ept.walk_steps(gfn << PAGE_SHIFT)
            entry = (hpa >> PAGE_SHIFT,
                     tuple(step.pte_addr for step in steps),
                     tuple(f"hdL{step.level}" for step in steps)
                     if collect else None)
            host[gfn] = entry
        return entry

    plans = {}
    for vpn in uniq_vpns:
        gva = vpn << PAGE_SHIFT
        gsteps = guest_pt.walk_steps(gva)
        leaf_step = gsteps[-1]
        leaf_level = leaf_step.level
        chain = []
        table_frame = spt.root_frame
        for level in range(chain_top, leaf_level, -1):
            addr = (table_frame << PAGE_SHIFT) + level_index(gva, level) * 8
            pte = sread(addr)
            fill = None
            if pte & PTE_PRESENT and not pte & PTE_HUGE:
                table_frame = pte_frame(pte)
                offset = top_level - level
                if 0 <= offset < n_offsets:
                    fill = (offset,
                            vpn >> (TABLE_INDEX_BITS * (level - 1)),
                            table_frame << PAGE_SHIFT)
            chain.append((addr, f"sL{level}" if collect else None, fill))
        if not leaf_step.pte_value & PTE_PRESENT:
            plans[vpn] = (tuple(chain), None, None)
            continue
        leaf_addr = gpa_to_hpa(leaf_step.pte_addr)
        leaf = (leaf_addr, f"gL{leaf_level}" if collect else None)
        data_gpa = (pte_frame(leaf_step.pte_value) << PAGE_SHIFT) \
            + (gva & (_LEAF_BYTES[leaf_level] - 1))
        dgfn = data_gpa >> PAGE_SHIFT
        dhfn, dsteps, dtags = resolve(dgfn)
        plans[vpn] = (tuple(chain), leaf, (dgfn, dhfn, dsteps, dtags))
    return plans


# --------------------------------------------------------------------- #
# Runners
# --------------------------------------------------------------------- #

def _make_radix_runner(spec: BatchSpec, memsys: MemorySubsystem,
                       uniq_vpns: List[int], access: Callable[[int], int],
                       access_ctx, collect: bool,
                       finalizers: List[Callable[[], None]],
                       credit_walkers: Tuple = (),
                       prefetcher=None, prefetch_out=None):
    """Build plans + the per-miss radix walk function for ``spec``.

    Returns ``(run, run_many)``. ``run(vpn, steps)`` executes one walk:
    PWC probe (with LRU touch and credit thinning), the remaining chain
    fetches, and the PWC fills — all against live flat state — and
    returns ``(cycles, nrefs, False)``. ``steps`` collects Figure 16
    ``(tag, latency)`` pairs when not None. For radix-native,
    ``run_many(vpn_list) -> (cycles, nrefs)`` additionally replays a
    whole chunk with the probe and the cache hierarchy fully inlined
    over ``access_ctx`` (the shared counters behind ``access``), every
    line/set index precomputed, and all counters held in locals that
    flush once per chunk; ``run_many`` is None otherwise. The nested
    path goes through ``access``.

    ``credit_walkers`` names walkers whose walks/cycles counters must
    mirror these walks (the DMT fallback path: the scalar loop records
    each fallback walk on the fallback walker before the DMT walker).
    """
    pwc = memsys.guest_pwc if spec.kind == "radix-nested" else memsys.pwc
    view = pwc.batch_view()
    probe, probe_fin, probe_ctx = _make_pwc_probe(view)
    finalizers.append(probe_fin)
    tables = view.tables
    capacities = view.capacities
    pwc_latency = memsys.pwc_latency
    run_many = None

    if spec.kind == "radix-native":
        (v1, v2, v3), mem_latency, counters = access_ctx
        top_level = view.top_level
        slots, columns = _build_radix_native_columns(
            spec.page_table, top_level, len(tables), uniq_vpns,
            (v1, v2, v3))
        line1, idx1, line2, idx2, line3, idx3, fkeys, fvals = columns
        tag_by_step = tuple(
            f"L{top_level - depth}" for depth in range(top_level))
        s1, a1, lat1 = v1.sets, v1.assoc, v1.latency
        s2, a2, lat2 = v2.sets, v2.assoc, v2.latency
        s3, a3, lat3 = v3.sets, v3.assoc, v3.latency
        porder, paccept, pcredit, pcounters = probe_ctx

        def run(vpn: int, steps) -> Tuple[int, int, bool]:
            base, chain_len = slots[vpn]
            cycles = pwc_latency
            start = probe(vpn)
            j = base + start
            end = base + chain_len
            while j < end:
                # Inlined CacheHierarchy.access: L1 -> L2 -> LLC -> MEM,
                # LRU touch on hit, install into every missed level.
                l1 = line1[j]
                i1 = idx1[j]
                w1 = s1.get(i1)
                if w1 is not None and l1 in w1:
                    del w1[l1]
                    w1[l1] = None
                    counters[0] += 1
                    latency = lat1
                else:
                    counters[3] += 1
                    l2 = line2[j]
                    i2 = idx2[j]
                    w2 = s2.get(i2)
                    if w2 is not None and l2 in w2:
                        del w2[l2]
                        w2[l2] = None
                        counters[1] += 1
                        latency = lat2
                    else:
                        counters[4] += 1
                        l3 = line3[j]
                        i3 = idx3[j]
                        w3 = s3.get(i3)
                        if w3 is not None and l3 in w3:
                            del w3[l3]
                            w3[l3] = None
                            counters[2] += 1
                            latency = lat3
                        else:
                            counters[5] += 1
                            counters[6] += 1
                            latency = mem_latency
                            if w3 is None:
                                s3[i3] = {l3: None}
                            else:
                                if len(w3) >= a3:
                                    del w3[next(iter(w3))]
                                w3[l3] = None
                        if w2 is None:
                            s2[i2] = {l2: None}
                        else:
                            if len(w2) >= a2:
                                del w2[next(iter(w2))]
                            w2[l2] = None
                    if w1 is None:
                        s1[i1] = {l1: None}
                    else:
                        if len(w1) >= a1:
                            del w1[next(iter(w1))]
                        w1[l1] = None
                cycles += latency
                if steps is not None:
                    steps.append((tag_by_step[j - base], latency))
                key = fkeys[j]
                if key >= 0:
                    offset = j - base
                    table = tables[offset]
                    if key in table:
                        del table[key]
                    elif len(table) >= capacities[offset]:
                        del table[next(iter(table))]
                    table[key] = fvals[j]
                j += 1
            return cycles, chain_len - start, False

        if v1.num_sets == 1 and paccept is not None and len(porder) == 3:
            # The Table 3 shape: the PTE-share-thinned L1 collapses to a
            # single set at evaluation scale (its one ways dict is
            # hoisted out of the loop — no set-index column load, no
            # s1.get per access) and the 3-offset thinned PWC probe is
            # unrolled deepest-first with its tables/shifts in locals.
            (pt2, psh2, _o2), (pt1, psh1, _o1), (pt0, psh0, _o0) = porder
            pac0, pac1, pac2 = paccept[0], paccept[1], paccept[2]

            def run_many(vpn_list) -> Tuple[int, int]:
                h1 = h2 = h3 = miss1 = miss2 = miss3 = mem = 0
                phits = pmisses = 0
                total_cycles = 0
                refs = 0
                w1 = s1.get(0)
                for vpn in vpn_list:
                    base, chain_len = slots[vpn]
                    start = 0
                    key = vpn >> psh2
                    if key in pt2:
                        pt2[key] = pt2.pop(key)   # LRU touch
                        credit = pcredit[2] + pac2
                        if credit >= 1.0:
                            pcredit[2] = credit - 1.0
                            start = 3
                        else:
                            pcredit[2] = credit
                    if start == 0:
                        key = vpn >> psh1
                        if key in pt1:
                            pt1[key] = pt1.pop(key)
                            credit = pcredit[1] + pac1
                            if credit >= 1.0:
                                pcredit[1] = credit - 1.0
                                start = 2
                            else:
                                pcredit[1] = credit
                        if start == 0:
                            key = vpn >> psh0
                            if key in pt0:
                                pt0[key] = pt0.pop(key)
                                credit = pcredit[0] + pac0
                                if credit >= 1.0:
                                    pcredit[0] = credit - 1.0
                                    start = 1
                                else:
                                    pcredit[0] = credit
                    if start:
                        phits += 1
                    else:
                        pmisses += 1
                    cycles = pwc_latency
                    j = base + start
                    end = base + chain_len
                    while j < end:
                        l1 = line1[j]
                        if w1 is not None and l1 in w1:
                            del w1[l1]
                            w1[l1] = None
                            h1 += 1
                            cycles += lat1
                        else:
                            miss1 += 1
                            l2 = line2[j]
                            i2 = idx2[j]
                            w2 = s2.get(i2)
                            if w2 is not None and l2 in w2:
                                del w2[l2]
                                w2[l2] = None
                                h2 += 1
                                cycles += lat2
                            else:
                                miss2 += 1
                                l3 = line3[j]
                                i3 = idx3[j]
                                w3 = s3.get(i3)
                                if w3 is not None and l3 in w3:
                                    del w3[l3]
                                    w3[l3] = None
                                    h3 += 1
                                    cycles += lat3
                                else:
                                    miss3 += 1
                                    mem += 1
                                    cycles += mem_latency
                                    if w3 is None:
                                        s3[i3] = {l3: None}
                                    else:
                                        if len(w3) >= a3:
                                            del w3[next(iter(w3))]
                                        w3[l3] = None
                                if w2 is None:
                                    s2[i2] = {l2: None}
                                else:
                                    if len(w2) >= a2:
                                        del w2[next(iter(w2))]
                                    w2[l2] = None
                            if w1 is None:
                                w1 = s1[0] = {l1: None}
                            else:
                                if len(w1) >= a1:
                                    del w1[next(iter(w1))]
                                w1[l1] = None
                        key = fkeys[j]
                        if key >= 0:
                            offset = j - base
                            table = tables[offset]
                            if key in table:
                                del table[key]
                            elif len(table) >= capacities[offset]:
                                del table[next(iter(table))]
                            table[key] = fvals[j]
                        j += 1
                    total_cycles += cycles
                    refs += chain_len - start
                counters[0] += h1
                counters[1] += h2
                counters[2] += h3
                counters[3] += miss1
                counters[4] += miss2
                counters[5] += miss3
                counters[6] += mem
                pcounters[0] += phits
                pcounters[1] += pmisses
                return total_cycles, refs
        else:
            def run_many(vpn_list) -> Tuple[int, int]:
                # One chunk, probe + hierarchy + fills inlined, every
                # counter in a local int flushed once at the end.
                h1 = h2 = h3 = miss1 = miss2 = miss3 = mem = 0
                phits = pmisses = 0
                total_cycles = 0
                refs = 0
                for vpn in vpn_list:
                    base, chain_len = slots[vpn]
                    start = 0
                    hit = False
                    for table, shift, offset in porder:
                        key = vpn >> shift
                        if key in table:
                            table[key] = table.pop(key)   # LRU touch
                            if paccept is None:
                                hit = True
                            else:
                                credit = pcredit[offset] + paccept[offset]
                                if credit >= 1.0:
                                    pcredit[offset] = credit - 1.0
                                    hit = True
                                else:
                                    pcredit[offset] = credit
                                    continue
                            start = offset + 1
                            break
                    if hit:
                        phits += 1
                    else:
                        pmisses += 1
                    cycles = pwc_latency
                    j = base + start
                    end = base + chain_len
                    while j < end:
                        l1 = line1[j]
                        w1 = s1.get(idx1[j])
                        if w1 is not None and l1 in w1:
                            del w1[l1]
                            w1[l1] = None
                            h1 += 1
                            cycles += lat1
                        else:
                            miss1 += 1
                            l2 = line2[j]
                            i2 = idx2[j]
                            w2 = s2.get(i2)
                            if w2 is not None and l2 in w2:
                                del w2[l2]
                                w2[l2] = None
                                h2 += 1
                                cycles += lat2
                            else:
                                miss2 += 1
                                l3 = line3[j]
                                i3 = idx3[j]
                                w3 = s3.get(i3)
                                if w3 is not None and l3 in w3:
                                    del w3[l3]
                                    w3[l3] = None
                                    h3 += 1
                                    cycles += lat3
                                else:
                                    miss3 += 1
                                    mem += 1
                                    cycles += mem_latency
                                    if w3 is None:
                                        s3[i3] = {l3: None}
                                    else:
                                        if len(w3) >= a3:
                                            del w3[next(iter(w3))]
                                        w3[l3] = None
                                if w2 is None:
                                    s2[i2] = {l2: None}
                                else:
                                    if len(w2) >= a2:
                                        del w2[next(iter(w2))]
                                    w2[l2] = None
                            i1 = idx1[j]
                            if w1 is None:
                                s1[i1] = {l1: None}
                            else:
                                if len(w1) >= a1:
                                    del w1[next(iter(w1))]
                                w1[l1] = None
                        key = fkeys[j]
                        if key >= 0:
                            offset = j - base
                            table = tables[offset]
                            if key in table:
                                del table[key]
                            elif len(table) >= capacities[offset]:
                                del table[next(iter(table))]
                            table[key] = fvals[j]
                        j += 1
                    total_cycles += cycles
                    refs += chain_len - start
                counters[0] += h1
                counters[1] += h2
                counters[2] += h3
                counters[3] += miss1
                counters[4] += miss2
                counters[5] += miss3
                counters[6] += mem
                pcounters[0] += phits
                pcounters[1] += pmisses
                return total_cycles, refs

    else:  # radix-nested
        plans = _build_radix_nested_plans(
            spec.guest_pt, spec.vm, view.top_level, len(tables),
            uniq_vpns, collect, prefetcher=prefetcher,
            prefetch_out=prefetch_out)
        nview = memsys.nested_pwc.batch_view()
        ntable = nview.table
        ncapacity = nview.capacity
        naccept = nview.accept
        # hits, misses; thinning credit (float) written back at finalize
        ncounters = [0, 0]
        ncredit = [nview.owner.credit]

        def resolve_host(gfn, hfn, hsteps, htags, steps, cycles, nrefs):
            """Nested-PWC consult + host-chain replay; returns updates."""
            hit = False
            if gfn in ntable:
                cached = ntable.pop(gfn)   # LRU touch, even when thinned
                ntable[gfn] = cached
                if naccept < 1.0:
                    credit = ncredit[0] + naccept
                    if credit >= 1.0:
                        ncredit[0] = credit - 1.0
                        hit = True
                    else:
                        ncredit[0] = credit
                else:
                    hit = True
            if hit:
                ncounters[0] += 1
                return cycles, nrefs
            ncounters[1] += 1
            if steps is None:
                for addr in hsteps:
                    cycles += access(addr)
                    nrefs += 1
            else:
                for addr, tag in zip(hsteps, htags):
                    latency = access(addr)
                    cycles += latency
                    nrefs += 1
                    steps.append((tag, latency))
            # NestedPWC.fill after the chain (scalar _host_resolve order)
            if gfn in ntable:
                del ntable[gfn]
            elif len(ntable) >= ncapacity:
                del ntable[next(iter(ntable))]
            ntable[gfn] = hfn
            return cycles, nrefs

        def run(vpn: int, steps) -> Tuple[int, int, bool]:
            entries, data = plans[vpn]
            cycles = pwc_latency
            nrefs = 0
            i = probe(vpn)
            n = len(entries)
            while i < n:
                gfn, hfn, hsteps, gpte_hpa, fill, gtag, htags = entries[i]
                cycles, nrefs = resolve_host(
                    gfn, hfn, hsteps, htags, steps, cycles, nrefs)
                latency = access(gpte_hpa)
                cycles += latency
                nrefs += 1
                if steps is not None:
                    steps.append((gtag, latency))
                if fill is not None:
                    offset, key, value = fill
                    table = tables[offset]
                    if key in table:
                        del table[key]
                    elif len(table) >= capacities[offset]:
                        del table[next(iter(table))]
                    table[key] = value
                i += 1
            if data is not None:
                dgfn, dhfn, dsteps, dtags = data
                cycles, nrefs = resolve_host(
                    dgfn, dhfn, dsteps, dtags, steps, cycles, nrefs)
            return cycles, nrefs, False

        def nested_fin() -> None:
            nview.stats.hits += ncounters[0]
            nview.stats.misses += ncounters[1]
            nview.owner.credit = ncredit[0]

        finalizers.append(nested_fin)

    if not credit_walkers:
        return run, run_many
    # DMT fallback duty: mirror each fallback walk onto the fallback
    # walker's own counters (the scalar loop records through it first).
    acc = [0, 0]

    def tracked(vpn: int, steps) -> Tuple[int, int, bool]:
        cycles, nrefs, _ = run(vpn, steps)
        acc[0] += 1
        acc[1] += cycles
        return cycles, nrefs, False

    def credit_fin() -> None:
        for target in credit_walkers:
            target.walks += acc[0]
            target.total_cycles += acc[1]

    finalizers.append(credit_fin)
    return tracked, None


def _make_dmt_runner(spec: BatchSpec, memsys: MemorySubsystem,
                     uniq_vpns: List[int], access: Callable[[int], int],
                     access_ctx, collect: bool,
                     finalizers: List[Callable[[], None]]):
    """Build the per-miss DMT run function (register hit or fallback).

    Pass 1 captures every attempt's fetch groups and counter deltas from
    the live fetcher; pass 2 plans radix fallbacks for only the VPNs
    that fell back. At runtime a register hit charges each group's
    slowest member sequentially (``WalkRecorder.fetch_grouped``
    semantics); a register miss applies the attempt's cache traffic with
    its latency discarded — exactly the scalar ``_run``, which drops the
    recorder on fallback but keeps the cache/PWC mutations — then runs
    the radix fallback walk, whose cycles and refs are the walk's result.
    """
    plans, fallback_vpns = _build_dmt_plans(spec, uniq_vpns, collect)
    fallback_spec = spec.fallback.batch_spec()
    fallback_run, _ = _make_radix_runner(
        fallback_spec, memsys, fallback_vpns, access, access_ctx, collect,
        finalizers,
        credit_walkers=(spec.fallback,) + tuple(fallback_spec.extra_walkers))
    fetcher = spec.fetcher
    acc = [0, 0]  # fetcher hits / fallbacks deltas, applied at finalize

    def run(vpn: int, steps) -> Tuple[int, int, bool]:
        fell_back, groups, d_hits, d_fallbacks = plans[vpn]
        acc[0] += d_hits
        acc[1] += d_fallbacks
        if fell_back:
            for addrs, _tags in groups:
                for addr in addrs:
                    access(addr)   # mutates caches; cycles discarded
            cycles, nrefs, _ = fallback_run(vpn, steps)
            return cycles, nrefs, True
        cycles = 0
        nrefs = 0
        for addrs, tags in groups:
            group_max = 0
            first = -1
            for addr in addrs:
                latency = access(addr)
                if latency > group_max:
                    group_max = latency
                if first < 0:
                    first = latency
            cycles += group_max
            nrefs += len(addrs)
            if steps is not None:
                steps.append((tags[0], first))
        return cycles, nrefs, False

    def fetcher_fin() -> None:
        fetcher.hits += acc[0]
        fetcher.fallbacks += acc[1]

    finalizers.append(fetcher_fin)
    return run


def _make_ops_runner(plans, access: Callable[[int], int],
                     probe: Callable[[int], None], cwc,
                     finalizers: List[Callable[[], None]]):
    """The op-program interpreter shared by the ECPT and FPT runners.

    ``plans[vpn] = (base_cycles, ops)``. Opcodes (first element):

    - ``(0, c)``     — ``WalkRecorder.charge``: close the open group,
      add ``c`` cycles (mid-walk hash charges; the *leading* charge is
      folded into ``base_cycles`` — safe only there, because a charge
      closes an open group episode).
    - ``(1, addr, tag)`` — sequential ``fetch``.
    - ``(2, addr)``  — background ``CacheHierarchy.probe``.
    - ``(3, gid, addr, tag)`` — ``fetch_grouped``: parallel group
      member, the episode costs its slowest member.
    - ``(4, ...)``   — an ECPT probe step (see
      :func:`_plan_ecpt_probe_step`): replay the CWC prediction against
      the live entry dict, then either the single predicted fetch, the
      mispredict fan-out (critical fetch + losing probes, plus the CWC
      update), or the full-miss fan-out whose completion is a grouped
      fetch of the first candidate (group id 0 — the scalar walker's
      ``id(rec) & 0xFFFF`` symbol, constant within a walk).

    Group episodes replicate ``WalkRecorder`` exactly: a grouped fetch
    with a new gid closes the previous episode (adding its max), fetches
    and charges close any open episode, probes touch nothing, and the
    walk's final episode closes at op-list end. Step collection mirrors
    the scalar collapsing — one entry per *first* ref of each gid per
    walk, sequential fetches always recorded.
    """
    if cwc is not None:
        centries = cwc._entries
        ccap = cwc.capacity
        ccounters = [0, 0]  # hits, misses

        def cwc_fin() -> None:
            cwc.hits += ccounters[0]
            cwc.misses += ccounters[1]

        finalizers.append(cwc_fin)
    else:
        centries = None
        ccap = 0
        ccounters = None

    def run(vpn: int, steps) -> Tuple[int, int, bool]:
        base, ops = plans[vpn]
        cycles = base
        nrefs = 0
        open_gid = -1
        gmax = 0
        seen = set() if steps is not None else None
        for op in ops:
            code = op[0]
            if code == 1:
                if open_gid >= 0:
                    cycles += gmax
                    open_gid = -1
                    gmax = 0
                latency = access(op[1])
                cycles += latency
                nrefs += 1
                if steps is not None:
                    steps.append((op[2], latency))
            elif code == 2:
                probe(op[1])
            elif code == 3:
                gid = op[1]
                if gid != open_gid:
                    if open_gid >= 0:
                        cycles += gmax
                    open_gid = gid
                    gmax = 0
                latency = access(op[2])
                if latency > gmax:
                    gmax = latency
                nrefs += 1
                if steps is not None and gid not in seen:
                    seen.add(gid)
                    steps.append((op[3], latency))
            elif code == 4:
                _c, has_hit, ckey, hit_way, hit_addr, hit_tag, cands = op
                if has_hit:
                    predicted = centries.pop(ckey, None)
                    if predicted is None:
                        ccounters[1] += 1
                    else:
                        centries[ckey] = predicted   # LRU touch
                        ccounters[0] += 1
                    if predicted == hit_way:
                        # CWC hit: single targeted probe
                        if open_gid >= 0:
                            cycles += gmax
                            open_gid = -1
                            gmax = 0
                        latency = access(hit_addr)
                        cycles += latency
                        nrefs += 1
                        if steps is not None:
                            steps.append((hit_tag, latency))
                        continue
                    # mispredict: install the true way (CuckooWalkCache.put)
                    if ckey in centries:
                        centries.pop(ckey)
                    elif len(centries) >= ccap:
                        centries.pop(next(iter(centries)))
                    centries[ckey] = hit_way
                    for addr, tag, crit in cands:
                        if crit:
                            if open_gid >= 0:
                                cycles += gmax
                                open_gid = -1
                                gmax = 0
                            latency = access(addr)
                            cycles += latency
                            nrefs += 1
                            if steps is not None:
                                steps.append((tag, latency))
                        else:
                            probe(addr)
                else:
                    # full miss: probe every candidate, completion waits
                    # for the slowest (the grouped first-candidate fetch)
                    for addr, _tag, _crit in cands:
                        probe(addr)
                    addr, tag, _crit = cands[0]
                    if open_gid != 0:
                        if open_gid >= 0:
                            cycles += gmax
                        open_gid = 0
                        gmax = 0
                    latency = access(addr)
                    if latency > gmax:
                        gmax = latency
                    nrefs += 1
                    if steps is not None and 0 not in seen:
                        seen.add(0)
                        steps.append((tag, latency))
            else:  # code == 0: charge
                if open_gid >= 0:
                    cycles += gmax
                    open_gid = -1
                    gmax = 0
                cycles += op[1]
        if open_gid >= 0:
            cycles += gmax
        return cycles, nrefs, False

    return run


def _make_ecpt_runner(spec: BatchSpec, memsys: MemorySubsystem,
                      uniq_vpns: List[int], access: Callable[[int], int],
                      access_ctx, collect: bool,
                      finalizers: List[Callable[[], None]]):
    """ECPT (native or nested): plans + the live-CWC op interpreter."""
    if spec.kind == "ecpt-native":
        plans = _build_ecpt_native_plans(spec, uniq_vpns, collect)
        cwc = spec.ecpt.cwc
    else:
        plans = _build_ecpt_nested_plans(spec, uniq_vpns, collect)
        cwc = spec.host_ecpt.cwc   # the scalar walker probes only this one
    return _make_ops_runner(plans, access, _make_probe(access_ctx), cwc,
                            finalizers)


def _make_fpt_runner(spec: BatchSpec, memsys: MemorySubsystem,
                     uniq_vpns: List[int], access: Callable[[int], int],
                     access_ctx, collect: bool,
                     finalizers: List[Callable[[], None]]):
    """FPT (native or nested): fully static plans, no prediction state."""
    if spec.kind == "fpt-native":
        plans = _build_fpt_native_plans(spec, uniq_vpns, collect)
    else:
        plans = _build_fpt_nested_plans(spec, uniq_vpns, collect)
    return _make_ops_runner(plans, access, _make_probe(access_ctx), None,
                            finalizers)


def _make_agile_runner(spec: BatchSpec, memsys: MemorySubsystem,
                       uniq_vpns: List[int], access: Callable[[int], int],
                       access_ctx, collect: bool,
                       finalizers: List[Callable[[], None]]):
    """Agile Paging: PWC-probed shadow chain + nested data resolution.

    Phase 1 replays like a native radix walk against the *host* PWC
    (including the scalar walker's dead-PTE descent quirk, baked into
    the chain rows); phase 2 is one precomputed guest-leaf fetch; phase
    3 is the nested-PWC consult + memoized host chain, the same shape
    as the radix-nested ``resolve_host``.
    """
    view = memsys.pwc.batch_view()
    probe, probe_fin, _probe_ctx = _make_pwc_probe(view)
    finalizers.append(probe_fin)
    tables = view.tables
    capacities = view.capacities
    pwc_latency = memsys.pwc_latency
    top_level = view.top_level
    chain_top = min(top_level, spec.guest_pt.levels)
    plans = _build_agile_plans(spec, top_level, len(tables), uniq_vpns,
                               collect)

    nview = memsys.nested_pwc.batch_view()
    ntable = nview.table
    ncapacity = nview.capacity
    naccept = nview.accept
    ncounters = [0, 0]
    ncredit = [nview.owner.credit]

    def run(vpn: int, steps) -> Tuple[int, int, bool]:
        chain, leaf, data = plans[vpn]
        cycles = pwc_latency
        nrefs = 0
        # probe() returns a top_level-relative chain index; clamp to the
        # shadow chain's top (the scalar min(start_level, levels)).
        start = probe(vpn)
        lvl = top_level - start
        if lvl > chain_top:
            lvl = chain_top
        for addr, tag, fill in chain[chain_top - lvl:]:
            latency = access(addr)
            cycles += latency
            nrefs += 1
            if steps is not None:
                steps.append((tag, latency))
            if fill is not None:
                offset, key, value = fill
                table = tables[offset]
                if key in table:
                    del table[key]
                elif len(table) >= capacities[offset]:
                    del table[next(iter(table))]
                table[key] = value
        if leaf is None:
            return cycles, nrefs, False
        leaf_addr, leaf_tag = leaf
        latency = access(leaf_addr)
        cycles += latency
        nrefs += 1
        if steps is not None:
            steps.append((leaf_tag, latency))
        # Phase 3: nested-PWC consult + host chain (scalar _host_resolve)
        dgfn, dhfn, dsteps, dtags = data
        hit = False
        if dgfn in ntable:
            cached = ntable.pop(dgfn)   # LRU touch, even when thinned
            ntable[dgfn] = cached
            if naccept < 1.0:
                credit = ncredit[0] + naccept
                if credit >= 1.0:
                    ncredit[0] = credit - 1.0
                    hit = True
                else:
                    ncredit[0] = credit
            else:
                hit = True
        if hit:
            ncounters[0] += 1
            return cycles, nrefs, False
        ncounters[1] += 1
        if steps is None:
            for addr in dsteps:
                cycles += access(addr)
                nrefs += 1
        else:
            for addr, tag in zip(dsteps, dtags):
                latency = access(addr)
                cycles += latency
                nrefs += 1
                steps.append((tag, latency))
        if dgfn in ntable:
            del ntable[dgfn]
        elif len(ntable) >= ncapacity:
            del ntable[next(iter(ntable))]
        ntable[dgfn] = dhfn
        return cycles, nrefs, False

    def agile_fin() -> None:
        nview.stats.hits += ncounters[0]
        nview.stats.misses += ncounters[1]
        nview.owner.credit = ncredit[0]

    finalizers.append(agile_fin)
    return run


def _make_asap_runner(walker: Walker, spec: BatchSpec,
                      memsys: MemorySubsystem, uniq_vpns: List[int],
                      access: Callable[[int], int], access_ctx,
                      collect: bool,
                      finalizers: List[Callable[[], None]]):
    """ASAP (native or nested): prefetch cost model over the radix plan.

    The prefetch addresses are static per VPN (native: the L2/L1 PTE
    addresses; nested: the guest L2/L1 entries' host addresses plus
    their EPT leaf entries). Nested prefetch *planning* performs the
    scalar walker's lazy ``gpa_to_hpa`` first-touches, so it runs
    interleaved with the inner radix-nested planner via its
    ``prefetcher`` hook — before each VPN's chain resolves, the order
    the scalar walk would touch them. At run time the prefetch accesses
    go through the shared hierarchy (installing lines) before the inner
    walk replays; the walk costs ``max(prefetch completion, inner)``
    while refs and step tags come from the inner walk alone, and the
    inner walker's own walks/cycles counters mirror the inner replays.
    """
    from repro.translation.asap import PREFETCH_LEVELS

    inner_spec = spec.inner.batch_spec()
    if spec.kind == "asap-native":
        chain_hop = 0
        pf_plans = {
            vpn: tuple(step.pte_addr
                       for step in spec.page_table.walk_steps(
                           vpn << PAGE_SHIFT)
                       if step.level in PREFETCH_LEVELS)
            for vpn in uniq_vpns}
        inner_run, _ = _make_radix_runner(
            inner_spec, memsys, uniq_vpns, access, access_ctx, collect,
            finalizers)
    else:
        chain_hop = walker.CHAIN_HOP_CYCLES
        guest_pt = spec.guest_pt
        gpa_to_hpa = spec.vm.gpa_to_hpa
        ept = spec.vm.ept
        pf_plans: dict = {}

        def prefetcher(gva: int):
            addrs = []
            for step in guest_pt.walk_steps(gva):
                if step.level not in PREFETCH_LEVELS:
                    continue
                addrs.append(gpa_to_hpa(step.pte_addr))  # lazy first-touch
                for ept_step in ept.walk_steps(step.pte_addr):
                    if ept_step.level in PREFETCH_LEVELS:
                        addrs.append(ept_step.pte_addr)
            return tuple(addrs)

        inner_run, _ = _make_radix_runner(
            inner_spec, memsys, uniq_vpns, access, access_ctx, collect,
            finalizers, prefetcher=prefetcher, prefetch_out=pf_plans)

    inner = spec.inner
    acc = [0, 0, 0]  # inner walks, inner cycles, prefetches issued

    def run(vpn: int, steps) -> Tuple[int, int, bool]:
        pf = pf_plans[vpn]
        worst = 0
        for addr in pf:
            latency = access(addr)
            if latency > worst:
                worst = latency
        acc[2] += len(pf)
        if worst and chain_hop:
            worst += chain_hop
        cycles, nrefs, _ = inner_run(vpn, steps)
        acc[0] += 1
        acc[1] += cycles
        return (worst if worst > cycles else cycles), nrefs, False

    def asap_fin() -> None:
        inner.walks += acc[0]
        inner.total_cycles += acc[1]
        walker.prefetches += acc[2]

    finalizers.append(asap_fin)
    return run


# --------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------- #

def replay_walks_vec(
    walker: Walker,
    miss_vas,
    warmup_fraction: float = 0.1,
    collect_steps: bool = False,
    chunk: int = DEFAULT_CHUNK,
):
    """Batched stage 2: replay a miss stream, bit-identical to scalar.

    Drop-in for :func:`repro.sim.simulator.replay_walks` on supported
    walkers (see :func:`supports`): same ``WalkStats`` (cycles, refs,
    fallbacks, step breakdown), same post-replay cache/PWC/walker state.
    Raises ``ValueError`` for unsupported walkers — callers route those
    through the scalar loop (``engine="auto"`` does this automatically).
    """
    from repro.sim.simulator import WalkStats

    reason = unsupported_reason(walker)
    if reason is not None:
        raise ValueError(
            f"walker {walker.name!r} has no batched replay path: {reason} "
            "(use the scalar engine)")
    spec = walker.batch_spec()
    memsys = walker.memsys
    record_refs = memsys.record_refs
    collect = bool(collect_steps and record_refs)

    vas = np.asarray(miss_vas, dtype=np.int64)
    stats = WalkStats(design=walker.name, engine="vec")
    total = int(vas.size)
    if total == 0:
        return stats
    vpns = vas >> PAGE_SHIFT

    # Unique VPNs in first-occurrence order: planning must touch lazily
    # populated structures in the same order the scalar loop would.
    uniq, first_index = np.unique(vpns, return_index=True)
    uniq_ordered = uniq[np.argsort(first_index, kind="stable")].tolist()

    # Planning + replay allocate at a small bounded rate; pausing the
    # cyclic collector for the duration costs nothing semantically.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        access, access_fin, access_ctx = _make_access(memsys.caches)
        finalizers: List[Callable[[], None]] = [access_fin]
        run_many = None
        if spec.kind == "dmt":
            run = _make_dmt_runner(spec, memsys, uniq_ordered, access,
                                   access_ctx, collect, finalizers)
        elif spec.kind in ("ecpt-native", "ecpt-nested"):
            run = _make_ecpt_runner(spec, memsys, uniq_ordered, access,
                                    access_ctx, collect, finalizers)
        elif spec.kind in ("fpt-native", "fpt-nested"):
            run = _make_fpt_runner(spec, memsys, uniq_ordered, access,
                                   access_ctx, collect, finalizers)
        elif spec.kind == "agile":
            run = _make_agile_runner(spec, memsys, uniq_ordered, access,
                                     access_ctx, collect, finalizers)
        elif spec.kind in ("asap-native", "asap-nested"):
            run = _make_asap_runner(walker, spec, memsys, uniq_ordered,
                                    access, access_ctx, collect, finalizers)
        else:
            run, run_many = _make_radix_runner(
                spec, memsys, uniq_ordered, access, access_ctx, collect,
                finalizers)
        if collect:
            run_many = None

        warmup = int(total * warmup_fraction)
        warm_cycles = 0
        warm_fallbacks = 0
        walks = measured_cycles = refs = fallbacks = 0
        # Chunks reach the runners as memoryviews of the ndarray slices
        # — zero-copy (no Python-list materialization), yet iteration
        # yields native ints, so the runners' dict lookups and shifts
        # skip np.int64 scalar overhead (~25% on the radix fast path).
        if run_many is not None:
            for start in range(0, warmup, chunk):
                cycles, _nrefs = run_many(
                    memoryview(vpns[start:min(start + chunk, warmup)]))
                warm_cycles += cycles
            for start in range(max(warmup, 0), total, chunk):
                chunk_vpns = memoryview(vpns[start:min(start + chunk,
                                                       total)])
                cycles, nrefs = run_many(chunk_vpns)
                walks += len(chunk_vpns)
                measured_cycles += cycles
                refs += nrefs
        else:
            for start in range(0, warmup, chunk):
                for vpn in memoryview(vpns[start:min(start + chunk,
                                                     warmup)]):
                    cycles, _nrefs, fell_back = run(vpn, None)
                    warm_cycles += cycles
                    if fell_back:
                        warm_fallbacks += 1

            step_cycles = stats.step_cycles
            for start in range(max(warmup, 0), total, chunk):
                chunk_vpns = memoryview(vpns[start:min(start + chunk,
                                                       total)])
                if not collect:
                    for vpn in chunk_vpns:
                        cycles, nrefs, fell_back = run(vpn, None)
                        walks += 1
                        measured_cycles += cycles
                        refs += nrefs
                        if fell_back:
                            fallbacks += 1
                else:
                    for vpn in chunk_vpns:
                        steps = []
                        cycles, nrefs, fell_back = run(vpn, steps)
                        walks += 1
                        measured_cycles += cycles
                        refs += nrefs
                        if fell_back:
                            fallbacks += 1
                        position = 0
                        for tag, latency in steps:
                            position += 1
                            bucket = step_cycles.setdefault(
                                "%02d:%s" % (position, tag), [0.0, 0])
                            bucket[0] += latency
                            bucket[1] += 1
    finally:
        if gc_was_enabled:
            gc.enable()

    stats.walks = walks
    stats.total_cycles = measured_cycles
    stats.ref_count = refs if record_refs else 0
    stats.fallbacks = fallbacks

    for finalize in finalizers:
        finalize()
    all_cycles = warm_cycles + measured_cycles
    all_fallbacks = warm_fallbacks + fallbacks
    for target in (walker,) + tuple(spec.extra_walkers):
        target.walks += total
        target.total_cycles += all_cycles
        target.fallbacks += all_fallbacks
    return stats
