"""Measured-baseline calibration data for the §5 performance model.

The paper's model is

    T_target = O_measured_vanilla * (O_sim_target / O_sim_vanilla) + T_ideal

where ``O_measured_vanilla`` (baseline page-walk overhead) and ``T_ideal``
(execution time under a perfect TLB) come from Perf measurements on a real
Xeon Gold 6138. We have no such machine, so this module ships the
*measured inputs* as a calibration table synthesized from the numbers the
paper itself reports (DESIGN.md §2):

* average page-walk overhead of 21% native / 43% virtualized /
  48% nested, 28% under shadow paging (§2.2);
* virtualization slows execution 1.46x, nested virtualization 4.13x
  (13.9x for GUPS — Figure 4), shadow paging 1.39x over nested paging;
* with THP the walk overheads drop (the paper's app-level speedups of
  1.20x @1.58x walk speedup without THP and 1.14x @1.65x with THP pin the
  effective walk fractions near 43% and 31%).

Per-workload variation follows each benchmark's translation intensity
(GUPS most walk-bound; Graph500/Canneal cache-friendlier), normalized so
the geometric means match the paper's aggregates. Everything downstream
(Figures 4, 14, 15, 17) consumes only this table plus *simulated* walk
overheads, exactly like the paper's methodology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Arbitrary absolute scale: ideal (perfect-TLB) native execution time.
#: Only ratios matter anywhere downstream.
IDEAL_SECONDS = 1000.0


@dataclass(frozen=True)
class EnvProfile:
    """Measured fractions for one (workload, environment) pair.

    ``pw_frac``: page-table-walk share of total execution time.
    ``other_frac``: non-walk virtualization overhead share of total time —
    VM exits for shadow-paging synchronization (zero for native and for
    hardware-assisted nested paging).
    """

    pw_frac: float
    pw_frac_thp: float
    other_frac: float = 0.0
    other_frac_thp: float = 0.0

    def total_seconds(self, ideal: float = IDEAL_SECONDS, thp: bool = False) -> float:
        pw = self.pw_frac_thp if thp else self.pw_frac
        other = self.other_frac_thp if thp else self.other_frac
        busy = 1.0 - pw - other
        if busy <= 0:
            raise ValueError("overhead fractions exceed 100% of execution")
        return ideal / busy

    def pw_seconds(self, ideal: float = IDEAL_SECONDS, thp: bool = False) -> float:
        pw = self.pw_frac_thp if thp else self.pw_frac
        return self.total_seconds(ideal, thp) * pw

    def other_seconds(self, ideal: float = IDEAL_SECONDS, thp: bool = False) -> float:
        other = self.other_frac_thp if thp else self.other_frac
        return self.total_seconds(ideal, thp) * other


@dataclass(frozen=True)
class WorkloadProfile:
    """All four measured environments for one workload (Figure 4)."""

    native: EnvProfile
    virt_npt: EnvProfile
    virt_spt: EnvProfile
    nested: EnvProfile

    def env(self, name: str) -> EnvProfile:
        return {
            "native": self.native,
            "virt_npt": self.virt_npt,
            "virt_spt": self.virt_spt,
            "nested": self.nested,
        }[name]


def _profile(native_pw, virt_pw, spt_pw, spt_other, nested_pw, nested_other):
    """Build a WorkloadProfile; THP variants scale the walk share down."""
    return WorkloadProfile(
        native=EnvProfile(native_pw, native_pw * 0.70),
        virt_npt=EnvProfile(virt_pw, virt_pw * 0.72),
        virt_spt=EnvProfile(spt_pw, spt_pw * 0.75, spt_other, spt_other * 0.9),
        nested=EnvProfile(nested_pw, nested_pw * 0.73,
                          nested_other, nested_other * 0.8),
    )


#: The calibration table. Columns: native pw, virt-nPT pw, virt-sPT pw,
#: virt-sPT exit overhead, nested pw, nested shadow-sync overhead — all as
#: fractions of that environment's total execution time.
CALIBRATION: Dict[str, WorkloadProfile] = {
    # GUPS: pure random access, the most translation-bound workload; its
    # nested slowdown is the paper's 13.9x outlier.
    "GUPS": _profile(0.33, 0.55, 0.36, 0.38, 0.58, 0.372),
    "Redis": _profile(0.27, 0.50, 0.33, 0.30, 0.52, 0.30),
    "BTree": _profile(0.26, 0.48, 0.31, 0.29, 0.50, 0.27),
    "XSBench": _profile(0.19, 0.40, 0.26, 0.27, 0.45, 0.24),
    "Memcached": _profile(0.20, 0.40, 0.26, 0.25, 0.45, 0.22),
    "Canneal": _profile(0.16, 0.38, 0.25, 0.26, 0.42, 0.22),
    "Graph500": _profile(0.12, 0.30, 0.20, 0.28, 0.42, 0.24),
}


def profile(workload: str) -> WorkloadProfile:
    if workload not in CALIBRATION:
        raise KeyError(f"no calibration for workload {workload!r}")
    return CALIBRATION[workload]
