"""Trace-driven simulation: TLB filtering + per-design walk replay.

Stage 1 runs a workload's address trace through the two-level TLB
hierarchy once, producing the stream of TLB-miss addresses (with the page
size each translation would install). Stage 2 replays that *same* miss
stream through each translation design's walker, so designs are compared
on identical inputs — the structure of the paper's DynamoRIO methodology
(§5) at simulation scale.

Stage 1 has two engines. The default, :mod:`repro.sim.tlb_vec`, batches
the per-reference work with NumPy and runs a chunked state machine over
flat set/way arrays; the scalar :class:`~repro.hw.tlb.TLBHierarchy` path
is kept as the reference oracle (``engine="scalar"``). The two are
bit-identical by construction and by test
(``tests/test_tlb_vec.py``).

Stage 2 mirrors that structure: :func:`replay_walks` is the scalar
oracle and dispatcher, and :mod:`repro.sim.walk_vec` is the batched
engine for the designs with a planable walk (radix and DMT/pvDMT;
``tests/test_walk_vec.py`` pins bit-identity). ``engine="auto"`` picks
the batched path whenever the walker supports it.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.arch import PageSize
from repro.hw.config import MachineConfig
from repro.hw.tlb import TLBHierarchy
from repro.obs import metrics
from repro.obs import trace as obs_trace
from repro.sim import tlb_vec
from repro.translation.base import Walker

SizeLookup = Callable[[int], PageSize]

#: Page size is uniform within a 2 MB region, so classification memoizes
#: per 2 MB "unit" (VA >> this shift).
_UNIT_SHIFT = int(PageSize.SIZE_2M)


@dataclass
class TLBFilterResult:
    """Stage-1 output: which references missed the TLB hierarchy.

    ``miss_vas`` is an int64 ndarray (the replay fast path and the
    vectorized engine hand arrays around without copying).
    """

    miss_vas: np.ndarray
    total_refs: int

    def __post_init__(self):
        self.miss_vas = np.asarray(self.miss_vas, dtype=np.int64)

    @property
    def miss_count(self) -> int:
        return len(self.miss_vas)

    @property
    def miss_rate(self) -> float:
        return self.miss_count / self.total_refs if self.total_refs else 0.0


class SizeClassifier:
    """Page size of the translation covering a VA (memoized per 2 MB unit).

    The TLB needs the installed translation's page size; under THP a VMA
    mixes 4 KB and 2 MB pages. Page size is uniform within a 2 MB region
    in this simulator, so memoization is exact — and the batch interface
    can classify whole traces with one page-table lookup per unique
    region, sharing the same memo dict as the scalar calls.
    """

    def __init__(self, page_table):
        self._page_table = page_table
        self._cache: Dict[int, PageSize] = {}

    def __call__(self, va: int) -> PageSize:
        size = self._cache.get(va >> _UNIT_SHIFT)
        if size is None:
            return self._classify(va >> _UNIT_SHIFT, va)
        return size

    def _classify(self, unit: int, va: int) -> PageSize:
        found = self._page_table.lookup(va)
        size = found[2] if found is not None else PageSize.SIZE_4K
        self._cache[unit] = size
        return size

    def batch_units(self, units: np.ndarray) -> np.ndarray:
        """Page-size *shifts* for an array of unique 2 MB unit indices."""
        cache = self._cache
        shifts = np.empty(len(units), dtype=np.int64)
        for pos, unit in enumerate(units.tolist()):
            size = cache.get(unit)
            if size is None:
                size = self._classify(unit, unit << _UNIT_SHIFT)
            shifts[pos] = int(size)
        return shifts

    def batch(self, vas: np.ndarray) -> np.ndarray:
        """Per-reference page-size shifts for a whole trace."""
        return tlb_vec.classify_trace(
            np.asarray(vas, dtype=np.int64), self
        )


def make_size_lookup(page_table) -> SizeClassifier:
    """Build the (batch-capable) size classifier for a page table."""
    return SizeClassifier(page_table)


def tlb_accept_rates(machine: MachineConfig, ws_bytes: int,
                     paper_ws_bytes: int) -> Dict[PageSize, float]:
    """Per-page-size TLB hit-acceptance rates for a scaled working set.

    A TLB entry of page size ``p`` covers ``entries * p`` bytes; its raw
    hit rate against a working set is roughly min(1, reach/ws). The
    acceptance rate restores the paper-scale hit rate (DESIGN.md §5).
    """
    entries = machine.l2_stlb.entries
    rates = {}
    for size in PageSize:
        reach = entries * size.bytes
        paper_hit = min(1.0, reach / paper_ws_bytes)
        sim_hit = min(1.0, reach / ws_bytes)
        rates[size] = paper_hit / sim_hit if sim_hit else 1.0
    return rates


def tlb_filter_scalar(
    trace: np.ndarray,
    machine: MachineConfig,
    size_lookup: SizeLookup,
    asid: int = 1,
    accept_rates: Optional[Dict[PageSize, float]] = None,
) -> TLBFilterResult:
    """Reference oracle: the original per-reference scalar TLB model."""
    tlbs = TLBHierarchy.from_machine(machine, accept_rates)
    misses: List[int] = []
    lookup = tlbs.lookup
    fill = tlbs.fill
    for va in trace.tolist():
        size = size_lookup(va)
        if not lookup(asid, va, size):
            misses.append(va)
            fill(asid, va, size)
    return TLBFilterResult(np.asarray(misses, dtype=np.int64), len(trace))


def tlb_filter(
    trace: np.ndarray,
    machine: MachineConfig,
    size_lookup: SizeLookup,
    asid: int = 1,
    accept_rates: Optional[Dict[PageSize, float]] = None,
    engine: str = "vec",
) -> TLBFilterResult:
    """Run stage 1: return the TLB-miss address stream.

    ``engine="vec"`` (default) uses the batched NumPy engine;
    ``engine="scalar"`` runs the dict-backed oracle. Both emit the same
    miss stream bit for bit.
    """
    with obs_trace.span("stage1.tlb_filter", engine=engine,
                        refs=len(trace)) as sp:
        if engine == "vec":
            misses = tlb_vec.filter_misses(trace, machine, size_lookup,
                                           asid=asid,
                                           accept_rates=accept_rates)
            result = TLBFilterResult(misses, len(trace))
        elif engine == "scalar":
            result = tlb_filter_scalar(trace, machine, size_lookup,
                                       asid=asid, accept_rates=accept_rates)
        else:
            raise ValueError(f"unknown stage-1 engine {engine!r} "
                             "(expected 'vec' or 'scalar')")
        if sp is not None:
            sp["misses"] = result.miss_count
        return result


@dataclass
class WalkStats:
    """Stage-2 output for one design."""

    design: str
    walks: int = 0
    total_cycles: int = 0
    fallbacks: int = 0
    ref_count: int = 0
    #: per-position mean breakdown for Figure 16 (tag -> [sum, count])
    step_cycles: Dict[str, List[float]] = field(default_factory=dict)
    #: Which stage-2 engine produced these stats ("scalar" or "vec").
    #: Telemetry only — excluded from equality so parity tests can
    #: compare vec and scalar WalkStats directly.
    engine: str = field(default="scalar", compare=False)
    #: Why ``engine="auto"`` fell back to the scalar loop (the
    #: :func:`repro.sim.walk_vec.unsupported_reason` string), or None
    #: when the batched path ran or scalar was requested explicitly.
    #: Telemetry only — excluded from equality like ``engine``.
    fallback_reason: Optional[str] = field(default=None, compare=False)

    @property
    def mean_latency(self) -> float:
        return self.total_cycles / self.walks if self.walks else 0.0

    @property
    def fallback_rate(self) -> float:
        return self.fallbacks / self.walks if self.walks else 0.0

    def overhead_cycles(self) -> int:
        """Total translation overhead O_sim of §5's model."""
        return self.total_cycles

    def step_breakdown(self) -> Dict[str, float]:
        """Mean cycles per step tag (only populated with record_refs)."""
        return {
            tag: total / count
            for tag, (total, count) in self.step_cycles.items()
        }


#: Misses converted per chunk by the scalar replay loop: slices convert
#: through ``.tolist()`` piecewise instead of materializing the whole
#: miss stream as one Python list up front.
_REPLAY_CHUNK = 1 << 16


def _chunked_ints(vas: np.ndarray, start: int, stop: int):
    """Yield ``vas[start:stop]`` as Python ints, one chunk at a time."""
    for lo in range(start, stop, _REPLAY_CHUNK):
        yield from vas[lo:min(lo + _REPLAY_CHUNK, stop)].tolist()


def replay_walks(
    walker: Walker,
    miss_vas: Union[np.ndarray, Sequence[int]],
    warmup_fraction: float = 0.1,
    collect_steps: bool = False,
    engine: str = "scalar",
) -> WalkStats:
    """Run stage 2: replay the miss stream through one design.

    The first ``warmup_fraction`` of misses warm the PTE caches/PWCs and
    are excluded from the statistics (the paper's simulator similarly
    measures steady state over multi-billion-instruction traces). When
    ``collect_steps`` is off the loop keeps its counters in locals and
    allocates nothing per walk beyond what the walker itself returns.

    ``engine`` selects the stage-2 path: ``"scalar"`` (this loop, the
    reference oracle), ``"vec"`` (:mod:`repro.sim.walk_vec`, raising for
    walkers without a batched path), ``"native"``
    (:mod:`repro.sim.kernels`, the compiled chunk kernels — same raise,
    and ``WalkStats.fallback_reason`` records when the kernels ran as
    uncompiled Python because Numba is absent), or ``"auto"`` (native
    when the compiled backend is available and the walker supports it,
    else vec when supported, scalar otherwise). All paths are
    bit-identical on supported designs (``tests/test_walk_vec.py``).
    """
    if engine not in ("scalar", "vec", "native", "auto"):
        raise ValueError(f"unknown stage-2 engine {engine!r} "
                         "(expected 'scalar', 'vec', 'native' or 'auto')")
    fallback_reason: Optional[str] = None
    if engine != "scalar":
        from repro.sim import walk_vec
        fallback_reason = walk_vec.unsupported_reason(walker)
        if fallback_reason is None:
            from repro.sim.kernels import HAVE_NUMBA, replay_walks_native
            if engine == "native" or (engine == "auto" and HAVE_NUMBA):
                return replay_walks_native(
                    walker, miss_vas,
                    warmup_fraction=warmup_fraction,
                    collect_steps=collect_steps,
                )
            return walk_vec.replay_walks_vec(
                walker, miss_vas,
                warmup_fraction=warmup_fraction,
                collect_steps=collect_steps,
            )
        if engine in ("vec", "native"):
            raise ValueError(
                f"walker {walker.name!r} has no batched replay path: "
                f"{fallback_reason} (use engine='auto' or 'scalar')")
    vas = np.asarray(miss_vas, dtype=np.int64)
    stats = WalkStats(design=walker.name, fallback_reason=fallback_reason)
    total = len(vas)
    warmup = int(total * warmup_fraction)
    translate = walker.translate
    for va in _chunked_ints(vas, 0, warmup):
        translate(va)
    if not collect_steps:
        walks = total_cycles = ref_count = fallbacks = 0
        for va in _chunked_ints(vas, warmup, total):
            result = translate(va)
            walks += 1
            total_cycles += result.cycles
            ref_count += len(result.refs)
            if result.fallback:
                fallbacks += 1
        stats.walks = walks
        stats.total_cycles = total_cycles
        stats.ref_count = ref_count
        stats.fallbacks = fallbacks
        return stats
    for va in _chunked_ints(vas, warmup, total):
        result = translate(va)
        stats.walks += 1
        stats.total_cycles += result.cycles
        stats.ref_count += len(result.refs)
        if result.fallback:
            stats.fallbacks += 1
        if result.refs:
            # collapse parallel groups: one logical step per group
            seen_groups: Dict[int, str] = {}
            position = 0
            for ref in result.refs:
                if ref.group >= 0:
                    if ref.group in seen_groups:
                        continue
                    seen_groups[ref.group] = ref.tag
                position += 1
                key = f"{position:02d}:{ref.tag}"
                bucket = stats.step_cycles.setdefault(key, [0.0, 0])
                bucket[0] += ref.latency
                bucket[1] += 1
    return stats


def prepare_replay(
    walker: Walker,
    miss_vas: Union[np.ndarray, Sequence[int]],
    warmup_fraction: float = 0.1,
    engine: str = "scalar",
):
    """Split one cell's replay into ``(execute, threadable)``.

    The two-level sweep executor wants cell replays it can hand to
    worker threads, but only the native kernels are thread-safe once
    their sequential prepare has run (``nogil`` kernels over
    thread-private flat arrays; DESIGN.md §15). This mirrors
    :func:`replay_walks`'s engine dispatch:

    * native path applies → the order-dependent planning and
      ``array_view()`` checkout run *now*, on the calling thread
      (:func:`repro.sim.kernels.prepare_replay_native`), and the
      returned ``execute`` only drives kernels — ``threadable=True``;
    * every other path (scalar, vec, auto-fallback) → ``execute`` is
      the whole replay and must run on the calling thread in cell
      order — ``threadable=False`` — because vec planning mutates
      lazily populated structures shared across a simulation's cells.

    ``execute()`` returns the cell's :class:`WalkStats` either way.
    Step collection is not offered here (the sweep never asks for it);
    use :func:`replay_walks` directly for that.
    """
    if engine not in ("scalar", "vec", "native", "auto"):
        raise ValueError(f"unknown stage-2 engine {engine!r} "
                         "(expected 'scalar', 'vec', 'native' or 'auto')")
    if engine != "scalar":
        from repro.sim import walk_vec
        if walk_vec.unsupported_reason(walker) is None:
            from repro.sim.kernels import HAVE_NUMBA, prepare_replay_native
            if engine == "native" or (engine == "auto" and HAVE_NUMBA):
                prepared = prepare_replay_native(
                    walker, miss_vas, warmup_fraction=warmup_fraction)
                return prepared.execute, True

    def execute() -> WalkStats:
        return replay_walks(walker, miss_vas,
                            warmup_fraction=warmup_fraction, engine=engine)

    return execute, False


class Stage1Cache:
    """Sweep-wide stage-1 memo: trace + TLB-miss stream, computed once.

    Grid cells that share a stage-1 input signature — workload, scale,
    trace length, seed, THP mode, tree depth, filter engine — produce
    the same miss stream regardless of environment: the workload layout
    and trace are deterministic in the process address space, and the
    TLB filter sees only virtual addresses and page sizes
    (``tests/test_walk_vec.py`` pins the cross-environment identity).
    A sweep group shares one instance across its environments so the
    trace is generated and TLB-filtered once per (workload, config,
    THP) group instead of once per environment.

    With an :class:`~repro.sim.artifacts.ArtifactCache` attached the
    memo extends across processes and runs: a key absent from the
    in-memory dict is looked up on disk (stage ``"stage1"``, keyed by
    the same signature) before being recomputed, and fresh computations
    are persisted for the next run. The lookup order is memory, disk,
    build.

    ``fetch`` records telemetry: ``last_seconds`` is the stage-1 wall
    time of the entry served (the original compute time when reused)
    and ``last_reused`` whether it avoided a recompute; ``last_source``
    distinguishes ``"memo"`` / ``"disk"`` / ``"computed"``.
    """

    def __init__(self, artifacts=None):
        self._entries: Dict[Tuple, Tuple[TLBFilterResult, float]] = {}
        #: Optional :class:`~repro.sim.artifacts.ArtifactCache`.
        self.artifacts = artifacts
        self._computed = metrics.counter("stage1.computed")
        self._reused = metrics.counter("stage1.reused")
        self.last_seconds = 0.0
        self.last_reused = False
        self.last_source = "none"
        #: Set by a build that already persisted its own entry (the
        #: streaming pipeline commits a *segmented* stage-1 artifact as
        #: it spills miss segments); suppresses the monolithic
        #: ``store_array`` that would otherwise replace that manifest.
        self.last_persisted = False

    @property
    def computed(self) -> int:
        return self._computed.value

    @property
    def reused(self) -> int:
        return self._reused.value

    def fetch(self, key: Tuple,
              build: Callable[[], TLBFilterResult]) -> TLBFilterResult:
        entry = self._entries.get(key)
        if entry is not None:
            self._reused.inc()
            self.last_seconds = entry[1]
            self.last_reused = True
            self.last_source = "memo"
            return entry[0]
        if self.artifacts is not None:
            # mmap: workers replaying the same miss stream share the
            # cache file's pages instead of each materializing a copy.
            loaded = self.artifacts.load_array("stage1", list(key),
                                               mmap=True)
            if loaded is not None:
                miss_vas, meta = loaded
                result = TLBFilterResult(miss_vas,
                                         int(meta.get("total_refs", 0)))
                seconds = float(meta.get("seconds", 0.0))
                self._entries[key] = (result, seconds)
                self._reused.inc()
                self.last_seconds = seconds
                self.last_reused = True
                self.last_source = "disk"
                return result
        start = time.perf_counter()
        self.last_persisted = False
        result = build()
        seconds = time.perf_counter() - start
        self._entries[key] = (result, seconds)
        self._computed.inc()
        self.last_seconds = seconds
        self.last_reused = False
        self.last_source = "computed"
        if self.artifacts is not None and not self.last_persisted:
            self.artifacts.store_array(
                "stage1", list(key), result.miss_vas,
                {"total_refs": result.total_refs, "seconds": seconds})
        return result

    def mark_persisted(self) -> None:
        """Tell the in-flight ``fetch`` its build already hit the disk."""
        self.last_persisted = True


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of the positive entries of ``values``.

    Zero or negative entries cannot enter a geometric mean; silently
    dropping them would let one broken design stat inflate a summary
    unnoticed, so their presence raises a ``RuntimeWarning`` (they are
    still excluded, preserving the historical result).
    """
    raw = np.asarray(list(values), dtype=np.float64)
    arr = raw[raw > 0]
    if arr.size < raw.size:
        warnings.warn(
            f"geomean: discarding {raw.size - arr.size} non-positive "
            f"value(s) out of {raw.size}",
            RuntimeWarning, stacklevel=2,
        )
    if arr.size == 0:
        return 0.0
    return float(np.exp(np.mean(np.log(arr))))
