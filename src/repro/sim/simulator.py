"""Trace-driven simulation: TLB filtering + per-design walk replay.

Stage 1 runs a workload's address trace through the two-level TLB
hierarchy once, producing the stream of TLB-miss addresses (with the page
size each translation would install). Stage 2 replays that *same* miss
stream through each translation design's walker, so designs are compared
on identical inputs — the structure of the paper's DynamoRIO methodology
(§5) at simulation scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.arch import PageSize
from repro.hw.config import MachineConfig
from repro.hw.tlb import TLBHierarchy
from repro.translation.base import Walker

SizeLookup = Callable[[int], PageSize]


@dataclass
class TLBFilterResult:
    """Stage-1 output: which references missed the TLB hierarchy."""

    miss_vas: List[int]
    total_refs: int

    @property
    def miss_count(self) -> int:
        return len(self.miss_vas)

    @property
    def miss_rate(self) -> float:
        return self.miss_count / self.total_refs if self.total_refs else 0.0


def make_size_lookup(page_table) -> SizeLookup:
    """Page size of the translation covering a VA (memoized per 2 MB unit).

    The TLB needs the installed translation's page size; under THP a VMA
    mixes 4 KB and 2 MB pages. Page size is uniform within a 2 MB region
    in this simulator, so memoization is exact.
    """
    cache: Dict[int, PageSize] = {}

    def lookup(va: int) -> PageSize:
        key = va >> 21
        size = cache.get(key)
        if size is None:
            found = page_table.lookup(va)
            size = found[2] if found is not None else PageSize.SIZE_4K
            cache[key] = size
        return size

    return lookup


def tlb_accept_rates(machine: MachineConfig, ws_bytes: int,
                     paper_ws_bytes: int) -> Dict[PageSize, float]:
    """Per-page-size TLB hit-acceptance rates for a scaled working set.

    A TLB entry of page size ``p`` covers ``entries * p`` bytes; its raw
    hit rate against a working set is roughly min(1, reach/ws). The
    acceptance rate restores the paper-scale hit rate (DESIGN.md §5).
    """
    entries = machine.l2_stlb.entries
    rates = {}
    for size in PageSize:
        reach = entries * size.bytes
        paper_hit = min(1.0, reach / paper_ws_bytes)
        sim_hit = min(1.0, reach / ws_bytes)
        rates[size] = paper_hit / sim_hit if sim_hit else 1.0
    return rates


def tlb_filter(
    trace: np.ndarray,
    machine: MachineConfig,
    size_lookup: SizeLookup,
    asid: int = 1,
    accept_rates: Optional[Dict[PageSize, float]] = None,
) -> TLBFilterResult:
    """Run stage 1: return the TLB-miss address stream."""
    tlbs = TLBHierarchy.from_machine(machine, accept_rates)
    misses: List[int] = []
    lookup = tlbs.lookup
    fill = tlbs.fill
    for va in trace.tolist():
        size = size_lookup(va)
        if not lookup(asid, va, size):
            misses.append(va)
            fill(asid, va, size)
    return TLBFilterResult(misses, len(trace))


@dataclass
class WalkStats:
    """Stage-2 output for one design."""

    design: str
    walks: int = 0
    total_cycles: int = 0
    fallbacks: int = 0
    ref_count: int = 0
    #: per-position mean breakdown for Figure 16 (tag -> [sum, count])
    step_cycles: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def mean_latency(self) -> float:
        return self.total_cycles / self.walks if self.walks else 0.0

    @property
    def fallback_rate(self) -> float:
        return self.fallbacks / self.walks if self.walks else 0.0

    def overhead_cycles(self) -> int:
        """Total translation overhead O_sim of §5's model."""
        return self.total_cycles

    def step_breakdown(self) -> Dict[str, float]:
        """Mean cycles per step tag (only populated with record_refs)."""
        return {
            tag: total / count
            for tag, (total, count) in self.step_cycles.items()
        }


def replay_walks(
    walker: Walker,
    miss_vas: List[int],
    warmup_fraction: float = 0.1,
    collect_steps: bool = False,
) -> WalkStats:
    """Run stage 2: replay the miss stream through one design.

    The first ``warmup_fraction`` of misses warm the PTE caches/PWCs and
    are excluded from the statistics (the paper's simulator similarly
    measures steady state over multi-billion-instruction traces).
    """
    stats = WalkStats(design=walker.name)
    warmup = int(len(miss_vas) * warmup_fraction)
    for index, va in enumerate(miss_vas):
        result = walker.translate(va)
        if index < warmup:
            continue
        stats.walks += 1
        stats.total_cycles += result.cycles
        stats.ref_count += len(result.refs)
        if result.fallback:
            stats.fallbacks += 1
        if collect_steps and result.refs:
            # collapse parallel groups: one logical step per group
            seen_groups: Dict[int, str] = {}
            position = 0
            for ref in result.refs:
                if ref.group >= 0:
                    if ref.group in seen_groups:
                        continue
                    seen_groups[ref.group] = ref.tag
                position += 1
                key = f"{position:02d}:{ref.tag}"
                bucket = stats.step_cycles.setdefault(key, [0.0, 0])
                bucket[0] += ref.latency
                bucket[1] += 1
    return stats


def geomean(values: List[float]) -> float:
    arr = np.asarray([v for v in values if v > 0], dtype=np.float64)
    if arr.size == 0:
        return 0.0
    return float(np.exp(np.mean(np.log(arr))))
