"""Content-addressed on-disk cache for cross-run simulation artifacts.

The in-process :class:`~repro.sim.simulator.Stage1Cache` already keeps a
sweep group from recomputing its trace and TLB-miss stream, but the memo
dies with the worker. This module persists those artifacts across
processes and runs: an :class:`ArtifactCache` stores int64 arrays (the
stage-0 address trace, the stage-1 miss stream) under a content address
— the SHA-256 digest of a canonical-JSON payload combining a schema
version, the artifact *stage*, and the stage's key material (workload
name, scale, nrefs, seed, THP mode, tree depth, ...). Anything that can
change the bytes of the artifact must be in the key; the digest is then
stable across interpreter invocations, ``PYTHONHASHSEED`` values, and
machines (``tests/test_artifacts.py`` pins this with a subprocess).

Each monolithic artifact is two files in the cache directory,
``<digest>.npy`` (the array, ``allow_pickle=False`` both ways) and
``<digest>.json`` (the key material echoed back, plus caller metadata
such as the original compute time). Writes go to a per-process temp
name and ``os.replace`` into place, so concurrent sweep workers sharing
one directory either see a complete artifact or none. Loads verify the
sidecar against the requested stage/key/schema; a mismatch (digest
collision, stale schema) or an unreadable payload (corruption, torn
write) **evicts** the entry and reports a miss, so the caller simply
recomputes and re-stores.

**Segmented artifacts** (the streaming pipeline, DESIGN.md §13) spread
one array across ``<digest>.seg<k>.npy`` chunk files plus a JSON
manifest in the same ``<digest>.json`` slot, listing each segment's
file, row count and SHA-256. Segments land before the manifest, so a
reader never sees a manifest pointing at absent segments; a writer that
dies mid-stream leaves only orphan segment files that the next writer
overwrites. Reads verify each segment digest as it is consumed; a
corrupt segment evicts the *whole* entry — manifest and every segment —
because a partially-valid chunk sequence is useless. ``open_segments``
is the constant-memory path (one verified, memmap-backed segment at a
time); ``load_array`` on a segmented entry assembles the segments into
one preallocated array (transient footprint: result + one segment).

**Result entries** (the stage-2 result cache, DESIGN.md §15) are pure
JSON payloads — a replayed cell's WalkStats, step breakdown, and
walker/memsys end-state counters — stored in the ``<digest>.json``
slot alone (no ``.npy``). The sidecar records a SHA-256 over the
payload's canonical JSON; ``load_result`` recomputes it on every read
and evicts on mismatch, so a torn or hand-edited payload is recomputed
rather than served. Writes are atomic exactly like array entries.

Telemetry: counters ``artifacts.hits`` / ``artifacts.misses`` /
``artifacts.evictions`` / ``artifacts.bytes_read`` /
``artifacts.bytes_written`` (all entries), the segmented-entry
breakdowns ``artifacts.seg_hits`` / ``artifacts.seg_misses`` /
``artifacts.seg_evictions``, the result-entry breakdowns
``artifacts.result_hits`` / ``artifacts.result_misses``, and
``artifact.load`` / ``artifact.store`` trace spans.
"""

from __future__ import annotations

import glob
import hashlib
import json
import os
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.obs import metrics
from repro.obs import trace as obs_trace

#: Bump when the digest payload or the on-disk layout changes shape;
#: entries written under another schema are evicted on load.
SCHEMA_VERSION = 1


class CorruptSegment(Exception):
    """A segment failed digest verification; the entry has been evicted."""


def digest(stage: str, key) -> str:
    """Content address of an artifact: SHA-256 over canonical JSON.

    ``key`` must be JSON-serializable (the stage-1 signature tuples of
    primitives qualify; tuples canonicalize to lists). The builtin
    ``hash()`` is banned here twice over — dmtlint L2 and the fact that
    it is salted per process, which is exactly what a cross-run cache
    cannot tolerate.
    """
    payload = json.dumps(
        {"schema": SCHEMA_VERSION, "stage": stage, "key": key},
        sort_keys=True, separators=(",", ":"), ensure_ascii=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _canonical(key):
    """The key as it reads back from the JSON sidecar (tuples -> lists)."""
    return json.loads(json.dumps(key))


def _file_sha256(path: str) -> str:
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            hasher.update(block)
    return hasher.hexdigest()


class SegmentReader:
    """Iterate one segmented artifact, verifying each segment digest.

    Yields one array per segment (memmap-backed when ``mmap=True``), in
    manifest order. A segment whose bytes no longer match its recorded
    SHA-256 raises :class:`CorruptSegment` after evicting the whole
    entry — manifest plus every segment — through the owning cache.
    """

    def __init__(self, cache: "ArtifactCache", key_digest: str,
                 manifest: Dict, mmap: bool = True):
        self._cache = cache
        self._digest = key_digest
        self._segments: List[Dict] = manifest.get("segments", [])
        self._mmap = mmap
        self.meta: Dict = manifest.get("meta", {})
        self.total_rows = int(sum(seg["rows"] for seg in self._segments))

    def __len__(self) -> int:
        return len(self._segments)

    @property
    def payload_bytes(self) -> int:
        return sum(os.path.getsize(os.path.join(self._cache.root,
                                                seg["file"]))
                   for seg in self._segments)

    def __iter__(self) -> Iterator[np.ndarray]:
        for seg in self._segments:
            path = os.path.join(self._cache.root, seg["file"])
            try:
                if _file_sha256(path) != seg["sha256"]:
                    raise ValueError("segment digest mismatch")
                array = np.load(path, allow_pickle=False,
                                mmap_mode="r" if self._mmap else None)
                if len(array) != int(seg["rows"]):
                    raise ValueError("segment row count mismatch")
            except (OSError, ValueError, EOFError) as exc:
                self._cache.evict(self._digest)
                raise CorruptSegment(
                    f"segment {seg.get('file')} of {self._digest[:12]} "
                    f"is corrupt: {exc}") from exc
            yield array

    def concatenated(self) -> np.ndarray:
        """All segments assembled into one preallocated array.

        Peak transient memory is the result plus one segment (plus the
        page-cache-backed mmap of the segment being copied).
        """
        out = None
        pos = 0
        for seg in self:
            if out is None:
                out = np.empty((self.total_rows,) + seg.shape[1:],
                               dtype=seg.dtype)
            out[pos:pos + len(seg)] = seg
            pos += len(seg)
        if out is None:
            out = np.empty(0, dtype=np.int64)
        return out


class SegmentWriter:
    """Append-only writer for one segmented artifact.

    ``append`` lands each chunk as ``<digest>.seg<k>.npy`` (temp name +
    ``os.replace``); ``commit`` writes the manifest last, atomically —
    only then does the entry exist for readers. ``abort`` removes the
    segments written so far. Two workers racing on the same digest
    write identical content for identical keys, so lost races are
    harmless, exactly as for monolithic entries.
    """

    def __init__(self, cache: "ArtifactCache", stage: str, key,
                 meta: Optional[Dict] = None):
        self._cache = cache
        self._stage = stage
        self._key = key
        self._meta = dict(meta or {})
        self.key_digest = digest(stage, key)
        self._segments: List[Dict] = []
        self._bytes = 0
        self._committed = False

    def append(self, array: np.ndarray) -> None:
        if self._committed:
            raise RuntimeError("segment writer already committed")
        array = np.asarray(array)
        name = f"{self.key_digest}.seg{len(self._segments)}.npy"
        path = os.path.join(self._cache.root, name)
        tmp = path + f".tmp{os.getpid()}"
        try:
            with open(tmp, "wb") as handle:
                np.save(handle, array, allow_pickle=False)
            sha = _file_sha256(tmp)
            self._bytes += os.path.getsize(tmp)
            os.replace(tmp, path)
        finally:
            try:
                os.remove(tmp)
            except OSError:
                pass
        self._segments.append({"file": name, "rows": int(len(array)),
                               "sha256": sha})

    def commit(self, extra_meta: Optional[Dict] = None) -> str:
        """Write the manifest; the entry becomes visible to readers."""
        meta = dict(self._meta)
        meta.update(extra_meta or {})
        manifest = {
            "schema": SCHEMA_VERSION, "stage": self._stage,
            "key": _canonical(self._key), "segmented": True,
            "total_rows": int(sum(s["rows"] for s in self._segments)),
            "segments": self._segments, "meta": meta,
        }
        meta_path = os.path.join(self._cache.root,
                                 self.key_digest + ".json")
        tmp = meta_path + f".tmp{os.getpid()}"
        with obs_trace.span("artifact.store", stage=self._stage,
                            digest=self.key_digest[:12],
                            segmented=True) as sp:
            try:
                with open(tmp, "w", encoding="utf-8") as handle:
                    json.dump(manifest, handle, sort_keys=True)
                    handle.write("\n")
                self._bytes += os.path.getsize(tmp)
                os.replace(tmp, meta_path)
            finally:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
            self._cache.record_write(self._bytes)
            if sp is not None:
                sp["bytes"] = self._bytes
                sp["segments"] = len(self._segments)
        self._committed = True
        return self.key_digest

    def abort(self) -> None:
        """Remove the segments written so far (no manifest was written)."""
        for seg in self._segments:
            try:
                os.remove(os.path.join(self._cache.root, seg["file"]))
            except OSError:
                pass
        self._segments = []

    def reader(self, mmap: bool = True) -> SegmentReader:
        """A reader over the just-committed entry.

        Built directly from this writer's manifest rather than through
        :meth:`ArtifactCache.open_segments`, so re-reading what we just
        wrote does not inflate the cache's hit counters.
        """
        if not self._committed:
            raise RuntimeError("segment writer not committed yet")
        manifest = {"segments": self._segments, "meta": self._meta}
        return SegmentReader(self._cache, self.key_digest, manifest,
                             mmap=mmap)


class ArtifactCache:
    """One cache directory of content-addressed simulation artifacts."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._hits = metrics.counter("artifacts.hits")
        self._misses = metrics.counter("artifacts.misses")
        self._evictions = metrics.counter("artifacts.evictions")
        self._bytes_read = metrics.counter("artifacts.bytes_read")
        self._bytes_written = metrics.counter("artifacts.bytes_written")
        self._seg_hits = metrics.counter("artifacts.seg_hits")
        self._seg_misses = metrics.counter("artifacts.seg_misses")
        self._seg_evictions = metrics.counter("artifacts.seg_evictions")
        self._result_hits = metrics.counter("artifacts.result_hits")
        self._result_misses = metrics.counter("artifacts.result_misses")

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    @property
    def seg_hits(self) -> int:
        return self._seg_hits.value

    @property
    def seg_misses(self) -> int:
        return self._seg_misses.value

    @property
    def seg_evictions(self) -> int:
        return self._seg_evictions.value

    @property
    def result_hits(self) -> int:
        return self._result_hits.value

    @property
    def result_misses(self) -> int:
        return self._result_misses.value

    def record_write(self, nbytes: int) -> None:
        self._bytes_written.inc(nbytes)

    def _paths(self, key_digest: str) -> Tuple[str, str]:
        return (os.path.join(self.root, key_digest + ".npy"),
                os.path.join(self.root, key_digest + ".json"))

    def evict(self, key_digest: str) -> None:
        """Drop an entry — payload, sidecar, and *all* of its segments
        (missing files are fine — a concurrent worker may have evicted
        or replaced it first). A segmented entry with one corrupt
        segment is useless as a whole, so eviction is all-or-nothing."""
        self._evictions.inc()
        paths = list(self._paths(key_digest))
        segment_files = glob.glob(
            os.path.join(glob.escape(self.root), key_digest + ".seg*"))
        if segment_files:
            self._seg_evictions.inc()
            paths += segment_files
        for path in paths:
            try:
                os.remove(path)
            except OSError:
                pass

    def _read_manifest(self, stage: str, key,
                       key_digest: str) -> Optional[Dict]:
        """The validated sidecar/manifest, or None (entry evicted on
        mismatch, left alone when simply absent)."""
        _npy_path, meta_path = self._paths(key_digest)
        try:
            with open(meta_path, encoding="utf-8") as handle:
                sidecar = json.load(handle)
        except (OSError, json.JSONDecodeError):
            if os.path.exists(meta_path):
                self.evict(key_digest)
            return None
        ok = (sidecar.get("schema") == SCHEMA_VERSION
              and sidecar.get("stage") == stage
              and sidecar.get("key") == _canonical(key))
        if not ok:
            self.evict(key_digest)
            return None
        return sidecar

    def segment_writer(self, stage: str, key,
                       meta: Optional[Dict] = None) -> SegmentWriter:
        """A writer that streams ``(stage, key)`` to disk chunk-by-chunk."""
        return SegmentWriter(self, stage, key, meta=meta)

    def open_segments(self, stage: str, key,
                      mmap: bool = True) -> Optional[SegmentReader]:
        """A verified segment iterator for ``(stage, key)``, or None.

        The constant-memory read path: segments are verified and
        yielded one at a time. Only segmented entries qualify; a
        monolithic entry under the same key reports None (use
        :meth:`load_array`). Iteration may raise
        :class:`CorruptSegment`, after evicting the whole entry.
        """
        key_digest = digest(stage, key)
        manifest = self._read_manifest(stage, key, key_digest)
        if manifest is None or not manifest.get("segmented"):
            self._misses.inc()
            self._seg_misses.inc()
            return None
        self._hits.inc()
        self._seg_hits.inc()
        return SegmentReader(self, key_digest, manifest, mmap=mmap)

    def load_array(self, stage: str, key,
                   mmap: bool = False) -> Optional[Tuple[np.ndarray, Dict]]:
        """The stored ``(array, meta)`` for ``(stage, key)``, or None.

        None covers both a plain miss and a corrupt/mismatched entry
        (which is evicted on the way out) — the caller's response is
        the same: compute and :meth:`store_array`.

        With ``mmap=True`` a monolithic payload comes back as a
        read-only ``np.memmap`` over the cache file instead of a heap
        copy: sweep workers sharing one cache directory then share the
        trace and miss-stream pages through the OS page cache
        (zero-copy transfer), and ``bytes_read`` counts the mapped
        extent, not bytes actually faulted in. A segmented entry is
        *assembled* into one heap array either way (the segments are
        mmapped while copying); use :meth:`open_segments` to consume it
        without materializing.
        """
        key_digest = digest(stage, key)
        npy_path, meta_path = self._paths(key_digest)
        with obs_trace.span("artifact.load", stage=stage,
                            digest=key_digest[:12]) as sp:
            sidecar = self._read_manifest(stage, key, key_digest)
            segmented = bool(sidecar and sidecar.get("segmented"))
            try:
                if sidecar is None:
                    raise ValueError("no valid sidecar")
                if segmented:
                    reader = SegmentReader(self, key_digest, sidecar,
                                           mmap=True)
                    nbytes = reader.payload_bytes
                    array = reader.concatenated()
                    nbytes += os.path.getsize(meta_path)
                else:
                    array = np.load(npy_path, allow_pickle=False,
                                    mmap_mode="r" if mmap else None)
                    nbytes = (os.path.getsize(npy_path)
                              + os.path.getsize(meta_path))
            except (OSError, ValueError, EOFError, CorruptSegment) as exc:
                # missing entry, torn write, corrupt payload or segment,
                # stale schema, or a digest collision: treat all as a
                # miss (CorruptSegment already evicted the whole entry)
                if not isinstance(exc, CorruptSegment) and (
                        os.path.exists(npy_path)
                        or os.path.exists(meta_path)):
                    self.evict(key_digest)
                self._misses.inc()
                if segmented:
                    self._seg_misses.inc()
                if sp is not None:
                    sp["hit"] = False
                return None
            self._hits.inc()
            if segmented:
                self._seg_hits.inc()
            self._bytes_read.inc(nbytes)
            if sp is not None:
                sp["hit"] = True
                sp["bytes"] = nbytes
                sp["segmented"] = segmented
            return array, sidecar.get("meta", {})

    def load_result(self, stage: str, key) -> Optional[Dict]:
        """The stored JSON result payload for ``(stage, key)``, or None.

        Verify-on-load: the payload's canonical-JSON SHA-256 is
        recomputed and compared against the digest recorded at store
        time; a mismatch (torn write, bit rot, hand edit) evicts the
        entry and reports a miss, so the caller recomputes — exactly
        the array-entry contract, applied to JSON payloads.
        """
        key_digest = digest(stage, key)
        _npy_path, meta_path = self._paths(key_digest)
        with obs_trace.span("artifact.load", stage=stage,
                            digest=key_digest[:12], result=True) as sp:
            sidecar = self._read_manifest(stage, key, key_digest)
            payload = sidecar.get("payload") if sidecar else None
            if payload is not None:
                body = json.dumps(payload, sort_keys=True,
                                  separators=(",", ":"), ensure_ascii=True)
                recorded = sidecar.get("payload_sha256")
                checksum = hashlib.sha256(body.encode("utf-8")).hexdigest()
                if checksum != recorded:
                    self.evict(key_digest)
                    payload = None
            elif sidecar is not None:
                # a validated sidecar with no payload is some other
                # entry kind that collided on stage/key: evict it
                self.evict(key_digest)
            if payload is None:
                self._misses.inc()
                self._result_misses.inc()
                if sp is not None:
                    sp["hit"] = False
                return None
            self._hits.inc()
            self._result_hits.inc()
            self._bytes_read.inc(os.path.getsize(meta_path))
            if sp is not None:
                sp["hit"] = True
            return payload

    def store_result(self, stage: str, key, payload: Dict,
                     meta: Optional[Dict] = None) -> str:
        """Persist a JSON ``payload`` under ``(stage, key)``; returns digest.

        The payload is canonicalized (tuples -> lists) so the digest
        recorded here matches what :meth:`load_result` recomputes after
        a JSON round trip. Atomic: temp name + ``os.replace``.
        """
        key_digest = digest(stage, key)
        _npy_path, meta_path = self._paths(key_digest)
        body = json.dumps(payload, sort_keys=True,
                          separators=(",", ":"), ensure_ascii=True)
        sidecar = {
            "schema": SCHEMA_VERSION, "stage": stage,
            "key": _canonical(key), "result": True,
            "payload": json.loads(body),
            "payload_sha256": hashlib.sha256(body.encode("utf-8")).hexdigest(),
            "meta": dict(meta or {}),
        }
        with obs_trace.span("artifact.store", stage=stage,
                            digest=key_digest[:12], result=True) as sp:
            tmp = meta_path + f".tmp{os.getpid()}"
            try:
                with open(tmp, "w", encoding="utf-8") as handle:
                    json.dump(sidecar, handle, sort_keys=True)
                    handle.write("\n")
                nbytes = os.path.getsize(tmp)
                os.replace(tmp, meta_path)
            finally:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
            self._bytes_written.inc(nbytes)
            if sp is not None:
                sp["bytes"] = nbytes
        return key_digest

    def store_array(self, stage: str, key, array: np.ndarray,
                    meta: Optional[Dict] = None) -> str:
        """Persist ``array`` (plus caller ``meta``) under ``(stage, key)``.

        Returns the digest. The payload lands before the sidecar and
        both move into place with ``os.replace``, so a reader never
        sees a sidecar whose payload is absent or half-written; a lost
        race with another writer of the same digest is harmless (both
        wrote identical content for identical keys).
        """
        key_digest = digest(stage, key)
        npy_path, meta_path = self._paths(key_digest)
        sidecar = {"schema": SCHEMA_VERSION, "stage": stage,
                   "key": _canonical(key), "meta": dict(meta or {})}
        with obs_trace.span("artifact.store", stage=stage,
                            digest=key_digest[:12]) as sp:
            suffix = f".tmp{os.getpid()}"
            tmp_npy, tmp_meta = npy_path + suffix, meta_path + suffix
            try:
                with open(tmp_npy, "wb") as handle:
                    np.save(handle, np.asarray(array), allow_pickle=False)
                with open(tmp_meta, "w", encoding="utf-8") as handle:
                    json.dump(sidecar, handle, sort_keys=True)
                    handle.write("\n")
                nbytes = (os.path.getsize(tmp_npy)
                          + os.path.getsize(tmp_meta))
                os.replace(tmp_npy, npy_path)
                os.replace(tmp_meta, meta_path)
            finally:
                for tmp in (tmp_npy, tmp_meta):
                    try:
                        os.remove(tmp)
                    except OSError:
                        pass
            self._bytes_written.inc(nbytes)
            if sp is not None:
                sp["bytes"] = nbytes
        return key_digest
