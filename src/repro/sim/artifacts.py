"""Content-addressed on-disk cache for cross-run simulation artifacts.

The in-process :class:`~repro.sim.simulator.Stage1Cache` already keeps a
sweep group from recomputing its trace and TLB-miss stream, but the memo
dies with the worker. This module persists those artifacts across
processes and runs: an :class:`ArtifactCache` stores int64 arrays (the
stage-0 address trace, the stage-1 miss stream) under a content address
— the SHA-256 digest of a canonical-JSON payload combining a schema
version, the artifact *stage*, and the stage's key material (workload
name, scale, nrefs, seed, THP mode, tree depth, ...). Anything that can
change the bytes of the artifact must be in the key; the digest is then
stable across interpreter invocations, ``PYTHONHASHSEED`` values, and
machines (``tests/test_artifacts.py`` pins this with a subprocess).

Each artifact is two files in the cache directory, ``<digest>.npy``
(the array, ``allow_pickle=False`` both ways) and ``<digest>.json``
(the key material echoed back, plus caller metadata such as the
original compute time). Writes go to a per-process temp name and
``os.replace`` into place, so concurrent sweep workers sharing one
directory either see a complete artifact or none. Loads verify the
sidecar against the requested stage/key/schema; a mismatch (digest
collision, stale schema) or an unreadable payload (corruption, torn
write) **evicts** the entry and reports a miss, so the caller simply
recomputes and re-stores.

Telemetry: counters ``artifacts.hits`` / ``artifacts.misses`` /
``artifacts.evictions`` / ``artifacts.bytes_read`` /
``artifacts.bytes_written`` and ``artifact.load`` / ``artifact.store``
trace spans.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional, Tuple

import numpy as np

from repro.obs import metrics
from repro.obs import trace as obs_trace

#: Bump when the digest payload or the on-disk layout changes shape;
#: entries written under another schema are evicted on load.
SCHEMA_VERSION = 1


def digest(stage: str, key) -> str:
    """Content address of an artifact: SHA-256 over canonical JSON.

    ``key`` must be JSON-serializable (the stage-1 signature tuples of
    primitives qualify; tuples canonicalize to lists). The builtin
    ``hash()`` is banned here twice over — dmtlint L2 and the fact that
    it is salted per process, which is exactly what a cross-run cache
    cannot tolerate.
    """
    payload = json.dumps(
        {"schema": SCHEMA_VERSION, "stage": stage, "key": key},
        sort_keys=True, separators=(",", ":"), ensure_ascii=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _canonical(key):
    """The key as it reads back from the JSON sidecar (tuples -> lists)."""
    return json.loads(json.dumps(key))


class ArtifactCache:
    """One cache directory of content-addressed simulation artifacts."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._hits = metrics.counter("artifacts.hits")
        self._misses = metrics.counter("artifacts.misses")
        self._evictions = metrics.counter("artifacts.evictions")
        self._bytes_read = metrics.counter("artifacts.bytes_read")
        self._bytes_written = metrics.counter("artifacts.bytes_written")

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    def _paths(self, key_digest: str) -> Tuple[str, str]:
        return (os.path.join(self.root, key_digest + ".npy"),
                os.path.join(self.root, key_digest + ".json"))

    def evict(self, key_digest: str) -> None:
        """Drop an entry (missing files are fine — a concurrent worker
        may have evicted or replaced it first)."""
        self._evictions.inc()
        for path in self._paths(key_digest):
            try:
                os.remove(path)
            except OSError:
                pass

    def load_array(self, stage: str, key,
                   mmap: bool = False) -> Optional[Tuple[np.ndarray, Dict]]:
        """The stored ``(array, meta)`` for ``(stage, key)``, or None.

        None covers both a plain miss and a corrupt/mismatched entry
        (which is evicted on the way out) — the caller's response is
        the same: compute and :meth:`store_array`.

        With ``mmap=True`` the payload comes back as a read-only
        ``np.memmap`` over the cache file instead of a heap copy:
        sweep workers sharing one cache directory then share the trace
        and miss-stream pages through the OS page cache (zero-copy
        transfer), and ``bytes_read`` counts the mapped extent, not
        bytes actually faulted in.
        """
        key_digest = digest(stage, key)
        npy_path, meta_path = self._paths(key_digest)
        with obs_trace.span("artifact.load", stage=stage,
                            digest=key_digest[:12]) as sp:
            try:
                with open(meta_path, encoding="utf-8") as handle:
                    sidecar = json.load(handle)
                ok = (sidecar.get("schema") == SCHEMA_VERSION
                      and sidecar.get("stage") == stage
                      and sidecar.get("key") == _canonical(key))
                if not ok:
                    self.evict(key_digest)
                    raise ValueError("sidecar does not match the request")
                array = np.load(npy_path, allow_pickle=False,
                                mmap_mode="r" if mmap else None)
            except (OSError, ValueError, EOFError, json.JSONDecodeError):
                # missing entry, torn write, corrupt payload, stale
                # schema, or a digest collision: treat all as a miss
                if os.path.exists(npy_path) or os.path.exists(meta_path):
                    self.evict(key_digest)
                self._misses.inc()
                if sp is not None:
                    sp["hit"] = False
                return None
            self._hits.inc()
            nbytes = os.path.getsize(npy_path) + os.path.getsize(meta_path)
            self._bytes_read.inc(nbytes)
            if sp is not None:
                sp["hit"] = True
                sp["bytes"] = nbytes
            return array, sidecar.get("meta", {})

    def store_array(self, stage: str, key, array: np.ndarray,
                    meta: Optional[Dict] = None) -> str:
        """Persist ``array`` (plus caller ``meta``) under ``(stage, key)``.

        Returns the digest. The payload lands before the sidecar and
        both move into place with ``os.replace``, so a reader never
        sees a sidecar whose payload is absent or half-written; a lost
        race with another writer of the same digest is harmless (both
        wrote identical content for identical keys).
        """
        key_digest = digest(stage, key)
        npy_path, meta_path = self._paths(key_digest)
        sidecar = {"schema": SCHEMA_VERSION, "stage": stage,
                   "key": _canonical(key), "meta": dict(meta or {})}
        with obs_trace.span("artifact.store", stage=stage,
                            digest=key_digest[:12]) as sp:
            suffix = f".tmp{os.getpid()}"
            tmp_npy, tmp_meta = npy_path + suffix, meta_path + suffix
            try:
                with open(tmp_npy, "wb") as handle:
                    np.save(handle, np.asarray(array), allow_pickle=False)
                with open(tmp_meta, "w", encoding="utf-8") as handle:
                    json.dump(sidecar, handle, sort_keys=True)
                    handle.write("\n")
                nbytes = (os.path.getsize(tmp_npy)
                          + os.path.getsize(tmp_meta))
                os.replace(tmp_npy, npy_path)
                os.replace(tmp_meta, meta_path)
            finally:
                for tmp in (tmp_npy, tmp_meta):
                    try:
                        os.remove(tmp)
                    except OSError:
                        pass
            self._bytes_written.inc(nbytes)
            if sp is not None:
                sp["bytes"] = nbytes
        return key_digest
