"""Vectorized stage-1 TLB filter (the batched simulation engine).

The scalar :class:`~repro.hw.tlb.TLBHierarchy` walks the trace one
reference at a time through dict-backed set-associative TLBs — correct,
but every reference pays for a size-lookup call, tuple-key hashing and
several method dispatches. This module is the batched replacement:

1. **Vectorized precompute** (NumPy, per fed chunk): page-size
   classification via one lookup per unique 2 MB unit, per-page-size VPN
   arrays (an elementwise shift by the per-reference page-size shift),
   L1/STLB set indices, and packed integer tags that stand in for the
   scalar model's ``(asid, page_size, vpn)`` tuple keys.
2. **Chunked state machine**: the set/way state is a flat array of
   per-set way lists (MRU last), updated by a tight loop over the
   precomputed arrays, chunk by chunk. LRU touch/install/evict and the
   deterministic credit-counter thinning replicate the scalar model's
   operations exactly — including the order of floating-point credit
   updates — so the emitted miss stream is **bit-identical** to the
   scalar oracle on any trace.

The state machine is packaged as :class:`TLBFilterStream`: TLB way
lists and thinning credits live on the instance and persist across
``feed`` calls, so the trace can arrive as a sequence of chunks (the
streaming stage-0→1 pipeline, DESIGN.md §13) and the emitted miss
segments concatenate to exactly the monolithic result.
:func:`filter_misses` is the one-shot wrapper over a fresh stream.

The loop is sequential by necessity: LRU state and thinning credits at
reference *i* depend on every hit/miss decision before it. The speedup
comes from hoisting everything else out of the loop; ``benchmarks/
bench_engine.py`` measures the result (>= 3x on the GUPS stage-1 run).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.arch import PageSize
from repro.hw.config import MachineConfig

#: References processed per inner-loop chunk; bounds the transient
#: Python-list footprint to a few hundred KB regardless of trace length.
DEFAULT_CHUNK = 1 << 16

#: Compact code for each page-size shift: 4 KB -> 0, 2 MB -> 1, 1 GB -> 2.
#: Matches ``PageSize.sz_field()`` and is bijective with the shift, so a
#: packed ``(asid, code, vpn)`` tag equals the scalar tuple key.
_SHIFT_TO_CODE = {12: 0, 21: 1, 30: 2}
_CODE_TO_SIZE = (PageSize.SIZE_4K, PageSize.SIZE_2M, PageSize.SIZE_1G)

#: Bit layout of a packed tag: | asid | vpn | code |. A 4 KB VPN of a
#: 48-bit VA needs 36 bits; 2 bits of code below, ASIDs above bit 48.
_CODE_BITS = 2
_ASID_SHIFT = 48

#: 2 MB-unit shift: page size is uniform per 2 MB region (see
#: ``SizeClassifier``), so classification batches per unique unit.
_UNIT_SHIFT = int(PageSize.SIZE_2M)


def classify_trace(trace: np.ndarray, size_lookup) -> np.ndarray:
    """Per-reference page-size shifts with one lookup per 2 MB unit.

    Page size is uniform within a 2 MB unit in this simulator (huge pages
    are naturally aligned), so classifying the unique units and scattering
    back through ``np.unique``'s inverse index reproduces the scalar
    path's memoized per-reference calls. ``size_lookup`` may be any
    :data:`~repro.sim.simulator.SizeLookup`; a classifier exposing
    ``batch_units`` (see :class:`~repro.sim.simulator.SizeClassifier`)
    shares its memo dict with the scalar path.
    """
    units = trace >> _UNIT_SHIFT
    uniq, inverse = np.unique(units, return_inverse=True)
    if hasattr(size_lookup, "batch_units"):
        shifts = size_lookup.batch_units(uniq)
    else:
        shifts = np.fromiter(
            (int(size_lookup(int(unit) << _UNIT_SHIFT)) for unit in uniq.tolist()),
            dtype=np.int64, count=len(uniq),
        )
    return shifts[inverse.reshape(-1)]


def _accept_rate_table(accept_rates: Optional[Dict[PageSize, float]]):
    """Per-code acceptance rates, or None when thinning is off.

    Mirrors ``TLBHierarchy.__init__``: a falsy dict disables thinning
    entirely, and sizes missing from the dict default to rate 1.0.
    """
    if not accept_rates:
        return None
    return [float(accept_rates.get(size, 1.0)) for size in _CODE_TO_SIZE]


class TLBFilterStream:
    """Stage-1 TLB filter with state carried across trace chunks.

    Feed consecutive trace chunks; each call returns that chunk's
    TLB-miss VAs. Way lists (LRU order) and thinning credits persist on
    the instance between calls, so chunk boundaries are invisible to
    the model: the concatenated miss segments are bit-identical to
    filtering the concatenated trace in one call, for any chunking.
    """

    def __init__(
        self,
        machine: MachineConfig,
        size_lookup,
        asid: int = 1,
        accept_rates: Optional[Dict[PageSize, float]] = None,
        chunk: int = DEFAULT_CHUNK,
    ):
        self._size_lookup = size_lookup
        self._asid = asid
        self._chunk = chunk
        self._l1_num_sets = machine.l1d_tlb.num_sets
        self._stlb_num_sets = machine.l2_stlb.num_sets
        self._l1_assoc = machine.l1d_tlb.assoc
        self._stlb_assoc = machine.l2_stlb.assoc
        # One way list per set, MRU last — the list order mirrors the
        # scalar model's insertion-ordered dicts (evict = drop index 0).
        self.l1_state = [[] for _ in range(self._l1_num_sets)]
        self.stlb_state = [[] for _ in range(self._stlb_num_sets)]
        self.rates = _accept_rate_table(accept_rates)
        self.credit = [0.0, 0.0, 0.0]
        self.total_refs = 0
        self.total_misses = 0

    def end_state(self):
        """TLB/credit end state, for streaming-vs-monolithic identity tests."""
        return (self.l1_state, self.stlb_state, self.credit)

    def feed(self, trace: np.ndarray) -> np.ndarray:
        """Filter one trace chunk; returns its miss-stream segment."""
        trace = np.ascontiguousarray(trace, dtype=np.int64)
        if trace.size == 0:
            return np.empty(0, dtype=np.int64)

        # ---- vectorized precompute (this chunk) --------------------- #
        shifts = classify_trace(trace, self._size_lookup)
        vpn = trace >> shifts                       # per-page-size VPNs
        codes = (shifts - 12) // 9                  # 12/21/30 -> 0/1/2
        tags = (vpn << _CODE_BITS) | codes | (self._asid << _ASID_SHIFT)
        l1_idx = vpn % self._l1_num_sets
        stlb_idx = vpn % self._stlb_num_sets

        l1_state = self.l1_state
        stlb_state = self.stlb_state
        l1_assoc = self._l1_assoc
        stlb_assoc = self._stlb_assoc
        rates = self.rates
        credit = self.credit
        chunk = self._chunk

        misses = []
        append_miss = misses.append
        for start in range(0, trace.size, chunk):
            stop = min(start + chunk, trace.size)
            rows = zip(trace[start:stop].tolist(), tags[start:stop].tolist(),
                       l1_idx[start:stop].tolist(),
                       stlb_idx[start:stop].tolist(),
                       codes[start:stop].tolist())
            if rates is None:
                for va, tag, s1, s2, _code in rows:
                    ways = l1_state[s1]
                    if tag in ways:                      # L1 hit: touch LRU
                        if ways[-1] != tag:
                            ways.remove(tag)
                            ways.append(tag)
                        continue
                    sways = stlb_state[s2]
                    if tag in sways:                     # STLB hit: refill L1
                        if sways[-1] != tag:
                            sways.remove(tag)
                            sways.append(tag)
                        if len(ways) >= l1_assoc:
                            del ways[0]
                        ways.append(tag)
                        continue
                    append_miss(va)                      # full miss: fill both
                    if len(sways) >= stlb_assoc:
                        del sways[0]
                    sways.append(tag)
                    if len(ways) >= l1_assoc:
                        del ways[0]
                    ways.append(tag)
            else:
                for va, tag, s1, s2, code in rows:
                    ways = l1_state[s1]
                    if tag in ways:
                        # L1 hit: touch, then run the credit counter. A
                        # rejected hit counts as a miss and refills the STLB
                        # (the fill's L1 install is an order no-op: the tag
                        # is already MRU).
                        if ways[-1] != tag:
                            ways.remove(tag)
                            ways.append(tag)
                        rate = rates[code]
                        if rate >= 1.0:
                            continue
                        acc = credit[code] + rate
                        if acc >= 1.0:
                            credit[code] = acc - 1.0
                            continue
                        credit[code] = acc
                        append_miss(va)
                        sways = stlb_state[s2]
                        if tag in sways:
                            if sways[-1] != tag:
                                sways.remove(tag)
                                sways.append(tag)
                        else:
                            if len(sways) >= stlb_assoc:
                                del sways[0]
                            sways.append(tag)
                        continue
                    sways = stlb_state[s2]
                    if tag in sways:
                        # STLB hit: touch STLB, refill L1, then thin. On a
                        # rejected hit the fill re-installs both levels, but
                        # the tag is already MRU in each — no state change.
                        if sways[-1] != tag:
                            sways.remove(tag)
                            sways.append(tag)
                        if len(ways) >= l1_assoc:
                            del ways[0]
                        ways.append(tag)
                        rate = rates[code]
                        if rate >= 1.0:
                            continue
                        acc = credit[code] + rate
                        if acc >= 1.0:
                            credit[code] = acc - 1.0
                            continue
                        credit[code] = acc
                        append_miss(va)
                        continue
                    append_miss(va)
                    if len(sways) >= stlb_assoc:
                        del sways[0]
                    sways.append(tag)
                    if len(ways) >= l1_assoc:
                        del ways[0]
                    ways.append(tag)
        self.total_refs += int(trace.size)
        self.total_misses += len(misses)
        return np.asarray(misses, dtype=np.int64)


def filter_misses(
    trace: np.ndarray,
    machine: MachineConfig,
    size_lookup,
    asid: int = 1,
    accept_rates: Optional[Dict[PageSize, float]] = None,
    chunk: int = DEFAULT_CHUNK,
) -> np.ndarray:
    """TLB-miss VAs of ``trace``, bit-identical to the scalar hierarchy."""
    stream = TLBFilterStream(machine, size_lookup, asid=asid,
                             accept_rates=accept_rates, chunk=chunk)
    return stream.feed(trace)
