"""Design-specific chunk kernels: DMT/pvDMT, ECPT/FPT ops, Agile, ASAP.

Output accumulator layouts (``out``):

- DMT:   ``[cycles, refs, fallbacks, fetcher_hits, fetcher_fallbacks,
  fb_walks, fb_cycles]`` — the last two mirror onto the fallback
  walker's own counters (the scalar loop records through it first).
- ops (ECPT/FPT): ``[cycles, refs, fallbacks]``.
- Agile: ``[cycles, refs, fallbacks]``.
- ASAP:  ``[cycles, refs, fallbacks, inner_walks, inner_cycles,
  prefetches]``.
"""

from __future__ import annotations

from repro.sim.kernels.backend import jit
from repro.sim.kernels.primitives import (
    cache_access,
    cache_probe,
    cwc_get,
    cwc_put,
    npwc_resolve,
    pwc_fill,
    pwc_probe,
)
from repro.sim.kernels.radix import _radix_native_walk, _radix_nested_walk


@jit
def dmt_native_chunk(vpns, pidx, lo, hi, dplan, gaddrs, fb_row_base,
                     fb_chain_len, fb_cols, ps, cs, pwc_latency, out):
    """Replay misses ``[lo, hi)`` of DMT with a radix-*native* fallback.

    Oracle: the scalar ``DMTWalker._run`` — register hit: each captured
    fetch group charges its slowest member sequentially; register miss:
    the attempt's cache traffic applies with cycles discarded, then the
    radix fallback walk supplies the result (as replayed by
    ``walk_vec._make_dmt_runner``).
    """
    fell, dh, dfb, g_start, g_count, ga_start, ga_count, fb_pidx = dplan
    for i in range(lo, hi):
        vpn = vpns[i]
        p = pidx[i]
        out[3] += dh[p]
        out[4] += dfb[p]
        gs = g_start[p]
        ge = gs + g_count[p]
        if fell[p] != 0:
            for g in range(gs, ge):
                for t in range(ga_start[g], ga_start[g] + ga_count[g]):
                    cache_access(cs, gaddrs[t])  # cycles discarded
            c, r = _radix_native_walk(vpn, fb_pidx[p], fb_row_base,
                                      fb_chain_len, fb_cols, ps, cs,
                                      pwc_latency)
            out[0] += c
            out[1] += r
            out[2] += 1
            out[5] += 1
            out[6] += c
        else:
            cycles = 0
            nrefs = 0
            for g in range(gs, ge):
                gmax = 0
                for t in range(ga_start[g], ga_start[g] + ga_count[g]):
                    latency = cache_access(cs, gaddrs[t])
                    if latency > gmax:
                        gmax = latency
                cycles += gmax
                nrefs += ga_count[g]
            out[0] += cycles
            out[1] += nrefs


@jit
def dmt_nested_chunk(vpns, pidx, lo, hi, dplan, gaddrs, fb_plan, fb_haddrs,
                     ps, ns, cs, pwc_latency, out):
    """Replay misses ``[lo, hi)`` of DMT with a radix-*nested* fallback.

    Oracle: the scalar ``DMTWalker._run`` with a 2D fallback walk, as
    replayed by ``walk_vec._make_dmt_runner`` over a nested fallback
    spec.
    """
    fell, dh, dfb, g_start, g_count, ga_start, ga_count, fb_pidx = dplan
    for i in range(lo, hi):
        vpn = vpns[i]
        p = pidx[i]
        out[3] += dh[p]
        out[4] += dfb[p]
        gs = g_start[p]
        ge = gs + g_count[p]
        if fell[p] != 0:
            for g in range(gs, ge):
                for t in range(ga_start[g], ga_start[g] + ga_count[g]):
                    cache_access(cs, gaddrs[t])  # cycles discarded
            c, r = _radix_nested_walk(vpn, fb_pidx[p], fb_plan, fb_haddrs,
                                      ps, ns, cs, pwc_latency)
            out[0] += c
            out[1] += r
            out[2] += 1
            out[5] += 1
            out[6] += c
        else:
            cycles = 0
            nrefs = 0
            for g in range(gs, ge):
                gmax = 0
                for t in range(ga_start[g], ga_start[g] + ga_count[g]):
                    latency = cache_access(cs, gaddrs[t])
                    if latency > gmax:
                        gmax = latency
                cycles += gmax
                nrefs += ga_count[g]
            out[0] += cycles
            out[1] += nrefs


@jit
def ops_chunk(vpns, pidx, lo, hi, base_cycles, op_start, op_count, ops,
              cand_addr, cand_crit, ws, cs, out):
    """Replay misses ``[lo, hi)`` of an op-program design (ECPT / FPT).

    Oracle: ``walk_vec._make_ops_runner``'s interpreter over the scalar
    ``WalkRecorder`` episode semantics — opcode 0 charge (closes the
    open group), 1 sequential fetch, 2 background probe, 3 grouped
    fetch (episode costs its slowest member), 4 ECPT probe step with
    the live cuckoo-walk-cache prediction replayed via
    :func:`~repro.sim.kernels.primitives.cwc_get`/``cwc_put``.

    Op rows are ``[code, a, b, c, d, e, f]``: fetch/probe ``a`` = addr;
    grouped ``a`` = gid, ``b`` = addr; charge ``a`` = cycles; probe
    step ``a`` = has_hit, ``b`` = packed CWC key, ``c`` = true way,
    ``d`` = hit addr, ``e``/``f`` = candidate start/count into
    ``cand_addr``/``cand_crit``.
    """
    for i in range(lo, hi):
        p = pidx[i]
        cycles = base_cycles[p]
        nrefs = 0
        open_gid = -1
        gmax = 0
        for o in range(op_start[p], op_start[p] + op_count[p]):
            code = ops[o, 0]
            if code == 1:
                if open_gid >= 0:
                    cycles += gmax
                    open_gid = -1
                    gmax = 0
                cycles += cache_access(cs, ops[o, 1])
                nrefs += 1
            elif code == 2:
                cache_probe(cs, ops[o, 1])
            elif code == 3:
                gid = ops[o, 1]
                if gid != open_gid:
                    if open_gid >= 0:
                        cycles += gmax
                    open_gid = gid
                    gmax = 0
                latency = cache_access(cs, ops[o, 2])
                if latency > gmax:
                    gmax = latency
                nrefs += 1
            elif code == 4:
                if ops[o, 1] != 0:
                    predicted = cwc_get(ws, ops[o, 2])
                    if predicted == ops[o, 3]:
                        # CWC hit: single targeted probe
                        if open_gid >= 0:
                            cycles += gmax
                            open_gid = -1
                            gmax = 0
                        cycles += cache_access(cs, ops[o, 4])
                        nrefs += 1
                    else:
                        # mispredict: install the true way, fan out
                        cwc_put(ws, ops[o, 2], ops[o, 3])
                        for t in range(ops[o, 5], ops[o, 5] + ops[o, 6]):
                            if cand_crit[t] != 0:
                                if open_gid >= 0:
                                    cycles += gmax
                                    open_gid = -1
                                    gmax = 0
                                cycles += cache_access(cs, cand_addr[t])
                                nrefs += 1
                            else:
                                cache_probe(cs, cand_addr[t])
                else:
                    # full miss: probe every candidate, completion waits
                    # for the slowest (grouped first-candidate fetch)
                    for t in range(ops[o, 5], ops[o, 5] + ops[o, 6]):
                        cache_probe(cs, cand_addr[t])
                    if open_gid != 0:
                        if open_gid >= 0:
                            cycles += gmax
                        open_gid = 0
                        gmax = 0
                    latency = cache_access(cs, cand_addr[ops[o, 5]])
                    if latency > gmax:
                        gmax = latency
                    nrefs += 1
            else:  # code == 0: charge
                if open_gid >= 0:
                    cycles += gmax
                    open_gid = -1
                    gmax = 0
                cycles += ops[o, 1]
        if open_gid >= 0:
            cycles += gmax
        out[0] += cycles
        out[1] += nrefs


@jit
def agile_chunk(vpns, pidx, lo, hi, plan, haddrs, ps, ns, cs, pwc_latency,
                chain_top, top_level, out):
    """Replay misses ``[lo, hi)`` of Agile Paging.

    Oracle: the scalar ``AgileWalker.translate`` — host-PWC-probed
    shadow chain (with the dead-PTE descent quirk baked into the plan
    rows), one guest-leaf fetch, then the nested-PWC consult + host
    chain for the data page, as replayed by
    ``walk_vec._make_agile_runner``.
    """
    (ch_start, ch_count, c_addr, c_fo, c_fk, c_fv, leaf_addr,
     d_idx, d_gfn, d_hfn, d_rs, d_rc) = plan
    for i in range(lo, hi):
        vpn = vpns[i]
        p = pidx[i]
        cycles = pwc_latency
        nrefs = 0
        start = pwc_probe(ps, vpn)
        lvl = top_level - start
        if lvl > chain_top:
            lvl = chain_top
        j = ch_start[p] + (chain_top - lvl)
        end = ch_start[p] + ch_count[p]
        while j < end:
            cycles += cache_access(cs, c_addr[j])
            nrefs += 1
            if c_fo[j] >= 0:
                pwc_fill(ps, c_fo[j], c_fk[j], c_fv[j])
            j += 1
        if leaf_addr[p] >= 0:
            cycles += cache_access(cs, leaf_addr[p])
            nrefs += 1
            d = d_idx[p]
            dc, dr = npwc_resolve(ns, cs, d_gfn[d], d_hfn[d], d_rs[d],
                                  d_rc[d], haddrs)
            cycles += dc
            nrefs += dr
        out[0] += cycles
        out[1] += nrefs


@jit
def asap_native_chunk(vpns, pidx, lo, hi, pf_start, pf_count, pf_addr,
                      row_base, chain_len, cols, ps, cs, pwc_latency,
                      chain_hop, out):
    """Replay misses ``[lo, hi)`` of ASAP over a native radix walk.

    Oracle: the scalar ``ASAPWalker.translate`` — charge the prefetch
    accesses through the shared hierarchy (refs not counted), then the
    inner radix walk; the walk costs ``max(prefetch completion,
    inner)``, as replayed by ``walk_vec._make_asap_runner``.
    """
    for i in range(lo, hi):
        vpn = vpns[i]
        p = pidx[i]
        worst = 0
        for t in range(pf_start[p], pf_start[p] + pf_count[p]):
            latency = cache_access(cs, pf_addr[t])
            if latency > worst:
                worst = latency
        out[5] += pf_count[p]
        if worst > 0 and chain_hop > 0:
            worst += chain_hop
        c, r = _radix_native_walk(vpn, p, row_base, chain_len, cols, ps,
                                  cs, pwc_latency)
        out[3] += 1
        out[4] += c
        if worst > c:
            c = worst
        out[0] += c
        out[1] += r


@jit
def asap_nested_chunk(vpns, pidx, lo, hi, pf_start, pf_count, pf_addr,
                      plan, haddrs, ps, ns, cs, pwc_latency, chain_hop,
                      out):
    """Replay misses ``[lo, hi)`` of ASAP over a nested radix walk.

    Oracle: the scalar nested ``ASAPWalker.translate`` — prefetch
    charging plus ``CHAIN_HOP_CYCLES`` when any prefetch issued, around
    the inner 2D walk, as replayed by ``walk_vec._make_asap_runner``.
    """
    for i in range(lo, hi):
        vpn = vpns[i]
        p = pidx[i]
        worst = 0
        for t in range(pf_start[p], pf_start[p] + pf_count[p]):
            latency = cache_access(cs, pf_addr[t])
            if latency > worst:
                worst = latency
        out[5] += pf_count[p]
        if worst > 0 and chain_hop > 0:
            worst += chain_hop
        c, r = _radix_nested_walk(vpn, p, plan, haddrs, ps, ns, cs,
                                  pwc_latency)
        out[3] += 1
        out[4] += c
        if worst > c:
            c = worst
        out[0] += c
        out[1] += r
