"""The native kernel engine's entry point and plan/state flattening.

``replay_walks_native`` is the third stage-2 engine, beside the scalar
oracle and the batched (vec) engine. It reuses the vec engine's
planners verbatim — same unique-VPN first-occurrence order, same lazy
first-touch side effects — then flattens the plans into int64 arrays
and replays the history-dependent state (cache LRU sets, PWC tables,
credit counters, the ECPT cuckoo-walk cache) inside the compiled chunk
kernels of :mod:`repro.sim.kernels.radix` /
:mod:`repro.sim.kernels.designs` over ``array_view()`` snapshots.

Bit-identity contract: identical ``WalkStats`` and identical
post-replay cache/PWC/CWC/walker state versus the scalar oracle, on
both backends (``tests/test_walk_vec.py`` parametrizes the parity
suite over the vec and native engines; the no-numba CI leg pins the
pure-Python backend).

Step collection (``collect_steps`` with ``record_refs``) delegates to
the interpreted vec runners — the kernels carry no tag strings — and
records :data:`STEP_COLLECTION_REASON` so profiling runs are visibly
not kernel-timed.

**Two-phase split (thread-safety contract).** The entry point is
factored into :func:`prepare_replay_native` — every GIL-bound,
order-dependent step: vec planning with its lazy first-touch side
effects (shadow-table extension, frame allocation, and therefore cache
set indices), plan flattening, and the per-cell ``array_view()`` state
checkout — and :meth:`PreparedReplay.execute`, which only drives the
``nogil`` kernels over the state captured at prepare time and writes
the results back to that cell's private walker/memsys objects. Prepare
MUST run on one thread in deterministic cell order; execute may run on
any thread, concurrently with other cells' prepares and executes,
because after checkout a cell shares nothing mutable with the rest of
the process (the miss stream is read-only and memmap-shared). That
split is what lets the sweep's two-level executor overlap cell *k*'s
kernels with cell *k+1*'s planning without giving up bit-identity.
"""

from __future__ import annotations

import gc
import threading
from contextlib import contextmanager
from typing import List

import numpy as np

from repro.arch import PAGE_SHIFT
from repro.sim import walk_vec
from repro.sim.kernels import backend
from repro.sim.kernels.designs import (
    agile_chunk,
    asap_native_chunk,
    asap_nested_chunk,
    dmt_native_chunk,
    dmt_nested_chunk,
    ops_chunk,
)
from repro.sim.kernels.radix import radix_native_chunk, radix_nested_chunk
from repro.translation.base import MemorySubsystem, Walker

#: Recorded as ``WalkStats.fallback_reason`` when ``engine="native"``
#: is asked to collect per-step latency tags.
STEP_COLLECTION_REASON = (
    "step collection runs on the interpreted vec runners "
    "(native kernels carry no step tags)"
)


def _ia(seq) -> np.ndarray:
    return np.asarray(seq, dtype=np.int64)


# ``gc.disable`` is process-global, so concurrent cell replays refcount
# it: the first replay in pauses collection, the last one out restores
# whatever the outermost caller had.
_GC_LOCK = threading.Lock()
_GC_DEPTH = 0
_GC_REENABLE = False


@contextmanager
def _gc_paused():
    """Pause the cyclic GC for a block; refcounted across threads."""
    global _GC_DEPTH, _GC_REENABLE
    with _GC_LOCK:
        if _GC_DEPTH == 0:
            _GC_REENABLE = gc.isenabled()
            if _GC_REENABLE:
                gc.disable()
        _GC_DEPTH += 1
    try:
        yield
    finally:
        with _GC_LOCK:
            _GC_DEPTH -= 1
            if _GC_DEPTH == 0 and _GC_REENABLE:
                gc.enable()


# --------------------------------------------------------------------- #
# array_view() state bundles + writeback/flush closures
# --------------------------------------------------------------------- #

def _cache_state(caches):
    """Hierarchy state bundle ``cs`` + views + flush/writeback closure."""
    views = [level.array_view() for level in caches.levels]
    v1, v2, v3 = views
    cp = np.array([v1.line_shift, v1.num_sets, v1.assoc, v1.latency,
                   v2.line_shift, v2.num_sets, v2.assoc, v2.latency,
                   v3.line_shift, v3.num_sets, v3.assoc, v3.latency,
                   caches.memory_latency], dtype=np.int64)
    cc = np.zeros(7, dtype=np.int64)
    cs = (v1.tags, v1.nvalid, v2.tags, v2.nvalid, v3.tags, v3.nvalid,
          cp, cc)

    def finish(_w, _m):
        for view, hit_i, miss_i in ((v1, 0, 3), (v2, 1, 4), (v3, 2, 5)):
            view.stats.hits += int(cc[hit_i])
            view.stats.misses += int(cc[miss_i])
        caches.memory_accesses += int(cc[6])
        for view in views:
            view.writeback()

    return cs, views, finish


def _pwc_state(pwc):
    """PWC state bundle ``ps`` + flush/writeback closure."""
    view = pwc.array_view()
    pflags = np.array([1 if view.has_accept else 0], dtype=np.int64)
    pcnt = np.zeros(2, dtype=np.int64)
    pshift = view.key_shifts - PAGE_SHIFT
    ps = (view.keys, view.vals, view.sizes, view.capacities, pshift,
          pflags, pcnt, view.accept, view.credit)

    def finish(_w, _m):
        view.stats.hits += int(pcnt[0])
        view.stats.misses += int(pcnt[1])
        view.writeback()

    return ps, finish


def _npwc_state(npwc):
    """Nested-PWC state bundle ``ns`` + flush/writeback closure."""
    view = npwc.array_view()
    ncnt = np.zeros(2, dtype=np.int64)
    nflt = np.array([view.accept, view.credit[0]], dtype=np.float64)
    ns = (view.keys, view.vals, view.meta, ncnt, nflt)

    def finish(_w, _m):
        view.stats.hits += int(ncnt[0])
        view.stats.misses += int(ncnt[1])
        view.credit[0] = nflt[1]
        view.writeback()

    return ns, finish


def _cwc_state(cwc):
    """CWC state bundle ``ws`` + closure; empty dummy when ``cwc=None``."""
    if cwc is None:
        ws = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
              np.zeros(2, dtype=np.int64), np.zeros(2, dtype=np.int64))
        return ws, None
    view = cwc.array_view()
    ccnt = np.zeros(2, dtype=np.int64)
    ws = (view.keys, view.ways, view.meta, ccnt)

    def finish(_w, _m):
        cwc.hits += int(ccnt[0])
        cwc.misses += int(ccnt[1])
        view.writeback()

    return ws, finish


# --------------------------------------------------------------------- #
# Plan flattening (vec planners -> int64 arrays)
# --------------------------------------------------------------------- #

def _flatten_radix_native(page_table, top_level, n_offsets, uniq_ordered,
                          cache_views):
    slots, columns = walk_vec._build_radix_native_columns(
        page_table, top_level, n_offsets, uniq_ordered, cache_views)
    n = len(uniq_ordered)
    row_base = np.empty(n, dtype=np.int64)
    chain_len = np.empty(n, dtype=np.int64)
    for p, vpn in enumerate(uniq_ordered):
        base, clen = slots[vpn]
        row_base[p] = base
        chain_len[p] = clen
    cols = tuple(_ia(col) for col in columns)
    return row_base, chain_len, cols


def _flatten_radix_nested(plans, uniq_ordered):
    e_start: List[int] = []
    e_count: List[int] = []
    e_gfn: List[int] = []
    e_hfn: List[int] = []
    e_gpte: List[int] = []
    e_fo: List[int] = []
    e_fk: List[int] = []
    e_fv: List[int] = []
    e_rs: List[int] = []
    e_rc: List[int] = []
    d_idx: List[int] = []
    d_gfn: List[int] = []
    d_hfn: List[int] = []
    d_rs: List[int] = []
    d_rc: List[int] = []
    haddrs: List[int] = []
    chain_pos: dict = {}

    def chain(hsteps):
        pos = chain_pos.get(hsteps)
        if pos is None:
            pos = len(haddrs)
            haddrs.extend(hsteps)
            chain_pos[hsteps] = pos
        return pos

    for vpn in uniq_ordered:
        entries, data = plans[vpn]
        e_start.append(len(e_gfn))
        e_count.append(len(entries))
        for gfn, hfn, hsteps, gpte_hpa, fill, _gtag, _htags in entries:
            e_gfn.append(gfn)
            e_hfn.append(hfn)
            e_gpte.append(gpte_hpa)
            if fill is None:
                e_fo.append(-1)
                e_fk.append(0)
                e_fv.append(0)
            else:
                offset, key, value = fill
                e_fo.append(offset)
                e_fk.append(key)
                e_fv.append(value)
            e_rs.append(chain(hsteps))
            e_rc.append(len(hsteps))
        if data is None:
            d_idx.append(-1)
        else:
            dgfn, dhfn, dsteps, _dtags = data
            d_idx.append(len(d_gfn))
            d_gfn.append(dgfn)
            d_hfn.append(dhfn)
            d_rs.append(chain(dsteps))
            d_rc.append(len(dsteps))
    plan = tuple(_ia(x) for x in (
        e_start, e_count, e_gfn, e_hfn, e_gpte, e_fo, e_fk, e_fv, e_rs,
        e_rc, d_idx, d_gfn, d_hfn, d_rs, d_rc))
    return plan, _ia(haddrs)


def _flatten_dmt(plans, uniq_ordered, fallback_vpns):
    fb_rows = {vpn: row for row, vpn in enumerate(fallback_vpns)}
    fell: List[int] = []
    dh: List[int] = []
    dfb: List[int] = []
    g_start: List[int] = []
    g_count: List[int] = []
    ga_start: List[int] = []
    ga_count: List[int] = []
    gaddrs: List[int] = []
    fb_pidx: List[int] = []
    for vpn in uniq_ordered:
        fell_back, groups, d_hits, d_fallbacks = plans[vpn]
        fell.append(1 if fell_back else 0)
        dh.append(d_hits)
        dfb.append(d_fallbacks)
        g_start.append(len(ga_start))
        g_count.append(len(groups))
        for addrs, _tags in groups:
            ga_start.append(len(gaddrs))
            ga_count.append(len(addrs))
            gaddrs.extend(addrs)
        fb_pidx.append(fb_rows.get(vpn, -1))
    dplan = tuple(_ia(x) for x in (
        fell, dh, dfb, g_start, g_count, ga_start, ga_count, fb_pidx))
    return dplan, _ia(gaddrs)


def _flatten_ops(plans, uniq_ordered):
    base_cycles: List[int] = []
    op_start: List[int] = []
    op_count: List[int] = []
    rows: List[tuple] = []
    cand_addr: List[int] = []
    cand_crit: List[int] = []
    for vpn in uniq_ordered:
        base, ops = plans[vpn]
        base_cycles.append(base)
        op_start.append(len(rows))
        op_count.append(len(ops))
        for op in ops:
            code = op[0]
            if code == 3:
                rows.append((3, op[1], op[2], 0, 0, 0, 0))
            elif code == 4:
                _c, has_hit, ckey, hit_way, hit_addr, _tag, cands = op
                cstart = len(cand_addr)
                for addr, _t, crit in cands:
                    cand_addr.append(addr)
                    cand_crit.append(1 if crit else 0)
                if has_hit:
                    enc = (ckey[1] << 6) | ckey[0]
                    rows.append((4, 1, enc, hit_way, hit_addr, cstart,
                                 len(cands)))
                else:
                    rows.append((4, 0, 0, -1, 0, cstart, len(cands)))
            else:  # 0 charge / 1 fetch / 2 probe: one operand
                rows.append((code, op[1], 0, 0, 0, 0, 0))
    ops_arr = _ia(rows).reshape(-1, 7)
    return (_ia(base_cycles), _ia(op_start), _ia(op_count), ops_arr,
            _ia(cand_addr), _ia(cand_crit))


def _flatten_agile(plans, uniq_ordered):
    ch_start: List[int] = []
    ch_count: List[int] = []
    c_addr: List[int] = []
    c_fo: List[int] = []
    c_fk: List[int] = []
    c_fv: List[int] = []
    leaf_addr: List[int] = []
    d_idx: List[int] = []
    d_gfn: List[int] = []
    d_hfn: List[int] = []
    d_rs: List[int] = []
    d_rc: List[int] = []
    haddrs: List[int] = []
    chain_pos: dict = {}
    for vpn in uniq_ordered:
        chain_rows, leaf, data = plans[vpn]
        ch_start.append(len(c_addr))
        ch_count.append(len(chain_rows))
        for addr, _tag, fill in chain_rows:
            c_addr.append(addr)
            if fill is None:
                c_fo.append(-1)
                c_fk.append(0)
                c_fv.append(0)
            else:
                offset, key, value = fill
                c_fo.append(offset)
                c_fk.append(key)
                c_fv.append(value)
        if leaf is None:
            leaf_addr.append(-1)
            d_idx.append(-1)
        else:
            leaf_addr.append(leaf[0])
            dgfn, dhfn, dsteps, _dtags = data
            pos = chain_pos.get(dsteps)
            if pos is None:
                pos = len(haddrs)
                haddrs.extend(dsteps)
                chain_pos[dsteps] = pos
            d_idx.append(len(d_gfn))
            d_gfn.append(dgfn)
            d_hfn.append(dhfn)
            d_rs.append(pos)
            d_rc.append(len(dsteps))
    plan = tuple(_ia(x) for x in (
        ch_start, ch_count, c_addr, c_fo, c_fk, c_fv, leaf_addr,
        d_idx, d_gfn, d_hfn, d_rs, d_rc))
    return plan, _ia(haddrs)


def _flatten_prefetch(pf_plans, uniq_ordered):
    pf_start: List[int] = []
    pf_count: List[int] = []
    pf_addr: List[int] = []
    for vpn in uniq_ordered:
        addrs = pf_plans[vpn]
        pf_start.append(len(pf_addr))
        pf_count.append(len(addrs))
        pf_addr.extend(addrs)
    return _ia(pf_start), _ia(pf_count), _ia(pf_addr)


# --------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------- #

class PreparedReplay:
    """A planned cell replay whose kernels have not run yet.

    Everything order-dependent already happened in
    :func:`prepare_replay_native`; :meth:`execute` drives the ``nogil``
    kernels over the captured flat arrays and writes results back to
    this cell's private walker/memsys objects, so it is safe on any
    thread, concurrently with other cells. ``execute`` is one-shot —
    a second call returns the same ``WalkStats`` without replaying.
    """

    def __init__(self, stats, total, warmup, out_len, run_range,
                 finishers, walker, extra_walkers, record_refs):
        self.stats = stats
        self._total = total
        self._warmup = warmup
        self._out_len = out_len
        self._run_range = run_range
        self._finishers = finishers
        self._walker = walker
        self._extra_walkers = extra_walkers
        self._record_refs = record_refs
        self._done = False

    def execute(self):
        if self._done:
            return self.stats
        self._done = True
        if self._run_range is None:   # empty miss stream: nothing to run
            return self.stats
        total, warmup = self._total, self._warmup
        out_warm = np.zeros(self._out_len, dtype=np.int64)
        out_meas = np.zeros(self._out_len, dtype=np.int64)
        with _gc_paused():
            if warmup > 0:
                self._run_range(0, warmup, out_warm)
            if warmup < total:
                self._run_range(warmup, total, out_meas)
        stats = self.stats
        stats.walks = total - warmup
        stats.total_cycles = int(out_meas[0])
        stats.ref_count = int(out_meas[1]) if self._record_refs else 0
        stats.fallbacks = int(out_meas[2])
        for finish in self._finishers:
            finish(out_warm, out_meas)
        all_cycles = int(out_warm[0] + out_meas[0])
        all_fallbacks = int(out_warm[2] + out_meas[2])
        for target in (self._walker,) + self._extra_walkers:
            target.walks += total
            target.total_cycles += all_cycles
            target.fallbacks += all_fallbacks
        return stats


def replay_walks_native(
    walker: Walker,
    miss_vas,
    warmup_fraction: float = 0.1,
    collect_steps: bool = False,
    chunk: int = walk_vec.DEFAULT_CHUNK,
):
    """Native-kernel stage 2: replay a miss stream, bit-identical to scalar.

    Oracle: :func:`repro.sim.simulator.replay_walks` with
    ``engine="scalar"`` — same ``WalkStats`` (cycles, refs, fallbacks),
    same post-replay cache/PWC/CWC/walker state; the vec engine's
    planners supply the address streams, the compiled kernels replay
    the state machine. ``chunk`` is accepted for signature parity with
    :func:`~repro.sim.walk_vec.replay_walks_vec`; kernels process whole
    warmup/measured ranges (their counters live in arrays, nothing
    needs a per-chunk flush). Raises ``ValueError`` for unsupported
    walkers, exactly like the vec engine.
    """
    memsys: MemorySubsystem = walker.memsys
    if collect_steps and memsys.record_refs:
        reason = walk_vec.unsupported_reason(walker)
        if reason is not None:
            raise ValueError(
                f"walker {walker.name!r} has no batched replay path: "
                f"{reason} (use the scalar engine)")
        stats = walk_vec.replay_walks_vec(
            walker, miss_vas, warmup_fraction=warmup_fraction,
            collect_steps=True, chunk=chunk)
        stats.engine = "native"
        stats.fallback_reason = STEP_COLLECTION_REASON
        return stats
    return prepare_replay_native(
        walker, miss_vas, warmup_fraction=warmup_fraction).execute()


def prepare_replay_native(
    walker: Walker,
    miss_vas,
    warmup_fraction: float = 0.1,
) -> PreparedReplay:
    """Plan a native-kernel replay; the kernels run in ``execute()``.

    This is the sequential half of the two-phase split documented in
    the module docstring: vec planning (lazy first-touch side effects
    happen here, in deterministic order), plan flattening, and the
    ``array_view()`` state checkout. The returned
    :class:`PreparedReplay` owns thread-private state only. Raises
    ``ValueError`` for unsupported walkers, exactly like the vec
    engine.

    Oracle: :func:`repro.sim.simulator.replay_walks` with
    ``engine="scalar"`` — ``prepare().execute()`` must return
    bit-identical :class:`WalkStats` and leave identical cache/PWC/
    design state, on any thread.
    """
    from repro.sim.simulator import WalkStats

    reason = walk_vec.unsupported_reason(walker)
    if reason is not None:
        raise ValueError(
            f"walker {walker.name!r} has no batched replay path: {reason} "
            "(use the scalar engine)")
    memsys: MemorySubsystem = walker.memsys
    record_refs = memsys.record_refs

    spec = walker.batch_spec()
    vas = np.asarray(miss_vas, dtype=np.int64)
    stats = WalkStats(design=walker.name, engine="native")
    if backend.UNAVAILABLE_REASON is not None:
        stats.fallback_reason = backend.UNAVAILABLE_REASON
    total = int(vas.size)
    if total == 0:
        return PreparedReplay(stats, 0, 0, 3, None, [], walker, (),
                              record_refs)
    vpns = vas >> PAGE_SHIFT

    # Unique VPNs in first-occurrence order (planning must touch lazily
    # populated structures in the scalar loop's order) + the per-miss
    # plan-row index.
    uniq, first_index, inverse = np.unique(
        vpns, return_index=True, return_inverse=True)
    order = np.argsort(first_index, kind="stable")
    uniq_ordered = uniq[order].tolist()
    rank = np.empty(uniq.size, dtype=np.int64)
    rank[order] = np.arange(uniq.size, dtype=np.int64)
    pidx = np.ascontiguousarray(rank[inverse.reshape(-1)], dtype=np.int64)

    with _gc_paused():
        cs, cache_views, cache_fin = _cache_state(memsys.caches)
        finishers = [cache_fin]
        pwc_latency = memsys.pwc_latency
        kind = spec.kind
        out_len = 3

        if kind in ("radix-native", "radix-nested"):
            if kind == "radix-native":
                pwc = memsys.pwc
                ps, ps_fin = _pwc_state(pwc)
                finishers.append(ps_fin)
                row_base, chain_len, cols = _flatten_radix_native(
                    spec.page_table, pwc.top_level, int(ps[2].shape[0]),
                    uniq_ordered, cache_views)

                def run_range(lo, hi, out):
                    radix_native_chunk(vpns, pidx, lo, hi, row_base,
                                       chain_len, cols, ps, cs,
                                       pwc_latency, out)
            else:
                pwc = memsys.guest_pwc
                ps, ps_fin = _pwc_state(pwc)
                ns, ns_fin = _npwc_state(memsys.nested_pwc)
                finishers.extend((ps_fin, ns_fin))
                plans = walk_vec._build_radix_nested_plans(
                    spec.guest_pt, spec.vm, pwc.top_level,
                    int(ps[2].shape[0]), uniq_ordered, False)
                plan, haddrs = _flatten_radix_nested(plans, uniq_ordered)

                def run_range(lo, hi, out):
                    radix_nested_chunk(vpns, pidx, lo, hi, plan, haddrs,
                                       ps, ns, cs, pwc_latency, out)

        elif kind == "dmt":
            plans, fallback_vpns = walk_vec._build_dmt_plans(
                spec, uniq_ordered, False)
            dplan, gaddrs = _flatten_dmt(plans, uniq_ordered,
                                         fallback_vpns)
            fb_spec = spec.fallback.batch_spec()
            if fb_spec.kind == "radix-native":
                pwc = memsys.pwc
                ps, ps_fin = _pwc_state(pwc)
                finishers.append(ps_fin)
                fb_row_base, fb_chain_len, fb_cols = _flatten_radix_native(
                    fb_spec.page_table, pwc.top_level,
                    int(ps[2].shape[0]), fallback_vpns, cache_views)

                def run_range(lo, hi, out):
                    dmt_native_chunk(vpns, pidx, lo, hi, dplan, gaddrs,
                                     fb_row_base, fb_chain_len, fb_cols,
                                     ps, cs, pwc_latency, out)
            else:
                pwc = memsys.guest_pwc
                ps, ps_fin = _pwc_state(pwc)
                ns, ns_fin = _npwc_state(memsys.nested_pwc)
                finishers.extend((ps_fin, ns_fin))
                fb_plans = walk_vec._build_radix_nested_plans(
                    fb_spec.guest_pt, fb_spec.vm, pwc.top_level,
                    int(ps[2].shape[0]), fallback_vpns, False)
                fb_plan, fb_haddrs = _flatten_radix_nested(
                    fb_plans, fallback_vpns)

                def run_range(lo, hi, out):
                    dmt_nested_chunk(vpns, pidx, lo, hi, dplan, gaddrs,
                                     fb_plan, fb_haddrs, ps, ns, cs,
                                     pwc_latency, out)

            fetcher = spec.fetcher
            credit_targets = (spec.fallback,) + tuple(
                fb_spec.extra_walkers)

            def dmt_fin(w, m):
                fetcher.hits += int(w[3] + m[3])
                fetcher.fallbacks += int(w[4] + m[4])
                for target in credit_targets:
                    target.walks += int(w[5] + m[5])
                    target.total_cycles += int(w[6] + m[6])

            finishers.append(dmt_fin)
            out_len = 7

        elif kind in ("ecpt-native", "ecpt-nested", "fpt-native",
                      "fpt-nested"):
            if kind == "ecpt-native":
                plans = walk_vec._build_ecpt_native_plans(
                    spec, uniq_ordered, False)
                cwc = spec.ecpt.cwc
            elif kind == "ecpt-nested":
                plans = walk_vec._build_ecpt_nested_plans(
                    spec, uniq_ordered, False)
                cwc = spec.host_ecpt.cwc  # scalar probes only this one
            elif kind == "fpt-native":
                plans = walk_vec._build_fpt_native_plans(
                    spec, uniq_ordered, False)
                cwc = None
            else:
                plans = walk_vec._build_fpt_nested_plans(
                    spec, uniq_ordered, False)
                cwc = None
            (base_cycles, op_start, op_count, ops_arr, cand_addr,
             cand_crit) = _flatten_ops(plans, uniq_ordered)
            ws, ws_fin = _cwc_state(cwc)
            if ws_fin is not None:
                finishers.append(ws_fin)

            def run_range(lo, hi, out):
                ops_chunk(vpns, pidx, lo, hi, base_cycles, op_start,
                          op_count, ops_arr, cand_addr, cand_crit, ws,
                          cs, out)

        elif kind == "agile":
            pwc = memsys.pwc
            ps, ps_fin = _pwc_state(pwc)
            ns, ns_fin = _npwc_state(memsys.nested_pwc)
            finishers.extend((ps_fin, ns_fin))
            top_level = pwc.top_level
            chain_top = min(top_level, spec.guest_pt.levels)
            plans = walk_vec._build_agile_plans(
                spec, top_level, int(ps[2].shape[0]), uniq_ordered, False)
            plan, haddrs = _flatten_agile(plans, uniq_ordered)

            def run_range(lo, hi, out):
                agile_chunk(vpns, pidx, lo, hi, plan, haddrs, ps, ns, cs,
                            pwc_latency, chain_top, top_level, out)

        elif kind in ("asap-native", "asap-nested"):
            from repro.translation.asap import PREFETCH_LEVELS

            inner_spec = spec.inner.batch_spec()
            if kind == "asap-native":
                chain_hop = 0
                pf_plans = {
                    vpn: tuple(step.pte_addr
                               for step in spec.page_table.walk_steps(
                                   vpn << PAGE_SHIFT)
                               if step.level in PREFETCH_LEVELS)
                    for vpn in uniq_ordered}
                pwc = memsys.pwc
                ps, ps_fin = _pwc_state(pwc)
                finishers.append(ps_fin)
                row_base, chain_len, cols = _flatten_radix_native(
                    inner_spec.page_table, pwc.top_level,
                    int(ps[2].shape[0]), uniq_ordered, cache_views)
                pf_start, pf_count, pf_addr = _flatten_prefetch(
                    pf_plans, uniq_ordered)

                def run_range(lo, hi, out):
                    asap_native_chunk(vpns, pidx, lo, hi, pf_start,
                                      pf_count, pf_addr, row_base,
                                      chain_len, cols, ps, cs,
                                      pwc_latency, chain_hop, out)
            else:
                chain_hop = walker.CHAIN_HOP_CYCLES
                guest_pt = spec.guest_pt
                gpa_to_hpa = spec.vm.gpa_to_hpa
                ept = spec.vm.ept
                pf_plans = {}

                def prefetcher(gva):
                    addrs = []
                    for step in guest_pt.walk_steps(gva):
                        if step.level not in PREFETCH_LEVELS:
                            continue
                        addrs.append(gpa_to_hpa(step.pte_addr))
                        for ept_step in ept.walk_steps(step.pte_addr):
                            if ept_step.level in PREFETCH_LEVELS:
                                addrs.append(ept_step.pte_addr)
                    return tuple(addrs)

                pwc = memsys.guest_pwc
                ps, ps_fin = _pwc_state(pwc)
                ns, ns_fin = _npwc_state(memsys.nested_pwc)
                finishers.extend((ps_fin, ns_fin))
                plans = walk_vec._build_radix_nested_plans(
                    inner_spec.guest_pt, inner_spec.vm, pwc.top_level,
                    int(ps[2].shape[0]), uniq_ordered, False,
                    prefetcher=prefetcher, prefetch_out=pf_plans)
                plan, haddrs = _flatten_radix_nested(plans, uniq_ordered)
                pf_start, pf_count, pf_addr = _flatten_prefetch(
                    pf_plans, uniq_ordered)

                def run_range(lo, hi, out):
                    asap_nested_chunk(vpns, pidx, lo, hi, pf_start,
                                      pf_count, pf_addr, plan, haddrs,
                                      ps, ns, cs, pwc_latency, chain_hop,
                                      out)

            inner = spec.inner

            def asap_fin(w, m):
                inner.walks += int(w[3] + m[3])
                inner.total_cycles += int(w[4] + m[4])
                walker.prefetches += int(w[5] + m[5])

            finishers.append(asap_fin)
            out_len = 6

        else:  # pragma: no cover - guarded by unsupported_reason
            raise ValueError(f"unknown batch-spec kind {kind!r}")

    warmup = int(total * warmup_fraction)
    return PreparedReplay(stats, total, warmup, out_len, run_range,
                          finishers, walker, tuple(spec.extra_walkers),
                          record_refs)
