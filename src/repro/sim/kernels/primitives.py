"""Jitted flat-array primitives shared by the per-design chunk kernels.

Each primitive replays one scalar structure operation over the flat
ndarray state produced by ``array_view()`` — LRU order is positional
(oldest at the segment start, MRU at the end), so a hit shifts the
entry to the back and an eviction drops index 0, exactly mirroring the
insertion-ordered dicts of the scalar/vec paths.

State bundles (tuples of ndarrays, statically indexed so Numba
specializes them):

- ``cs``  — cache hierarchy: ``(t1, n1, t2, n2, t3, n3, cp, cc)``.
  ``tN``/``nN`` are level N's tags (``int64[num_sets * assoc]``) and
  per-set live counts; ``cp`` packs the 13 int64 parameters
  ``[ls1, ns1, a1, lat1, ls2, ns2, a2, lat2, ls3, ns3, a3, lat3,
  mem_lat]``; ``cc`` holds the 7 counters
  ``[h1, h2, h3, m1, m2, m3, mem]`` flushed to stats afterwards.
- ``ps``  — page-walk cache:
  ``(keys2d, vals2d, sizes, caps, shifts, flags, counters, accept,
  credit)`` with ``shifts`` already VPN-relative and ``flags[0]``
  selecting hit thinning.
- ``ns``  — nested PWC: ``(keys, vals, meta, counters, flt)`` with
  ``meta = [size, capacity]`` and ``flt = [accept_rate, credit]``.
- ``ws``  — cuckoo-walk cache: ``(keys, ways, meta, counters)`` with
  ``(size, group)`` keys packed as ``(group << 6) | size``.
"""

from __future__ import annotations

from repro.sim.kernels.backend import jit


@jit
def _seg_lookup(tags, nvalid, set_idx, assoc, line):
    """LRU lookup-and-touch inside one set's tag segment (hit -> True)."""
    base = set_idx * assoc
    n = nvalid[set_idx]
    for k in range(n):
        if tags[base + k] == line:
            for m in range(k, n - 1):
                tags[base + m] = tags[base + m + 1]
            tags[base + n - 1] = line
            return True
    return False


@jit
def _seg_install(tags, nvalid, set_idx, assoc, line):
    """LRU insert into one set's segment (refresh / evict-oldest)."""
    base = set_idx * assoc
    n = nvalid[set_idx]
    for k in range(n):
        if tags[base + k] == line:
            for m in range(k, n - 1):
                tags[base + m] = tags[base + m + 1]
            tags[base + n - 1] = line
            return
    if n >= assoc:
        for m in range(n - 1):
            tags[base + m] = tags[base + m + 1]
        tags[base + n - 1] = line
    else:
        tags[base + n] = line
        nvalid[set_idx] = n + 1


@jit
def cache_access(cs, addr):
    """One allocating hierarchy access; returns the round-trip latency.

    Oracle: ``CacheHierarchy.access`` (probe L1 -> L2 -> LLC -> MEM,
    LRU-touch the satisfying level, install into every missed level).
    """
    t1, n1, t2, n2, t3, n3, cp, cc = cs
    line1 = addr >> cp[0]
    idx1 = line1 % cp[1]
    if _seg_lookup(t1, n1, idx1, cp[2], line1):
        cc[0] += 1
        return cp[3]
    cc[3] += 1
    line2 = addr >> cp[4]
    idx2 = line2 % cp[5]
    if _seg_lookup(t2, n2, idx2, cp[6], line2):
        cc[1] += 1
        latency = cp[7]
    else:
        cc[4] += 1
        line3 = addr >> cp[8]
        idx3 = line3 % cp[9]
        if _seg_lookup(t3, n3, idx3, cp[10], line3):
            cc[2] += 1
            latency = cp[11]
        else:
            cc[5] += 1
            cc[6] += 1
            latency = cp[12]
            _seg_install(t3, n3, idx3, cp[10], line3)
        _seg_install(t2, n2, idx2, cp[6], line2)
    _seg_install(t1, n1, idx1, cp[2], line1)
    return latency


@jit
def cache_access_cols(cs, l1, i1, l2, i2, l3, i3):
    """Hierarchy access with precomputed per-level line/set indices.

    Oracle: ``CacheHierarchy.access``, identical to :func:`cache_access`
    but fed from the radix planner's precomputed columns.
    """
    t1, n1, t2, n2, t3, n3, cp, cc = cs
    if _seg_lookup(t1, n1, i1, cp[2], l1):
        cc[0] += 1
        return cp[3]
    cc[3] += 1
    if _seg_lookup(t2, n2, i2, cp[6], l2):
        cc[1] += 1
        latency = cp[7]
    else:
        cc[4] += 1
        if _seg_lookup(t3, n3, i3, cp[10], l3):
            cc[2] += 1
            latency = cp[11]
        else:
            cc[5] += 1
            cc[6] += 1
            latency = cp[12]
            _seg_install(t3, n3, i3, cp[10], l3)
        _seg_install(t2, n2, i2, cp[6], l2)
    _seg_install(t1, n1, i1, cp[2], l1)
    return latency


@jit
def cache_probe(cs, addr):
    """One non-allocating background probe (losing parallel accesses).

    Oracle: ``CacheHierarchy.probe`` — LRU-touch and count per level,
    install nothing on a full miss.
    """
    t1, n1, t2, n2, t3, n3, cp, cc = cs
    line1 = addr >> cp[0]
    if _seg_lookup(t1, n1, line1 % cp[1], cp[2], line1):
        cc[0] += 1
        return
    cc[3] += 1
    line2 = addr >> cp[4]
    if _seg_lookup(t2, n2, line2 % cp[5], cp[6], line2):
        cc[1] += 1
        return
    cc[4] += 1
    line3 = addr >> cp[8]
    if _seg_lookup(t3, n3, line3 % cp[9], cp[10], line3):
        cc[2] += 1
        return
    cc[5] += 1
    cc[6] += 1


@jit
def pwc_probe(ps, vpn):
    """Deepest-first PWC probe; returns the chain start index (0 = root).

    Oracle: ``PageWalkCache.best_entry`` — LRU-touch even when the
    credit counter thins the hit away, in which case the probe continues
    to shallower offsets; counters[0]/[1] mirror the hit/miss stats.
    """
    pk, pv, psz, pcap, pshift, pflags, pcnt, pacc, pcred = ps
    nlev = psz.shape[0]
    for off in range(nlev - 1, -1, -1):
        key = vpn >> pshift[off]
        n = psz[off]
        pos = -1
        for k in range(n):
            if pk[off, k] == key:
                pos = k
                break
        if pos >= 0:
            val = pv[off, pos]
            for m in range(pos, n - 1):
                pk[off, m] = pk[off, m + 1]
                pv[off, m] = pv[off, m + 1]
            pk[off, n - 1] = key
            pv[off, n - 1] = val
            if pflags[0] == 0:
                pcnt[0] += 1
                return off + 1
            credit = pcred[off] + pacc[off]
            if credit >= 1.0:
                pcred[off] = credit - 1.0
                pcnt[0] += 1
                return off + 1
            pcred[off] = credit
    pcnt[1] += 1
    return 0


@jit
def pwc_fill(ps, off, key, val):
    """Install a partial-walk entry at PWC offset ``off``.

    Oracle: ``PageWalkCache.fill`` / ``_LRUTable.put`` — refresh an
    existing key to MRU with the new value, else evict the oldest entry
    when the level is full.
    """
    pk, pv, psz, pcap, pshift, pflags, pcnt, pacc, pcred = ps
    n = psz[off]
    pos = -1
    for k in range(n):
        if pk[off, k] == key:
            pos = k
            break
    if pos >= 0:
        for m in range(pos, n - 1):
            pk[off, m] = pk[off, m + 1]
            pv[off, m] = pv[off, m + 1]
        pk[off, n - 1] = key
        pv[off, n - 1] = val
        return
    if n >= pcap[off]:
        for m in range(n - 1):
            pk[off, m] = pk[off, m + 1]
            pv[off, m] = pv[off, m + 1]
        pk[off, n - 1] = key
        pv[off, n - 1] = val
    else:
        pk[off, n] = key
        pv[off, n] = val
        psz[off] = n + 1


@jit
def npwc_resolve(ns, cs, gfn, hfn, rs, rc, haddrs):
    """Nested-PWC consult + host-chain replay; returns (cycles, refs).

    Oracle: the scalar ``_host_resolve`` (``NestedPWC.get`` with
    LRU-touch-even-when-thinned, then the EPT fetch chain
    ``haddrs[rs:rs+rc]`` through the hierarchy on a miss, and
    ``NestedPWC.fill`` *after* the chain).
    """
    nk, nv, nmeta, ncnt, nflt = ns
    n = nmeta[0]
    pos = -1
    for k in range(n):
        if nk[k] == gfn:
            pos = k
            break
    hit = False
    if pos >= 0:
        val = nv[pos]
        for m in range(pos, n - 1):
            nk[m] = nk[m + 1]
            nv[m] = nv[m + 1]
        nk[n - 1] = gfn
        nv[n - 1] = val
        if nflt[0] < 1.0:
            credit = nflt[1] + nflt[0]
            if credit >= 1.0:
                nflt[1] = credit - 1.0
                hit = True
            else:
                nflt[1] = credit
        else:
            hit = True
    if hit:
        ncnt[0] += 1
        return 0, 0
    ncnt[1] += 1
    cycles = 0
    for i in range(rs, rs + rc):
        cycles += cache_access(cs, haddrs[i])
    # NestedPWC.fill after the chain (scalar _host_resolve order)
    n = nmeta[0]
    pos = -1
    for k in range(n):
        if nk[k] == gfn:
            pos = k
            break
    if pos >= 0:
        for m in range(pos, n - 1):
            nk[m] = nk[m + 1]
            nv[m] = nv[m + 1]
        nk[n - 1] = gfn
        nv[n - 1] = hfn
    elif n >= nmeta[1]:
        for m in range(n - 1):
            nk[m] = nk[m + 1]
            nv[m] = nv[m + 1]
        nk[n - 1] = gfn
        nv[n - 1] = hfn
    else:
        nk[n] = gfn
        nv[n] = hfn
        nmeta[0] = n + 1
    return cycles, rc


@jit
def cwc_get(ws, key):
    """Cuckoo-walk-cache prediction lookup; returns the way or -1.

    Oracle: ``CuckooWalkCache.get`` — LRU-touch and count a hit when
    present, count a miss otherwise.
    """
    ck, cw, cmeta, ccnt = ws
    n = cmeta[0]
    for k in range(n):
        if ck[k] == key:
            way = cw[k]
            for m in range(k, n - 1):
                ck[m] = ck[m + 1]
                cw[m] = cw[m + 1]
            ck[n - 1] = key
            cw[n - 1] = way
            ccnt[0] += 1
            return way
    ccnt[1] += 1
    return -1


@jit
def cwc_put(ws, key, way):
    """Install/refresh a cuckoo-walk-cache prediction.

    Oracle: ``CuckooWalkCache.put`` — remove an existing key (or evict
    the oldest entry when full), then append at MRU.
    """
    ck, cw, cmeta, ccnt = ws
    n = cmeta[0]
    pos = -1
    for k in range(n):
        if ck[k] == key:
            pos = k
            break
    if pos >= 0:
        for m in range(pos, n - 1):
            ck[m] = ck[m + 1]
            cw[m] = cw[m + 1]
        ck[n - 1] = key
        cw[n - 1] = way
    elif n >= cmeta[1]:
        for m in range(n - 1):
            ck[m] = ck[m + 1]
            cw[m] = cw[m + 1]
        ck[n - 1] = key
        cw[n - 1] = way
    else:
        ck[n] = key
        cw[n] = way
        cmeta[0] = n + 1
