"""Radix-walk chunk kernels (native/shadow and nested 2D walks).

The per-VPN walk helpers are shared with the DMT fallback path and the
ASAP inner walk (:mod:`repro.sim.kernels.designs`). Plan layouts are
flattened by :mod:`repro.sim.kernels.replay` from the same planners the
vec engine uses, so the address streams are identical by construction;
these kernels replay only the history-dependent state (cache LRU, PWC
tables, thinning credits) over the flat arrays.

Output accumulator layout (``out``): ``[cycles, refs, fallbacks]``.
"""

from __future__ import annotations

from repro.sim.kernels.backend import jit
from repro.sim.kernels.primitives import (
    cache_access,
    cache_access_cols,
    npwc_resolve,
    pwc_fill,
    pwc_probe,
)


@jit
def _radix_native_walk(vpn, p, row_base, chain_len, cols, ps, cs,
                       pwc_latency):
    """One native/shadow radix walk; returns (cycles, refs)."""
    line1, idx1, line2, idx2, line3, idx3, fkeys, fvals = cols
    base = row_base[p]
    start = pwc_probe(ps, vpn)
    cycles = pwc_latency
    j = base + start
    end = base + chain_len[p]
    while j < end:
        cycles += cache_access_cols(cs, line1[j], idx1[j], line2[j],
                                    idx2[j], line3[j], idx3[j])
        key = fkeys[j]
        if key >= 0:
            pwc_fill(ps, j - base, key, fvals[j])
        j += 1
    return cycles, chain_len[p] - start


@jit
def _radix_nested_walk(vpn, p, plan, haddrs, ps, ns, cs, pwc_latency):
    """One 2D nested radix walk; returns (cycles, refs)."""
    (e_start, e_count, e_gfn, e_hfn, e_gpte, e_fo, e_fk, e_fv, e_rs, e_rc,
     d_idx, d_gfn, d_hfn, d_rs, d_rc) = plan
    cycles = pwc_latency
    nrefs = 0
    i = pwc_probe(ps, vpn)
    s = e_start[p]
    n = e_count[p]
    while i < n:
        k = s + i
        dc, dr = npwc_resolve(ns, cs, e_gfn[k], e_hfn[k], e_rs[k],
                              e_rc[k], haddrs)
        cycles += dc
        nrefs += dr
        cycles += cache_access(cs, e_gpte[k])
        nrefs += 1
        if e_fo[k] >= 0:
            pwc_fill(ps, e_fo[k], e_fk[k], e_fv[k])
        i += 1
    d = d_idx[p]
    if d >= 0:
        dc, dr = npwc_resolve(ns, cs, d_gfn[d], d_hfn[d], d_rs[d],
                              d_rc[d], haddrs)
        cycles += dc
        nrefs += dr
    return cycles, nrefs


@jit
def radix_native_chunk(vpns, pidx, lo, hi, row_base, chain_len, cols, ps,
                       cs, pwc_latency, out):
    """Replay misses ``[lo, hi)`` of a native/shadow radix walker.

    Oracle: the scalar ``RadixWalker.translate`` loop — PWC probe with
    credit thinning, the remaining chain fetches through the hierarchy,
    and the PWC fills, as replayed by ``walk_vec._make_radix_runner``'s
    radix-native ``run``.
    """
    cycles = 0
    refs = 0
    for i in range(lo, hi):
        c, r = _radix_native_walk(vpns[i], pidx[i], row_base, chain_len,
                                  cols, ps, cs, pwc_latency)
        cycles += c
        refs += r
    out[0] += cycles
    out[1] += refs


@jit
def radix_nested_chunk(vpns, pidx, lo, hi, plan, haddrs, ps, ns, cs,
                       pwc_latency, out):
    """Replay misses ``[lo, hi)`` of a nested (2D) radix walker.

    Oracle: the scalar nested ``translate`` — guest-PWC probe, per-level
    nested-PWC consult + host chain + guest-PTE fetch + guest-PWC fill,
    then the data page's host resolution, as replayed by
    ``walk_vec._make_radix_runner``'s radix-nested ``run``.
    """
    cycles = 0
    refs = 0
    for i in range(lo, hi):
        c, r = _radix_nested_walk(vpns[i], pidx[i], plan, haddrs, ps, ns,
                                  cs, pwc_latency)
        cycles += c
        refs += r
    out[0] += cycles
    out[1] += refs
