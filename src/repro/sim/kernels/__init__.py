"""Native-compiled stage-2 replay kernels (the ``native`` walk engine).

The batched engine in :mod:`repro.sim.walk_vec` still executes its
chunked state machine per-reference in the Python interpreter over
``batch_view()`` dicts. This package replaces that hot loop with
preallocated flat ndarray state (``array_view()`` on the caches, PWCs
and the ECPT cuckoo-walk cache) and per-design chunk kernels that are
JIT-compiled with Numba ``@njit(cache=True)`` when Numba is importable
— and run as the *same source, uncompiled* otherwise, so the fallback
is bit-identical by construction (:mod:`repro.sim.kernels.backend`).
Compiled kernels are ``nogil``, so the sweep's two-level executor can
replay independent cells on concurrent threads (DESIGN.md §15).

Entry point: :func:`repro.sim.kernels.replay.replay_walks_native`,
reached through ``replay_walks(..., engine="native")`` or
``--walk-engine native``; :func:`~repro.sim.kernels.replay.prepare_replay_native`
is its sequential-prepare half for threaded execution. DESIGN.md §11
documents the architecture and the array-view writeback contract.
"""

from repro.sim.kernels.backend import (  # noqa: F401
    BACKEND,
    HAVE_NUMBA,
    UNAVAILABLE_REASON,
    jit,
)
from repro.sim.kernels.replay import (  # noqa: F401
    PreparedReplay,
    prepare_replay_native,
    replay_walks_native,
)
