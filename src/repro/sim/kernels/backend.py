"""Backend selection for the native kernel engine.

Numba is an optional dependency: when it imports, every kernel in this
package is compiled with ``@njit(cache=True)``; when it does not, the
``jit`` decorator is the identity and the *same source* runs under the
plain interpreter. Both backends therefore execute the identical
algorithm over the identical flat-array state — the pure-Python path is
bit-identical by construction, just slow, and callers record
:data:`UNAVAILABLE_REASON` as ``WalkStats.fallback_reason`` so a
missing JIT can never silently masquerade as the compiled engine.
"""

from __future__ import annotations

try:
    from numba import njit as _njit

    HAVE_NUMBA = True
    BACKEND = "numba"
    UNAVAILABLE_REASON = None
except ImportError:  # pragma: no cover - exercised by the no-numba CI leg
    _njit = None
    HAVE_NUMBA = False
    BACKEND = "python"
    UNAVAILABLE_REASON = (
        "numba unavailable: native kernels run as uncompiled Python "
        "(bit-identical, interpreter speed)"
    )


def jit(func):
    """Compile ``func`` with Numba when available, else return it as is.

    Compiled kernels release the GIL (``nogil=True``): they only touch
    the flat int64/float64 state arrays checked out per cell, so the
    two-level sweep executor can replay independent (env, design) cells
    on concurrent threads of one worker process.

    Oracle: none — pure backend selection; the decorated kernels each
    declare their own scalar-oracle counterpart.
    """
    if HAVE_NUMBA:
        return _njit(cache=True, nogil=True)(func)
    return func
