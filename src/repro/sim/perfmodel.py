"""The §5 performance model.

    T_target = O_measured_vanilla * (O_sim_target / O_sim_vanilla) + T_ideal

Measured inputs come from :mod:`repro.sim.calibration`; simulated walk
overheads come from :mod:`repro.sim.simulator` replays. The model also
handles the non-walk overheads the paper treats specially:

* shadow paging's VM-exit overhead (``other_frac``), removed by designs
  that eliminate shadow paging (pvDMT in nested virtualization, §5) and
  partially retained by Agile Paging;
* nested virtualization's shadow-sync overhead estimated by scaling the
  single-level measurement by the VM-exit ratio (§5) — already folded
  into the calibration table's nested ``other_frac``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sim.calibration import EnvProfile, profile
from repro.sim.simulator import WalkStats


@dataclass(frozen=True)
class AppliedModel:
    """Model outputs for one (workload, environment, design)."""

    workload: str
    environment: str
    design: str
    t_vanilla: float        # baseline execution time (seconds)
    t_target: float         # modeled execution time under the design
    pw_speedup: float       # O_sim_vanilla / O_sim_target
    app_speedup: float      # t_vanilla / t_target


def _fractions(env: EnvProfile, thp: bool):
    total = env.total_seconds(thp=thp)
    return total, env.pw_seconds(thp=thp), env.other_seconds(thp=thp)


def apply_model(
    workload: str,
    environment: str,
    design: str,
    o_sim_vanilla: float,
    o_sim_target: float,
    thp: bool = False,
    retained_other_fraction: float = 1.0,
) -> AppliedModel:
    """Model T_target for a design against its environment's baseline.

    ``o_sim_*`` are the simulated translation-overhead totals (cycles) of
    the environment's vanilla design and of the target design over the
    same miss stream. A zero ``o_sim_vanilla`` is a broken replay (an
    empty miss stream or a baseline that never ran), so it raises
    :class:`ValueError` instead of silently modeling a 1.0 ratio.
    ``retained_other_fraction`` scales the baseline's non-walk
    virtualization overhead (1.0 keeps it — hardware-assisted nested
    paging baselines have none anyway; 0.0 removes it — pvDMT
    eliminating shadow paging; Agile Paging retains a small fraction).
    """
    if not o_sim_vanilla:
        raise ValueError(
            f"o_sim_vanilla is zero for workload={workload!r} "
            f"environment={environment!r} design={design!r}: the baseline "
            f"replay produced no translation overhead (empty miss stream "
            f"or unrun baseline), so the overhead ratio is undefined"
        )
    env = profile(workload).env(environment)
    t_vanilla, o_measured, other_measured = _fractions(env, thp)
    t_ideal = t_vanilla - o_measured - other_measured
    ratio = o_sim_target / o_sim_vanilla
    t_target = (
        o_measured * ratio
        + t_ideal
        + other_measured * retained_other_fraction
    )
    pw_speedup = 1.0 / ratio if ratio else float("inf")
    return AppliedModel(
        workload=workload,
        environment=environment,
        design=design,
        t_vanilla=t_vanilla,
        t_target=t_target,
        pw_speedup=pw_speedup,
        app_speedup=t_vanilla / t_target,
    )


def model_from_stats(
    workload: str,
    environment: str,
    vanilla: WalkStats,
    target: WalkStats,
    thp: bool = False,
    retained_other_fraction: float = 1.0,
) -> AppliedModel:
    return apply_model(
        workload,
        environment,
        target.design,
        o_sim_vanilla=vanilla.overhead_cycles(),
        o_sim_target=target.overhead_cycles(),
        thp=thp,
        retained_other_fraction=retained_other_fraction,
    )


def baseline_times(workload: str, thp: bool = False) -> Dict[str, Dict[str, float]]:
    """Figure 4 inputs: measured total time + walk share per environment.

    Returns {environment: {"total": seconds, "pw": seconds}} with the
    native total as the normalization unit.
    """
    prof = profile(workload)
    out: Dict[str, Dict[str, float]] = {}
    for env_name in ("native", "virt_npt", "virt_spt", "nested"):
        env = prof.env(env_name)
        total, pw, other = _fractions(env, thp)
        out[env_name] = {"total": total, "pw": pw, "other": other}
    return out
