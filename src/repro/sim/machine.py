"""Simulated-machine assembly for the three evaluation environments.

One simulation instance builds the full substrate for a (workload,
environment, page-size mode) triple — kernels, hypervisors, DMT-Linux,
the workload's address space, and the mirrored ECPT/FPT structures — runs
the TLB filter once, and can then replay the identical miss stream
through any design's walker. Sharing one machine across designs is
faithful to the paper: DMT's TEA placement serves the vanilla radix
walker too (same PTEs, §3), and ECPT/FPT maintain their own tables
alongside.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import queue
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.analysis import sanitizer
from repro.arch import PAGE_SHIFT, PAGE_SIZE, PageSize, align_up
from repro.obs import metrics
from repro.obs import trace as obs_trace
from repro.core import costs as core_costs
from repro.core.costs import Environment as MgmtEnv
from repro.core.dmt_os import DMTLinux
from repro.core.paravirt import PvDMTHost, PvTEAAllocator
from repro.core.registers import REGISTERS_PER_SET, RegisterSet
from repro.hw.config import MachineConfig, xeon_gold_6138
from repro.kernel.kernel import Kernel
from repro.sim import tlb_vec
from repro.sim.simulator import (
    Stage1Cache,
    TLBFilterResult,
    WalkStats,
    make_size_lookup,
    prepare_replay,
    replay_walks,
    tlb_accept_rates,
    tlb_filter,
)
from repro.translation.agile import AgilePagingWalker
from repro.translation.asap import ASAPNativeWalker, ASAPNestedWalker
from repro.translation.base import MemorySubsystem, Walker
from repro.translation.dmt import (
    DMTNativeWalker,
    DMTVirtWalker,
    PvDMTNestedWalker,
    PvDMTVirtWalker,
    machine_reader,
)
from repro.translation.ecpt import (
    ECPTNativeWalker,
    ECPTNestedWalker,
    ElasticCuckooPageTables,
)
from repro.translation.fpt import (
    FlattenedPageTable,
    FPTNativeWalker,
    FPTNestedWalker,
)
from repro.translation.radix import (
    NativeRadixWalker,
    NestedRadixWalker,
    ShadowWalker,
)
from repro.virt.hypervisor import Hypervisor
from repro.virt.nested import NestedSetup
from repro.virt.shadow import ShadowPager
from repro.workloads import generators

_MB = 1 << 20

#: Auto-streaming threshold: monolithic stage 0→1 below this many
#: references (the arrays are small enough that streaming only adds
#: overhead), the constant-memory streaming pipeline at or above it.
STREAM_NREFS_THRESHOLD = 8_000_000

#: Trace references per streamed chunk when ``stream_chunk`` is left on
#: auto: 1 Mi refs = 8 MB per in-flight chunk.
DEFAULT_STREAM_CHUNK = 1 << 20


def _page_align(nbytes: int) -> int:
    return align_up(nbytes, PAGE_SIZE)


def _is_pow2(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


@dataclass
class SimConfig:
    """Knobs for one simulation run."""

    scale: int = 512          # working-set divisor vs. the paper (DESIGN §2)
    nrefs: int = 60_000       # trace length
    seed: int = 0
    thp: bool = False
    #: radix tree depth: 4 (default) or 5 (§2.1.1's 5-level extension —
    #: nested walks grow to 35 references; DMT stays at 1/2/3)
    levels: int = 4
    machine: MachineConfig = field(default_factory=xeon_gold_6138)
    warmup_fraction: float = 0.1
    record_refs: bool = False
    register_count: int = 16
    bubble_threshold: float = 0.02
    #: Thin TLB/PWC hit rates back to paper scale (DESIGN.md §5). Without
    #: this, the fixed-reach MMU caches cover the entire scaled-down
    #: working set and every design collapses to one memory reference.
    scale_mmu_caches: bool = True
    #: Stage-1 TLB-filter engine: "vec" (batched NumPy, default) or
    #: "scalar" (the dict-backed reference oracle). Both are
    #: bit-identical; the oracle exists for equivalence testing.
    engine: str = "vec"
    #: Stage-2 replay engine: "auto" (native kernels when the compiled
    #: backend and the design support them, else batched
    #: :mod:`repro.sim.walk_vec` when supported, scalar otherwise — the
    #: default), "native" (:mod:`repro.sim.kernels` chunk kernels,
    #: erroring on unsupported designs), "vec" (batched, same erroring),
    #: or "scalar" (the per-walk reference oracle). All paths are
    #: bit-identical on supported designs.
    walk_engine: str = "auto"
    #: Enable the runtime translation sanitizer
    #: (:mod:`repro.analysis.sanitizer`) for this run.
    sanitize: bool = False
    #: Stage-0→1 streaming chunk size in references. ``None`` (default)
    #: picks automatically: stream at :data:`DEFAULT_STREAM_CHUNK` when
    #: ``nrefs`` reaches :data:`STREAM_NREFS_THRESHOLD` (vec engine
    #: only), monolithic below it. A positive value forces streaming at
    #: that chunk size; ``0`` forces the monolithic path. Streaming is
    #: bit-identical to monolithic (DESIGN.md §13), so the knob trades
    #: memory against per-chunk overhead, never results.
    stream_chunk: Optional[int] = None

    def __post_init__(self):
        """Reject invalid configurations here, with a clear error, instead
        of failing deep inside the fetcher or the TLB index arithmetic."""
        if not 1 <= self.register_count <= REGISTERS_PER_SET:
            raise ValueError(
                f"register_count={self.register_count}: a DMT register set "
                f"holds 1..{REGISTERS_PER_SET} registers (Figure 13; the "
                f"register index field is 4 bits)"
            )
        if self.levels not in (4, 5):
            raise ValueError(
                f"levels={self.levels}: x86-64 radix trees are 4- or 5-level"
            )
        if self.engine not in ("vec", "scalar"):
            raise ValueError(
                f"engine={self.engine!r}: expected 'vec' or 'scalar'"
            )
        if self.walk_engine not in ("auto", "native", "vec", "scalar"):
            raise ValueError(
                f"walk_engine={self.walk_engine!r}: expected 'auto', "
                f"'native', 'vec' or 'scalar'"
            )
        if self.stream_chunk is not None and self.stream_chunk < 0:
            raise ValueError(
                f"stream_chunk={self.stream_chunk} must be None, 0 (off), "
                f"or a positive chunk size")
        if self.stream_chunk and self.engine != "vec":
            raise ValueError(
                "stream_chunk requires engine='vec': the scalar stage-1 "
                "oracle has no chunk-carrying state machine")
        if self.scale < 1:
            raise ValueError(f"scale={self.scale} must be >= 1")
        if self.nrefs < 1:
            raise ValueError(f"nrefs={self.nrefs} must be >= 1")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction={self.warmup_fraction} must be in [0, 1)"
            )
        # Power-of-two page/line geometry: VPN and set-index extraction is
        # pure shift/mask arithmetic, so non-power-of-two sizes would
        # silently translate wrong addresses rather than error out.
        for tlb in (self.machine.l1d_tlb, self.machine.l1i_tlb,
                    self.machine.l2_stlb):
            if not _is_pow2(tlb.num_sets):
                raise ValueError(
                    f"{tlb.name}: {tlb.entries} entries / {tlb.assoc}-way "
                    f"gives {tlb.num_sets} sets — set count must be a "
                    f"power of two"
                )
        for cache in (self.machine.l1d, self.machine.l2, self.machine.llc):
            if not _is_pow2(cache.line_bytes):
                raise ValueError(
                    f"{cache.name}: line size {cache.line_bytes} must be a "
                    f"power of two"
                )

    def resolved_stream_chunk(self) -> Optional[int]:
        """The streaming chunk size in effect, or None for monolithic."""
        if self.stream_chunk == 0:
            return None
        if self.stream_chunk:
            return self.stream_chunk
        if self.nrefs >= STREAM_NREFS_THRESHOLD and self.engine == "vec":
            return DEFAULT_STREAM_CHUNK
        return None

    def small(self, nrefs: int = 8_000, scale: int = 4096) -> "SimConfig":
        """A reduced copy for fast tests.

        Built with :func:`dataclasses.replace` so every field — current
        and future — carries over instead of silently resetting to its
        default.
        """
        return dataclasses.replace(self, scale=scale, nrefs=nrefs)


def _stats_payload(stats: WalkStats) -> Dict:
    """A ``WalkStats`` as the JSON dict stored in the stage-2 result cache.

    ``engine`` / ``fallback_reason`` are stored and restored verbatim:
    they are cell telemetry the sweep document records, and a warm
    sweep must emit a byte-identical document.
    """
    return {
        "design": stats.design,
        "walks": int(stats.walks),
        "total_cycles": int(stats.total_cycles),
        "fallbacks": int(stats.fallbacks),
        "ref_count": int(stats.ref_count),
        "step_cycles": {tag: [float(total), int(count)]
                        for tag, (total, count) in stats.step_cycles.items()},
        "engine": stats.engine,
        "fallback_reason": stats.fallback_reason,
    }


def _stats_from_payload(payload: Dict) -> WalkStats:
    """Rebuild a ``WalkStats`` from its cached payload dict."""
    return WalkStats(
        design=payload["design"],
        walks=int(payload["walks"]),
        total_cycles=int(payload["total_cycles"]),
        fallbacks=int(payload["fallbacks"]),
        ref_count=int(payload["ref_count"]),
        step_cycles={tag: [float(pair[0]), int(pair[1])]
                     for tag, pair in payload.get("step_cycles", {}).items()},
        engine=payload.get("engine", "scalar"),
        fallback_reason=payload.get("fallback_reason"),
    )


def _stage2_state(walker: Walker) -> Dict:
    """Post-replay end state archived alongside a cached cell's stats.

    Audit payload, not restored on a hit (a served cell never builds a
    walker): walker/fetcher counters and the cache/PWC hit-miss end
    state let a human (or a test) verify a cached entry against a fresh
    replay without trusting the checksum alone.
    """
    def counters(target) -> Dict:
        return {"walks": int(target.walks),
                "total_cycles": int(target.total_cycles),
                "fallbacks": int(target.fallbacks)}

    memsys = walker.memsys
    state = {
        "walker": counters(walker),
        "caches": [{"hits": int(level.stats.hits),
                    "misses": int(level.stats.misses)}
                   for level in memsys.caches.levels],
        "memory_accesses": int(memsys.caches.memory_accesses),
        "pwc": {
            "host": {"hits": int(memsys.pwc.stats.hits),
                     "misses": int(memsys.pwc.stats.misses)},
            "guest": {"hits": int(memsys.guest_pwc.stats.hits),
                      "misses": int(memsys.guest_pwc.stats.misses)},
            "nested": {"hits": int(memsys.nested_pwc.stats.hits),
                       "misses": int(memsys.nested_pwc.stats.misses)},
        },
    }
    fetcher = getattr(walker, "fetcher", None)
    if fetcher is not None:
        state["fetcher"] = {"hits": int(fetcher.hits),
                            "fallbacks": int(fetcher.fallbacks)}
    return state


class PreparedCell:
    """One (design) cell split for the two-level sweep executor.

    ``prepare_run`` consults the per-design memo and the stage-2 result
    cache and, on a miss, runs every order-dependent step (walker
    build, vec planning, state checkout) on the calling thread. What
    remains is: ``execute()`` — the replay itself, safe on a worker
    thread iff ``threadable`` — and ``commit(stats)``, which must run
    back on the preparing thread (it writes the memo and the result
    cache, and artifact I/O opens trace spans that are process-global).
    """

    def __init__(self, design: str, stats: Optional[WalkStats] = None,
                 execute: Optional[Callable[[], WalkStats]] = None,
                 commit: Optional[Callable[[WalkStats], WalkStats]] = None,
                 walker: Optional[Walker] = None, threadable: bool = False,
                 source: str = "computed"):
        self.design = design
        self.stats = stats
        self.walker = walker
        self.threadable = threadable
        #: Where the cell came from: "computed", "memo", or "disk".
        self.source = source
        self._execute = execute
        self._commit = commit

    @property
    def ready(self) -> bool:
        """Stats already in hand (memo or result-cache hit)?"""
        return self.stats is not None

    def execute(self) -> WalkStats:
        """Replay the cell; thread-safe only when ``threadable``."""
        if self.stats is not None:
            return self.stats
        return self._execute()

    def commit(self, stats: WalkStats) -> WalkStats:
        """Finalize on the preparing thread: memo + result-cache store."""
        if self.stats is None and self._commit is not None:
            stats = self._commit(stats)
        self.stats = stats
        return stats


class _SimulationBase:
    """Shared stage-1 plumbing."""

    designs: tuple = ()
    #: Environment key in :data:`ENVIRONMENTS`; trace spans carry it.
    env_name: str = "?"

    def __init__(self, workload_name: str, config: SimConfig,
                 stage1: Optional[Stage1Cache] = None):
        self.config = config
        if config.sanitize:
            sanitizer.enable()
        self.workload = generators.get(workload_name, config.scale)
        self._stats_cache: Dict[str, WalkStats] = {}
        #: Per-cell stage-2 provenance ("computed" or "disk"), keyed
        #: like :attr:`_stats_cache`; see :meth:`stage2_source`.
        self._stage2_sources: Dict[str, str] = {}
        #: Memoized SHA-256 of the replayed miss stream (stage-2 key).
        self._miss_digest_memo: Optional[str] = None
        #: Optional sweep-wide stage-1 memo; sims sharing one instance
        #: compute the trace + TLB filter once per input signature.
        self._stage1 = stage1
        #: Stage-1 telemetry, set by :meth:`_trace_and_filter`.
        self.stage1_seconds = 0.0
        self.stage1_reused = False
        #: Where stage 1 came from: "computed", "memo" (in-process
        #: reuse), or "disk" (cross-run artifact cache).
        self.stage1_source = "computed"
        #: Whether this config resolves stage 0→1 to the streaming
        #: pipeline (a pure function of the config, so cold and warm
        #: runs of the same config report the same value).
        self.stage1_streamed = config.resolved_stream_chunk() is not None

    def _memsys(self) -> MemorySubsystem:
        ws = paper_ws = None
        if self.config.scale_mmu_caches:
            ws = self.workload.working_set_bytes()
            paper_ws = int(self.workload.paper_working_set_gb * (1 << 30))
        return MemorySubsystem(
            self.config.machine,
            levels=self.config.levels,
            record_refs=self.config.record_refs,
            ws_bytes=ws,
            paper_ws_bytes=paper_ws,
        )

    def walker(self, design: str) -> Walker:
        raise NotImplementedError

    def run(self, design: str, collect_steps: bool = False) -> WalkStats:
        """Replay the miss stream through one design (cached per design).

        Consults, in order: the in-process per-design memo, the
        content-addressed stage-2 result cache (when an artifact cache
        is attached and ``sanitize`` is off), and only then plans and
        replays — a warm run with unchanged inputs does zero replay.
        """
        key = f"{design}:{collect_steps}"
        stats = self._stats_cache.get(key)
        if stats is not None:
            return stats
        stats = self._fetch_stage2(design, collect_steps)
        if stats is not None:
            return stats
        with obs_trace.span("stage2.replay", env=self.env_name,
                            workload=self.workload.name, design=design,
                            thp=self.config.thp) as sp:
            walker = self.walker(design)
            stats = replay_walks(
                walker,
                self.tlb.miss_vas,
                warmup_fraction=self.config.warmup_fraction,
                collect_steps=collect_steps,
                engine=self.config.walk_engine,
            )
            if sp is not None:
                sp["walks"] = stats.walks
                sp["engine"] = stats.engine
        return self._commit_stage2(design, collect_steps, stats, walker)

    def prepare_run(self, design: str) -> PreparedCell:
        """Split ``run(design)`` for the two-level executor (DESIGN.md §15).

        Memo/result-cache consultation and all order-dependent work
        (walker build, planning, state checkout) happen now, on the
        calling thread. The returned cell's ``execute()`` may run on a
        worker thread when ``threadable``; ``commit(stats)`` must then
        run back on this thread. ``prepare -> execute -> commit`` is
        bit-identical to ``run(design)``.
        """
        key = f"{design}:False"
        stats = self._stats_cache.get(key)
        if stats is not None:
            return PreparedCell(design, stats=stats,
                                source=self.stage2_source(design))
        stats = self._fetch_stage2(design, False)
        if stats is not None:
            return PreparedCell(design, stats=stats, source="disk")
        walker = self.walker(design)
        execute, threadable = prepare_replay(
            walker, self.tlb.miss_vas,
            warmup_fraction=self.config.warmup_fraction,
            engine=self.config.walk_engine)

        def commit(stats: WalkStats) -> WalkStats:
            return self._commit_stage2(design, False, stats, walker)

        return PreparedCell(design, execute=execute, commit=commit,
                            walker=walker, threadable=threadable)

    def stage2_source(self, design: str, collect_steps: bool = False) -> str:
        """Where ``run(design)``'s stats came from: "computed" or "disk"."""
        return self._stage2_sources.get(f"{design}:{collect_steps}",
                                        "computed")

    def _result_artifacts(self):
        """The attached artifact cache, or None (no result caching)."""
        if self._stage1 is None or self.config.sanitize:
            # sanitize replays must actually run (the checks live in
            # the replay), so the result cache is bypassed entirely
            return None
        return self._stage1.artifacts

    def _miss_digest(self) -> str:
        """SHA-256 over the replayed miss stream's bytes + ref count."""
        if self._miss_digest_memo is None:
            vas = np.ascontiguousarray(self.tlb.miss_vas, dtype=np.int64)
            hasher = hashlib.sha256()
            hasher.update(vas.data)
            hasher.update(str(int(self.tlb.total_refs)).encode("ascii"))
            self._miss_digest_memo = hasher.hexdigest()
        return self._miss_digest_memo

    def _stage2_key(self, design: str, collect_steps: bool) -> list:
        """Stage-2 result-cache key: everything a replayed cell depends on.

        The miss-stream digest subsumes the stage-1 knobs (engine,
        stream_chunk — both bit-identical by contract and pinned by
        test); ``walk_engine`` is deliberately absent because all
        stage-2 engines are bit-identical on supported designs, so
        cells cached by one engine serve the others. The cost-model
        version constant invalidates every cached cell when calibrated
        latencies change.
        """
        cfg = self.config
        return [
            self.env_name, design, bool(collect_steps),
            self._miss_digest(),
            {
                "workload": self.workload.name,
                "scale": cfg.scale,
                "nrefs": cfg.nrefs,
                "seed": cfg.seed,
                "thp": cfg.thp,
                "levels": cfg.levels,
                "register_count": cfg.register_count,
                "bubble_threshold": cfg.bubble_threshold,
                "warmup_fraction": cfg.warmup_fraction,
                "record_refs": cfg.record_refs,
                "scale_mmu_caches": cfg.scale_mmu_caches,
                "machine": dataclasses.asdict(cfg.machine),
            },
            core_costs.COST_MODEL_VERSION,
        ]

    def _fetch_stage2(self, design: str,
                      collect_steps: bool) -> Optional[WalkStats]:
        """A result-cache hit's WalkStats (memoized), or None."""
        artifacts = self._result_artifacts()
        if artifacts is None:
            return None
        payload = artifacts.load_result(
            "stage2", self._stage2_key(design, collect_steps))
        if payload is None or "stats" not in payload:
            return None
        stats = _stats_from_payload(payload["stats"])
        key = f"{design}:{collect_steps}"
        self._stats_cache[key] = stats
        self._stage2_sources[key] = "disk"
        return stats

    def _commit_stage2(self, design: str, collect_steps: bool,
                       stats: WalkStats, walker: Walker) -> WalkStats:
        """Memoize a freshly replayed cell and persist it to the cache."""
        key = f"{design}:{collect_steps}"
        self._stats_cache[key] = stats
        self._stage2_sources[key] = "computed"
        artifacts = self._result_artifacts()
        if artifacts is not None:
            artifacts.store_result(
                "stage2", self._stage2_key(design, collect_steps),
                {"stats": _stats_payload(stats),
                 "state": _stage2_state(walker)},
                meta={"env": self.env_name,
                      "workload": self.workload.name,
                      "design": design})
        return stats

    def _stage1_key(self) -> tuple:
        """Stage-1 input signature: everything the miss stream depends on.

        Environment is deliberately absent — the workload layout, trace,
        page sizes, and TLB acceptance rates are functions of the
        workload and these config knobs alone, so environments sharing
        the signature share the miss stream (pinned by test).
        """
        cfg = self.config
        return (self.workload.name, cfg.scale, cfg.nrefs, cfg.seed,
                cfg.thp, cfg.levels, cfg.engine, cfg.scale_mmu_caches)

    def _trace_key(self) -> list:
        """Stage-0 artifact key: everything the address trace depends on.

        The trace is a pure function of the workload layout (workload,
        scale, THP, tree depth) and the generator inputs (nrefs, seed);
        the TLB configuration does not enter, so stage-0 artifacts are
        shared by runs that differ only in filter settings.
        """
        cfg = self.config
        return [self.workload.name, cfg.scale, cfg.nrefs, cfg.seed,
                cfg.thp, cfg.levels]

    def _generate_trace(self, layout):
        """The stage-0 address trace, via the artifact cache when attached."""
        artifacts = self._stage1.artifacts if self._stage1 is not None \
            else None
        if artifacts is None:
            return self.workload.generate_trace(layout, self.config.nrefs,
                                                self.config.seed)
        key = self._trace_key()
        loaded = artifacts.load_array("trace", key, mmap=True)
        if loaded is not None:
            return loaded[0]
        trace = self.workload.generate_trace(layout, self.config.nrefs,
                                             self.config.seed)
        artifacts.store_array("trace", key, trace, {})
        return trace

    def _accept_rates(self):
        """TLB acceptance rates for the scaled working set, or None."""
        if not self.config.scale_mmu_caches:
            return None
        ws = self.workload.working_set_bytes()
        paper_ws = int(self.workload.paper_working_set_gb * (1 << 30))
        if ws < paper_ws:
            return tlb_accept_rates(self.config.machine, ws, paper_ws)
        return None

    def _stream_stage1(self, process, layout, chunk: int) -> TLBFilterResult:
        """Constant-memory stage 0→1: filter the trace as chunks arrive.

        A producer thread generates trace chunk *k+1* while the main
        thread TLB-filters chunk *k* — the generator is NumPy-bound and
        releases the GIL, so the two overlap. Miss segments spill to
        disk as they are produced (segmented artifact under the stage-1
        key when a cache is attached, a temporary directory otherwise)
        and are assembled at the end into one preallocated array, so
        peak memory is the miss stream plus a few in-flight chunks —
        never the trace. Bit-identical to the monolithic path: the
        chunked generators honour the RNG contract and
        :class:`~repro.sim.tlb_vec.TLBFilterStream` carries TLB/LRU
        state across chunk boundaries (DESIGN.md §13).
        """
        cfg = self.config
        artifacts = self._stage1.artifacts if self._stage1 is not None \
            else None
        total_refs = self.workload.trace_length(cfg.nrefs)
        filt = tlb_vec.TLBFilterStream(
            cfg.machine, make_size_lookup(process.page_table),
            accept_rates=self._accept_rates())

        # Trace segments: reuse a segmented stage-0 artifact when one is
        # on disk; otherwise generate, spilling segments for next time.
        trace_reader = trace_writer = None
        if artifacts is not None:
            trace_reader = artifacts.open_segments("trace",
                                                   self._trace_key())
            if trace_reader is None:
                trace_writer = artifacts.segment_writer(
                    "trace", self._trace_key())

        stop = threading.Event()
        done = object()
        feed: "queue.Queue" = queue.Queue(maxsize=2)

        def enqueue(item) -> bool:
            """Bounded put that gives up once the consumer has failed."""
            while not stop.is_set():
                try:
                    feed.put(item, timeout=0.1)
                    return True
                except queue.Full:
                    continue
            return False

        def produce() -> None:
            try:
                if trace_reader is not None:
                    pieces = iter(trace_reader)
                else:
                    pieces = self.workload.generate_trace_chunks(
                        layout, cfg.nrefs, cfg.seed, chunk)
                for piece in pieces:
                    if trace_writer is not None:
                        trace_writer.append(piece)
                    if not enqueue(piece):
                        return          # consumer failed; bail out
                enqueue(done)
            except BaseException as exc:  # propagate into the consumer
                enqueue(exc)

        refs_counter = metrics.counter("stage1.stream.refs")
        producer = threading.Thread(target=produce, name="stage0-producer",
                                    daemon=True)
        start = time.perf_counter()
        spill_dir = None
        miss_writer = None
        if artifacts is not None:
            miss_writer = artifacts.segment_writer(
                "stage1", list(self._stage1_key()))
        else:
            spill_dir = tempfile.TemporaryDirectory(prefix="repro-stage1-")
        spill_files = []
        try:
            producer.start()
            index = 0
            while True:
                item = feed.get()
                if item is done:
                    break
                if isinstance(item, BaseException):
                    raise item
                with obs_trace.span("stage1.stream_chunk", index=index,
                                    refs=len(item)) as sp:
                    segment = filt.feed(item)
                    if sp is not None:
                        sp["misses"] = int(segment.size)
                refs_counter.inc(len(item))
                if segment.size:
                    if miss_writer is not None:
                        miss_writer.append(segment)
                    else:
                        path = os.path.join(spill_dir.name,
                                            f"miss{len(spill_files)}.npy")
                        np.save(path, segment, allow_pickle=False)
                        spill_files.append((path, int(segment.size)))
                index += 1
        except BaseException:
            stop.set()
            producer.join()
            if miss_writer is not None:
                miss_writer.abort()
            if trace_writer is not None:
                trace_writer.abort()
            if spill_dir is not None:
                spill_dir.cleanup()
            raise
        producer.join()
        seconds = time.perf_counter() - start
        if seconds > 0:
            metrics.gauge("stage1.stream.refs_per_sec").set(
                filt.total_refs / seconds)
        metrics.gauge("stage1.stream.peak_rss_kb").set(
            obs_trace.peak_rss_kb())

        if filt.total_refs != total_refs:
            if miss_writer is not None:
                miss_writer.abort()
            if trace_writer is not None:
                trace_writer.abort()
            if spill_dir is not None:
                spill_dir.cleanup()
            raise RuntimeError(
                f"streamed {filt.total_refs} refs, expected {total_refs}")
        if trace_writer is not None:
            trace_writer.commit()

        # Assemble the miss stream from the spilled segments: the result
        # array plus one memmapped segment at a time.
        misses = np.empty(filt.total_misses, dtype=np.int64)
        pos = 0
        if miss_writer is not None:
            miss_writer.commit({"total_refs": total_refs,
                                "seconds": seconds})
            self._stage1.mark_persisted()
            segments = iter(miss_writer.reader())
        else:
            segments = (np.load(path, mmap_mode="r")
                        for path, _rows in spill_files)
        for segment in segments:
            misses[pos:pos + len(segment)] = segment
            pos += len(segment)
        if spill_dir is not None:
            spill_dir.cleanup()
        return TLBFilterResult(misses, total_refs)

    def _trace_and_filter(self, process, layout) -> TLBFilterResult:
        stream_chunk = self.config.resolved_stream_chunk()

        def build() -> TLBFilterResult:
            with obs_trace.span("stage1", workload=self.workload.name,
                                thp=self.config.thp,
                                streamed=stream_chunk is not None) as sp:
                if stream_chunk is not None:
                    result = self._stream_stage1(process, layout,
                                                 stream_chunk)
                else:
                    trace = self._generate_trace(layout)
                    result = tlb_filter(
                        trace, self.config.machine,
                        make_size_lookup(process.page_table),
                        accept_rates=self._accept_rates(),
                        engine=self.config.engine)
                if sp is not None:
                    sp["refs"] = result.total_refs
                    sp["misses"] = result.miss_count
            return result

        if self._stage1 is None:
            start = time.perf_counter()
            result = build()
            self.stage1_seconds = time.perf_counter() - start
            self.stage1_reused = False
            self.stage1_source = "computed"
            return result
        result = self._stage1.fetch(self._stage1_key(), build)
        self.stage1_seconds = self._stage1.last_seconds
        self.stage1_reused = self._stage1.last_reused
        self.stage1_source = self._stage1.last_source
        return result


class NativeSimulation(_SimulationBase):
    """Bare-metal environment (Figure 14)."""

    designs = ("vanilla", "fpt", "ecpt", "asap", "dmt")
    env_name = "native"

    def __init__(self, workload_name: str, config: Optional[SimConfig] = None,
                 stage1: Optional[Stage1Cache] = None):
        super().__init__(workload_name, config or SimConfig(), stage1)
        ws = self.workload.working_set_bytes()
        mem_bytes = _page_align(ws * 2 + 256 * _MB)
        self.kernel = Kernel(memory_bytes=mem_bytes, thp_enabled=self.config.thp,
                             levels=self.config.levels)
        self.dmt = DMTLinux(
            self.kernel,
            register_count=self.config.register_count,
            bubble_threshold=self.config.bubble_threshold,
        )
        self.process = self.kernel.create_process(self.workload.name)
        self.layout = self.workload.install(self.process)
        self.dmt.reload_registers(self.process)
        self.tlb = self._trace_and_filter(self.process, self.layout)
        self._ecpt: Optional[ElasticCuckooPageTables] = None
        self._fpt: Optional[FlattenedPageTable] = None

    # lazily built mirrors ------------------------------------------------ #

    def ecpt(self) -> ElasticCuckooPageTables:
        if self._ecpt is None:
            self._ecpt = ElasticCuckooPageTables(self.kernel.memory)
            self._ecpt.load_from_radix(self.process.page_table)
        return self._ecpt

    def fpt(self) -> FlattenedPageTable:
        if self._fpt is None:
            self._fpt = FlattenedPageTable(self.kernel.memory)
            self._fpt.load_from_radix(self.process.page_table)
        return self._fpt

    def walker(self, design: str) -> Walker:
        memsys = self._memsys()
        if design == "vanilla":
            return NativeRadixWalker(self.process.page_table, memsys)
        if design == "fpt":
            return FPTNativeWalker(self.fpt(), memsys, probe_huge=self.config.thp)
        if design == "ecpt":
            return ECPTNativeWalker(self.ecpt(), memsys)
        if design == "asap":
            return ASAPNativeWalker(self.process.page_table, memsys)
        if design == "dmt":
            self.dmt.reload_registers(self.process)
            fallback = NativeRadixWalker(self.process.page_table, memsys)
            return DMTNativeWalker(self.dmt.register_file, fallback, memsys,
                                   self.kernel.memory.read_word)
        raise KeyError(f"unknown native design {design!r}")


class VirtSimulation(_SimulationBase):
    """Single-level virtualization (Figure 15)."""

    designs = ("vanilla", "shadow", "fpt", "ecpt", "agile", "asap",
               "dmt", "pvdmt")
    env_name = "virt"

    def __init__(self, workload_name: str, config: Optional[SimConfig] = None,
                 stage1: Optional[Stage1Cache] = None):
        super().__init__(workload_name, config or SimConfig(), stage1)
        cfg = self.config
        ws = self.workload.working_set_bytes()
        guest_bytes = _page_align(int(ws * 1.3) + 128 * _MB)
        host_bytes = _page_align(guest_bytes + ws + 384 * _MB)

        self.host_kernel = Kernel(memory_bytes=host_bytes, thp_enabled=cfg.thp,
                                  levels=cfg.levels)
        self.host_dmt = DMTLinux(
            self.host_kernel, register_set=RegisterSet.NATIVE,
            register_count=cfg.register_count,
            bubble_threshold=cfg.bubble_threshold,
        )
        self.hypervisor = Hypervisor(self.host_kernel)
        self.vm = self.hypervisor.create_vm(guest_bytes, thp_enabled=cfg.thp,
                                            levels=cfg.levels)
        self.host_dmt.attach_ept(self.vm, host_thp=cfg.thp)

        # pvDMT plumbing: guest TEAs come from the host via hypercall.
        self.pv_host = PvDMTHost(self.vm, ledger=self.host_dmt.ledger)
        self.pv_alloc = PvTEAAllocator(self.pv_host)
        self.guest_dmt = DMTLinux(
            self.vm.guest_kernel, register_set=RegisterSet.GUEST,
            register_file=self.host_dmt.register_file,
            environment=MgmtEnv.VIRTUALIZED,
            register_count=cfg.register_count,
            bubble_threshold=cfg.bubble_threshold,
            tea_allocator=self.pv_alloc,
        )

        self.process = self.vm.guest_kernel.create_process(self.workload.name)
        self.layout = self.workload.install(self.process)

        # Back the whole guest-physical space (pre-touched VM memory), with
        # 2 MB host pages when host THP is on.
        self.vm.back_range(
            0, guest_bytes,
            PageSize.SIZE_2M if cfg.thp else PageSize.SIZE_4K,
        )
        self.guest_dmt.reload_registers(self.process)
        self.host_dmt.register_file.load(
            RegisterSet.NATIVE, self.host_dmt.host_registers_for_vm(self.vm)
        )

        self.read_machine = machine_reader(self.host_kernel.memory, [self.vm])
        self.tlb = self._trace_and_filter(self.process, self.layout)
        self._shadow: Optional[ShadowPager] = None
        self._guest_ecpt: Optional[ElasticCuckooPageTables] = None
        self._host_ecpt: Optional[ElasticCuckooPageTables] = None
        self._guest_fpt: Optional[FlattenedPageTable] = None
        self._host_fpt: Optional[FlattenedPageTable] = None

    # lazily built mirrors ------------------------------------------------ #

    def shadow(self) -> ShadowPager:
        if self._shadow is None:
            self._shadow = ShadowPager(self.vm, self.process)
            self._shadow.sync()
        return self._shadow

    def guest_ecpt(self) -> ElasticCuckooPageTables:
        if self._guest_ecpt is None:
            self._guest_ecpt = ElasticCuckooPageTables(self.vm.guest_memory)
            self._guest_ecpt.load_from_radix(self.process.page_table)
            # ensure the new guest table pages are host-backed
            self.vm.back_range(0, self.vm.memory_bytes)
            self._host_ecpt = None  # host view must include the new pages
        return self._guest_ecpt

    def host_ecpt(self) -> ElasticCuckooPageTables:
        if self._host_ecpt is None:
            self._host_ecpt = ElasticCuckooPageTables(self.host_kernel.memory)
            self._host_ecpt.load_from_radix(self.vm.ept)
        return self._host_ecpt

    def guest_fpt(self) -> FlattenedPageTable:
        if self._guest_fpt is None:
            self._guest_fpt = FlattenedPageTable(self.vm.guest_memory)
            self._guest_fpt.load_from_radix(self.process.page_table)
            self.vm.back_range(0, self.vm.memory_bytes)
            self._host_fpt = None
        return self._guest_fpt

    def host_fpt(self) -> FlattenedPageTable:
        if self._host_fpt is None:
            self._host_fpt = FlattenedPageTable(self.host_kernel.memory)
            self._host_fpt.load_from_radix(self.vm.ept)
        return self._host_fpt

    # walkers -------------------------------------------------------------- #

    def walker(self, design: str) -> Walker:
        memsys = self._memsys()
        if design == "vanilla":
            return NestedRadixWalker(self.process.page_table, self.vm, memsys)
        if design == "shadow":
            return ShadowWalker(self.shadow().spt, memsys)
        if design == "fpt":
            guest = self.guest_fpt()
            return FPTNestedWalker(guest, self.host_fpt(), self.vm, memsys,
                                   probe_huge=self.config.thp)
        if design == "ecpt":
            guest = self.guest_ecpt()
            return ECPTNestedWalker(guest, self.host_ecpt(), self.vm, memsys)
        if design == "agile":
            return AgilePagingWalker(self.process.page_table,
                                     self.shadow().spt, self.vm, memsys)
        if design == "asap":
            return ASAPNestedWalker(self.process.page_table, self.vm, memsys)
        if design == "dmt":
            self.guest_dmt.reload_registers(self.process)
            fallback = NestedRadixWalker(self.process.page_table, self.vm,
                                         memsys)
            return DMTVirtWalker(self.host_dmt.register_file, fallback,
                                 memsys, self.read_machine)
        if design == "pvdmt":
            self.guest_dmt.reload_registers(self.process)
            fallback = NestedRadixWalker(self.process.page_table, self.vm,
                                         memsys)
            return PvDMTVirtWalker(self.host_dmt.register_file,
                                   self.pv_host.gtea_table, fallback, memsys,
                                   self.read_machine)
        raise KeyError(f"unknown virtualized design {design!r}")


class _L2ShadowAdapter:
    """Presents the nested shadow table as the 'host table' of a 2D walk.

    Vanilla nested KVM translates L2VA with a 2D walk over the L2 page
    table and the L0-maintained sPT (L2PA -> L0PA) — see §2.1.3.
    """

    def __init__(self, nested: NestedSetup):
        self.nested = nested
        self.ept = nested.shadow.spt

    def gpa_to_hpa(self, l2pa: int) -> int:
        translated = self.ept.translate(l2pa)
        if translated is not None:
            return translated[0]
        # lazily extend the shadow for newly backed pages
        l0pa = self.nested.l2pa_to_l0pa(l2pa)
        self.ept.map((l2pa >> PAGE_SHIFT) << PAGE_SHIFT,
                     l0pa >> PAGE_SHIFT, PageSize.SIZE_4K)
        return l0pa


class NestedSimulation(_SimulationBase):
    """Nested virtualization (Figure 17)."""

    designs = ("vanilla", "pvdmt")
    env_name = "nested"

    def __init__(self, workload_name: str, config: Optional[SimConfig] = None,
                 stage1: Optional[Stage1Cache] = None):
        super().__init__(workload_name, config or SimConfig(), stage1)
        cfg = self.config
        ws = self.workload.working_set_bytes()
        l2_bytes = _page_align(int(ws * 1.3) + 128 * _MB)
        l1_bytes = _page_align(l2_bytes + ws // 2 + 256 * _MB)
        l0_bytes = _page_align(l1_bytes + ws + 512 * _MB)

        self.host_kernel = Kernel(memory_bytes=l0_bytes, thp_enabled=cfg.thp,
                                  levels=cfg.levels)
        self.l0_dmt = DMTLinux(
            self.host_kernel, register_set=RegisterSet.NATIVE,
            register_count=cfg.register_count,
        )
        self.nested = NestedSetup(self.host_kernel, l1_bytes, l2_bytes,
                                  thp_enabled=cfg.thp, levels=cfg.levels)
        l1_vm, l2_vm = self.nested.l1_vm, self.nested.l2_vm

        # L0 manages L1's EPT leaves in L0 TEAs (hVMA-to-hTEA).
        self.l0_dmt.attach_ept(l1_vm, host_thp=cfg.thp)

        # L1 manages L2's host table (the L1PT) with TEAs obtained from L0
        # via the cascaded hypercall (§4.5.3).
        self.pv_l1_host = PvDMTHost(l1_vm, nested=False)
        self.pv_l1_alloc = PvTEAAllocator(self.pv_l1_host)
        self.l1_dmt = DMTLinux(
            l1_vm.guest_kernel, register_set=RegisterSet.GUEST,
            register_file=self.l0_dmt.register_file,
            environment=MgmtEnv.VIRTUALIZED,
            register_count=cfg.register_count,
            tea_allocator=self.pv_l1_alloc,
        )
        self.l1_dmt.attach_ept(l2_vm, host_thp=cfg.thp)

        # L2's own TEAs: allocated through L1, which forwards to L0.
        self.pv_l2_host = PvDMTHost(l2_vm, upstream=self.pv_l1_alloc,
                                    nested=True)
        self.pv_l2_alloc = PvTEAAllocator(self.pv_l2_host)
        self.l2_dmt = DMTLinux(
            l2_vm.guest_kernel, register_set=RegisterSet.NESTED,
            register_file=self.l0_dmt.register_file,
            environment=MgmtEnv.NESTED,
            register_count=cfg.register_count,
            tea_allocator=self.pv_l2_alloc,
        )

        self.process = l2_vm.guest_kernel.create_process(self.workload.name)
        self.layout = self.workload.install(self.process)

        size = PageSize.SIZE_2M if cfg.thp else PageSize.SIZE_4K
        l2_vm.back_range(0, l2_bytes, size)
        l1_vm.back_range(0, l1_bytes, size)

        self.l2_dmt.reload_registers(self.process)
        self._load_l1_registers()
        self.l0_dmt.register_file.load(
            RegisterSet.NATIVE, self.l0_dmt.host_registers_for_vm(l1_vm)
        )

        self.nested.enable_shadow()
        self.nested.shadow.sync()
        self.read_machine = machine_reader(self.host_kernel.memory,
                                           [l1_vm, l2_vm])
        self.tlb = self._trace_and_filter(self.process, self.layout)

    def _load_l1_registers(self) -> None:
        manager = self.l1_dmt.ept_mappings[self.nested.l2_vm.vm_id]
        manager.run_migrations()
        gtea_ids = {
            tea.tea_id: self.pv_l1_alloc.gtea_id_for(tea.base_frame)
            for cluster in manager.clusters
            for tea in cluster.all_teas()
        }
        self.l0_dmt.register_file.load(
            RegisterSet.GUEST, manager.build_registers(gtea_ids)
        )

    def walker(self, design: str) -> Walker:
        memsys = self._memsys()
        if design == "vanilla":
            adapter = _L2ShadowAdapter(self.nested)
            return NestedRadixWalker(self.process.page_table, adapter, memsys)
        if design == "pvdmt":
            self.l2_dmt.reload_registers(self.process)
            self._load_l1_registers()
            adapter = _L2ShadowAdapter(self.nested)
            fallback = NestedRadixWalker(self.process.page_table, adapter,
                                         memsys)
            return PvDMTNestedWalker(
                self.l0_dmt.register_file,
                self.pv_l2_host.gtea_table,
                self.pv_l1_host.gtea_table,
                fallback, memsys, self.read_machine,
            )
        raise KeyError(f"unknown nested design {design!r}")


ENVIRONMENTS = {
    "native": NativeSimulation,
    "virt": VirtSimulation,
    "nested": NestedSimulation,
}
