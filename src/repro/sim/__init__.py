"""Simulation engine: TLB filtering, walk replay, §5 performance model."""

from repro.sim.calibration import CALIBRATION, EnvProfile, WorkloadProfile, profile
from repro.sim.machine import (
    ENVIRONMENTS,
    NativeSimulation,
    NestedSimulation,
    SimConfig,
    VirtSimulation,
)
from repro.sim.multiproc import MultiProcessSimulation, MultiProcessStats
from repro.sim.perfmodel import AppliedModel, apply_model, baseline_times, model_from_stats
from repro.sim.simulator import (
    SizeClassifier,
    Stage1Cache,
    TLBFilterResult,
    WalkStats,
    geomean,
    make_size_lookup,
    replay_walks,
    tlb_filter,
    tlb_filter_scalar,
)
from repro.sim.sweep import build_sim, load_sweep, run_sweep

__all__ = [
    "CALIBRATION",
    "EnvProfile",
    "WorkloadProfile",
    "profile",
    "ENVIRONMENTS",
    "NativeSimulation",
    "NestedSimulation",
    "SimConfig",
    "VirtSimulation",
    "MultiProcessSimulation",
    "MultiProcessStats",
    "AppliedModel",
    "apply_model",
    "baseline_times",
    "model_from_stats",
    "SizeClassifier",
    "Stage1Cache",
    "TLBFilterResult",
    "WalkStats",
    "geomean",
    "make_size_lookup",
    "replay_walks",
    "tlb_filter",
    "tlb_filter_scalar",
    "build_sim",
    "load_sweep",
    "run_sweep",
]
