"""Multi-process simulation: context switches and DMT register reloads.

The DMT registers are part of the task state: "during a context switch,
registers of the new process are reloaded" (§3, §4.1). This module
interleaves several workloads on one simulated core with a miss-quantum
scheduler, reloading the register file at each switch, so the cost and
coverage effects of context switching can be measured:

* register reloads are counted and charged into the per-design latency
  (a few hundred cycles of OS work per switch, §4.6.2's ``switch_mm``
  path — modeled, not dominant): ``mean_latency`` reflects
  ``charged_cycles = walk_cycles + register_reload_cycles`` so the
  switch cost shows up in the number designs are compared by;
* the TLB is ASID-tagged, so translations of the switched-out process
  survive (as on real x86 with PCIDs);
* the PTE-side caches are shared, so processes evict each other's
  page-table lines — the cross-process interference DMT is insensitive
  to (one fetch) but multi-level walks are not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.dmt_os import DMTLinux
from repro.kernel.kernel import Kernel
from repro.obs import metrics
from repro.obs import trace as obs_trace
from repro.sim.machine import SimConfig, _page_align
from repro.sim.simulator import make_size_lookup, tlb_filter
from repro.translation.base import MemorySubsystem, Walker
from repro.translation.dmt import DMTNativeWalker
from repro.translation.radix import NativeRadixWalker
from repro.workloads import generators

_MB = 1 << 20

#: Modeled cycles for reloading the 16 DMT registers on a switch
#: (register writes + mm_struct bookkeeping, §4.6.2).
REGISTER_RELOAD_CYCLES = 120


@dataclass
class MultiProcessStats:
    switches: int = 0
    register_reload_cycles: int = 0
    per_design: Dict[str, Dict[str, float]] = field(default_factory=dict)


class MultiProcessSimulation:
    """Several native workloads sharing one core and one cache hierarchy."""

    def __init__(self, workload_names: List[str],
                 config: Optional[SimConfig] = None,
                 quantum_misses: int = 200):
        self.config = config or SimConfig()
        self.quantum = quantum_misses
        self.workloads = [generators.get(name, self.config.scale)
                          for name in workload_names]
        total_ws = sum(w.working_set_bytes() for w in self.workloads)
        self.kernel = Kernel(memory_bytes=_page_align(total_ws * 2 + 256 * _MB),
                             thp_enabled=self.config.thp)
        self.dmt = DMTLinux(self.kernel,
                            register_count=self.config.register_count)
        self.processes = []
        self.miss_streams: List[List[int]] = []
        for workload in self.workloads:
            process = self.kernel.create_process(workload.name)
            layout = workload.install(process)
            trace = workload.generate_trace(layout, self.config.nrefs,
                                            self.config.seed)
            misses = tlb_filter(trace, self.config.machine,
                                make_size_lookup(process.page_table),
                                asid=process.asid,
                                engine=self.config.engine).miss_vas
            self.processes.append(process)
            # plain ints: the interleaver re-slices these streams per
            # quantum and the walkers expect native integers
            self.miss_streams.append(misses.tolist())

    def _interleaved(self):
        """Yield (process index, va) in quantum-sized slices."""
        cursors = [0] * len(self.miss_streams)
        active = True
        while active:
            active = False
            for index, stream in enumerate(self.miss_streams):
                start = cursors[index]
                if start >= len(stream):
                    continue
                active = True
                for va in stream[start:start + self.quantum]:
                    yield index, va
                cursors[index] = start + self.quantum

    def run(self, design: str = "dmt") -> MultiProcessStats:
        """Replay all processes' misses with quantum-interleaved switches.

        ``per_design[design]`` reports ``walk_cycles`` (translation work
        alone), ``charged_cycles`` (walk cycles plus the register-reload
        cost of every switch), and a ``mean_latency`` computed from the
        charged total — so designs pay for the switches they cause.
        """
        stats = MultiProcessStats()
        switch_counter = metrics.counter("multiproc.switches")
        reload_counter = metrics.counter("multiproc.register_reload_cycles")
        memsys = MemorySubsystem(self.config.machine,
                                 record_refs=self.config.record_refs)
        walkers: List[Walker] = []
        for process in self.processes:
            if design == "dmt":
                fallback = NativeRadixWalker(process.page_table, memsys)
                walkers.append(DMTNativeWalker(
                    self.dmt.register_file, fallback, memsys,
                    self.kernel.memory.read_word))
            elif design == "vanilla":
                walkers.append(NativeRadixWalker(process.page_table, memsys))
            else:
                raise KeyError(f"unknown multi-process design {design!r}")

        current = -1
        walk_cycles = 0
        walks = 0
        fallbacks = 0
        with obs_trace.span("multiproc.run", design=design,
                            processes=len(self.processes)) as sp:
            for index, va in self._interleaved():
                if index != current:
                    # Context switch: the OS reloads the DMT register set,
                    # and the CR3 write flushes the (untagged) page-walk
                    # caches — the refill cost falls on multi-level walks,
                    # not on DMT.
                    self.kernel.context_switch(self.processes[index])
                    memsys.pwc.flush()
                    memsys.guest_pwc.flush()
                    stats.switches += 1
                    switch_counter.inc()
                    stats.register_reload_cycles += REGISTER_RELOAD_CYCLES
                    reload_counter.inc(REGISTER_RELOAD_CYCLES)
                    current = index
                result = walkers[index].translate(va)
                walk_cycles += result.cycles
                walks += 1
                if result.fallback:
                    fallbacks += 1
            if sp is not None:
                sp["walks"] = walks
                sp["switches"] = stats.switches
        # The reload cycles are part of the time the core spends on
        # translation state, so they belong in the latency designs are
        # compared by and in the denominator of the overhead fraction.
        charged_cycles = walk_cycles + stats.register_reload_cycles
        stats.per_design[design] = {
            "walks": walks,
            "walk_cycles": walk_cycles,
            "charged_cycles": charged_cycles,
            "mean_latency": charged_cycles / walks if walks else 0.0,
            "fallback_rate": fallbacks / walks if walks else 0.0,
            "switch_overhead_fraction": (
                stats.register_reload_cycles / charged_cycles
                if charged_cycles else 0.0
            ),
        }
        return stats
