"""The shard scheduler: fan pending shards over a pool, journal, retry.

One :class:`JobScheduler` owns one job directory. ``run()`` replays the
journal, serves already-completed shards from it (counted in the
``sweep.resumed_groups`` metric), and fans the missing shards over a
worker pool in *rounds*:

* each round submits at most ``pool_size`` shards at a time, so a
  submitted shard starts (approximately) immediately and the per-shard
  ``shard_timeout`` can be measured from submission;
* a shard whose worker process dies (``BrokenProcessPool`` — OOM kill,
  segfault) or that exceeds its timeout *charges an attempt* and is
  re-queued for the next round after an exponential backoff, up to
  ``max_retries`` re-runs; shards the broken/abandoned pool never
  started are re-queued without charge;
* a timed-out shard's worker cannot be reclaimed through the Executor
  API, so the whole pool is abandoned (terminated) and the next round
  starts a fresh one;
* every completed shard is fsync-appended to the journal *before* the
  scheduler moves on, so a SIGKILL at any instant loses at most the
  shards in flight.

Exceptions *inside* a group (a bad design, a failing machine build)
never reach the scheduler — :func:`~repro.sim.sweep.run_group` converts
them to per-cell error records, and the shard completes normally.
Retries are for infrastructure failures only.

A shard that exhausts its retries is journaled as ``failed`` and
contributes one fabricated error cell per (environment, design)
(:func:`~repro.sim.sweep.dead_group_cells`), so the final document's
cell count still matches a healthy run's.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs import metrics
from repro.obs import trace as obs_trace
from repro.sim.jobs import journal as jn
from repro.sim.jobs.spec import JobSpec, Shard
from repro.sim.sweep import (ALL_WORKLOADS, cell_sort_key, dead_group_cells,
                             effective_workers, run_group, write_document)

#: How long one ``wait()`` poll blocks before re-checking timeouts/cancel.
POLL_SECONDS = 0.2
#: Minimum spacing of poll-driven heartbeat records (completion-driven
#: ones are unthrottled — each marks real progress).
HEARTBEAT_SECONDS = 5.0
#: Default cap on re-runs of a shard after infrastructure failures.
DEFAULT_MAX_RETRIES = 2
#: Base of the exponential inter-round backoff, in seconds.
DEFAULT_BACKOFF = 0.5
#: Longest single backoff sleep, however many retries accumulated.
MAX_BACKOFF_SECONDS = 30.0

#: Cell keys that vary run-to-run on identical results (wall time, pids,
#: RSS, cache provenance) — what resume-identity checks must ignore.
VOLATILE_CELL_KEYS = (
    "replay_seconds", "walks_per_second", "build_seconds",
    "stage1_seconds", "stage1_reused", "stage1_source",
    "stage2_source", "group_seconds",
    "peak_rss_kb", "worker_pid",
)


def stable_cells(cells: List[Dict]) -> List[Dict]:
    """Cells with volatile telemetry stripped, in document order."""
    return [{key: value for key, value in cell.items()
             if key not in VOLATILE_CELL_KEYS}
            for cell in sorted(cells, key=cell_sort_key)]


class JobScheduler:
    """Run (or resume) one sweep job to completion."""

    def __init__(self, spec: JobSpec, job_dir: str, *,
                 workers: Optional[int] = None,
                 shard_timeout: Optional[float] = None,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 backoff: float = DEFAULT_BACKOFF,
                 out_path: Optional[str] = None,
                 trace_path: Optional[str] = None,
                 artifact_dir: Optional[str] = None,
                 cell_threads: Optional[int] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 run_fn: Optional[Callable] = None):
        self.spec = spec
        self.job_dir = job_dir
        self.workers = workers if workers is not None \
            else (os.cpu_count() or 1)
        self.shard_timeout = shard_timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.out_path = out_path
        self.trace_path = trace_path
        self.artifact_dir = artifact_dir
        self.cell_threads = max(1, int(cell_threads or 1))
        self.notify = progress or (lambda message: None)
        # Injectable for tests (suicidal/sleeping workers); must be
        # picklable for the pool path.
        self._run_fn = run_fn or run_group
        self.journal: Optional[jn.Journal] = None
        self._shards = spec.shards()
        self._total = len(self._shards)
        self._journal_cells: Dict[str, List[Dict]] = {}
        self._new_cells: Dict[str, List[Dict]] = {}
        self._failed: Dict[str, str] = {}
        self._failures: Dict[str, int] = {}
        self._cancelled = False
        self._last_heartbeat = float("-inf")
        # Parent-side sweep-wide counters (pool workers count in their
        # own registries), same names as the one-shot runner plus the
        # job-layer resume/retry telemetry.
        self._groups_done = metrics.counter("sweep.groups")
        self._cells_done = metrics.counter("sweep.cells")
        self._errors_seen = metrics.counter("sweep.error_cells")
        self._resumed = metrics.counter("sweep.resumed_groups")
        self._retried = metrics.counter("sweep.retried_shards")

    # ------------------------------------------------------------------
    # journal interaction

    def _attach(self) -> None:
        """Open (or create) the journal and load completed shards."""
        os.makedirs(self.job_dir, exist_ok=True)
        path = jn.journal_path(self.job_dir)
        records, torn = jn.read_journal(path)
        if torn:
            # Truncate the half-appended record so our own appends
            # start on a fresh line; its shard simply re-runs.
            jn.repair_journal(path)
        header = jn.job_record(records)
        if header is not None and header.get("job_id") != self.spec.job_id:
            raise ValueError(
                f"job directory {self.job_dir!r} belongs to job "
                f"{header.get('job_id')!r}, not {self.spec.job_id!r}; "
                f"refusing to mix grids in one journal")
        self.journal = jn.Journal(path)
        if header is None:
            self.journal.append({
                "type": "job",
                "job_id": self.spec.job_id,
                "spec": self.spec.canonical(),
                "unix": time.time(),
            })
        else:
            self.journal.append({
                "type": "resume",
                "job_id": self.spec.job_id,
                "torn_tail": torn,
                "pid": os.getpid(),
                "unix": time.time(),
            })
        valid = {shard.shard_id for shard in self._shards}
        for shard_id, record in jn.completed_shards(records).items():
            if shard_id in valid:
                self._journal_cells[shard_id] = record["cells"]
        self._resumed.inc(len(self._journal_cells))

    def _heartbeat(self, running: List[str], force: bool = True) -> None:
        now = time.monotonic()
        if not force and now - self._last_heartbeat < HEARTBEAT_SECONDS:
            return
        self._last_heartbeat = now
        self.journal.append({
            "type": "heartbeat",
            "done": len(self._journal_cells) + len(self._new_cells),
            "total": self._total,
            "failed": sorted(self._failed),
            "running": running,
            "pid": os.getpid(),
            "unix": time.time(),
        })

    def _record_shard(self, shard: Shard, cells: List[Dict],
                      seconds: float) -> None:
        """Journal one completed shard — durability point for its cells."""
        self.journal.append({
            "type": "shard",
            "shard_id": shard.shard_id,
            "attempt": self._failures.get(shard.shard_id, 0) + 1,
            "seconds": seconds,
            "pid": os.getpid(),
            "unix": time.time(),
            "cells": cells,
        })
        self._new_cells[shard.shard_id] = cells
        self._groups_done.inc()
        self._cells_done.inc(len(cells))
        self._errors_seen.inc(sum(1 for cell in cells if "error" in cell))
        done = len(self._journal_cells) + len(self._new_cells)
        self.notify(f"[{done}/{self._total}] {shard.shard_id} done")

    def _cancel_requested(self) -> bool:
        if not self._cancelled and \
                os.path.exists(jn.cancel_path(self.job_dir)):
            self._cancelled = True
            self.journal.append({"type": "cancel", "pid": os.getpid(),
                                 "unix": time.time()})
            self.notify("cancel requested; draining")
        return self._cancelled

    # ------------------------------------------------------------------
    # rounds

    def _charge_failure(self, shard: Shard, error: str) -> None:
        """Count one failed attempt; re-queue or give up on the shard."""
        failures = self._failures.get(shard.shard_id, 0) + 1
        self._failures[shard.shard_id] = failures
        if failures <= self.max_retries:
            backoff = min(self.backoff * (2 ** (failures - 1)),
                          MAX_BACKOFF_SECONDS)
            self._retried.inc()
            self.journal.append({
                "type": "retry", "shard_id": shard.shard_id,
                "attempt": failures, "error": error,
                "backoff_seconds": backoff, "unix": time.time(),
            })
            self.notify(f"retrying {shard.shard_id} "
                        f"(attempt {failures + 1}) after {error}")
        else:
            self._failed[shard.shard_id] = error
            self.journal.append({
                "type": "failed", "shard_id": shard.shard_id,
                "attempts": failures, "error": error, "unix": time.time(),
            })
            self.notify(f"{shard.shard_id} FAILED after "
                        f"{failures} attempts: {error}")

    def _run_inline_round(
            self, shards: List[Shard]) -> Tuple[List[Tuple[Shard, str]],
                                                List[Shard]]:
        """Run a round in-process; timeouts are not enforced inline."""
        charged: List[Tuple[Shard, str]] = []
        for index, shard in enumerate(shards):
            if self._cancel_requested():
                return charged, shards[index:]
            task = self.spec.task(shard, self.trace_path, self.artifact_dir,
                                  self.cell_threads)
            started = time.perf_counter()
            try:
                cells = self._run_fn(task)
            except Exception as exc:
                charged.append((shard, f"{type(exc).__name__}: {exc}"))
            else:
                self._record_shard(shard, cells,
                                   time.perf_counter() - started)
                self._heartbeat(running=[])
        return charged, []

    def _run_pool_round(
            self, shards: List[Shard],
            pool_size: int) -> Tuple[List[Tuple[Shard, str]], List[Shard]]:
        """Run one round over a fresh pool.

        Returns ``(charged, leftovers)``: shards whose attempt failed
        (worker death, timeout) and shards the round never started
        (broken/abandoned pool, cancel) that re-queue without charge.
        """
        charged: List[Tuple[Shard, str]] = []
        pending = list(shards)
        running: Dict = {}  # future -> (shard, submitted_monotonic, perf0)
        abandoned = False
        pool = ProcessPoolExecutor(max_workers=pool_size)
        try:
            while pending or running:
                if self._cancel_requested():
                    break
                broken = False
                while pending and len(running) < pool_size:
                    shard = pending[0]
                    task = self.spec.task(shard, self.trace_path,
                                          self.artifact_dir,
                                          self.cell_threads)
                    try:
                        future = pool.submit(self._run_fn, task)
                    except (BrokenProcessPool, RuntimeError):
                        broken = True
                        break
                    pending.pop(0)
                    running[future] = (shard, time.monotonic(),
                                      time.perf_counter())
                if not running:
                    if broken:
                        abandoned = True
                    break
                done, _ = wait(set(running), timeout=POLL_SECONDS,
                               return_when=FIRST_COMPLETED)
                for future in done:
                    shard, _, perf0 = running.pop(future)
                    try:
                        cells = future.result()
                    except Exception as exc:
                        # run_group converts in-group exceptions to error
                        # cells; reaching here means the worker process
                        # died or its result failed to unpickle.
                        charged.append(
                            (shard, f"{type(exc).__name__}: {exc}"))
                    else:
                        self._record_shard(shard, cells,
                                           time.perf_counter() - perf0)
                self._heartbeat(running=[s.shard_id
                                         for s, _, _ in running.values()],
                                force=bool(done))
                if self.shard_timeout is not None and running:
                    now = time.monotonic()
                    expired = [future for future, (_, t0, _)
                               in running.items()
                               if now - t0 > self.shard_timeout]
                    if expired:
                        for future in expired:
                            shard, _, _ = running.pop(future)
                            charged.append((
                                shard,
                                f"TimeoutError: shard exceeded "
                                f"{self.shard_timeout:g}s"))
                        # A hung worker can't be reclaimed through the
                        # Executor API: abandon the whole pool and let
                        # the next round start fresh.
                        abandoned = True
                        break
        finally:
            leftovers = pending + [shard for shard, _, _ in running.values()]
            if abandoned:
                # Snapshot the worker processes first — shutdown drops
                # the executor's reference to them.
                procs = list((getattr(pool, "_processes", None)
                              or {}).values())
                pool.shutdown(wait=False, cancel_futures=True)
                for proc in procs:
                    proc.terminate()
            else:
                pool.shutdown(wait=True, cancel_futures=True)
        return charged, leftovers

    # ------------------------------------------------------------------
    # the job

    def run(self) -> Dict:
        """Run every missing shard and return the assembled document."""
        self._attach()
        started = time.time()
        pending = [shard for shard in self._shards
                   if shard.shard_id not in self._journal_cells]
        if self._journal_cells:
            self.notify(f"resuming job {self.spec.job_id}: "
                        f"{len(self._journal_cells)} of {self._total} "
                        f"group(s) served from the journal, "
                        f"{len(pending)} to run")
        pool_size = effective_workers(self.workers, len(pending)) \
            if pending else 1
        try:
            with obs_trace.span("job.run", job_id=self.spec.job_id,
                                shards=self._total,
                                resumed=len(self._journal_cells)):
                queue = pending
                while queue and not self._cancel_requested():
                    round_size = effective_workers(self.workers, len(queue))
                    self._heartbeat(running=[])
                    if round_size == 1:
                        charged, leftovers = self._run_inline_round(queue)
                    else:
                        charged, leftovers = self._run_pool_round(
                            queue, round_size)
                    queue = list(leftovers)
                    backoffs = []
                    for shard, error in charged:
                        self._charge_failure(shard, error)
                        if shard.shard_id not in self._failed:
                            queue.append(shard)
                            failures = self._failures[shard.shard_id]
                            backoffs.append(
                                min(self.backoff * (2 ** (failures - 1)),
                                    MAX_BACKOFF_SECONDS))
                    if backoffs and not self._cancel_requested():
                        time.sleep(max(backoffs))
        except BaseException:
            # The journal already holds every completed shard; also
            # flush a partial document for out_path readers.
            if self.out_path:
                try:
                    write_document(
                        self._document(started, pool_size, partial=True),
                        self.out_path)
                except OSError:
                    pass
            raise
        finally:
            if self.journal is not None:
                self.journal.close()

        document = self._document(started, pool_size)
        if not document["meta"].get("partial"):
            with jn.Journal(jn.journal_path(self.job_dir)) as journal:
                journal.append({
                    "type": "done",
                    "job_id": self.spec.job_id,
                    "cells": len(document["cells"]),
                    "wall_seconds": document["meta"]["wall_seconds"],
                    "unix": time.time(),
                })
        if self.out_path:
            write_document(document, self.out_path)
        return document

    def _document(self, started: float, pool_size: int,
                  partial: bool = False) -> Dict:
        """Assemble the sweep document from journal + this run's shards."""
        spec = self.spec
        cells: List[Dict] = []
        resumed_groups = 0
        missing: List[str] = []
        for shard in self._shards:
            shard_id = shard.shard_id
            if shard_id in self._new_cells:
                cells.extend(self._new_cells[shard_id])
            elif shard_id in self._journal_cells:
                cells.extend(self._journal_cells[shard_id])
                resumed_groups += 1
            elif shard_id in self._failed:
                exc = RuntimeError(self._failed[shard_id])
                cells.extend(dead_group_cells(
                    spec.task(shard, None, None), exc))
            else:
                missing.append(shard_id)
        cells.sort(key=cell_sort_key)
        meta = {
            "envs": list(spec.envs),
            "workloads": list(spec.workloads or ALL_WORKLOADS),
            "designs": list(spec.designs) if spec.designs else "all",
            "thp_modes": [bool(t) for t in spec.thp_modes],
            "config": dict(spec.config),
            "workers": pool_size,
            "requested_workers": self.workers,
            "cell_threads": self.cell_threads,
            "parallelism": pool_size * self.cell_threads,
            "groups": self._total,
            "cells": len(cells),
            "wall_seconds": time.time() - started,
            "started_at": time.strftime("%Y-%m-%dT%H:%M:%S%z",
                                        time.localtime(started)),
            "trace": self.trace_path,
            "artifact_cache": self.artifact_dir,
            "job": {
                "job_id": spec.job_id,
                "dir": self.job_dir,
                "resumed_groups": resumed_groups,
                "retried_shards": self._retried.value,
                "failed_shards": sorted(self._failed),
                "cancelled": self._cancelled,
            },
            "metrics": {
                "sweep.groups": self._groups_done.value,
                "sweep.cells": self._cells_done.value,
                "sweep.error_cells": self._errors_seen.value,
                "sweep.resumed_groups": self._resumed.value,
                "sweep.retried_shards": self._retried.value,
            },
        }
        if partial or missing or self._cancelled:
            meta["partial"] = True
            meta["missing_groups"] = missing
        return {"meta": meta, "cells": cells}
