"""Crash-safe JSONL journal: the durable state of one sweep job.

The journal is an append-only ``journal.jsonl`` under the job
directory. Every record is one JSON object on one line, written with a
single ``write`` + ``flush`` + ``fsync`` so a completed append survives
a SIGKILL or power loss; the only record a crash can damage is the one
being appended, which is then a *torn* final line. :func:`read_journal`
tolerates exactly that: parsing stops at the first undecodable line and
reports the tail as torn, so a resume sees every fully-appended record
and re-runs the shard whose append was cut short.

Record types (all carry ``"type"``):

* ``job`` — written once at creation; holds the spec's canonical form
  and ``job_id``. Resume verifies the grid against it instead of
  trusting CLI flags.
* ``shard`` — one completed (workload, page-size) group: ``shard_id``,
  ``attempt``, the group's grid ``cells`` (full per-cell telemetry),
  wall ``seconds``, worker ``pid``. The last record per ``shard_id``
  wins; a shard journaled here is never re-run.
* ``retry`` — a failed attempt being re-queued: the error, the attempt
  number, and the backoff applied before the next round.
* ``failed`` — a shard whose retries are exhausted; the final document
  carries fabricated per-(env, design) error cells for it.
* ``heartbeat`` — periodic progress (done/total counts, running shard
  ids) so ``jobs status``/``tail`` can watch a live job.
* ``resume`` — appended whenever a scheduler re-attaches to an
  existing journal (records whether the tail was torn).
* ``cancel`` — a cancellation request was observed.
* ``done`` — the job completed with every shard journaled.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

#: File names inside a job directory.
JOURNAL_NAME = "journal.jsonl"
CANCEL_NAME = "CANCEL"


def journal_path(job_dir: str) -> str:
    return os.path.join(job_dir, JOURNAL_NAME)


def cancel_path(job_dir: str) -> str:
    return os.path.join(job_dir, CANCEL_NAME)


class Journal:
    """Append-only writer for one job's ``journal.jsonl``.

    Opened lazily in append mode so several processes (a scheduler and
    a ``jobs cancel`` client) can interleave whole-line appends; each
    record is fsynced before :meth:`append` returns.
    """

    def __init__(self, path: str):
        self.path = path
        self._handle = None

    def append(self, record: Dict) -> Dict:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        return record

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _parse(data: bytes) -> Tuple[List[Dict], int, bool]:
    """``(records, valid_prefix_bytes, torn)`` of raw journal bytes.

    Parsing stops at the first line that fails to decode *or* at a
    final line with no trailing newline — a complete append always ends
    with one, so a bare tail is the record a crash cut short even when
    its prefix happens to parse. ``valid_prefix_bytes`` is where a
    repair should truncate.
    """
    records: List[Dict] = []
    offset = 0
    for line in data.split(b"\n"):
        end = offset + len(line)
        if not line.strip():
            offset = end + 1
            continue
        if end >= len(data):  # final line, no trailing newline
            return records, offset, True
        try:
            record = json.loads(line.decode("utf-8"))
        except ValueError:
            return records, offset, True
        if not isinstance(record, dict):
            return records, offset, True
        records.append(record)
        offset = end + 1
    return records, min(offset, len(data)), False


def read_journal(path: str) -> Tuple[List[Dict], bool]:
    """Parse a journal, dropping a torn (half-appended) tail.

    Returns ``(records, torn)``: every fully-appended record, and
    whether a torn tail was discarded to get them.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return [], False
    records, _, torn = _parse(data)
    return records, torn


def repair_journal(path: str) -> bool:
    """Truncate a torn tail so new appends start on a fresh line.

    Without this, appending to a torn journal would concatenate the new
    record onto the partial line, corrupting *both*. Returns whether a
    truncation happened.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return False
    _, valid, torn = _parse(data)
    if torn:
        with open(path, "r+b") as handle:
            handle.truncate(valid)
    return torn


def job_record(records: List[Dict]) -> Optional[Dict]:
    """The journal's ``job`` header record, if one was fully appended."""
    for record in records:
        if record.get("type") == "job":
            return record
    return None


def completed_shards(records: List[Dict]) -> Dict[str, Dict]:
    """``{shard_id: record}`` of every journaled shard (last one wins)."""
    done: Dict[str, Dict] = {}
    for record in records:
        if record.get("type") == "shard":
            done[record["shard_id"]] = record
    return done


def retry_count(records: List[Dict]) -> int:
    return sum(1 for record in records if record.get("type") == "retry")


def is_done(records: List[Dict]) -> bool:
    return any(record.get("type") == "done" for record in records)


def is_cancelled(records: List[Dict]) -> bool:
    return any(record.get("type") == "cancel" for record in records)
