"""Client surface for sweep jobs: submit, status, tail, resume, cancel.

Everything here is a thin wrapper over the journal and the scheduler —
``python -m repro jobs ...`` and ``python -m repro sweep --resume`` are
both clients of the same machinery, and anything else (dashboards,
parameter search, CI) can be too by importing these functions.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.jobs import journal as jn
from repro.sim.jobs.scheduler import JobScheduler
from repro.sim.jobs.spec import JobSpec

#: Default base directory for ``jobs submit`` (one subdir per job_id).
DEFAULT_JOBS_DIR = ".repro-jobs"


def job_dir_for(spec: JobSpec, base_dir: str = DEFAULT_JOBS_DIR) -> str:
    """The content-addressed directory of ``spec`` under ``base_dir``."""
    return os.path.join(base_dir, spec.job_id)


def load_job(job_dir: str) -> Tuple[Optional[JobSpec], List[Dict], bool]:
    """``(spec, records, torn)`` from a job directory's journal.

    ``spec`` is ``None`` when the directory has no journal (or the
    journal lost its header to a torn tail).
    """
    records, torn = jn.read_journal(jn.journal_path(job_dir))
    header = jn.job_record(records)
    spec = JobSpec.from_canonical(header["spec"]) if header else None
    return spec, records, torn


def submit(spec: JobSpec, base_dir: str = DEFAULT_JOBS_DIR,
           job_dir: Optional[str] = None, **scheduler_kwargs) -> Tuple[
               str, Dict]:
    """Create (or re-attach to) the job for ``spec`` and run it.

    The job directory defaults to ``base_dir/<job_id>``, so submitting
    the same grid twice resumes the first submission instead of
    duplicating work. Returns ``(job_dir, document)``.
    """
    target = job_dir or job_dir_for(spec, base_dir)
    scheduler = JobScheduler(spec, target, **scheduler_kwargs)
    return target, scheduler.run()


def resume(job_dir: str, **scheduler_kwargs) -> Dict:
    """Resume the job journaled under ``job_dir``.

    The grid comes from the journal's ``job`` record — not from CLI
    flags — so a resume can never silently run a different sweep.
    Raises :class:`FileNotFoundError` when the directory holds no
    usable journal.
    """
    spec, _, _ = load_job(job_dir)
    if spec is None:
        raise FileNotFoundError(
            f"no job journal under {job_dir!r}; submit the job first")
    scheduler = JobScheduler(spec, job_dir, **scheduler_kwargs)
    return scheduler.run()


def cancel(job_dir: str) -> bool:
    """Ask the scheduler working on ``job_dir`` to drain and stop.

    Drops a ``CANCEL`` sentinel (polled by the scheduler between shard
    completions) and journals the request. Returns ``False`` when the
    job had already finished.
    """
    _, records, _ = load_job(job_dir)
    if jn.is_done(records):
        return False
    with open(jn.cancel_path(job_dir), "w", encoding="utf-8") as handle:
        handle.write(f"{time.time()}\n")
    with jn.Journal(jn.journal_path(job_dir)) as journal:
        journal.append({"type": "cancel", "pid": os.getpid(),
                        "unix": time.time()})
    return True


def status(job_dir: str) -> Dict:
    """A JSON-ready progress summary parsed from the journal."""
    spec, records, torn = load_job(job_dir)
    if spec is None:
        return {"job_dir": job_dir, "state": "missing"}
    done = jn.completed_shards(records)
    failed = sorted({record["shard_id"] for record in records
                     if record.get("type") == "failed"} - set(done))
    total = len(spec.shards())
    heartbeats = [record for record in records
                  if record.get("type") == "heartbeat"]
    if jn.is_done(records):
        state = "done"
    elif jn.is_cancelled(records):
        state = "cancelled"
    elif len(done) + len(failed) >= total:
        state = "complete"  # every shard accounted for, no done marker
    else:
        state = "in-progress"
    cells = sum(len(record["cells"]) for record in done.values())
    return {
        "job_dir": job_dir,
        "job_id": spec.job_id,
        "state": state,
        "groups_done": len(done),
        "groups_total": total,
        "failed_shards": failed,
        "cells_journaled": cells,
        "retries": jn.retry_count(records),
        "resumes": sum(1 for record in records
                       if record.get("type") == "resume"),
        "torn_tail": torn,
        "last_heartbeat_unix": heartbeats[-1]["unix"] if heartbeats
        else None,
        "spec": spec.canonical(),
    }


def format_status(summary: Dict) -> str:
    """One human-readable block for ``jobs status``."""
    if summary.get("state") == "missing":
        return f"{summary['job_dir']}: no job journal"
    lines = [
        f"job {summary['job_id']}  [{summary['state']}]  "
        f"{summary['groups_done']}/{summary['groups_total']} group(s), "
        f"{summary['cells_journaled']} cell(s) journaled",
        f"  dir: {summary['job_dir']}  retries: {summary['retries']}  "
        f"resumes: {summary['resumes']}",
    ]
    if summary["failed_shards"]:
        lines.append(f"  failed: {', '.join(summary['failed_shards'])}")
    if summary["torn_tail"]:
        lines.append("  journal tail torn (crash mid-append); "
                     "the interrupted shard will re-run on resume")
    if summary["last_heartbeat_unix"]:
        age = time.time() - summary["last_heartbeat_unix"]
        lines.append(f"  last heartbeat: {age:.0f}s ago")
    return "\n".join(lines)


def tail(job_dir: str, count: int = 20, follow: bool = False,
         emit: Callable[[str], None] = print,
         poll_seconds: float = 0.5) -> None:
    """Print the last ``count`` journal records; ``follow`` streams.

    Shard records are summarized (their full cell payload would swamp a
    terminal); every other record type prints verbatim.
    """
    path = jn.journal_path(job_dir)
    records, _ = jn.read_journal(path)
    for record in records[-count:]:
        emit(_render(record))
    if not follow:
        return
    offset = len(records)
    while True:
        records, _ = jn.read_journal(path)
        for record in records[offset:]:
            emit(_render(record))
        offset = len(records)
        if records and records[-1].get("type") in ("done", "cancel"):
            return
        time.sleep(poll_seconds)


def _render(record: Dict) -> str:
    kind = record.get("type", "?")
    if kind == "shard":
        return (f"shard {record['shard_id']} done "
                f"(attempt {record.get('attempt', 1)}, "
                f"{len(record.get('cells', []))} cells, "
                f"{record.get('seconds', 0):.2f}s)")
    return json.dumps(record, sort_keys=True)
