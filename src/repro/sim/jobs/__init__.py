"""Resumable sharded sweep jobs (DESIGN.md §14).

A *job* is a sweep grid made durable: the grid (plus its
:class:`~repro.sim.machine.SimConfig` kwargs) is content-hashed into a
``job_id`` (:mod:`~repro.sim.jobs.spec`), expanded into per-group
shards, and every completed shard is fsync-appended to a crash-safe
JSONL journal under the job directory
(:mod:`~repro.sim.jobs.journal`). A scheduler
(:mod:`~repro.sim.jobs.scheduler`) fans pending shards over a worker
pool with per-shard timeouts and bounded, backed-off retries of
worker-death failures; killing the scheduler at any instant loses at
most the shards in flight, and a resume replays the journal and
re-runs only what is missing. The client surface
(:mod:`~repro.sim.jobs.client`) backs ``python -m repro jobs
submit|status|tail|resume|cancel`` and ``python -m repro sweep
--resume <dir>``.

A resumed sweep reuses the same :class:`~repro.sim.artifacts
.ArtifactCache`/:class:`~repro.sim.simulator.Stage1Cache` plumbing as
the one-shot runner, so re-run shards serve stage 0/1 from disk, and
the assembled document is identical to an uninterrupted run's modulo
wall-time/pid/RSS telemetry (``scheduler.VOLATILE_CELL_KEYS``).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.sim.jobs.client import (DEFAULT_JOBS_DIR, cancel, format_status,
                                   job_dir_for, load_job, resume, status,
                                   submit, tail)
from repro.sim.jobs.journal import Journal, read_journal
from repro.sim.jobs.scheduler import (VOLATILE_CELL_KEYS, JobScheduler,
                                      stable_cells)
from repro.sim.jobs.spec import JobSpec, Shard

__all__ = [
    "DEFAULT_JOBS_DIR", "JobScheduler", "JobSpec", "Journal", "Shard",
    "VOLATILE_CELL_KEYS", "cancel", "format_status", "job_dir_for",
    "load_job", "read_journal", "resume", "run_resumable_sweep",
    "stable_cells", "status", "submit", "tail",
]


def run_resumable_sweep(job_dir: str,
                        envs: Sequence[str] = ("native",),
                        workloads: Optional[Sequence[str]] = None,
                        designs: Optional[Sequence[str]] = None,
                        thp_modes: Sequence[bool] = (False,),
                        workers: Optional[int] = None,
                        out_path: Optional[str] = None,
                        progress: Optional[Callable[[str], None]] = None,
                        trace_path: Optional[str] = None,
                        artifact_dir: Optional[str] = None,
                        shard_timeout: Optional[float] = None,
                        max_retries: Optional[int] = None,
                        cell_threads: Optional[int] = None,
                        **config_kwargs) -> Dict:
    """``run_sweep`` semantics on top of the jobs layer.

    Backs ``python -m repro sweep --resume <dir>``: when ``job_dir``
    already holds a journal its recorded grid wins (the CLI flags of
    the original submission, not this invocation's); a fresh directory
    starts a new durable job from the given grid.
    """
    spec, _, _ = load_job(job_dir)
    if spec is None:
        spec = JobSpec.build(envs=envs, workloads=workloads,
                             designs=designs, thp_modes=thp_modes,
                             **config_kwargs)
    elif progress is not None:
        progress(f"resuming journaled grid {spec.job_id} from {job_dir} "
                 f"(CLI grid flags ignored)")
    scheduler_kwargs = dict(workers=workers, out_path=out_path,
                            progress=progress, trace_path=trace_path,
                            artifact_dir=artifact_dir,
                            cell_threads=cell_threads)
    if shard_timeout is not None:
        scheduler_kwargs["shard_timeout"] = shard_timeout
    if max_retries is not None:
        scheduler_kwargs["max_retries"] = max_retries
    return JobScheduler(spec, job_dir, **scheduler_kwargs).run()
