"""Job specs: the content-addressed identity of a sweep grid.

A :class:`JobSpec` pins down everything that determines a sweep's
*results*: the environments, workloads, designs, page-size modes, and
the :class:`~repro.sim.machine.SimConfig` kwargs. Runtime knobs that
only change *how* the grid is computed — worker count, trace path,
artifact-cache directory, timeouts — are deliberately excluded, so two
runs of the same grid share one ``job_id`` no matter how they are
scheduled.

The ``job_id`` is the SHA-256 of the spec's canonical JSON form
(sorted keys, no whitespace), truncated to 16 hex digits — the same
content-addressing idiom as :mod:`repro.sim.artifacts`. The journal
stores the canonical form verbatim, so a resume reconstructs the exact
grid without trusting the caller's CLI flags.

A spec expands into :class:`Shard`\\ s — one per (workload, page-size)
pair, exactly the :data:`~repro.sim.sweep.GroupTask` granularity of the
one-shot sweep runner — so journal records, retries, and resume all
operate on the unit the worker pool already executes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.sim.sweep import ALL_WORKLOADS, GroupTask, validate_grid

#: Bumped whenever the canonical form (and thus every job_id) changes.
SPEC_VERSION = 1


@dataclass(frozen=True)
class Shard:
    """One schedulable unit of a job: a (workload, page-size) group."""

    workload: str
    thp: bool

    @property
    def shard_id(self) -> str:
        return f"{self.workload}@{'thp' if self.thp else '4k'}"


@dataclass(frozen=True)
class JobSpec:
    """The result-determining parameters of one sweep grid."""

    envs: Tuple[str, ...]
    workloads: Tuple[str, ...]
    designs: Optional[Tuple[str, ...]]
    thp_modes: Tuple[bool, ...]
    config: Mapping = field(default_factory=dict)

    @classmethod
    def build(cls, envs: Sequence[str] = ("native",),
              workloads: Optional[Sequence[str]] = None,
              designs: Optional[Sequence[str]] = None,
              thp_modes: Sequence[bool] = (False,),
              **config_kwargs) -> "JobSpec":
        """Normalize ``run_sweep``-style arguments into a spec.

        Validates the grid the same way :func:`~repro.sim.sweep.run_sweep`
        does (:class:`KeyError` on unknown environments/designs), so a
        bad grid fails at submit time, not in a worker.
        """
        validate_grid(envs, designs)
        return cls(
            envs=tuple(envs),
            workloads=tuple(workloads or ALL_WORKLOADS),
            designs=tuple(designs) if designs else None,
            thp_modes=tuple(bool(t) for t in thp_modes),
            config=dict(config_kwargs),
        )

    def canonical(self) -> Dict:
        """JSON-ready form with a stable key order; hashed for job_id."""
        return {
            "version": SPEC_VERSION,
            "envs": list(self.envs),
            "workloads": list(self.workloads),
            "designs": list(self.designs) if self.designs else None,
            "thp_modes": [bool(t) for t in self.thp_modes],
            "config": {key: self.config[key] for key in sorted(self.config)},
        }

    @classmethod
    def from_canonical(cls, doc: Mapping) -> "JobSpec":
        """Rebuild a spec from its journal/canonical form."""
        designs = doc.get("designs")
        return cls(
            envs=tuple(doc["envs"]),
            workloads=tuple(doc["workloads"]),
            designs=tuple(designs) if designs else None,
            thp_modes=tuple(bool(t) for t in doc["thp_modes"]),
            config=dict(doc.get("config") or {}),
        )

    @property
    def job_id(self) -> str:
        blob = json.dumps(self.canonical(), sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:16]

    def shards(self) -> List[Shard]:
        """Every shard of the grid, in the one-shot sweep's task order."""
        return [Shard(workload, thp)
                for workload in self.workloads for thp in self.thp_modes]

    def task(self, shard: Shard, trace_path: Optional[str] = None,
             artifact_dir: Optional[str] = None,
             cell_threads: int = 1) -> GroupTask:
        """The picklable :data:`GroupTask` tuple for one shard.

        ``cell_threads`` is a runtime knob (like ``trace_path``): it
        changes how fast a shard replays, never what it computes, so it
        is deliberately absent from :meth:`canonical` and ``job_id`` —
        a resumed job may use a different thread count.
        """
        return (self.envs, shard.workload, shard.thp, self.designs,
                dict(self.config), trace_path, artifact_dir,
                max(1, int(cell_threads or 1)))
