"""Process-parallel sweep over the simulation grid.

A *sweep* evaluates every cell of the (environment × workload × design ×
page-size) grid — the design-space exploration behind Figures 14/15/17.
A group task covers one (workload, page-size) pair across *all* swept
environments: the worker shares one
:class:`~repro.sim.simulator.Stage1Cache` across them, so the trace and
TLB-miss stream are computed once per group and reused by every
environment and design cell (the miss stream depends only on the
workload and config, not the environment). Groups are independent, so
they fan out across worker processes with
:class:`concurrent.futures.ProcessPoolExecutor`.

Within one group the executor is **two-level** (DESIGN.md §15): the
group's independent (env, design) cells can replay concurrently on
``cell_threads`` threads of the worker process, sharing the memmapped
miss stream with no pickling. Each cell's order-dependent prepare
(walker build, vec planning, ``array_view()`` checkout) runs on the
group's main thread in deterministic cell order; only the ``nogil``
kernel execution is handed to the thread pool, so cell *k+1*'s planning
overlaps cell *k*'s kernels and results stay bit-identical to
sequential replay. Cells without a threadable engine (vec/scalar)
complete inline at their prepare position.

Each grid cell reports telemetry alongside its simulation statistics:
stage-1 wall time and whether it was served from the group's memo,
replay wall time and the stage-2 engine used, the stage-2 result-cache
provenance (``stage2_source``), walk throughput, the worker's peak
RSS, the machine-build time, and the group's wall seconds. The whole
sweep serializes to a JSON document (``meta`` + ``cells``) so runs can
be archived and diffed.

Exposed through ``python -m repro sweep`` and reused by
``benchmarks/conftest.py``'s ``SimCache``.
"""

from __future__ import annotations

import json
import os
import resource
import time
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import metrics
from repro.obs import trace as obs_trace
from repro.sim.artifacts import ArtifactCache
from repro.sim.machine import ENVIRONMENTS, SimConfig
from repro.sim.simulator import Stage1Cache

#: The paper's seven evaluation workloads (Table 1 order).
ALL_WORKLOADS = ["Redis", "Memcached", "GUPS", "BTree", "Canneal",
                 "XSBench", "Graph500"]

#: A group task — one (workload, THP) pair across every swept
#: environment — as picklable primitives: (envs, workload, thp,
#: designs, config kwargs, trace JSONL path, artifact-cache dir,
#: cell threads). ``run_group`` tolerates the historical 7-tuple
#: (missing cell_threads means 1: sequential cell replay).
GroupTask = Tuple[Tuple[str, ...], str, bool, Optional[Tuple[str, ...]],
                  Dict, Optional[str], Optional[str], int]


def build_sim(env: str, workload: str, config: SimConfig,
              stage1: Optional[Stage1Cache] = None):
    """Construct the simulation machine for one grid group."""
    try:
        env_cls = ENVIRONMENTS[env]
    except KeyError:
        raise KeyError(f"unknown environment {env!r}; "
                       f"have {sorted(ENVIRONMENTS)}") from None
    return env_cls(workload, config, stage1=stage1)


def peak_rss_kb() -> int:
    """This process's peak resident set size in KiB (Linux ru_maxrss)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def error_cell(env: str, workload: str, thp: bool,
               design: Optional[str], exc: BaseException) -> Dict:
    """The JSON record for a grid cell (or whole group) that raised.

    Error cells carry an ``"error"`` key instead of statistics, so one
    crashing cell degrades the sweep document instead of poisoning it.
    """
    return {
        "env": env,
        "workload": workload,
        "design": design,
        "thp": thp,
        "error": f"{type(exc).__name__}: {exc}",
        "worker_pid": os.getpid(),
    }


def validate_grid(envs: Sequence[str],
                  designs: Optional[Sequence[str]] = None) -> None:
    """Raise :class:`KeyError` for an unknown environment or a design no
    swept environment provides (a design valid in only *some* swept
    environments is fine — it just runs where available)."""
    for env in envs:
        if env not in ENVIRONMENTS:
            raise KeyError(f"unknown environment {env!r}; "
                           f"have {sorted(ENVIRONMENTS)}")
    known_designs = set()
    for env in envs:
        known_designs.update(ENVIRONMENTS[env].designs)
    for design in designs or ():
        if design not in known_designs:
            raise KeyError(f"unknown design {design!r}; swept environments "
                           f"provide {sorted(known_designs)}")


def dead_group_cells(task: GroupTask, exc: BaseException) -> List[Dict]:
    """Error cells for a group whose *worker process* died.

    When a pool worker is OOM-killed or segfaults there is no per-cell
    result to report, but collapsing the group into one ``design=None``
    cell per environment would make it impossible for regress/diff
    tooling to see *which* cells are missing. Fabricate one error cell
    per (environment, requested design) — the task's design list when
    given, the environment class's full design set when sweeping all —
    so a dead group has exactly as many cells as a healthy one.
    """
    envs, workload, thp, designs = task[0], task[1], task[2], task[3]
    cells: List[Dict] = []
    for env in envs:
        env_cls = ENVIRONMENTS.get(env)
        available = tuple(env_cls.designs) if env_cls is not None else ()
        if designs:
            requested = [d for d in designs if d in available]
        else:
            requested = list(available)
        if not requested:
            cells.append(error_cell(env, workload, thp, None, exc))
            continue
        for design in requested:
            cells.append(error_cell(env, workload, thp, design, exc))
    return cells


def cell_sort_key(cell: Dict) -> Tuple:
    """Deterministic document order for grid cells."""
    return (cell["env"], cell["workload"], cell["thp"],
            cell.get("design") or "")


def write_document(document: Dict, out_path: str) -> None:
    """Serialize a sweep document atomically (tmp + ``os.replace``).

    A reader never observes a half-written JSON file, and an interrupt
    mid-dump leaves any previous complete document in place.
    """
    tmp = f"{out_path}.tmp{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        os.replace(tmp, out_path)
    except BaseException:
        if os.path.exists(tmp):
            os.remove(tmp)
        raise


def effective_workers(workers: int, tasks: int) -> int:
    """The pool size a sweep actually runs with.

    ``workers`` of 0/1 (or a single task) runs inline — one process, no
    pool — and a larger pool is capped at the task count; sweep
    documents record this value, not the requested one.
    """
    if workers <= 1 or tasks <= 1:
        return 1
    return min(workers, tasks)


def effective_split(workers: int, tasks: int,
                    cell_threads: Optional[int] = None) -> Tuple[int, int]:
    """The ``processes × cell_threads`` split a sweep actually runs with.

    Processes follow :func:`effective_workers`; the per-group thread
    count is clamped to at least 1 (``None``/0 mean sequential cell
    replay). Sweep meta records both halves plus their product.
    """
    return (effective_workers(workers, tasks),
            max(1, int(cell_threads or 1)))


def run_group(task: GroupTask) -> List[Dict]:
    """Run one (workload, thp) group across its environments.

    The group shares one :class:`Stage1Cache`, so the trace and TLB-miss
    stream are computed by the first environment and reused by the rest
    (each cell's ``stage1_reused``/``stage1_source`` telemetry records
    which); with an artifact directory in the task, the cache also
    persists stage 0/1 to disk and reuses results across runs. Returns one
    telemetry dict per grid cell; a design that raises yields an error
    cell while the group's other designs still complete (a failed
    machine build fails that environment's cells). A requested design no
    swept environment provides yields an error cell instead of being
    silently dropped. Module-level so the process pool can pickle it.

    With ``cell_threads > 1`` in the task, the group's cells replay on
    the two-level executor: prepares stay sequential on this thread,
    threadable (native-kernel) executions fan out over a
    ``ThreadPoolExecutor`` — bit-identical to sequential replay.
    """
    envs, workload, thp, designs, config_kwargs, trace_path, \
        artifact_dir = task[:7]
    cell_threads = int(task[7]) if len(task) > 7 and task[7] else 1
    if trace_path:
        obs_trace.enable(trace_path)
    artifacts = ArtifactCache(artifact_dir) if artifact_dir else None
    stage1 = Stage1Cache(artifacts=artifacts)
    cells: List[Dict] = []
    group_start = time.perf_counter()
    # Design availability is a static property of the environment
    # classes, so an unknown design is detected even when a machine
    # build fails for other reasons (e.g. an unknown workload).
    provided: set = set()
    for env in envs:
        env_cls = ENVIRONMENTS.get(env)
        if env_cls is not None:
            provided.update(env_cls.designs)
    executor = (ThreadPoolExecutor(max_workers=cell_threads,
                                   thread_name_prefix="cell")
                if cell_threads > 1 else None)
    try:
        with obs_trace.span("sweep.run_group", envs="+".join(envs),
                            workload=workload, thp=thp,
                            cell_threads=cell_threads):
            for env in envs:
                try:
                    config = SimConfig(thp=thp, **config_kwargs)
                    build_start = time.perf_counter()
                    with obs_trace.span("sweep.build_sim", env=env,
                                        workload=workload, thp=thp):
                        sim = build_sim(env, workload, config,
                                        stage1=stage1)
                    build_seconds = time.perf_counter() - build_start
                except Exception as exc:
                    cells.append(error_cell(env, workload, thp, None, exc))
                    continue

                available = list(sim.designs)
                requested = [d for d in (designs or available)
                             if d in available]
                env_cells = _run_env_cells(sim, env, workload, thp,
                                           requested, build_seconds,
                                           executor=executor)
                cells.extend(env_cells)
    finally:
        if executor is not None:
            executor.shutdown()
    for design in designs or ():
        if design not in provided:
            exc = KeyError(f"unknown design {design!r}; no swept "
                           f"environment provides it")
            cells.append(error_cell("+".join(envs), workload, thp,
                                    design, exc))
    group_seconds = time.perf_counter() - group_start
    for cell in cells:
        cell["group_seconds"] = group_seconds
    return cells


def _cell_record(sim, env: str, workload: str, thp: bool, design: str,
                 stats, replay_seconds: float,
                 build_seconds: float) -> Dict:
    """The telemetry dict for one successfully replayed grid cell."""
    return {
        "env": env,
        "workload": workload,
        "design": design,
        "thp": thp,
        "walks": stats.walks,
        "mean_latency": stats.mean_latency,
        "fallback_rate": stats.fallback_rate,
        "miss_count": sim.tlb.miss_count,
        "total_refs": sim.tlb.total_refs,
        "tlb_miss_rate": sim.tlb.miss_rate,
        "stage1_seconds": sim.stage1_seconds,
        "stage1_reused": sim.stage1_reused,
        "stage1_source": sim.stage1_source,
        "stage1_streamed": sim.stage1_streamed,
        "walk_engine": stats.engine,
        "stage2_fallback_reason": stats.fallback_reason,
        "stage2_source": sim.stage2_source(design),
        "replay_seconds": replay_seconds,
        "walks_per_second": (stats.walks / replay_seconds
                             if replay_seconds > 0 else 0.0),
        "build_seconds": build_seconds,
        "peak_rss_kb": peak_rss_kb(),
        "worker_pid": os.getpid(),
    }


def _run_env_cells(sim, env: str, workload: str, thp: bool,
                   requested: List[str], build_seconds: float,
                   executor: Optional[ThreadPoolExecutor] = None
                   ) -> List[Dict]:
    """Replay every requested design on one built machine.

    Without an ``executor`` this is the sequential oracle path
    (``sim.run`` per design, in order). With one, each design is
    *prepared* in order on this thread; threadable cells execute on
    the pool while later cells prepare, and every cell is committed
    back on this thread in design order — same cells, same bits.
    """
    env_cells: List[Dict] = []
    latency: Dict[str, float] = {}
    if executor is None:
        for design in requested:
            replay_start = time.perf_counter()
            try:
                stats = sim.run(design)
            except Exception as exc:
                env_cells.append(error_cell(env, workload, thp, design,
                                            exc))
                continue
            replay_seconds = time.perf_counter() - replay_start
            latency[design] = stats.mean_latency
            env_cells.append(_cell_record(sim, env, workload, thp, design,
                                          stats, replay_seconds,
                                          build_seconds))
    else:
        # (design, prep, future, exc, start, inline_seconds)
        staged: List[Tuple] = []
        for design in requested:
            start = time.perf_counter()
            prep = future = exc = inline_seconds = None
            try:
                prep = sim.prepare_run(design)
                if prep.threadable and not prep.ready:
                    future = executor.submit(prep.execute)
                else:
                    # memo/result-cache hits and non-threadable engines
                    # (vec/scalar planning mutates lazily populated
                    # structures shared across cells) complete inline,
                    # at their sequential position
                    prep.commit(prep.execute())
                    inline_seconds = time.perf_counter() - start
            except Exception as caught:
                exc = caught
            staged.append((design, prep, future, exc, start,
                           inline_seconds))
        for design, prep, future, exc, start, inline_seconds in staged:
            stats = None
            if exc is None:
                try:
                    if future is not None:
                        stats = prep.commit(future.result())
                    else:
                        stats = prep.stats
                except Exception as caught:
                    exc = caught
            if exc is not None:
                env_cells.append(error_cell(env, workload, thp, design,
                                            exc))
                continue
            replay_seconds = (inline_seconds if inline_seconds is not None
                              else time.perf_counter() - start)
            latency[design] = stats.mean_latency
            env_cells.append(_cell_record(sim, env, workload, thp, design,
                                          stats, replay_seconds,
                                          build_seconds))
    vanilla = latency.get("vanilla")
    for cell in env_cells:
        if "error" in cell:
            continue
        cell["walk_speedup"] = (
            vanilla / cell["mean_latency"]
            if vanilla and cell["mean_latency"] else None)
    return env_cells


def run_design_stats(sim, designs: Sequence[str],
                     cell_threads: int = 1) -> Dict:
    """``{design: WalkStats}`` on one machine, optionally thread-parallel.

    The single-machine twin of the sweep's two-level executor, used by
    ``python -m repro run --cell-threads``. Exceptions propagate (no
    error cells — the CLI reports the failure). Bit-identical to
    calling ``sim.run`` per design.
    """
    cell_threads = max(1, int(cell_threads or 1))
    designs = list(designs)
    if cell_threads == 1 or len(designs) <= 1:
        return {design: sim.run(design) for design in designs}
    stats: Dict = {}
    with ThreadPoolExecutor(max_workers=cell_threads,
                            thread_name_prefix="cell") as executor:
        staged = []
        for design in designs:
            prep = sim.prepare_run(design)
            if prep.threadable and not prep.ready:
                staged.append((design, prep, executor.submit(prep.execute)))
            else:
                prep.commit(prep.execute())
                staged.append((design, prep, None))
        for design, prep, future in staged:
            stats[design] = (prep.commit(future.result())
                             if future is not None else prep.stats)
    return stats


def grid_tasks(envs: Sequence[str],
               workloads: Optional[Sequence[str]] = None,
               designs: Optional[Sequence[str]] = None,
               thp_modes: Sequence[bool] = (False,),
               trace_path: Optional[str] = None,
               artifact_dir: Optional[str] = None,
               cell_threads: int = 1,
               **config_kwargs) -> List[GroupTask]:
    """Enumerate the group tasks of a sweep.

    One task per (workload, THP) pair covering every environment, so a
    single worker computes stage 1 once and replays it everywhere. With
    ``trace_path`` set, each task carries the span-stream destination so
    pool workers append to the shared JSONL file; with ``artifact_dir``
    set, each worker's stage-0/1 results persist to (and load from) the
    shared cross-run artifact cache. ``cell_threads`` sizes the
    per-group replay thread pool (1 = sequential).
    """
    names = list(workloads or ALL_WORKLOADS)
    wanted = tuple(designs) if designs else None
    env_tuple = tuple(envs)
    threads = max(1, int(cell_threads or 1))
    return [(env_tuple, workload, thp, wanted, dict(config_kwargs),
             trace_path, artifact_dir, threads)
            for workload in names for thp in thp_modes]


def run_sweep(envs: Sequence[str] = ("native",),
              workloads: Optional[Sequence[str]] = None,
              designs: Optional[Sequence[str]] = None,
              thp_modes: Sequence[bool] = (False,),
              workers: Optional[int] = None,
              out_path: Optional[str] = None,
              progress: Optional[Callable[[str], None]] = None,
              trace_path: Optional[str] = None,
              artifact_dir: Optional[str] = None,
              resume_dir: Optional[str] = None,
              cell_threads: Optional[int] = None,
              **config_kwargs) -> Dict:
    """Run the grid, fanning groups across ``workers`` processes.

    ``config_kwargs`` (scale, nrefs, seed, levels, register_count, ...)
    are forwarded to each worker's :class:`SimConfig`. ``workers`` of 0/1
    runs inline — same results, no pool. Raises :class:`KeyError` for an
    unknown environment or a design no swept environment provides (a
    design valid in only *some* swept environments is fine — it just
    runs where available). With ``trace_path`` set, every group's span
    stream appends to that JSONL file (:mod:`repro.obs.trace`); if the
    caller already opened a trace stream, ``run_sweep`` leaves it open
    on exit instead of closing it from under them. With ``artifact_dir``
    set, workers share a cross-run
    :class:`~repro.sim.artifacts.ArtifactCache` there: traces and
    TLB-miss streams computed by any previous run (or concurrent
    worker) are reused instead of recomputed, and each cell's
    ``stage1_source`` telemetry says whether its stage 1 came from
    ``"disk"``.

    With ``resume_dir`` set, the sweep runs as a durable *job* through
    :mod:`repro.sim.jobs`: completed groups are journaled under that
    directory as they finish, an interrupted sweep restarts from the
    journal re-running only missing groups, and dead pool workers are
    retried with backoff (DESIGN.md §14).

    ``cell_threads`` adds the second parallelism level: each group's
    worker replays its independent (env, design) cells on that many
    threads (DESIGN.md §15). ``meta.parallelism`` records the resulting
    ``processes × cell_threads`` product. Results are bit-identical to
    ``cell_threads=1``.

    Returns the JSON-ready document ``{"meta": ..., "cells": [...]}``
    and writes it to ``out_path`` when given (atomic tmp + rename). An
    interrupted sweep (Ctrl-C, fatal error) still flushes the cells
    completed so far to ``out_path`` — marked ``meta.partial`` — before
    the exception propagates.
    """
    validate_grid(envs, designs)
    if resume_dir is not None:
        # Durable path: the one-shot CLI becomes a thin client of the
        # jobs layer. Imported lazily — jobs imports this module.
        from repro.sim.jobs import run_resumable_sweep

        return run_resumable_sweep(
            resume_dir, envs=envs, workloads=workloads, designs=designs,
            thp_modes=thp_modes, workers=workers, out_path=out_path,
            progress=progress, trace_path=trace_path,
            artifact_dir=artifact_dir, cell_threads=cell_threads,
            **config_kwargs)
    tasks = grid_tasks(envs, workloads, designs, thp_modes,
                       trace_path=trace_path, artifact_dir=artifact_dir,
                       cell_threads=cell_threads or 1, **config_kwargs)
    if workers is None:
        workers = os.cpu_count() or 1
    pool_size, threads = effective_split(workers, len(tasks), cell_threads)
    notify = progress or (lambda message: None)

    # Parent-side progress counters; pool workers count in their own
    # registries, so these instances are the sweep-wide truth.
    groups_done = metrics.counter("sweep.groups")
    cells_done = metrics.counter("sweep.cells")
    errors_seen = metrics.counter("sweep.error_cells")
    # Only close the process-global trace stream on exit if this call
    # opened it: a caller (repro run --trace, a jobs client running
    # several sweeps) that enabled tracing before entry keeps its
    # stream.
    owns_trace = bool(trace_path) and not obs_trace.active()
    if trace_path:
        obs_trace.enable(trace_path)

    started = time.time()
    cells: List[Dict] = []
    done = 0

    def document_for(partial: bool = False) -> Dict:
        meta = {
            "envs": list(envs),
            "workloads": list(workloads or ALL_WORKLOADS),
            "designs": list(designs) if designs else "all",
            "thp_modes": [bool(t) for t in thp_modes],
            "config": dict(config_kwargs),
            "workers": pool_size,
            "requested_workers": workers,
            "cell_threads": threads,
            "parallelism": pool_size * threads,
            "groups": len(tasks),
            "cells": len(cells),
            "wall_seconds": time.time() - started,
            "started_at": time.strftime("%Y-%m-%dT%H:%M:%S%z",
                                        time.localtime(started)),
            "trace": trace_path,
            "artifact_cache": artifact_dir,
            "metrics": {
                "sweep.groups": groups_done.value,
                "sweep.cells": cells_done.value,
                "sweep.error_cells": errors_seen.value,
            },
        }
        if partial:
            meta["partial"] = True
            meta["completed_groups"] = done
        return {"meta": meta, "cells": sorted(cells, key=cell_sort_key)}

    try:
        if pool_size == 1:
            for task in tasks:
                group_cells = run_group(task)
                cells.extend(group_cells)
                done += 1
                groups_done.inc()
                cells_done.inc(len(group_cells))
                errors_seen.inc(
                    sum(1 for cell in group_cells if "error" in cell))
                notify(f"[{done}/{len(tasks)}] {'+'.join(task[0])}/{task[1]}"
                       f"{' thp' if task[2] else ''} done (inline)")
        else:
            with ProcessPoolExecutor(max_workers=pool_size) as pool:
                futures = {pool.submit(run_group, task): task
                           for task in tasks}
                for future in as_completed(futures):
                    task = futures[future]
                    try:
                        group_cells = future.result()
                    except Exception as exc:
                        # run_group catches cell failures itself; reaching
                        # here means the worker process died (OOM kill,
                        # segfault) or the result failed to unpickle —
                        # fabricate one error cell per (env, design) so
                        # diff tooling sees exactly which cells are gone.
                        group_cells = dead_group_cells(task, exc)
                    cells.extend(group_cells)
                    done += 1
                    failed = sum(1 for cell in group_cells
                                 if "error" in cell)
                    groups_done.inc()
                    cells_done.inc(len(group_cells))
                    errors_seen.inc(failed)
                    notify(f"[{done}/{len(tasks)}] "
                           f"{'+'.join(task[0])}/{task[1]}"
                           f"{' thp' if task[2] else ''} "
                           f"{'FAILED' if failed else 'done'}")
    except BaseException:
        # An interrupted sweep (Ctrl-C, OOM-killed pool, fatal error)
        # must not discard the groups already completed: flush them as
        # a partial document before the exception propagates.
        if out_path and cells:
            try:
                write_document(document_for(partial=True), out_path)
            except OSError:
                pass  # the original exception matters more
        raise
    finally:
        if owns_trace:
            obs_trace.disable()

    document = document_for()
    if out_path:
        write_document(document, out_path)
    return document


def summarize(document: Dict) -> List[List]:
    """Rows for a human-readable sweep summary table."""
    rows = []
    for cell in document["cells"]:
        if "error" in cell:
            rows.append([
                cell["env"],
                cell["workload"],
                "THP" if cell["thp"] else "4KB",
                cell.get("design") or "(group)",
                f"ERROR: {cell['error']}",
                "-", "-", "-",
            ])
            continue
        speedup = cell.get("walk_speedup")
        rows.append([
            cell["env"],
            cell["workload"],
            "THP" if cell["thp"] else "4KB",
            cell["design"],
            f"{cell['mean_latency']:.1f}",
            f"{speedup:.2f}x" if speedup else "-",
            f"{cell['walks_per_second']:,.0f}",
            f"{cell['peak_rss_kb'] >> 10} MiB",
        ])
    return rows


def load_sweep(path: str) -> Dict:
    """Read a sweep document back from its JSON store."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)
