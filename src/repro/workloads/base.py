"""Workload model: VMA layout + memory-reference trace.

The paper drives its simulator with DynamoRIO traces of seven
data-intensive applications (Table 4) whose working sets span 62–155 GB.
We substitute synthetic generators that reproduce each application's
*access pattern* (what determines TLB/PWC/cache behaviour) over working
sets scaled to simulation size, and each application's *VMA layout*
(Table 1: how many VMAs, how many cover 99% of memory, how clustered they
are), which is what DMT's register coverage depends on.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from repro.arch import PAGE_SIZE, align_up
from repro.kernel.process import Process
from repro.kernel.vma import VMA

#: Scale factor: paper working sets are in the 60–155 GB range; we scale
#: them down by this factor for tractable pure-Python simulation. TLB and
#: cache reach stay constant (Table 3), so miss behaviour is preserved.
DEFAULT_SCALE = 1024


@dataclass(frozen=True)
class VMASpec:
    """One region in a workload's layout, placed after ``gap_before`` bytes."""

    size: int
    gap_before: int = PAGE_SIZE
    name: str = "anon"
    hot: bool = False   # receives trace references


@dataclass
class InstalledLayout:
    """A layout realized inside a process."""

    vmas: List[VMA]
    hot_vmas: List[VMA]

    @property
    def main(self) -> VMA:
        return max(self.hot_vmas, key=lambda v: v.size)


TraceFn = Callable[["Workload", InstalledLayout, int, np.random.Generator], np.ndarray]


@dataclass
class Workload:
    """A runnable workload: layout + trace generator + paper metadata."""

    name: str
    description: str
    vma_specs: List[VMASpec]
    trace_fn: TraceFn
    paper_working_set_gb: float
    #: Table 1 ground truth for cross-checking the layout generator.
    paper_total_vmas: int = 0
    paper_cov99: int = 0
    paper_clusters: int = 0

    # ------------------------------------------------------------------ #
    # Layout
    # ------------------------------------------------------------------ #

    def layout(self, base: int = 0x7F00_0000_0000) -> List[Tuple[int, int, str]]:
        """Materialize the layout as (start, end, name) tuples."""
        result = []
        cursor = base
        for spec in self.vma_specs:
            cursor += align_up(spec.gap_before, PAGE_SIZE)
            start = cursor
            cursor += align_up(spec.size, PAGE_SIZE)
            result.append((start, cursor, spec.name))
        return result

    def working_set_bytes(self) -> int:
        return sum(spec.size for spec in self.vma_specs if spec.hot)

    def install(self, process: Process, base: int = 0x7F00_0000_0000,
                populate: bool = True) -> InstalledLayout:
        """Create (and optionally back) the layout inside a process."""
        vmas: List[VMA] = []
        hot: List[VMA] = []
        cursor = base
        # Two passes, like the applications themselves: map everything at
        # initialization, then fault the data in. Mapping first also lets
        # DMT's mapping manager cluster and expand TEAs in place (§4.2.1).
        for spec in self.vma_specs:
            cursor += align_up(spec.gap_before, PAGE_SIZE)
            vma = process.mmap(align_up(spec.size, PAGE_SIZE), addr=cursor,
                               name=spec.name)
            cursor = vma.end
            vmas.append(vma)
            if spec.hot:
                hot.append(vma)
        if populate:
            for vma in hot:
                process.populate(vma)
        return InstalledLayout(vmas, hot)

    # ------------------------------------------------------------------ #
    # Trace
    # ------------------------------------------------------------------ #

    def generate_trace(self, layout: InstalledLayout, nrefs: int,
                       seed: int = 0) -> np.ndarray:
        """An int64 array of absolute virtual addresses.

        The per-workload salt must be reproducible across interpreter
        runs, so it is a CRC of the name — builtin ``hash()`` on a str
        is salted by PYTHONHASHSEED and made every trace (and every
        downstream miss stream and latency) vary run to run.
        """
        rng = np.random.default_rng(seed ^ zlib.crc32(self.name.encode()))
        trace = self.trace_fn(self, layout, nrefs, rng)
        return trace.astype(np.int64)


def uniform_over(vma: VMA, nrefs: int, rng: np.random.Generator) -> np.ndarray:
    offsets = rng.integers(0, vma.size, size=nrefs, dtype=np.int64)
    return vma.start + offsets


def zipf_pages(vma: VMA, nrefs: int, rng: np.random.Generator,
               alpha: float = 0.8) -> np.ndarray:
    """Zipf-distributed page-granular accesses over a VMA, random offsets."""
    npages = max(1, vma.size // PAGE_SIZE)
    # Inverse-CDF sampling over a truncated zeta distribution.
    ranks = np.arange(1, npages + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    picks = np.searchsorted(cdf, rng.random(nrefs))
    # shuffle rank->page so hot pages are spread across the VMA
    perm = rng.permutation(npages)
    pages = perm[picks]
    offsets = rng.integers(0, PAGE_SIZE, size=nrefs, dtype=np.int64)
    return vma.start + pages.astype(np.int64) * PAGE_SIZE + offsets


def mixed_trace(parts: List[Tuple[np.ndarray, float]], nrefs: int,
                rng: np.random.Generator) -> np.ndarray:
    """Interleave several sub-traces with the given probabilities."""
    choices = rng.choice(len(parts), size=nrefs,
                         p=[weight for _, weight in parts])
    out = np.empty(nrefs, dtype=np.int64)
    for idx, (sub, _) in enumerate(parts):
        mask = choices == idx
        need = int(mask.sum())
        out[mask] = sub[:need] if len(sub) >= need else \
            np.resize(sub, need)
    return out
