"""Workload model: VMA layout + memory-reference trace.

The paper drives its simulator with DynamoRIO traces of seven
data-intensive applications (Table 4) whose working sets span 62–155 GB.
We substitute synthetic generators that reproduce each application's
*access pattern* (what determines TLB/PWC/cache behaviour) over working
sets scaled to simulation size, and each application's *VMA layout*
(Table 1: how many VMAs, how many cover 99% of memory, how clustered they
are), which is what DMT's register coverage depends on.

Traces are produced in fixed-size chunks (``generate_trace_chunks``) so
stage 1 can consume them in constant memory; ``generate_trace`` is the
same stream assembled into one array.  The chunk-boundary RNG contract
(DESIGN.md §13): the concatenation of the chunks is bit-identical to the
single monolithic draw, for every chunk size.  This works because NumPy
``Generator`` bulk draws (``integers``/``random``/``choice``) fill
element-sequentially — splitting one ``size=n`` call into consecutive
smaller calls consumes the identical bit stream — and because each draw
*site* in a generator is replayed from a captured bit-generator state,
so sites can be interleaved per chunk even though the monolithic code
drew them one after another.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch import PAGE_SIZE, align_up
from repro.kernel.process import Process
from repro.kernel.vma import VMA

#: Scale factor: paper working sets are in the 60–155 GB range; we scale
#: them down by this factor for tractable pure-Python simulation. TLB and
#: cache reach stay constant (Table 3), so miss behaviour is preserved.
DEFAULT_SCALE = 1024

#: Default chunk size (in references) for streamed trace generation.
DEFAULT_TRACE_CHUNK = 1 << 20

#: Block size used when fast-forwarding a shared generator past a draw
#: site; bounds the transient footprint of the advance pass.
_ADVANCE_BLOCK = 1 << 20


@dataclass(frozen=True)
class VMASpec:
    """One region in a workload's layout, placed after ``gap_before`` bytes."""

    size: int
    gap_before: int = PAGE_SIZE
    name: str = "anon"
    hot: bool = False   # receives trace references


@dataclass
class InstalledLayout:
    """A layout realized inside a process."""

    vmas: List[VMA]
    hot_vmas: List[VMA]

    @property
    def main(self) -> VMA:
        return max(self.hot_vmas, key=lambda v: v.size)


# --------------------------------------------------------------------- #
# Replayable draw sites
# --------------------------------------------------------------------- #

DrawFn = Callable[[np.random.Generator, int], np.ndarray]


class SiteStream:
    """One replayable RNG draw site inside a chunked trace generator.

    The monolithic generators draw each site in one bulk call, in source
    order.  To emit the trace chunk-by-chunk instead, each site captures
    the shared generator's bit state where the monolithic call would
    have happened, then (unless it is the final site) *fast-forwards*
    the shared generator past the site by performing the same draws in
    bounded blocks and discarding them — NumPy bulk draws consume the
    bit stream element-sequentially, so this leaves the shared generator
    exactly where the monolithic call would have.  ``take`` later
    replays the site's values from the captured state, also in blocks,
    yielding the identical bits.
    """

    def __init__(self, rng: np.random.Generator, draw: DrawFn, length: int,
                 advance: bool = True,
                 on_advance: Optional[Callable[[np.ndarray], None]] = None):
        self._draw = draw
        self.length = int(length)
        self._pos = 0
        self._state = rng.bit_generator.state
        self._replay = np.random.Generator(type(rng.bit_generator)())
        self._replay.bit_generator.state = self._state
        if advance:
            left = self.length
            while left:
                step = min(left, _ADVANCE_BLOCK)
                block = draw(rng, step)
                if on_advance is not None:
                    on_advance(block)
                left -= step

    def take(self, n: int) -> np.ndarray:
        """The next ``n`` values of this site's monolithic draw."""
        if self._pos + n > self.length:
            raise ValueError(
                f"draw site exhausted: {self._pos}+{n} > {self.length}")
        self._pos += n
        return self._draw(self._replay, n)

    def reset(self) -> None:
        """Rewind to the first value (cyclic reuse, cf. ``np.resize``)."""
        self._replay.bit_generator.state = self._state
        self._pos = 0


class UniformStream:
    """Chunked replay of uniform references over one VMA."""

    def __init__(self, vma: VMA, length: int, rng: np.random.Generator,
                 advance: bool = True):
        self._start = vma.start
        size = vma.size
        self._site = SiteStream(
            rng, lambda r, n: r.integers(0, size, size=n, dtype=np.int64),
            length, advance=advance)
        self.length = self._site.length

    def take(self, n: int) -> np.ndarray:
        return self._start + self._site.take(n)

    def reset(self) -> None:
        self._site.reset()


class ZipfStream:
    """Chunked replay of Zipf-distributed page-granular accesses.

    Monolithic draw order: rank picks (``random``), then the rank→page
    permutation, then the in-page offsets — so the picks site always
    advances (the permutation is drawn after it on the shared stream).
    """

    def __init__(self, vma: VMA, length: int, rng: np.random.Generator,
                 alpha: float = 0.8, advance: bool = True):
        npages = max(1, vma.size // PAGE_SIZE)
        # Inverse-CDF sampling over a truncated zeta distribution.
        ranks = np.arange(1, npages + 1, dtype=np.float64)
        weights = ranks ** (-alpha)
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        self._cdf = cdf
        self._start = vma.start
        self._picks = SiteStream(
            rng, lambda r, n: r.random(n), length)
        # shuffle rank->page so hot pages are spread across the VMA
        self._perm = rng.permutation(npages)
        self._offsets = SiteStream(
            rng,
            lambda r, n: r.integers(0, PAGE_SIZE, size=n, dtype=np.int64),
            length, advance=advance)
        self.length = int(length)

    def take(self, n: int) -> np.ndarray:
        picks = np.searchsorted(self._cdf, self._picks.take(n))
        pages = self._perm[picks]
        return (self._start + pages.astype(np.int64) * PAGE_SIZE
                + self._offsets.take(n))

    def reset(self) -> None:
        self._picks.reset()
        self._offsets.reset()


class SeqStream:
    """Chunked replay of a fixed-stride scan (no RNG draws)."""

    def __init__(self, base: int, length: int, stride: int):
        self._base = base
        self._stride = stride
        self._pos = 0
        self.length = int(length)

    def take(self, n: int) -> np.ndarray:
        idx = np.arange(self._pos, self._pos + n, dtype=np.int64)
        self._pos += n
        return self._base + idx * self._stride

    def reset(self) -> None:
        self._pos = 0


class MixedStream:
    """Chunked replay of probability-interleaved sub-streams.

    Reproduces the monolithic ``mixed_trace`` exactly: the j-th
    occurrence of part ``i`` (in trace order) receives the j-th value of
    sub-stream ``i``; a part shorter than its demand wraps around
    cyclically (the ``np.resize`` tiling), and an *empty* part yields
    zeros, matching ``np.resize``'s empty-input behaviour.
    """

    def __init__(self, parts: Sequence[Tuple[object, float]], length: int,
                 rng: np.random.Generator, advance: bool = False):
        self._parts = [part for part, _ in parts]
        self._cursor = [0] * len(self._parts)
        weights = [weight for _, weight in parts]
        nparts = len(self._parts)
        self._choices = SiteStream(
            rng, lambda r, n: r.choice(nparts, size=n, p=weights),
            length, advance=advance)
        self.length = int(length)

    def take(self, n: int) -> np.ndarray:
        choices = self._choices.take(n)
        out = np.empty(n, dtype=np.int64)
        for idx in np.unique(choices):
            mask = choices == idx
            out[mask] = self._take_cyclic(int(idx), int(mask.sum()))
        return out

    def _take_cyclic(self, idx: int, need: int) -> np.ndarray:
        part = self._parts[idx]
        if part.length == 0:
            return np.zeros(need, dtype=np.int64)
        pieces = []
        cursor = self._cursor[idx]
        while need:
            if cursor == part.length:
                part.reset()
                cursor = 0
            step = min(need, part.length - cursor)
            pieces.append(part.take(step))
            cursor += step
            need -= step
        self._cursor[idx] = cursor
        # bounded by one requested chunk (wrap splice), not the stream
        return pieces[0] if len(pieces) == 1 \
            else np.concatenate(pieces)  # dmtlint: ignore[L701]


class InterleavedColumns:
    """Chunked replay of ``np.column_stack(cols).reshape(-1)``.

    ``block(g)`` returns the next ``g`` values of each of ``ncols``
    column streams; the output round-robins across the columns.  Column
    groups that straddle a chunk boundary are carried in a small tail
    buffer, so any chunk size works.  Each block materializes only
    ``g * ncols`` elements — this is the per-chunk construction that
    replaces the whole-trace ``column_stack`` transients.
    """

    def __init__(self, block: Callable[[int], Sequence[np.ndarray]],
                 ncols: int, groups: int):
        self._block = block
        self._ncols = ncols
        self._groups_left = int(groups)
        self._tail = np.empty(0, dtype=np.int64)
        self.length = ncols * int(groups)

    def take(self, n: int) -> np.ndarray:
        out = np.empty(n, dtype=np.int64)
        filled = min(n, len(self._tail))
        out[:filled] = self._tail[:filled]
        self._tail = self._tail[filled:]
        while filled < n:
            groups = min(self._groups_left,
                         -(-(n - filled) // self._ncols))
            if groups <= 0:
                raise ValueError("interleaved stream exhausted")
            flat = np.column_stack(self._block(groups)).reshape(-1)
            self._groups_left -= groups
            step = min(n - filled, flat.size)
            out[filled:filled + step] = flat[:step]
            self._tail = flat[step:]
            filled += step
        return out


def emit_chunks(stream, chunk: int) -> Iterator[np.ndarray]:
    """Drain a stream with ``.length``/``.take`` into chunked arrays."""
    left = stream.length
    while left:
        n = min(chunk, left)
        yield stream.take(n)
        left -= n


# --------------------------------------------------------------------- #
# Workload
# --------------------------------------------------------------------- #

ChunkFn = Callable[
    ["Workload", InstalledLayout, int, np.random.Generator, int],
    Iterator[np.ndarray],
]


@dataclass
class Workload:
    """A runnable workload: layout + trace generator + paper metadata."""

    name: str
    description: str
    vma_specs: List[VMASpec]
    chunk_fn: ChunkFn
    paper_working_set_gb: float
    #: Table 1 ground truth for cross-checking the layout generator.
    paper_total_vmas: int = 0
    paper_cov99: int = 0
    paper_clusters: int = 0
    #: Trace length as a function of nrefs (interleaved generators round
    #: down to a whole number of column groups).
    trace_len_fn: Optional[Callable[[int], int]] = None

    # ------------------------------------------------------------------ #
    # Layout
    # ------------------------------------------------------------------ #

    def layout(self, base: int = 0x7F00_0000_0000) -> List[Tuple[int, int, str]]:
        """Materialize the layout as (start, end, name) tuples."""
        result = []
        cursor = base
        for spec in self.vma_specs:
            cursor += align_up(spec.gap_before, PAGE_SIZE)
            start = cursor
            cursor += align_up(spec.size, PAGE_SIZE)
            result.append((start, cursor, spec.name))
        return result

    def working_set_bytes(self) -> int:
        return sum(spec.size for spec in self.vma_specs if spec.hot)

    def install(self, process: Process, base: int = 0x7F00_0000_0000,
                populate: bool = True) -> InstalledLayout:
        """Create (and optionally back) the layout inside a process."""
        vmas: List[VMA] = []
        hot: List[VMA] = []
        cursor = base
        # Two passes, like the applications themselves: map everything at
        # initialization, then fault the data in. Mapping first also lets
        # DMT's mapping manager cluster and expand TEAs in place (§4.2.1).
        for spec in self.vma_specs:
            cursor += align_up(spec.gap_before, PAGE_SIZE)
            vma = process.mmap(align_up(spec.size, PAGE_SIZE), addr=cursor,
                               name=spec.name)
            cursor = vma.end
            vmas.append(vma)
            if spec.hot:
                hot.append(vma)
        if populate:
            for vma in hot:
                process.populate(vma)
        return InstalledLayout(vmas, hot)

    # ------------------------------------------------------------------ #
    # Trace
    # ------------------------------------------------------------------ #

    def trace_length(self, nrefs: int) -> int:
        """Exact trace length for ``nrefs`` requested references."""
        return self.trace_len_fn(nrefs) if self.trace_len_fn else nrefs

    def generate_trace_chunks(self, layout: InstalledLayout, nrefs: int,
                              seed: int = 0,
                              chunk: int = DEFAULT_TRACE_CHUNK,
                              ) -> Iterator[np.ndarray]:
        """Yield the trace as consecutive int64 chunks of ``chunk`` refs.

        The concatenation of the chunks is bit-identical to
        :meth:`generate_trace` for every chunk size (the chunk-boundary
        RNG contract, DESIGN.md §13).  All chunks but the last hold
        exactly ``chunk`` references.

        The per-workload salt must be reproducible across interpreter
        runs, so it is a CRC of the name — builtin ``hash()`` on a str
        is salted by PYTHONHASHSEED and made every trace (and every
        downstream miss stream and latency) vary run to run.
        """
        if chunk <= 0:
            raise ValueError(f"chunk must be positive, got {chunk}")
        rng = np.random.default_rng(seed ^ zlib.crc32(self.name.encode()))
        for piece in self.chunk_fn(self, layout, nrefs, rng, chunk):
            yield np.asarray(piece, dtype=np.int64)

    def generate_trace(self, layout: InstalledLayout, nrefs: int,
                       seed: int = 0) -> np.ndarray:
        """An int64 array of absolute virtual addresses.

        Assembled from :meth:`generate_trace_chunks` into one
        preallocated array, so peak memory is the trace itself plus one
        chunk — the interleaved/mixed generators never materialize the
        whole-trace intermediates they used to.
        """
        total = self.trace_length(nrefs)
        out = np.empty(total, dtype=np.int64)
        pos = 0
        for piece in self.generate_trace_chunks(layout, nrefs, seed):
            out[pos:pos + len(piece)] = piece
            pos += len(piece)
        if pos != total:
            raise RuntimeError(
                f"{self.name}: chunked generator produced {pos} refs, "
                f"expected {total}")
        return out
