"""The seven evaluation workloads (Table 4), as synthetic generators.

Each generator reproduces (a) the documented memory-access pattern of the
application — what drives TLB/PWC/cache behaviour — and (b) its VMA layout
characteristics from Table 1 (total VMAs, VMAs covering 99% of memory,
clusters). Working sets are scaled down by
:data:`~repro.workloads.base.DEFAULT_SCALE` (see DESIGN.md §2).

Every generator is chunked: it yields fixed-size int64 blocks whose
concatenation is bit-identical to the historical monolithic draw (the
chunk-boundary RNG contract, DESIGN.md §13).  Draw *sites* appear below
in the same order the monolithic code called them, so the shared
generator consumes the identical bit stream; each site is then replayed
chunk-by-chunk through :class:`~repro.workloads.base.SiteStream`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

import numpy as np

from repro.arch import PAGE_SIZE
from repro.workloads.base import (
    DEFAULT_SCALE,
    InstalledLayout,
    InterleavedColumns,
    MixedStream,
    SeqStream,
    SiteStream,
    UniformStream,
    VMASpec,
    Workload,
    ZipfStream,
    emit_chunks,
)

_GB = 1 << 30
_MB = 1 << 20
_KB = 1 << 10


def _small_vmas(count: int, seed: int) -> List[VMASpec]:
    """Cold library/stack/arena VMAs that pad the layout to Table 1 totals."""
    rng = np.random.default_rng(seed)
    specs = []
    for i in range(count):
        # Small and cold: libraries, stacks, arenas. Collectively they must
        # stay below ~1% of the working set (Table 1: 1-6 VMAs cover 99%).
        size = int(rng.choice([4 * _KB, 8 * _KB], p=[0.8, 0.2]))
        gap = int(rng.choice([4 * _KB, 64 * _KB, 1 * _MB], p=[0.5, 0.3, 0.2]))
        specs.append(VMASpec(size, gap_before=gap, name=f"lib{i}", hot=False))
    return specs


# --------------------------------------------------------------------- #
# Trace generators (chunked)
# --------------------------------------------------------------------- #

def _gups_chunks(wl: Workload, layout: InstalledLayout, nrefs: int,
                 rng: np.random.Generator, chunk: int) -> Iterator[np.ndarray]:
    """GUPS: giga-updates per second — uniform random updates."""
    yield from emit_chunks(
        UniformStream(layout.main, nrefs, rng, advance=False), chunk)


def _redis_chunks(wl: Workload, layout: InstalledLayout, nrefs: int,
                  rng: np.random.Generator, chunk: int) -> Iterator[np.ndarray]:
    """Redis: hash-table probe + value read per GET over a huge keyspace.

    At 512M small records the per-page reuse is low: mostly-uniform access
    with a mild hot set (shared dict structures)."""
    main = layout.main
    hot = ZipfStream(main, nrefs, rng, alpha=0.6)
    cold = UniformStream(main, nrefs, rng)
    yield from emit_chunks(
        MixedStream([(cold, 0.8), (hot, 0.2)], nrefs, rng), chunk)


def _memcached_chunks(wl: Workload, layout: InstalledLayout, nrefs: int,
                      rng: np.random.Generator,
                      chunk: int) -> Iterator[np.ndarray]:
    """Memcached: zipfian item popularity across hundreds of slab VMAs."""
    slabs = layout.hot_vmas
    # The monolithic draw order was: all slab picks, then each slab's
    # offsets in slab order, sized by that slab's pick count — so tally
    # the counts while fast-forwarding past the picks site.
    counts = np.zeros(len(slabs), dtype=np.int64)

    def _tally(block: np.ndarray) -> None:
        counts[:] += np.bincount(block, minlength=len(slabs))

    nslabs = len(slabs)
    picks = SiteStream(rng, lambda r, n: r.integers(0, nslabs, size=n),
                       nrefs, on_advance=_tally)
    sites: Dict[int, UniformStream] = {}
    for idx, slab in enumerate(slabs):
        count = int(counts[idx])
        if count:
            sites[idx] = UniformStream(slab, count, rng)
    left = nrefs
    while left:
        n = min(chunk, left)
        chosen = picks.take(n)
        out = np.empty(n, dtype=np.int64)
        for idx in np.unique(chosen):
            mask = chosen == idx
            out[mask] = sites[int(idx)].take(int(mask.sum()))
        yield out
        left -= n


def _btree_chunks(wl: Workload, layout: InstalledLayout, nrefs: int,
                  rng: np.random.Generator, chunk: int) -> Iterator[np.ndarray]:
    """BTree: index lookups — one touch per tree level, upper levels hot.

    A lookup descends ~4 levels: the root/inner levels live in small,
    heavily reused page sets; the leaf touch is effectively random."""
    main = layout.main
    ops = nrefs // 4
    l2_pages = max(1, main.size // (256 * PAGE_SIZE))
    l3_pages = max(1, main.size // (16 * PAGE_SIZE))
    root = SiteStream(
        rng, lambda r, n: r.integers(0, 16, size=n, dtype=np.int64), ops)
    l2 = SiteStream(
        rng,
        lambda r, n: r.integers(0, l2_pages, size=n, dtype=np.int64), ops)
    l3 = SiteStream(
        rng,
        lambda r, n: r.integers(0, l3_pages, size=n, dtype=np.int64), ops)
    leaf = UniformStream(main, ops, rng, advance=False)
    start = main.start

    def block(groups: int):
        return (start + root.take(groups) * PAGE_SIZE,
                start + l2.take(groups) * PAGE_SIZE,
                start + l3.take(groups) * PAGE_SIZE,
                leaf.take(groups))

    yield from emit_chunks(InterleavedColumns(block, 4, ops), chunk)


def _canneal_chunks(wl: Workload, layout: InstalledLayout, nrefs: int,
                    rng: np.random.Generator,
                    chunk: int) -> Iterator[np.ndarray]:
    """Canneal: random element swaps — pairs of uniform accesses plus the
    neighbour lists of each element (some spatial locality)."""
    main = layout.main
    half = nrefs // 2
    elems = UniformStream(main, half, rng)
    deltas = SiteStream(
        rng, lambda r, n: r.integers(-2048, 2048, size=n, dtype=np.int64),
        half, advance=False)
    lo, hi = main.start, main.end - 1

    def block(groups: int):
        current = elems.take(groups)
        neighbours = np.clip(current + deltas.take(groups), lo, hi)
        return (current, neighbours)

    yield from emit_chunks(InterleavedColumns(block, 2, half), chunk)


def _xsbench_chunks(wl: Workload, layout: InstalledLayout, nrefs: int,
                    rng: np.random.Generator,
                    chunk: int) -> Iterator[np.ndarray]:
    """XSBench: per-lookup binary search over sorted nuclide grids — the
    first search steps reuse a small page set, the final ones are random."""
    main = layout.main
    ops = nrefs // 4
    npages = max(1, main.size // PAGE_SIZE)
    # successive binary-search probes narrow from hot to cold pages
    spans = [max(1, npages // 256), max(1, npages // 32), max(1, npages // 4)]
    probes = [
        SiteStream(
            rng,
            lambda r, n, span=span: r.integers(0, span, size=n,
                                               dtype=np.int64),
            ops)
        for span in spans
    ]
    leaf = UniformStream(main, ops, rng, advance=False)
    start = main.start

    def block(groups: int):
        cols = [start + probe.take(groups) * PAGE_SIZE for probe in probes]
        cols.append(leaf.take(groups))
        return cols

    yield from emit_chunks(InterleavedColumns(block, 4, ops), chunk)


def _graph500_chunks(wl: Workload, layout: InstalledLayout, nrefs: int,
                     rng: np.random.Generator,
                     chunk: int) -> Iterator[np.ndarray]:
    """Graph500 BFS: sequential frontier scans + random neighbour chasing
    with power-law vertex popularity."""
    main = layout.main
    third = nrefs // 3
    seq_start = int(rng.integers(0, max(1, main.size - third * 64)))
    seq = SeqStream(main.start + seq_start, third, stride=64)
    hubs = ZipfStream(main, third, rng, alpha=1.1)
    rand = UniformStream(main, nrefs - 2 * third, rng)
    yield from emit_chunks(
        MixedStream([(seq, 0.34), (hubs, 0.33), (rand, 0.33)], nrefs, rng),
        chunk)


def _quads(nrefs: int) -> int:
    return 4 * (nrefs // 4)


def _pairs(nrefs: int) -> int:
    return 2 * (nrefs // 2)


# --------------------------------------------------------------------- #
# Workload catalogue (Table 4 x Table 1)
# --------------------------------------------------------------------- #

def _simple_layout(heap_bytes: int, total_vmas: int, seed: int,
                   heap_name: str = "heap") -> List[VMASpec]:
    """One dominant heap + (total-1) small cold VMAs — the common shape
    where 1-2 VMAs cover 99% of memory (BTree/Canneal/GUPS/XSBench/...)."""
    return (
        _small_vmas(total_vmas - 1, seed)
        + [VMASpec(heap_bytes, gap_before=4 * _MB, name=heap_name, hot=True)]
    )


def _redis_layout(scale: int) -> List[VMASpec]:
    """Redis: 182 VMAs, 6 of significant size (Table 1)."""
    specs = _small_vmas(176, seed=42)
    sizes = [96 * _GB // scale, 24 * _GB // scale, 16 * _GB // scale,
             12 * _GB // scale, 5 * _GB // scale, 2 * _GB // scale]
    for i, size in enumerate(sizes):
        specs.append(VMASpec(size, gap_before=8 * _MB, name=f"redis-arena{i}",
                             hot=True))
    return specs


def _memcached_layout(scale: int) -> List[VMASpec]:
    """Memcached: 1,065 VMAs, 778 significant slab regions in 2 clusters
    with sub-16KB bubbles (Table 1)."""
    specs = _small_vmas(287, seed=7)
    # Keep slabs large relative to their 4 KB bubbles so clustering with the
    # 2% allowance works at simulation scale as it does at 122 MB/slab in
    # the paper (bubbles < 16 KB, §2.3).
    per_slab = max(64 * PAGE_SIZE, (190 * _GB // scale) // 778 // PAGE_SIZE * PAGE_SIZE)
    for i in range(778):
        # two tight clusters of adjacent slab mappings
        gap = 32 * _MB if i in (0, 389) else 4 * _KB
        specs.append(VMASpec(per_slab, gap_before=gap, name=f"slab{i}", hot=True))
    return specs


def catalogue(scale: int = DEFAULT_SCALE) -> Dict[str, Workload]:
    """All seven evaluation workloads, scaled by ``scale``."""
    gb = _GB // scale
    workloads = [
        Workload(
            name="Redis",
            description="In-memory KV store, 512M 256B records, 100% reads",
            vma_specs=_redis_layout(scale),
            chunk_fn=_redis_chunks,
            paper_working_set_gb=155,
            paper_total_vmas=182, paper_cov99=6, paper_clusters=6,
        ),
        Workload(
            name="Memcached",
            description="In-memory KV store, 100M 1KB records, 100% reads",
            vma_specs=_memcached_layout(scale),
            chunk_fn=_memcached_chunks,
            paper_working_set_gb=95,
            paper_total_vmas=1065, paper_cov99=778, paper_clusters=2,
        ),
        Workload(
            name="GUPS",
            description="Random memory updates over a 128 GB table",
            vma_specs=_simple_layout(128 * gb, 103, seed=1),
            chunk_fn=_gups_chunks,
            paper_working_set_gb=128,
            paper_total_vmas=103, paper_cov99=1, paper_clusters=1,
        ),
        Workload(
            name="BTree",
            description="Index lookups, 1.5B keys",
            vma_specs=_simple_layout(125 * gb, 108, seed=2)
            + [VMASpec(1 * gb, gap_before=16 * _MB, name="btree-meta", hot=True)],
            chunk_fn=_btree_chunks,
            paper_working_set_gb=125,
            paper_total_vmas=109, paper_cov99=2, paper_clusters=2,
            trace_len_fn=_quads,
        ),
        Workload(
            name="Canneal",
            description="Simulated annealing over 100M netlist elements",
            vma_specs=_simple_layout(61 * gb, 115, seed=3)
            + [VMASpec(1 * gb, gap_before=16 * _MB, name="canneal-meta", hot=True)],
            chunk_fn=_canneal_chunks,
            paper_working_set_gb=62,
            paper_total_vmas=116, paper_cov99=2, paper_clusters=2,
            trace_len_fn=_pairs,
        ),
        Workload(
            name="XSBench",
            description="Monte Carlo neutron transport cross-section lookups",
            vma_specs=_simple_layout(84 * gb, 111, seed=4),
            chunk_fn=_xsbench_chunks,
            paper_working_set_gb=84,
            paper_total_vmas=111, paper_cov99=1, paper_clusters=1,
            trace_len_fn=_quads,
        ),
        Workload(
            name="Graph500",
            description="BFS on a scale-27 power-law graph",
            vma_specs=_simple_layout(123 * gb, 105, seed=5),
            chunk_fn=_graph500_chunks,
            paper_working_set_gb=123,
            paper_total_vmas=105, paper_cov99=1, paper_clusters=1,
        ),
    ]
    return {wl.name: wl for wl in workloads}


def get(name: str, scale: int = DEFAULT_SCALE) -> Workload:
    workloads = catalogue(scale)
    if name not in workloads:
        raise KeyError(f"unknown workload {name!r}; have {sorted(workloads)}")
    return workloads[name]
