"""The seven evaluation workloads (Table 4), as synthetic generators.

Each generator reproduces (a) the documented memory-access pattern of the
application — what drives TLB/PWC/cache behaviour — and (b) its VMA layout
characteristics from Table 1 (total VMAs, VMAs covering 99% of memory,
clusters). Working sets are scaled down by
:data:`~repro.workloads.base.DEFAULT_SCALE` (see DESIGN.md §2).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.arch import PAGE_SIZE
from repro.workloads.base import (
    DEFAULT_SCALE,
    InstalledLayout,
    VMASpec,
    Workload,
    mixed_trace,
    uniform_over,
    zipf_pages,
)

_GB = 1 << 30
_MB = 1 << 20
_KB = 1 << 10


def _small_vmas(count: int, seed: int) -> List[VMASpec]:
    """Cold library/stack/arena VMAs that pad the layout to Table 1 totals."""
    rng = np.random.default_rng(seed)
    specs = []
    for i in range(count):
        # Small and cold: libraries, stacks, arenas. Collectively they must
        # stay below ~1% of the working set (Table 1: 1-6 VMAs cover 99%).
        size = int(rng.choice([4 * _KB, 8 * _KB], p=[0.8, 0.2]))
        gap = int(rng.choice([4 * _KB, 64 * _KB, 1 * _MB], p=[0.5, 0.3, 0.2]))
        specs.append(VMASpec(size, gap_before=gap, name=f"lib{i}", hot=False))
    return specs


# --------------------------------------------------------------------- #
# Trace functions
# --------------------------------------------------------------------- #

def _gups_trace(wl: Workload, layout: InstalledLayout, nrefs: int,
                rng: np.random.Generator) -> np.ndarray:
    """GUPS: giga-updates per second — uniform random updates."""
    return uniform_over(layout.main, nrefs, rng)


def _redis_trace(wl: Workload, layout: InstalledLayout, nrefs: int,
                 rng: np.random.Generator) -> np.ndarray:
    """Redis: hash-table probe + value read per GET over a huge keyspace.

    At 512M small records the per-page reuse is low: mostly-uniform access
    with a mild hot set (shared dict structures)."""
    main = layout.main
    hot = zipf_pages(main, nrefs, rng, alpha=0.6)
    cold = uniform_over(main, nrefs, rng)
    return mixed_trace([(cold, 0.8), (hot, 0.2)], nrefs, rng)


def _memcached_trace(wl: Workload, layout: InstalledLayout, nrefs: int,
                     rng: np.random.Generator) -> np.ndarray:
    """Memcached: zipfian item popularity across hundreds of slab VMAs."""
    slabs = layout.hot_vmas
    slab_picks = rng.integers(0, len(slabs), size=nrefs)
    out = np.empty(nrefs, dtype=np.int64)
    for idx, slab in enumerate(slabs):
        mask = slab_picks == idx
        count = int(mask.sum())
        if count:
            out[mask] = uniform_over(slab, count, rng)
    return out


def _btree_trace(wl: Workload, layout: InstalledLayout, nrefs: int,
                 rng: np.random.Generator) -> np.ndarray:
    """BTree: index lookups — one touch per tree level, upper levels hot.

    A lookup descends ~4 levels: the root/inner levels live in small,
    heavily reused page sets; the leaf touch is effectively random."""
    main = layout.main
    ops = nrefs // 4
    root = main.start + rng.integers(0, 16, size=ops, dtype=np.int64) * PAGE_SIZE
    l2 = main.start + rng.integers(0, max(1, main.size // (256 * PAGE_SIZE)),
                                   size=ops, dtype=np.int64) * PAGE_SIZE
    l3 = main.start + rng.integers(0, max(1, main.size // (16 * PAGE_SIZE)),
                                   size=ops, dtype=np.int64) * PAGE_SIZE
    leaf = uniform_over(main, ops, rng)
    return np.column_stack([root, l2, l3, leaf]).reshape(-1)[:nrefs]


def _canneal_trace(wl: Workload, layout: InstalledLayout, nrefs: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Canneal: random element swaps — pairs of uniform accesses plus the
    neighbour lists of each element (some spatial locality)."""
    main = layout.main
    half = nrefs // 2
    elems = uniform_over(main, half, rng)
    neighbours = elems + rng.integers(-2048, 2048, size=half, dtype=np.int64)
    neighbours = np.clip(neighbours, main.start, main.end - 1)
    return np.column_stack([elems, neighbours]).reshape(-1)[:nrefs]


def _xsbench_trace(wl: Workload, layout: InstalledLayout, nrefs: int,
                   rng: np.random.Generator) -> np.ndarray:
    """XSBench: per-lookup binary search over sorted nuclide grids — the
    first search steps reuse a small page set, the final ones are random."""
    main = layout.main
    ops = nrefs // 4
    npages = max(1, main.size // PAGE_SIZE)
    # successive binary-search probes narrow from hot to cold pages
    s1 = main.start + rng.integers(0, max(1, npages // 256),
                                   size=ops, dtype=np.int64) * PAGE_SIZE
    s2 = main.start + rng.integers(0, max(1, npages // 32),
                                   size=ops, dtype=np.int64) * PAGE_SIZE
    s3 = main.start + rng.integers(0, max(1, npages // 4),
                                   size=ops, dtype=np.int64) * PAGE_SIZE
    s4 = uniform_over(main, ops, rng)
    return np.column_stack([s1, s2, s3, s4]).reshape(-1)[:nrefs]


def _graph500_trace(wl: Workload, layout: InstalledLayout, nrefs: int,
                    rng: np.random.Generator) -> np.ndarray:
    """Graph500 BFS: sequential frontier scans + random neighbour chasing
    with power-law vertex popularity."""
    main = layout.main
    third = nrefs // 3
    seq_start = int(rng.integers(0, max(1, main.size - third * 64)))
    seq = main.start + seq_start + np.arange(third, dtype=np.int64) * 64
    hubs = zipf_pages(main, third, rng, alpha=1.1)
    rand = uniform_over(main, nrefs - 2 * third, rng)
    return mixed_trace([(seq, 0.34), (hubs, 0.33), (rand, 0.33)], nrefs, rng)


# --------------------------------------------------------------------- #
# Workload catalogue (Table 4 x Table 1)
# --------------------------------------------------------------------- #

def _simple_layout(heap_bytes: int, total_vmas: int, seed: int,
                   heap_name: str = "heap") -> List[VMASpec]:
    """One dominant heap + (total-1) small cold VMAs — the common shape
    where 1-2 VMAs cover 99% of memory (BTree/Canneal/GUPS/XSBench/...)."""
    return (
        _small_vmas(total_vmas - 1, seed)
        + [VMASpec(heap_bytes, gap_before=4 * _MB, name=heap_name, hot=True)]
    )


def _redis_layout(scale: int) -> List[VMASpec]:
    """Redis: 182 VMAs, 6 of significant size (Table 1)."""
    specs = _small_vmas(176, seed=42)
    sizes = [96 * _GB // scale, 24 * _GB // scale, 16 * _GB // scale,
             12 * _GB // scale, 5 * _GB // scale, 2 * _GB // scale]
    for i, size in enumerate(sizes):
        specs.append(VMASpec(size, gap_before=8 * _MB, name=f"redis-arena{i}",
                             hot=True))
    return specs


def _memcached_layout(scale: int) -> List[VMASpec]:
    """Memcached: 1,065 VMAs, 778 significant slab regions in 2 clusters
    with sub-16KB bubbles (Table 1)."""
    specs = _small_vmas(287, seed=7)
    # Keep slabs large relative to their 4 KB bubbles so clustering with the
    # 2% allowance works at simulation scale as it does at 122 MB/slab in
    # the paper (bubbles < 16 KB, §2.3).
    per_slab = max(64 * PAGE_SIZE, (190 * _GB // scale) // 778 // PAGE_SIZE * PAGE_SIZE)
    for i in range(778):
        # two tight clusters of adjacent slab mappings
        gap = 32 * _MB if i in (0, 389) else 4 * _KB
        specs.append(VMASpec(per_slab, gap_before=gap, name=f"slab{i}", hot=True))
    return specs


def catalogue(scale: int = DEFAULT_SCALE) -> Dict[str, Workload]:
    """All seven evaluation workloads, scaled by ``scale``."""
    gb = _GB // scale
    workloads = [
        Workload(
            name="Redis",
            description="In-memory KV store, 512M 256B records, 100% reads",
            vma_specs=_redis_layout(scale),
            trace_fn=_redis_trace,
            paper_working_set_gb=155,
            paper_total_vmas=182, paper_cov99=6, paper_clusters=6,
        ),
        Workload(
            name="Memcached",
            description="In-memory KV store, 100M 1KB records, 100% reads",
            vma_specs=_memcached_layout(scale),
            trace_fn=_memcached_trace,
            paper_working_set_gb=95,
            paper_total_vmas=1065, paper_cov99=778, paper_clusters=2,
        ),
        Workload(
            name="GUPS",
            description="Random memory updates over a 128 GB table",
            vma_specs=_simple_layout(128 * gb, 103, seed=1),
            trace_fn=_gups_trace,
            paper_working_set_gb=128,
            paper_total_vmas=103, paper_cov99=1, paper_clusters=1,
        ),
        Workload(
            name="BTree",
            description="Index lookups, 1.5B keys",
            vma_specs=_simple_layout(125 * gb, 108, seed=2)
            + [VMASpec(1 * gb, gap_before=16 * _MB, name="btree-meta", hot=True)],
            trace_fn=_btree_trace,
            paper_working_set_gb=125,
            paper_total_vmas=109, paper_cov99=2, paper_clusters=2,
        ),
        Workload(
            name="Canneal",
            description="Simulated annealing over 100M netlist elements",
            vma_specs=_simple_layout(61 * gb, 115, seed=3)
            + [VMASpec(1 * gb, gap_before=16 * _MB, name="canneal-meta", hot=True)],
            trace_fn=_canneal_trace,
            paper_working_set_gb=62,
            paper_total_vmas=116, paper_cov99=2, paper_clusters=2,
        ),
        Workload(
            name="XSBench",
            description="Monte Carlo neutron transport cross-section lookups",
            vma_specs=_simple_layout(84 * gb, 111, seed=4),
            trace_fn=_xsbench_trace,
            paper_working_set_gb=84,
            paper_total_vmas=111, paper_cov99=1, paper_clusters=1,
        ),
        Workload(
            name="Graph500",
            description="BFS on a scale-27 power-law graph",
            vma_specs=_simple_layout(123 * gb, 105, seed=5),
            trace_fn=_graph500_trace,
            paper_working_set_gb=123,
            paper_total_vmas=105, paper_cov99=1, paper_clusters=1,
        ),
    ]
    return {wl.name: wl for wl in workloads}


def get(name: str, scale: int = DEFAULT_SCALE) -> Workload:
    workloads = catalogue(scale)
    if name not in workloads:
        raise KeyError(f"unknown workload {name!r}; have {sorted(workloads)}")
    return workloads[name]
