"""Workloads: the seven evaluation applications plus SPEC VMA profiles."""

from repro.workloads.base import (
    DEFAULT_SCALE,
    DEFAULT_TRACE_CHUNK,
    InstalledLayout,
    MixedStream,
    SiteStream,
    UniformStream,
    VMASpec,
    Workload,
    ZipfStream,
)
from repro.workloads.generators import catalogue, get
from repro.workloads.spec import spec2006_layouts, spec2017_layouts
from repro.workloads.stats import TraceStats, reuse_distance_profile, trace_stats

__all__ = [
    "DEFAULT_SCALE",
    "DEFAULT_TRACE_CHUNK",
    "InstalledLayout",
    "MixedStream",
    "SiteStream",
    "UniformStream",
    "VMASpec",
    "Workload",
    "ZipfStream",
    "catalogue",
    "get",
    "spec2006_layouts",
    "spec2017_layouts",
    "TraceStats",
    "reuse_distance_profile",
    "trace_stats",
]
