"""Synthetic SPEC CPU 2006 / 2017 VMA profiles (Table 1 bottom, Figure 5).

The paper measures VMA characteristics of the 30 SPEC CPU 2006 and 47
SPEC CPU 2017 workloads and reports ranges: 2006 totals 18–39 with 1–14
covering 99% and 1–8 clusters; 2017 totals 24–70, 1–21, 1–12. Without the
binaries we generate seeded synthetic layouts whose *computed* statistics
(via :mod:`repro.analysis.vma_stats` — the same code used for Table 1)
fall in those ranges, which is all Figure 5's CDFs consume.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.arch import PAGE_SIZE

_KB = 1 << 10
_MB = 1 << 20

SPEC2006_WORKLOADS = 30
SPEC2017_WORKLOADS = 47


def _synthetic_layout(rng: np.random.Generator, total_range: Tuple[int, int],
                      big_range: Tuple[int, int]) -> List[Tuple[int, int]]:
    """One workload's VMA layout: a few big regions + many small ones."""
    total = int(rng.integers(*total_range))
    big = int(rng.integers(big_range[0], min(big_range[1], total) + 1))
    layout: List[Tuple[int, int]] = []
    cursor = 0x5000_0000_0000

    # big data regions: heap, bss, mapped inputs — dominate memory
    for _ in range(big):
        size = int(rng.integers(64, 4096)) * _MB // 16
        size = max(PAGE_SIZE, size // PAGE_SIZE * PAGE_SIZE)
        # big regions are sometimes adjacent (clusters), sometimes apart
        gap = int(rng.choice([8 * _KB, 64 * _KB, 256 * _MB],
                             p=[0.45, 0.25, 0.3]))
        cursor += gap
        layout.append((cursor, cursor + size))
        cursor += size

    # small regions: libraries, stacks, arenas
    for _ in range(total - big):
        size = int(rng.choice([4 * _KB, 16 * _KB, 64 * _KB, 512 * _KB],
                              p=[0.35, 0.3, 0.25, 0.1]))
        gap = int(rng.choice([4 * _KB, 128 * _KB, 16 * _MB], p=[0.4, 0.4, 0.2]))
        cursor += gap
        layout.append((cursor, cursor + size))
        cursor += size
    return layout


def spec2006_layouts(seed: int = 2006) -> Dict[str, List[Tuple[int, int]]]:
    """30 synthetic SPEC CPU 2006 workload layouts."""
    rng = np.random.default_rng(seed)
    return {
        f"spec2006.{i:02d}": _synthetic_layout(rng, (18, 40), (1, 9))
        for i in range(SPEC2006_WORKLOADS)
    }


def spec2017_layouts(seed: int = 2017) -> Dict[str, List[Tuple[int, int]]]:
    """47 synthetic SPEC CPU 2017 workload layouts."""
    rng = np.random.default_rng(seed)
    return {
        f"spec2017.{i:02d}": _synthetic_layout(rng, (24, 71), (1, 13))
        for i in range(SPEC2017_WORKLOADS)
    }
