"""Trace statistics: quantitative validation of the workload generators.

The substitution argument in DESIGN.md §2 rests on the generators
preserving each application's *access pattern*. These metrics make that
checkable: page-level footprint, reuse skew, and spatial locality can be
compared across workloads and asserted to order the way the real
applications do (GUPS most random, BTree most reuse-skewed, Graph500 the
most sequential).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch import PAGE_SHIFT


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one address trace."""

    refs: int
    unique_pages: int
    footprint_fraction: float   # unique pages / total pages in span
    top1pct_share: float        # fraction of refs to the hottest 1% of pages
    sequential_fraction: float  # refs within 128 B of the previous ref


def trace_stats(trace: np.ndarray) -> TraceStats:
    """Compute :class:`TraceStats` for an absolute-VA trace."""
    if len(trace) == 0:
        raise ValueError("empty trace")
    pages = trace >> PAGE_SHIFT
    unique, counts = np.unique(pages, return_counts=True)
    span_pages = int(pages.max() - pages.min()) + 1
    hot_n = max(1, len(unique) // 100)
    top_share = float(np.sort(counts)[::-1][:hot_n].sum() / len(trace))
    deltas = np.abs(np.diff(trace))
    sequential = float((deltas <= 128).mean()) if len(trace) > 1 else 0.0
    return TraceStats(
        refs=len(trace),
        unique_pages=len(unique),
        footprint_fraction=len(unique) / span_pages if span_pages else 0.0,
        top1pct_share=top_share,
        sequential_fraction=sequential,
    )


def reuse_distance_profile(trace: np.ndarray, bins=(16, 256, 4096)) -> dict:
    """Histogram of page-level reuse distances (unique pages in between).

    Approximate (stack distance over a sliding recency list); enough to
    separate cache-friendly from cache-hostile patterns.
    """
    pages = (trace >> PAGE_SHIFT).tolist()
    last_seen: dict = {}
    clock = 0
    counters = {b: 0 for b in bins}
    counters["inf"] = 0
    for page in pages:
        if page in last_seen:
            distance = clock - last_seen[page]
            for b in bins:
                if distance <= b:
                    counters[b] += 1
                    break
            else:
                counters["inf"] += 1
        else:
            counters["inf"] += 1
        last_seen[page] = clock
        clock += 1
    total = len(pages)
    return {key: value / total for key, value in counters.items()}
