"""Page sharing: fork with copy-on-write and shared mappings.

The paper states DMT "supports all existing virtual memory features, such
as huge pages and page sharing" (§1): sharing is naturally compatible
because DMT adds no PTE copies — each process's last-level PTEs live in
its own TEAs, and shared *frames* are referenced from several processes'
PTEs exactly as on vanilla Linux. This module provides the substrate to
demonstrate that:

* a frame reference counter (``FrameRefs``);
* ``fork`` — clone a process's address space, write-protecting both
  sides' PTEs for copy-on-write;
* ``share_mapping`` — map one process's populated region into another
  (shmem/mmap-SHARED analogue);
* ``cow_fault`` — the write-fault handler that splits a shared frame.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.arch import PAGE_SHIFT, PAGE_SIZE, PageSize, align_down
from repro.kernel.kernel import Kernel
from repro.kernel.page_table import (
    PTE_PRESENT,
    PTE_WRITE,
    pte_frame,
)
from repro.kernel.process import Process, _HUGE_ORDER
from repro.kernel.vma import VMA


class FrameRefs:
    """Reference counts for shared data frames (struct page refcounts)."""

    def __init__(self):
        self._refs: Dict[int, int] = {}

    def get(self, frame: int) -> int:
        return self._refs.get(frame, 1)

    def inc(self, frame: int) -> int:
        self._refs[frame] = self._refs.get(frame, 1) + 1
        return self._refs[frame]

    def dec(self, frame: int) -> int:
        count = self._refs.get(frame, 1) - 1
        if count <= 1:
            self._refs.pop(frame, None)
            return max(count, 0)
        self._refs[frame] = count
        return count

    def is_shared(self, frame: int) -> bool:
        return self._refs.get(frame, 1) > 1


class SharingManager:
    """fork / COW / shared mappings for one kernel."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.refs = FrameRefs()
        self.cow_faults = 0
        self.forks = 0

    # ------------------------------------------------------------------ #
    # fork + COW
    # ------------------------------------------------------------------ #

    def fork(self, parent: Process, name: Optional[str] = None) -> Process:
        """Clone ``parent``: same VMAs, shared frames, both sides COW.

        The child's page table (and hence its TEAs, when DMT-Linux is
        attached) is brand new — only the *data frames* are shared.
        """
        self.forks += 1
        child = self.kernel.create_process(name or f"{parent.name}-child")
        for vma in parent.addr_space.vmas():
            child.mmap(vma.size, addr=vma.start, name=vma.name,
                       writable=vma.writable, file_backed=vma.file_backed)
        for base_va, size in sorted(parent.page_table._mapped_pages.items()):
            found = parent.page_table.lookup(base_va)
            if found is None:
                continue
            slot, pte, _ = found
            frame = pte_frame(pte)
            # write-protect the parent's PTE and mirror it in the child
            if pte & PTE_WRITE:
                parent.page_table.memory.write_word(slot, pte & ~PTE_WRITE)
            flags = (pte | PTE_PRESENT) & ~PTE_WRITE
            child.page_table.map(base_va, frame, size,
                                 flags=flags & ((1 << PAGE_SHIFT) - 1))
            self.refs.inc(frame)
        return child

    def cow_fault(self, process: Process, va: int) -> int:
        """Handle a write fault on a COW page; returns the writable frame."""
        found = process.page_table.lookup(va)
        if found is None:
            raise KeyError(f"{va:#x} is not mapped")
        slot, pte, size = found
        frame = pte_frame(pte)
        if pte & PTE_WRITE:
            return frame
        self.cow_faults += 1
        if not self.refs.is_shared(frame):
            # last reference: just restore write permission
            process.page_table.memory.write_word(slot, pte | PTE_WRITE)
            return frame
        order = 0 if size == PageSize.SIZE_4K else _HUGE_ORDER
        new_frame = self.kernel.memory.allocator.alloc_pages(order, movable=True)
        base = align_down(va, size.bytes)
        process.page_table.unmap(base, size)
        process.page_table.map(base, new_frame, size)
        self.refs.dec(frame)
        return new_frame

    def write(self, process: Process, va: int) -> int:
        """A store instruction: resolves COW, returns the physical address."""
        self.cow_fault(process, va)
        translated = process.page_table.translate(va)
        assert translated is not None
        return translated[0]

    # ------------------------------------------------------------------ #
    # Shared (non-COW) mappings
    # ------------------------------------------------------------------ #

    def share_mapping(self, source: Process, source_vma: VMA,
                      target: Process, addr: Optional[int] = None,
                      name: str = "shm") -> VMA:
        """Map ``source_vma``'s frames into ``target`` (MAP_SHARED).

        Both processes keep independent PTEs (in their own TEAs under
        DMT); only the frames are common, so stores are visible to both
        without faults.
        """
        target_vma = target.mmap(source_vma.size, addr=addr, name=name,
                                 file_backed=True)
        offset = 0
        while offset < source_vma.size:
            found = source.page_table.lookup(source_vma.start + offset)
            if found is None:
                offset += PAGE_SIZE
                continue
            _, pte, size = found
            frame = pte_frame(pte)
            target.page_table.map(target_vma.start + offset, frame, size)
            self.refs.inc(frame)
            offset += size.bytes
        return target_vma

    # ------------------------------------------------------------------ #
    # Teardown
    # ------------------------------------------------------------------ #

    def release_range(self, process: Process, start: int, length: int) -> None:
        """munmap-with-refcounts: frames are freed only at refcount zero."""
        va = start
        end = start + length
        while va < end:
            found = process.page_table.lookup(va)
            if found is None:
                va += PAGE_SIZE
                continue
            _, pte, size = found
            frame = process.page_table.unmap(va)
            if self.refs.dec(frame) == 0:
                try:
                    order = 0 if size == PageSize.SIZE_4K else _HUGE_ORDER
                    self.kernel.memory.allocator.free_pages(frame, order)
                except ValueError:
                    pass  # another owner freed it, or it was never counted
            va = align_down(va, size.bytes) + size.bytes
        process.addr_space.munmap(start, length)
