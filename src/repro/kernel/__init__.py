"""OS substrate: VMAs, radix page tables, processes, THP, kernel facade."""

from repro.kernel.kernel import Kernel
from repro.kernel.page_table import (
    PTE_ACCESSED,
    PTE_DIRTY,
    PTE_HUGE,
    PTE_PRESENT,
    PTE_WRITE,
    RadixPageTable,
    TablePlacementPolicy,
    WalkStep,
    make_pte,
    pte_frame,
)
from repro.kernel.process import PageFaultError, Process
from repro.kernel.sharing import FrameRefs, SharingManager
from repro.kernel.vma import VMA, AddressSpace, VMAEvent

__all__ = [
    "Kernel",
    "PTE_ACCESSED",
    "PTE_DIRTY",
    "PTE_HUGE",
    "PTE_PRESENT",
    "PTE_WRITE",
    "RadixPageTable",
    "TablePlacementPolicy",
    "WalkStep",
    "make_pte",
    "pte_frame",
    "PageFaultError",
    "Process",
    "FrameRefs",
    "SharingManager",
    "VMA",
    "AddressSpace",
    "VMAEvent",
]
