"""x86-64 radix page tables (4- or 5-level) backed by simulated memory.

Tables are real pages in a :class:`~repro.mem.physmem.PhysicalMemory`
domain: entries are 8-byte words at genuine physical addresses, so the MMU
walkers in :mod:`repro.translation` fetch the same bytes a hardware walker
would, and DMT's direct PTE fetch and the radix walk observe a single copy
of each PTE (the paper stresses DMT creates no PTE duplicates, §3).

Where a table page lands in physical memory is delegated to a
*placement policy*: vanilla Linux scatters table pages wherever the buddy
allocator happens to place them; DMT-Linux's policy places last-level
tables inside TEAs (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.arch import (
    PAGE_SHIFT,
    PTE_SIZE,
    PageSize,
    level_index,
    level_shift,
)
from repro.analysis import sanitizer
from repro.mem.physmem import PhysicalMemory, frame_to_addr

PTE_PRESENT = 1 << 0
PTE_WRITE = 1 << 1
PTE_USER = 1 << 2
PTE_ACCESSED = 1 << 5
PTE_DIRTY = 1 << 6
PTE_HUGE = 1 << 7  # PS bit: this entry maps a huge page

PTE_FLAGS_MASK = (1 << PAGE_SHIFT) - 1


def pte_frame(pte: int) -> int:
    return pte >> PAGE_SHIFT


def make_pte(frame: int, flags: int = PTE_PRESENT | PTE_WRITE) -> int:
    return (frame << PAGE_SHIFT) | flags


class TablePlacementPolicy:
    """Decides which physical frame holds a given page-table node.

    ``place_table`` may return a pre-reserved frame (DMT returns TEA slots
    for leaf tables) or ``None`` to fall back to the buddy allocator.
    """

    def place_table(self, level: int, va: int, page_size: PageSize) -> Optional[int]:
        return None

    def table_released(self, frame: int, level: int, va: int) -> bool:
        """Return True if the policy owns the frame (so it won't be freed
        back to the buddy allocator)."""
        return False


@dataclass
class WalkStep:
    """One sequential MMU access during a radix walk."""

    level: int
    pte_addr: int  # physical address of the entry fetched
    pte_value: int
    is_leaf: bool


class PageTableStats:
    def __init__(self) -> None:
        self.pte_writes = 0
        self.tables_allocated = 0
        self.tables_freed = 0


class RadixPageTable:
    """A hardware-walkable multi-level page table."""

    def __init__(
        self,
        memory: PhysicalMemory,
        levels: int = 4,
        asid: int = 0,
        placement: Optional[TablePlacementPolicy] = None,
        write_hook: Optional[Callable[[int, int], None]] = None,
    ):
        if levels not in (4, 5):
            raise ValueError("x86-64 supports 4- or 5-level page tables")
        self.memory = memory
        self.levels = levels
        self.asid = asid
        self.placement = placement or TablePlacementPolicy()
        #: called as write_hook(pte_addr, new_value) on every PTE update —
        #: shadow paging uses this to model write-protection traps.
        self.write_hook = write_hook
        self.stats = PageTableStats()
        # (level, table_key) -> frame; table_key = va >> level_shift(level+1)
        self._tables: Dict[Tuple[int, int], int] = {}
        self._mapped_pages: Dict[int, PageSize] = {}  # leaf va_base -> size
        self.root_frame = self._new_table(self.levels, 0, PageSize.SIZE_4K, track=False)

    # ------------------------------------------------------------------ #
    # Table bookkeeping
    # ------------------------------------------------------------------ #

    @property
    def table_pages(self) -> int:
        """Number of table pages currently allocated (incl. the root)."""
        return len(self._tables) + 1

    @property
    def table_bytes(self) -> int:
        return self.table_pages << PAGE_SHIFT

    @property
    def mapped_pages(self) -> int:
        return len(self._mapped_pages)

    def _table_key(self, va: int, level: int) -> int:
        return va >> level_shift(level + 1)

    def _new_table(self, level: int, va: int, page_size: PageSize, track: bool = True) -> int:
        frame = self.placement.place_table(level, va, page_size)
        if frame is None:
            frame = self.memory.allocator.alloc_pages(0, movable=False)
        self.memory.clear_page(frame)
        self.stats.tables_allocated += 1
        if track:
            self._tables[(level, self._table_key(va, level))] = frame
        return frame

    # dmtlint-domain: va=any -- the EPT is this same structure keyed by gPA
    def table_frame(self, va: int, level: int) -> Optional[int]:
        """Frame of the level-``level`` table covering ``va`` (root for top)."""
        if level == self.levels:
            return self.root_frame
        return self._tables.get((level, self._table_key(va, level)))

    # ------------------------------------------------------------------ #
    # PTE access
    # ------------------------------------------------------------------ #

    def _entry_addr(self, table_frame: int, va: int, level: int) -> int:
        return frame_to_addr(table_frame) + level_index(va, level) * PTE_SIZE

    def _write_pte(self, addr: int, value: int) -> None:
        self.memory.write_word(addr, value)
        self.stats.pte_writes += 1
        if self.write_hook is not None:
            self.write_hook(addr, value)

    def _descend(self, va: int, leaf_level: int, create: bool,
                 page_size: PageSize = PageSize.SIZE_4K) -> Optional[int]:
        """Return the physical address of the leaf PTE slot at ``leaf_level``."""
        frame = self.root_frame
        for level in range(self.levels, leaf_level, -1):
            addr = self._entry_addr(frame, va, level)
            pte = self.memory.read_word(addr)
            if pte & PTE_PRESENT:
                if pte & PTE_HUGE:
                    raise ValueError(
                        f"va {va:#x}: huge mapping at level {level} blocks a "
                        f"level-{leaf_level} mapping"
                    )
                frame = pte_frame(pte)
            elif create:
                frame = self._new_table(level - 1, va, page_size)
                self._write_pte(addr, make_pte(frame))
            else:
                return None
        return self._entry_addr(frame, va, leaf_level)

    # ------------------------------------------------------------------ #
    # Public mapping API
    # ------------------------------------------------------------------ #

    def map(self, va: int, pfn: int, page_size: PageSize = PageSize.SIZE_4K,
            flags: int = PTE_PRESENT | PTE_WRITE) -> int:
        """Map ``va`` -> frame ``pfn`` with the given page size.

        ``pfn`` is in units of the page size (for 2 MB pages it is the 4 KB
        frame number of the first frame, which must be 512-aligned).
        Returns the physical address of the written leaf PTE.
        """
        leaf_level = page_size.leaf_level
        base = va & ~(page_size.bytes - 1)
        if page_size != PageSize.SIZE_4K:
            if pfn % (page_size.bytes >> PAGE_SHIFT):
                raise ValueError("huge-page frame must be size aligned")
            flags |= PTE_HUGE
        slot = self._descend(base, leaf_level, create=True, page_size=page_size)
        if sanitizer.active():
            sanitizer.check_pte_target(base, pfn, page_size,
                                       self.memory.total_frames)
        self._write_pte(slot, make_pte(pfn, flags))
        self._mapped_pages[base] = page_size
        return slot

    def unmap(self, va: int, page_size: Optional[PageSize] = None) -> Optional[int]:
        """Clear the leaf PTE for ``va``; returns the frame it mapped."""
        found = self.lookup(va)
        if found is None:
            return None
        slot, pte, size = found
        if page_size is not None and size != page_size:
            raise ValueError(f"va {va:#x} is mapped with {size.name}, not {page_size.name}")
        self._write_pte(slot, 0)
        self._mapped_pages.pop(va & ~(size.bytes - 1), None)
        if sanitizer.active():
            sanitizer.check_unmap_coherence(self.asid, va, size)
        return pte_frame(pte)

    def lookup(self, va: int) -> Optional[Tuple[int, int, PageSize]]:
        """(leaf PTE address, PTE value, page size) for ``va`` if mapped."""
        frame = self.root_frame
        for level in range(self.levels, 0, -1):
            addr = self._entry_addr(frame, va, level)
            pte = self.memory.read_word(addr)
            if not pte & PTE_PRESENT:
                return None
            if level == 1 or pte & PTE_HUGE:
                size = {1: PageSize.SIZE_4K, 2: PageSize.SIZE_2M, 3: PageSize.SIZE_1G}[level]
                return addr, pte, size
            frame = pte_frame(pte)
        return None

    def translate(self, va: int) -> Optional[Tuple[int, PageSize]]:
        """Full software translation: ``va`` -> (physical address, page size)."""
        found = self.lookup(va)
        if found is None:
            return None
        _, pte, size = found
        base = pte_frame(pte) << PAGE_SHIFT
        return base + (va & (size.bytes - 1)), size

    def leaf_pte_addr(self, va: int) -> Optional[Tuple[int, PageSize]]:
        found = self.lookup(va)
        if found is None:
            return None
        addr, _, size = found
        return addr, size

    def set_accessed_dirty(self, va: int, dirty: bool = False) -> None:
        """Set A (and optionally D) bits the way a hardware walker does."""
        found = self.lookup(va)
        if found is None:
            raise KeyError(f"va {va:#x} not mapped")
        addr, pte, _ = found
        new = pte | PTE_ACCESSED | (PTE_DIRTY if dirty else 0)
        if new != pte:
            self.memory.write_word(addr, new)  # A/D updates don't trap

    # ------------------------------------------------------------------ #
    # Hardware-walk enumeration
    # ------------------------------------------------------------------ #

    # dmtlint-domain: va=any -- host walkers enumerate EPT steps over gPAs
    def walk_steps(self, va: int) -> List[WalkStep]:
        """The ordered PTE fetches a hardware walker performs for ``va``.

        Always starts at the root; MMU caches (PWC) that skip upper levels
        are applied by the walker models, not here.
        """
        steps: List[WalkStep] = []
        frame = self.root_frame
        for level in range(self.levels, 0, -1):
            addr = self._entry_addr(frame, va, level)
            pte = self.memory.read_word(addr)
            leaf = level == 1 or bool(pte & PTE_HUGE) or not pte & PTE_PRESENT
            steps.append(WalkStep(level, addr, pte, leaf))
            if leaf:
                break
            frame = pte_frame(pte)
        return steps

    # ------------------------------------------------------------------ #
    # Table relocation (TEA migration support, §4.3)
    # ------------------------------------------------------------------ #

    def relocate_table(self, va: int, level: int, new_frame: int) -> int:
        """Move the level-``level`` table covering ``va`` to ``new_frame``.

        Copies the page and rewrites the parent entry so the original x86
        walker stays correct during and after TEA migration. Returns the
        old frame (caller decides whether to free it).
        """
        key = (level, self._table_key(va, level))
        old_frame = self._tables.get(key)
        if old_frame is None:
            raise KeyError(f"no level-{level} table covering {va:#x}")
        parent_frame = self.table_frame(va, level + 1)
        if parent_frame is None:
            raise KeyError(f"no parent table at level {level + 1} for {va:#x}")
        self.memory.copy_page(old_frame, new_frame)
        parent_addr = self._entry_addr(parent_frame, va, level + 1)
        parent_pte = self.memory.read_word(parent_addr)
        self._write_pte(parent_addr, make_pte(new_frame, parent_pte & PTE_FLAGS_MASK))
        self._tables[key] = new_frame
        if sanitizer.active():
            sanitizer.check_relocate_coherence(va, level,
                                               frame_to_addr(old_frame))
        return old_frame

    def destroy(self) -> None:
        """Free every table page (not the mapped data frames)."""
        for (level, key), frame in list(self._tables.items()):
            va = key << level_shift(level + 1)
            if not self.placement.table_released(frame, level, va):
                self.memory.allocator.free_pages(frame)
            self.stats.tables_freed += 1
        self._tables.clear()
        self.memory.allocator.free_pages(self.root_frame)
        self._mapped_pages.clear()
