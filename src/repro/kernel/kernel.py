"""The kernel facade: physical memory, processes, scheduling hooks.

A :class:`Kernel` owns one physical-memory domain and its processes. It is
used both as the host OS and — inside a :class:`~repro.virt.hypervisor.VM`
— as the guest OS (whose "physical" memory is guest-physical). DMT-Linux
(:mod:`repro.core.dmt_os`) attaches to a kernel through the placement
factory and the context-switch hooks.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.kernel.page_table import TablePlacementPolicy
from repro.kernel.process import Process
from repro.mem.physmem import PhysicalMemory

PlacementFactory = Callable[[Process], Optional[TablePlacementPolicy]]


class Kernel:
    """A minimal OS kernel over one physical-memory domain."""

    def __init__(
        self,
        memory_bytes: Optional[int] = None,
        memory: Optional[PhysicalMemory] = None,
        levels: int = 4,
        thp_enabled: bool = False,
        name: str = "host",
    ):
        if memory is None:
            if memory_bytes is None:
                raise ValueError("give either memory_bytes or a PhysicalMemory")
            memory = PhysicalMemory(memory_bytes)
        self.memory = memory
        self.levels = levels
        self.thp_enabled = thp_enabled
        self.name = name
        self.processes: Dict[int, Process] = {}
        self.current: Optional[Process] = None
        self._placement_factory: Optional[PlacementFactory] = None
        self._switch_hooks: List[Callable[[Process], None]] = []

    # ------------------------------------------------------------------ #
    # Extension points (used by DMT-Linux)
    # ------------------------------------------------------------------ #

    def set_placement_factory(self, factory: PlacementFactory) -> None:
        """Install the page-table placement policy source for new processes."""
        self._placement_factory = factory

    def add_context_switch_hook(self, hook: Callable[[Process], None]) -> None:
        """Hook fired after each context switch (DMT reloads its registers here)."""
        self._switch_hooks.append(hook)

    # ------------------------------------------------------------------ #
    # Process lifecycle
    # ------------------------------------------------------------------ #

    def create_process(self, name: str = "proc") -> Process:
        process = Process(
            self.memory,
            levels=self.levels,
            placement=None,
            thp_enabled=self.thp_enabled,
            name=name,
        )
        if self._placement_factory is not None:
            policy = self._placement_factory(process)
            if policy is not None:
                process.page_table.placement = policy
        self.processes[process.pid] = process
        if self.current is None:
            self.context_switch(process)
        return process

    def context_switch(self, process: Process) -> None:
        if process.pid not in self.processes:
            raise ValueError("cannot switch to a foreign process")
        self.current = process
        for hook in self._switch_hooks:
            hook(process)

    def exit_process(self, process: Process) -> None:
        self.processes.pop(process.pid, None)
        for vma in list(process.addr_space.vmas()):
            process.munmap(vma.start, vma.size)
        process.page_table.destroy()
        if self.current is process:
            self.current = None

    # ------------------------------------------------------------------ #
    # Accounting (§6.3 page-table memory overhead)
    # ------------------------------------------------------------------ #

    def page_table_bytes(self) -> int:
        return sum(p.page_table_bytes() for p in self.processes.values())
