"""Transparent Huge Page support: promotion and demotion.

Models Linux's khugepaged: scan VMAs for 2 MB-aligned ranges fully backed
by 4 KB pages, migrate them into one order-9 block and replace the 512 leaf
PTEs with a single L2 huge PTE. Under DMT the corresponding VMA-to-TEA
mapping is untouched — only the PTEs inside the (per-size) TEAs change
(§4.4), which the tests assert.
"""

from __future__ import annotations

from typing import List

from repro.arch import PAGE_SIZE, PageSize, align_up
from repro.kernel.process import Process, _HUGE_ORDER
from repro.kernel.vma import VMA
from repro.mem.buddy import OutOfMemoryError

HUGE_BYTES = PageSize.SIZE_2M.bytes


def promotable_ranges(process: Process, vma: VMA) -> List[int]:
    """2 MB-aligned base addresses inside ``vma`` fully backed by 4 KB pages."""
    result = []
    start = align_up(vma.start, HUGE_BYTES)
    for base in range(start, vma.end - HUGE_BYTES + 1, HUGE_BYTES):
        fully_backed = True
        for offset in range(0, HUGE_BYTES, PAGE_SIZE):
            found = process.page_table.lookup(base + offset)
            if found is None or found[2] != PageSize.SIZE_4K:
                fully_backed = False
                break
        if fully_backed:
            result.append(base)
    return result


def promote(process: Process, base: int) -> bool:
    """Collapse 512 base pages at ``base`` into one 2 MB page.

    Returns False when no order-9 block is available (promotion is skipped,
    as khugepaged does under fragmentation).
    """
    if base % HUGE_BYTES:
        raise ValueError("promotion base must be 2 MB aligned")
    try:
        huge_frame = process.memory.allocator.alloc_pages(_HUGE_ORDER, movable=True)
    except OutOfMemoryError:
        return False
    for offset in range(0, HUGE_BYTES, PAGE_SIZE):
        frame = process.page_table.unmap(base + offset, PageSize.SIZE_4K)
        if frame is not None:
            try:
                process.memory.allocator.free_pages(frame, 0)
            except ValueError:
                pass
    process.page_table.map(base, huge_frame, PageSize.SIZE_2M)
    return True


def demote(process: Process, base: int) -> None:
    """Split one 2 MB page back into 512 base pages."""
    if base % HUGE_BYTES:
        raise ValueError("demotion base must be 2 MB aligned")
    found = process.page_table.lookup(base)
    if found is None or found[2] != PageSize.SIZE_2M:
        raise ValueError(f"{base:#x} is not mapped as a 2 MB page")
    huge_frame = process.page_table.unmap(base, PageSize.SIZE_2M)
    process.memory.allocator.free_pages(huge_frame, _HUGE_ORDER)
    for offset in range(0, HUGE_BYTES, PAGE_SIZE):
        frame = process.memory.allocator.alloc_pages(0, movable=True)
        process.page_table.map(base + offset, frame, PageSize.SIZE_4K)


def khugepaged_pass(process: Process, max_promotions: int = 1 << 30) -> int:
    """One background scan: promote every eligible range. Returns count."""
    promoted = 0
    for vma in process.addr_space.vmas():
        if vma.size < HUGE_BYTES:
            continue
        for base in promotable_ranges(process, vma):
            if promoted >= max_promotions:
                return promoted
            if promote(process, base):
                promoted += 1
    return promoted
