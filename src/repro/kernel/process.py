"""Processes: an address space plus a hardware-walkable page table.

``Process.populate`` eagerly backs a VMA with physical frames the way the
paper's data-intensive workloads allocate memory at initialization time
(§7); ``Process.touch`` provides demand faulting for finer-grained tests.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.arch import PAGE_SIZE, PageSize, align_down
from repro.kernel.page_table import RadixPageTable, TablePlacementPolicy
from repro.kernel.vma import VMA, AddressSpace
from repro.mem.buddy import OutOfMemoryError
from repro.mem.physmem import PhysicalMemory

_HUGE_ORDER = 9  # 2 MB = 2^9 base frames


class PageFaultError(Exception):
    """Access to an address with no VMA behind it (SIGSEGV analogue)."""


class Process:
    """One simulated user process."""

    _pids = itertools.count(1)

    def __init__(
        self,
        memory: PhysicalMemory,
        levels: int = 4,
        placement: Optional[TablePlacementPolicy] = None,
        thp_enabled: bool = False,
        name: str = "proc",
    ):
        self.pid = next(Process._pids)
        self.name = name
        self.asid = self.pid
        self.memory = memory
        self.thp_enabled = thp_enabled
        self.addr_space = AddressSpace()
        self.page_table = RadixPageTable(
            memory, levels=levels, asid=self.asid, placement=placement
        )

    # ------------------------------------------------------------------ #
    # Memory mapping
    # ------------------------------------------------------------------ #

    def mmap(self, length: int, addr: Optional[int] = None, name: str = "anon",
             populate: bool = False, **kwargs) -> VMA:
        vma = self.addr_space.mmap(length, addr=addr, name=name, **kwargs)
        if populate:
            self.populate(vma)
        return vma

    def munmap(self, start: int, length: int) -> None:
        for vma in self.addr_space.munmap(start, length):
            self._unmap_range(vma.start, vma.end)

    def populate(self, vma: VMA, page_size: Optional[PageSize] = None) -> int:
        """Back every page of ``vma`` with frames; returns pages mapped.

        With THP enabled (and no explicit ``page_size``), 2 MB-aligned
        chunks are mapped with huge pages and the remainder with 4 KB pages,
        matching Linux THP behaviour for large anonymous areas.
        """
        mapped = 0
        va = vma.start
        while va < vma.end:
            use_huge = False
            if page_size == PageSize.SIZE_2M:
                use_huge = True
            elif page_size is None and self.thp_enabled:
                use_huge = (
                    va % PageSize.SIZE_2M.bytes == 0
                    and va + PageSize.SIZE_2M.bytes <= vma.end
                )
            if use_huge:
                mapped += self._map_huge(va)
                va += PageSize.SIZE_2M.bytes
            else:
                if self.page_table.lookup(va) is None:
                    frame = self.memory.allocator.alloc_pages(0, movable=True)
                    self.page_table.map(va, frame, PageSize.SIZE_4K)
                mapped += 1
                va += PAGE_SIZE
        return mapped

    def _map_huge(self, va: int) -> int:
        if self.page_table.lookup(va) is not None:
            return 0
        try:
            frame = self.memory.allocator.alloc_pages(_HUGE_ORDER, movable=True)
        except OutOfMemoryError:
            # fall back to base pages, as Linux THP does under pressure
            for offset in range(0, PageSize.SIZE_2M.bytes, PAGE_SIZE):
                frame = self.memory.allocator.alloc_pages(0, movable=True)
                self.page_table.map(va + offset, frame, PageSize.SIZE_4K)
            return 512
        self.page_table.map(va, frame, PageSize.SIZE_2M)
        return 512

    def touch(self, va: int, write: bool = False) -> int:
        """Demand-fault ``va`` if needed; returns the physical address."""
        translated = self.page_table.translate(va)
        if translated is None:
            vma = self.addr_space.find(va)
            if vma is None:
                raise PageFaultError(f"{va:#x} is not mapped by any VMA")
            frame = self.memory.allocator.alloc_pages(0, movable=True)
            self.page_table.map(align_down(va, PAGE_SIZE), frame, PageSize.SIZE_4K)
            translated = self.page_table.translate(va)
        self.page_table.set_accessed_dirty(va, dirty=write)
        return translated[0]

    def _unmap_range(self, start: int, end: int) -> None:
        va = start
        while va < end:
            found = self.page_table.lookup(va)
            if found is None:
                va += PAGE_SIZE
                continue
            _, pte, size = found
            frame = self.page_table.unmap(va)
            order = 0 if size == PageSize.SIZE_4K else _HUGE_ORDER
            try:
                self.memory.allocator.free_pages(frame, order)
            except ValueError:
                pass  # frame owned elsewhere (e.g. shared mapping)
            va = align_down(va, size.bytes) + size.bytes

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def resident_pages(self) -> int:
        return self.page_table.mapped_pages

    def page_table_bytes(self) -> int:
        return self.page_table.table_bytes
