"""Virtual Memory Areas and per-process address spaces.

A VMA is a contiguous virtual region with uniform protection (§2.3). The
address space keeps VMAs sorted by start address (Linux uses an rb-tree /
maple tree; a bisected list gives the same O(log n) lookup here) and fires
events on every structural change so DMT-Linux can hook VMA creation,
adjustment and splitting the way the prototype hooks ``mmap_region``,
``__vma_adjust`` and ``__split_vma`` (§4.6.2).
"""

from __future__ import annotations

import bisect
import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

from repro.arch import PAGE_SIZE, align_up, is_aligned


class VMAEvent(enum.Enum):
    """Structural address-space changes observable by hooks."""

    CREATED = "created"
    REMOVED = "removed"
    GROWN = "grown"
    SHRUNK = "shrunk"
    SPLIT = "split"


_vma_ids = itertools.count(1)


@dataclass
class VMA:
    """One contiguous virtual region: [start, end), page aligned."""

    start: int
    end: int
    name: str = "anon"
    writable: bool = True
    file_backed: bool = False
    vma_id: int = field(default_factory=lambda: next(_vma_ids))

    def __post_init__(self) -> None:
        if self.start >= self.end:
            raise ValueError(f"empty VMA [{self.start:#x}, {self.end:#x})")
        if not is_aligned(self.start, PAGE_SIZE) or not is_aligned(self.end, PAGE_SIZE):
            raise ValueError("VMA bounds must be page aligned")

    @property
    def size(self) -> int:
        return self.end - self.start

    @property
    def pages(self) -> int:
        return self.size // PAGE_SIZE

    def contains(self, va: int) -> bool:
        return self.start <= va < self.end

    def overlaps(self, start: int, end: int) -> bool:
        return self.start < end and start < self.end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VMA({self.name}, {self.start:#x}-{self.end:#x}, {self.size >> 20} MiB)"


Hook = Callable[[VMAEvent, VMA], None]


class AddressSpace:
    """Sorted collection of non-overlapping VMAs with change hooks."""

    #: Default mmap search base (matches the x86-64 mmap area being high).
    MMAP_BASE = 0x7F00_0000_0000

    def __init__(self):
        self._starts: List[int] = []
        self._vmas: List[VMA] = []
        self._hooks: List[Hook] = []
        self._mmap_cursor = self.MMAP_BASE

    # ------------------------------------------------------------------ #
    # Hook plumbing
    # ------------------------------------------------------------------ #

    def add_hook(self, hook: Hook) -> None:
        self._hooks.append(hook)

    def remove_hook(self, hook: Hook) -> None:
        self._hooks.remove(hook)

    def _fire(self, event: VMAEvent, vma: VMA) -> None:
        for hook in self._hooks:
            hook(event, vma)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def __iter__(self) -> Iterable[VMA]:
        return iter(self._vmas)

    def __len__(self) -> int:
        return len(self._vmas)

    def find(self, va: int) -> Optional[VMA]:
        """The VMA containing ``va``, or None (Linux ``find_vma`` semantics
        restricted to exact containment)."""
        idx = bisect.bisect_right(self._starts, va) - 1
        if idx >= 0 and self._vmas[idx].contains(va):
            return self._vmas[idx]
        return None

    def vmas(self) -> List[VMA]:
        return list(self._vmas)

    def total_mapped(self) -> int:
        return sum(vma.size for vma in self._vmas)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def mmap(
        self,
        length: int,
        addr: Optional[int] = None,
        name: str = "anon",
        writable: bool = True,
        file_backed: bool = False,
    ) -> VMA:
        """Create a VMA of ``length`` bytes; picks an address if none given."""
        length = align_up(length, PAGE_SIZE)
        if addr is None:
            addr = self._find_gap(length)
        elif not is_aligned(addr, PAGE_SIZE):
            raise ValueError("fixed mmap address must be page aligned")
        if any(vma.overlaps(addr, addr + length) for vma in self._vmas):
            raise ValueError(f"mmap range {addr:#x}+{length:#x} overlaps an existing VMA")
        vma = VMA(addr, addr + length, name=name, writable=writable, file_backed=file_backed)
        self._insert(vma)
        self._fire(VMAEvent.CREATED, vma)
        return vma

    def munmap(self, start: int, length: int) -> List[VMA]:
        """Unmap [start, start+length); splits partially covered VMAs.

        Returns the removed VMAs (post-split)."""
        end = start + align_up(length, PAGE_SIZE)
        removed: List[VMA] = []
        for vma in [v for v in self._vmas if v.overlaps(start, end)]:
            if start > vma.start:
                vma = self.split(vma, start)[1]
            if end < vma.end:
                vma = self.split(vma, end)[0]
            self._remove(vma)
            removed.append(vma)
            self._fire(VMAEvent.REMOVED, vma)
        return removed

    def grow(self, vma: VMA, extra_bytes: int) -> VMA:
        """Extend a VMA upward (``mmap`` growing an existing area, §4.2.3)."""
        extra_bytes = align_up(extra_bytes, PAGE_SIZE)
        new_end = vma.end + extra_bytes
        nxt = self._next_vma(vma)
        if nxt is not None and nxt.start < new_end:
            raise ValueError("cannot grow into the next VMA")
        vma.end = new_end
        self._fire(VMAEvent.GROWN, vma)
        return vma

    def shrink(self, vma: VMA, new_size: int) -> VMA:
        """Shrink a VMA from the top (``munmap`` of its tail, §4.2.3)."""
        new_size = align_up(new_size, PAGE_SIZE)
        if not 0 < new_size <= vma.size:
            raise ValueError("new size must be within the current VMA")
        vma.end = vma.start + new_size
        self._fire(VMAEvent.SHRUNK, vma)
        return vma

    def split(self, vma: VMA, at: int) -> tuple:
        """Split a VMA at ``at``; returns (low, high). Models ``__split_vma``."""
        if not vma.contains(at) or at == vma.start:
            raise ValueError("split point must be strictly inside the VMA")
        if not is_aligned(at, PAGE_SIZE):
            raise ValueError("split point must be page aligned")
        high = VMA(at, vma.end, name=vma.name, writable=vma.writable,
                   file_backed=vma.file_backed)
        vma.end = at
        self._insert(high)
        self._fire(VMAEvent.SPLIT, vma)
        return vma, high

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _insert(self, vma: VMA) -> None:
        idx = bisect.bisect_left(self._starts, vma.start)
        self._starts.insert(idx, vma.start)
        self._vmas.insert(idx, vma)

    def _remove(self, vma: VMA) -> None:
        idx = bisect.bisect_left(self._starts, vma.start)
        while idx < len(self._vmas) and self._vmas[idx] is not vma:
            idx += 1
        if idx >= len(self._vmas):
            raise ValueError("VMA not present in this address space")
        self._starts.pop(idx)
        self._vmas.pop(idx)

    def _next_vma(self, vma: VMA) -> Optional[VMA]:
        idx = bisect.bisect_right(self._starts, vma.start)
        return self._vmas[idx] if idx < len(self._vmas) else None

    def _find_gap(self, length: int) -> int:
        addr = self._mmap_cursor
        while any(vma.overlaps(addr, addr + length) for vma in self._vmas):
            addr = align_up(max(v.end for v in self._vmas if v.overlaps(addr, addr + length)),
                            PAGE_SIZE)
        self._mmap_cursor = addr + length
        return addr
