"""dmtlint corpus rules: L3 (cost provenance) and L4 (engine parity).

L3 findings
-----------
* ``L301`` — a calibrated numeric constant in a ``costs``-scoped file
  (``core/costs.py``, ``sim/perfmodel.py``) with no citation comment on
  the same line or the comment block directly above. Citations are
  anything matching ``§..``, ``Table ..``, ``Fig ..``, ``DESIGN.md`` or
  the word ``paper``. Structural values (0/1/2, powers of two, powers of
  ten) are exempt — only *calibrated* magnitudes need provenance.

L4 findings
-----------
* ``L401`` — a public top-level function of a ``vec``-scoped file
  (``sim/tlb_vec.py``) that no test file references by name. The
  vectorized engine is only trustworthy while every entry point is
  pinned against the scalar oracle.
* ``L402`` — a public top-level function of a ``kernels``-scoped file
  (``sim/kernels/``) whose docstring carries no ``Oracle:`` line. The
  native kernels run compiled, outside the sanitizer's reach, so each
  one must *declare* which scalar structure/method it mirrors — the
  declaration is what the parity tests are checked against.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import Iterable, List, Set

from repro.analysis.lint.engine import FileContext, Rule, Violation

#: What counts as a provenance citation in a comment.
CITATION_RE = re.compile(
    r"§|\bTable\s*\d|\bFig(?:ure|\.)?\s*\d|DESIGN\.md|\bpaper\b", re.IGNORECASE
)

#: Powers of ten commonly used for unit conversion (us<->ms<->s, MB...).
_POWERS_OF_TEN = {10 ** n for n in range(1, 13)}


def _is_exempt(value: float) -> bool:
    """Structural constants that don't need a citation."""
    if value != value or value in (float("inf"), float("-inf")):
        return True
    if float(value).is_integer():
        intval = abs(int(value))
        if intval in (0, 1, 2):
            return True
        if intval & (intval - 1) == 0:  # power of two
            return True
        if intval in _POWERS_OF_TEN:
            return True
        if intval in (60, 100, 1000):
            return True
    return False


class L3Provenance(Rule):
    """Calibrated cost constants carry a paper citation."""

    family = "L3"
    scope = "costs"

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        path = str(ctx.path)
        out: List[Violation] = []
        try:
            tokens = list(tokenize.generate_tokens(
                io.StringIO(ctx.source).readline))
        except tokenize.TokenError:
            return out
        for token in tokens:
            if token.type != tokenize.NUMBER:
                continue
            text = token.string.replace("_", "")
            try:
                value = float(int(text, 0)) if not any(
                    c in text for c in ".eE") or text.lower().startswith("0x") \
                    else float(text)
            except ValueError:
                continue
            if _is_exempt(value):
                continue
            line = token.start[0]
            if ctx.citation_near(line, CITATION_RE):
                continue
            out.append(Violation(
                "L301", path, line, token.start[1],
                f"calibrated constant {token.string} has no provenance "
                f"comment (cite §/Table/Fig/DESIGN.md)",
            ))
        return out


class L4EngineParity(Rule):
    """Every public vectorized-engine function has an oracle test reference."""

    family = "L4"
    scope = "vec"

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        path = str(ctx.path)
        corpus = ctx.config.test_corpus()
        if not corpus:
            return []
        out: List[Violation] = []
        kernels_scoped = "kernels" in ctx.scopes
        for name, node in self._public_functions(ctx.tree):
            if not re.search(rf"\b{re.escape(name)}\b", corpus):
                out.append(Violation(
                    "L401", path, node.lineno, node.col_offset,
                    f"public engine function '{name}' has no oracle test "
                    f"reference in tests/; add a parity test against the "
                    f"scalar engine",
                ))
            if kernels_scoped:
                docstring = ast.get_docstring(node) or ""
                if "Oracle:" not in docstring:
                    out.append(Violation(
                        "L402", path, node.lineno, node.col_offset,
                        f"public kernel '{name}' declares no scalar oracle; "
                        f"add an 'Oracle: <structure/method>' line to its "
                        f"docstring",
                    ))
        return out

    @staticmethod
    def _public_functions(tree: ast.AST) -> Iterable[tuple]:
        seen: Set[str] = set()
        for node in ast.iter_child_nodes(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and not node.name.startswith("_") \
                    and node.name not in seen:
                seen.add(node.name)
                yield node.name, node
