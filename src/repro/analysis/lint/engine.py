"""The dmtlint engine: file contexts, rule registry, CLI entry point.

The engine is deliberately small: it parses each file once (AST +
comment map), derives the file's *scopes* (which scoped rules apply),
runs every selected rule, and filters suppressed findings. Rules live in
:mod:`repro.analysis.lint.rules` (L1/L2, AST-based) and
:mod:`repro.analysis.lint.provenance` (L3/L4, token/corpus-based).

Scopes
------

``result-path``
    Files under ``sim/``, ``core/`` or ``translation/`` — the paths whose
    outputs must be deterministic (rule L2's set-iteration check).
``costs``
    ``core/costs.py``, ``sim/perfmodel.py`` and ``obs/regress.py`` —
    calibrated constants need paper/DESIGN.md citations (rule L3).
``vec``
    ``sim/tlb_vec.py``, ``sim/walk_vec.py``, the ``obs/`` modules and
    everything under ``sim/kernels/`` — public functions need oracle
    test references (rule L4).
``kernels``
    Files under ``sim/kernels/`` (which also carry ``vec``) — every
    public kernel must *declare* its scalar-oracle counterpart with an
    ``Oracle:`` line in its docstring (rule L402).
``streaming``
    The stage-0→1 streaming path (``sim/tlb_vec.py``, ``sim/machine.py``,
    ``sim/artifacts.py``, ``workloads/base.py``,
    ``workloads/generators.py``) — chunk iterators must not be
    materialized back into whole-trace arrays (rule L7).

A file can opt into scopes explicitly with a pragma in its first lines::

    # dmtlint-scope: costs, result-path

which is how the planted-bug fixtures under
``tests/fixtures/planted_bugs/`` exercise the scoped rules.
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import re
import sys
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

_SCOPE_PRAGMA_RE = re.compile(r"#\s*dmtlint-scope:\s*([a-z0-9_, -]+)")
_IGNORE_RE = re.compile(r"#\s*dmtlint:\s*ignore(?:\[([A-Z0-9, ]+)\])?")

#: Directories whose files are on the deterministic result path.
RESULT_PATH_DIRS = ("sim", "core", "translation")
#: (parent dir, file name) pairs carrying calibrated cost constants
#: (the obs regression gate's tolerances are calibrated too).
COSTS_FILES = (("core", "costs.py"), ("sim", "perfmodel.py"),
               ("obs", "regress.py"))
#: (parent dir, file name) pairs holding vectorized-engine code, plus
#: the observability modules — their public API must likewise be
#: exercised by the oracle-test corpus (rule L4).
VEC_FILES = (("sim", "tlb_vec.py"), ("sim", "walk_vec.py"),
             ("obs", "metrics.py"), ("obs", "trace.py"),
             ("obs", "regress.py"))
#: Directory holding the native chunk kernels: scoped ``vec`` (L401's
#: oracle-test requirement) plus ``kernels`` (L402's declared-oracle
#: requirement).
KERNELS_DIR = ("sim", "kernels")
#: (parent dir, file name) pairs on the streaming stage-0→1 path,
#: where rule L7 forbids whole-stream materialization.
STREAMING_FILES = (("sim", "tlb_vec.py"), ("sim", "machine.py"),
                   ("sim", "artifacts.py"), ("workloads", "base.py"),
                   ("workloads", "generators.py"))


@dataclass(frozen=True)
class Violation:
    """One dmtlint finding."""

    rule: str          # full id, e.g. "L101"
    path: str
    line: int
    col: int
    message: str
    #: Machine-readable supporting facts (L5 domain evidence like
    #: ``left=gpa right=hpa``, L6 kernel names); None for L1-L4.
    evidence: Optional[str] = None

    @property
    def family(self) -> str:
        return self.rule[:2]

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def render_github(self) -> str:
        """GitHub Actions workflow-command annotation for this finding."""
        return (f"::error file={self.path},line={self.line},"
                f"col={self.col},title=dmtlint {self.rule}::{self.message}")

    def as_dict(self) -> Dict[str, object]:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message,
                "evidence": self.evidence}


@dataclass
class LintConfig:
    """Engine configuration.

    ``rules`` selects rule families ("L1") or full ids ("L103"); ``None``
    runs everything. ``tests_dir`` is the oracle-test corpus root for L4;
    when absent the engine looks for a ``tests/`` directory above the
    linted files.
    """

    rules: Optional[Set[str]] = None
    tests_dir: Optional[Path] = None
    _corpus_cache: Optional[str] = field(default=None, repr=False)

    def selected(self, rule_id: str) -> bool:
        if not self.rules:
            return True
        return rule_id in self.rules or rule_id[:2] in self.rules

    def family_selected(self, family: str) -> bool:
        """True when any selected name is this family or one of its ids."""
        if not self.rules:
            return True
        return any(name == family or name.startswith(family)
                   for name in self.rules)

    def test_corpus(self) -> str:
        """Concatenated text of every test file (L4's reference corpus)."""
        if self._corpus_cache is None:
            chunks: List[str] = []
            if self.tests_dir is not None and self.tests_dir.is_dir():
                for test_file in sorted(self.tests_dir.rglob("test_*.py")):
                    try:
                        chunks.append(test_file.read_text(encoding="utf-8"))
                    except OSError:
                        continue
            self._corpus_cache = "\n".join(chunks)
        return self._corpus_cache


class FileContext:
    """Everything the rules need to know about one file."""

    def __init__(self, path: Path, source: str, config: LintConfig):
        self.path = path
        self.source = source
        self.config = config
        self.tree = ast.parse(source, filename=str(path))
        #: line number -> comment text (including the leading ``#``).
        self.comments: Dict[int, str] = {}
        #: lines that consist only of a comment (provenance look-behind).
        self.comment_only_lines: Set[int] = set()
        self._tokenize_comments()
        self.scopes = self._derive_scopes()
        #: line -> set of suppressed rule ids (empty set = all rules).
        self.ignores: Dict[int, Set[str]] = self._collect_ignores()

    # ------------------------------------------------------------------ #

    def _tokenize_comments(self) -> None:
        lines = self.source.splitlines(keepends=True)
        try:
            for token in tokenize.generate_tokens(io.StringIO(self.source).readline):
                if token.type == tokenize.COMMENT:
                    line = token.start[0]
                    self.comments[line] = token.string
                    before = lines[line - 1][: token.start[1]] if line <= len(lines) else ""
                    if not before.strip():
                        self.comment_only_lines.add(line)
        except tokenize.TokenError:
            pass

    def _derive_scopes(self) -> Set[str]:
        scopes: Set[str] = set()
        parts = self.path.parts
        tail = tuple(parts[-2:]) if len(parts) >= 2 else (("",) + parts)
        if any(part in RESULT_PATH_DIRS for part in parts[:-1]):
            scopes.add("result-path")
        if tail in COSTS_FILES:
            scopes.add("costs")
        if tail in VEC_FILES:
            scopes.add("vec")
        if tuple(parts[-3:-1]) == KERNELS_DIR:
            scopes.update(("vec", "kernels"))
        if tail in STREAMING_FILES:
            scopes.add("streaming")
        for line in self.source.splitlines()[:20]:
            match = _SCOPE_PRAGMA_RE.search(line)
            if match:
                scopes.update(
                    name.strip() for name in match.group(1).split(",") if name.strip()
                )
        if "kernels" in scopes:
            scopes.add("vec")  # kernels are vec engine code: L401 + L402
        return scopes

    def _collect_ignores(self) -> Dict[int, Set[str]]:
        ignores: Dict[int, Set[str]] = {}
        for line, comment in self.comments.items():
            match = _IGNORE_RE.search(comment)
            if match:
                names = match.group(1)
                ignores[line] = (
                    {name.strip() for name in names.split(",") if name.strip()}
                    if names else set()
                )
        return ignores

    # ------------------------------------------------------------------ #

    def suppressed(self, violation: Violation) -> bool:
        rules = self.ignores.get(violation.line)
        if rules is None:
            return False
        return not rules or violation.rule in rules or violation.family in rules

    def citation_near(self, line: int, pattern: re.Pattern,
                      look_behind: int = 3) -> bool:
        """True when a citation comment covers ``line`` (same line or a
        comment-only line within ``look_behind`` lines above)."""
        comment = self.comments.get(line)
        if comment and pattern.search(comment):
            return True
        probe = line - 1
        for _ in range(look_behind):
            if probe in self.comment_only_lines:
                if pattern.search(self.comments[probe]):
                    return True
                probe -= 1
            else:
                break
        return False


class Rule:
    """Base class: one rule family (possibly several finding ids)."""

    family = "L0"
    #: scope this rule needs, or None to apply to every file.
    scope: Optional[str] = None

    def check(self, ctx: FileContext) -> Iterable[Violation]:  # pragma: no cover
        raise NotImplementedError


class ProgramRule:
    """A whole-program rule: sees every parsed file at once.

    Program rules run after the per-file rules, over the full list of
    :class:`FileContext` objects of the invocation — this is how the L5
    address-domain pass builds its cross-file symbol table and call
    graph. Findings are attributed back to individual files and go
    through the same pragma/ignore suppression as per-file findings.
    """

    family = "L0"

    def check_program(self, contexts: Sequence[FileContext]
                      ) -> Iterable[Violation]:  # pragma: no cover
        raise NotImplementedError


class L5AddressDomains(ProgramRule):
    """Interprocedural address-domain dataflow (L501/L502/L503)."""

    family = "L5"

    def check_program(self, contexts: Sequence[FileContext]
                      ) -> Iterable[Violation]:
        from repro.analysis.lint.domains import analyze_program

        for finding in analyze_program(contexts):
            yield Violation(finding.rule, finding.path, finding.line,
                            finding.col, finding.message,
                            evidence=finding.evidence)


def _registry() -> List[Rule]:
    from repro.analysis.lint.provenance import L3Provenance, L4EngineParity
    from repro.analysis.lint.purity import L6KernelPurity
    from repro.analysis.lint.rules import L1AddressArithmetic, L2Determinism
    from repro.analysis.lint.streaming import L7StreamingHygiene

    return [L1AddressArithmetic(), L2Determinism(), L3Provenance(),
            L4EngineParity(), L6KernelPurity(), L7StreamingHygiene()]


ALL_RULES: List[Rule] = []
PROGRAM_RULES: List[ProgramRule] = []


def _rules() -> List[Rule]:
    if not ALL_RULES:
        ALL_RULES.extend(_registry())
    return ALL_RULES


def _program_rules() -> List[ProgramRule]:
    if not PROGRAM_RULES:
        PROGRAM_RULES.append(L5AddressDomains())
    return PROGRAM_RULES


def _check_contexts(contexts: Sequence[FileContext],
                    config: LintConfig) -> List[Violation]:
    """Per-file rules on each context, then program rules across all."""
    findings: List[Violation] = []
    for ctx in contexts:
        for rule in _rules():
            if not config.family_selected(rule.family):
                continue
            if rule.scope is not None and rule.scope not in ctx.scopes:
                continue
            findings.extend(v for v in rule.check(ctx)
                            if config.selected(v.rule)
                            and not ctx.suppressed(v))
    by_path = {str(ctx.path): ctx for ctx in contexts}
    for rule in _program_rules():
        if not config.family_selected(rule.family):
            continue
        for violation in rule.check_program(contexts):
            ctx = by_path.get(violation.path)
            if config.selected(violation.rule) and \
                    (ctx is None or not ctx.suppressed(violation)):
                findings.append(violation)
    findings.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return findings


def lint_file(path: Path, config: Optional[LintConfig] = None,
              source: Optional[str] = None) -> List[Violation]:
    """Lint one file (program rules see a one-file program)."""
    config = config or LintConfig()
    if source is None:
        source = path.read_text(encoding="utf-8")
    try:
        ctx = FileContext(path, source, config)
    except SyntaxError as exc:
        return [Violation("L000", str(path), exc.lineno or 1, exc.offset or 0,
                          f"syntax error: {exc.msg}")]
    return _check_contexts([ctx], config)


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Sequence[Path],
               config: Optional[LintConfig] = None) -> List[Violation]:
    """Lint every ``*.py`` under ``paths`` as one program."""
    config = config or LintConfig()
    if config.tests_dir is None:
        config.tests_dir = _find_tests_dir(paths)
    contexts: List[FileContext] = []
    errors: List[Violation] = []
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
            contexts.append(FileContext(file_path, source, config))
        except SyntaxError as exc:
            errors.append(Violation("L000", str(file_path), exc.lineno or 1,
                                    exc.offset or 0,
                                    f"syntax error: {exc.msg}"))
        except OSError:
            continue
    violations = errors + _check_contexts(contexts, config)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


def _package_root() -> Path:
    """The installed ``repro`` package directory (default lint target)."""
    return Path(__file__).resolve().parents[2]


def _find_tests_dir(paths: Sequence[Path]) -> Optional[Path]:
    """Locate the repository ``tests/`` directory for the L4 corpus."""
    candidates: List[Path] = [Path.cwd()]
    candidates.extend(p if p.is_dir() else p.parent for p in paths)
    candidates.append(_package_root())
    for start in candidates:
        probe = start.resolve()
        for ancestor in (probe, *probe.parents):
            tests = ancestor / "tests"
            if tests.is_dir() and (tests / "conftest.py").exists():
                return tests
    return None


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="dmtlint: simulator-invariant static analysis (L1-L7)",
    )
    parser.add_argument("paths", nargs="*",
                        help="files/directories to lint (default: the "
                             "repro package sources)")
    parser.add_argument("--rules", default="",
                        help="comma-separated rule families or ids "
                             "(e.g. L1,L5 or L103); default: all")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as one indented JSON array "
                             "(legacy; see --format json for JSON lines)")
    parser.add_argument("--format", dest="format",
                        choices=("text", "json", "github"), default="text",
                        help="output format: 'text' (default), 'json' (one "
                             "finding object per line: rule, path, line, "
                             "col, message, evidence), 'github' (GitHub "
                             "Actions ::error annotations)")
    parser.add_argument("--tests-dir", default=None,
                        help="oracle-test corpus directory for L4 "
                             "(default: auto-detected tests/)")
    args = parser.parse_args(argv)

    paths = [Path(p) for p in args.paths] or [_package_root()]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"dmtlint: no such path(s): {', '.join(map(str, missing))}",
              file=sys.stderr)
        return 2
    rules = {name.strip() for name in args.rules.split(",") if name.strip()} or None
    config = LintConfig(
        rules=rules,
        tests_dir=Path(args.tests_dir) if args.tests_dir else None,
    )
    violations = lint_paths(paths, config)
    if args.json:
        print(json.dumps([v.as_dict() for v in violations], indent=2))
    elif args.format == "json":
        for violation in violations:
            print(json.dumps(violation.as_dict(), sort_keys=True))
    else:
        for violation in violations:
            print(violation.render_github() if args.format == "github"
                  else violation.render())
        files = len(list(iter_python_files(paths)))
        print(f"dmtlint: {len(violations)} violation(s) in {files} file(s)"
              f"{'' if violations else ' — clean'}")
    return 1 if violations else 0
