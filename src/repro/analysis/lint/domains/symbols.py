"""Whole-program symbol table and call graph for the L5 domain pass.

One :class:`SymbolTable` is built per lint invocation over every parsed
file. It records a :class:`FunctionInfo` for each module-level function
and class method (plus a synthesized constructor for ``@dataclass``
classes), seeds parameter and return domains from naming conventions and
``# dmtlint-domain:`` annotations, and resolves call sites:

* ``f(...)`` — a name defined at this module's top level, or imported
  via ``from <module> import f``;
* ``self.m(...)`` — a method of the lexically enclosing class;
* ``mod.f(...)`` — ``f`` in the module bound to ``mod`` by an import;
* ``obj.m(...)`` — the method named ``m`` **only when exactly one class
  in the whole program defines it** (a unique name is unambiguous; a
  shared name like ``translate`` is skipped rather than guessed).

Resolution is deliberately best-effort: an unresolved call contributes
``TOP``/name-seeded information and can never produce a finding.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.lint.domains import lattice
from repro.analysis.lint.domains.lattice import BOTTOM, TOP

#: ``# dmtlint-domain: va_end=gva, return=hpa`` — comma-separated
#: ``name=domain`` pairs; ``return`` declares the return domain. The
#: value ``any`` marks a name explicitly polymorphic (mapped to TOP):
#: a page-table structure walked in whichever space it is keyed by.
_DOMAIN_ANNOTATION_RE = re.compile(r"#\s*dmtlint-domain:\s*([a-zA-Z0-9_=, ]+)")
_PAIR_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)\s*=\s*([a-z]+)")


class FunctionInfo:
    """Summary of one function: parameter domains and return domain."""

    def __init__(self, qualname: str, path: str, node: Optional[ast.AST],
                 params: List[str], param_domains: Dict[str, str],
                 declared_return: Optional[str],
                 name_return: Optional[str],
                 annotations: Dict[str, str],
                 class_name: Optional[str] = None):
        self.qualname = qualname
        self.path = path
        self.node = node
        self.params = params                  # positional order, no self
        self.param_domains = param_domains    # name -> concrete domain
        self.declared_return = declared_return  # from an annotation comment
        self.name_return = name_return        # from the function's name
        self.annotations = annotations        # scope-local name overrides
        self.class_name = class_name
        #: Fixpoint-inferred join of the return expressions' domains.
        self.summary_return: str = BOTTOM

    def return_domain(self) -> str:
        """The domain callers see: declared > inferred > name-seeded."""
        if self.declared_return:
            return self.declared_return
        if lattice.is_concrete(self.summary_return):
            return self.summary_return
        if self.name_return:
            return self.name_return
        return TOP if self.summary_return == TOP else BOTTOM

    def expected_return(self) -> Optional[str]:
        """The domain L503 checks returns against (declared or name)."""
        return self.declared_return or self.name_return

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionInfo({self.qualname})"


def module_name(path) -> str:
    """Dotted module name of ``path`` (``repro.core.tea``), best effort."""
    parts = list(path.parts)
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[index:]
    else:
        parts = parts[-1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "module"


def _parse_annotations(comments: Dict[int, str]) -> Dict[int, Dict[str, str]]:
    """line -> {name: domain} for every ``dmtlint-domain`` comment."""
    out: Dict[int, Dict[str, str]] = {}
    for line, comment in comments.items():
        match = _DOMAIN_ANNOTATION_RE.search(comment)
        if not match:
            continue
        pairs = {}
        for name, domain in _PAIR_RE.findall(match.group(1)):
            if domain in lattice.SPACE:
                pairs[name] = domain
            elif domain in ("any", "unknown"):
                pairs[name] = TOP
        if pairs:
            out[line] = pairs
    return out


def _is_dataclass(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = target.attr if isinstance(target, ast.Attribute) else \
            getattr(target, "id", "")
        if name == "dataclass":
            return True
    return False


class ModuleInfo:
    """Per-file symbol information."""

    def __init__(self, ctx):
        self.ctx = ctx
        self.module = module_name(ctx.path)
        self.path = str(ctx.path)
        #: local binding -> dotted target ("sanitizer" ->
        #: "repro.analysis.sanitizer", "TEA" -> "repro.core.tea.TEA").
        self.imports: Dict[str, str] = {}
        #: top-level function name -> qualname.
        self.functions: Dict[str, str] = {}
        #: class name -> {method name -> qualname}.
        self.classes: Dict[str, Dict[str, str]] = {}
        self.annotations = _parse_annotations(ctx.comments)

    def annotations_in(self, lo: int, hi: int) -> Dict[str, str]:
        merged: Dict[str, str] = {}
        for line, pairs in self.annotations.items():
            if lo <= line <= hi:
                merged.update(pairs)
        return merged


class SymbolTable:
    """Functions, methods and the (partial) call graph of the program."""

    def __init__(self, contexts: Iterable):
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: method name -> [qualname, ...] across every class.
        self.methods: Dict[str, List[str]] = {}
        for ctx in contexts:
            self._index_module(ctx)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def _index_module(self, ctx) -> None:
        minfo = ModuleInfo(ctx)
        self.modules[minfo.path] = minfo
        for node in ast.iter_child_nodes(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    minfo.imports[alias.asname or alias.name.split(".")[0]] \
                        = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    minfo.imports[alias.asname or alias.name] = \
                        f"{node.module}.{alias.name}"
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(minfo, node, class_name=None)
            elif isinstance(node, ast.ClassDef):
                self._index_class(minfo, node)

    def _index_class(self, minfo: ModuleInfo, node: ast.ClassDef) -> None:
        methods = minfo.classes.setdefault(node.name, {})
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._add_function(minfo, child, class_name=node.name)
                methods[child.name] = info.qualname
                self.methods.setdefault(child.name, []).append(info.qualname)
        if _is_dataclass(node) and "__init__" not in methods:
            self._add_dataclass_ctor(minfo, node)

    def _add_function(self, minfo: ModuleInfo, node, class_name) -> FunctionInfo:
        qualname = f"{minfo.module}.{class_name}.{node.name}" if class_name \
            else f"{minfo.module}.{node.name}"
        params = [a.arg for a in (node.args.posonlyargs + node.args.args)]
        if class_name and params and params[0] in ("self", "cls"):
            params = params[1:]
        first = min([node.lineno]
                    + [d.lineno for d in node.decorator_list]) - 1
        annotations = minfo.annotations_in(first, node.end_lineno or node.lineno)
        kwonly = [a.arg for a in node.args.kwonlyargs]
        param_domains: Dict[str, str] = {}
        for name in params + kwonly:
            domain = annotations.get(name) or lattice.seed_name(name)
            if lattice.is_concrete(domain) or domain == TOP:
                param_domains[name] = domain
        info = FunctionInfo(
            qualname, minfo.path, node, params, param_domains,
            declared_return=annotations.get("return"),
            name_return=lattice.seed_callable_name(node.name),
            annotations=annotations, class_name=class_name,
        )
        if class_name is None:
            minfo.functions[node.name] = qualname
        self.functions[qualname] = info
        return info

    def _add_dataclass_ctor(self, minfo: ModuleInfo,
                            node: ast.ClassDef) -> None:
        """Synthesize ``Class(...)`` parameter domains from field order."""
        params: List[str] = []
        param_domains: Dict[str, str] = {}
        annotations = minfo.annotations_in(node.lineno,
                                           node.end_lineno or node.lineno)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.AnnAssign) and \
                    isinstance(child.target, ast.Name):
                name = child.target.id
                params.append(name)
                domain = annotations.get(name) or lattice.seed_name(name)
                if lattice.is_concrete(domain) or domain == TOP:
                    param_domains[name] = domain
        qualname = f"{minfo.module}.{node.name}.__init__"
        info = FunctionInfo(qualname, minfo.path, None, params, param_domains,
                            declared_return=None, name_return=None,
                            annotations=annotations, class_name=node.name)
        minfo.classes.setdefault(node.name, {})["__init__"] = qualname
        self.functions[qualname] = info

    # ------------------------------------------------------------------ #
    # Call resolution
    # ------------------------------------------------------------------ #

    def resolve_call(self, call: ast.Call, minfo: ModuleInfo,
                     class_name: Optional[str]) -> Optional[FunctionInfo]:
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(func.id, minfo)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(func, minfo, class_name)
        return None

    def _resolve_name(self, name: str, minfo: ModuleInfo) -> Optional[FunctionInfo]:
        qual = minfo.functions.get(name)
        if qual:
            return self.functions.get(qual)
        ctor = minfo.classes.get(name, {}).get("__init__")
        if ctor:
            return self.functions.get(ctor)
        target = minfo.imports.get(name)
        if target:
            info = self.functions.get(target)
            if info:
                return info
            # imported class -> its (synthesized) constructor
            return self.functions.get(f"{target}.__init__")
        return None

    def _resolve_attribute(self, func: ast.Attribute, minfo: ModuleInfo,
                           class_name: Optional[str]) -> Optional[FunctionInfo]:
        attr = func.attr
        base = func.value
        if isinstance(base, ast.Name):
            if base.id in ("self", "cls") and class_name:
                qual = minfo.classes.get(class_name, {}).get(attr)
                if qual:
                    return self.functions.get(qual)
            target = minfo.imports.get(base.id)
            if target:
                info = self.functions.get(f"{target}.{attr}")
                if info:
                    return info
        candidates = self.methods.get(attr, [])
        if len(candidates) == 1:
            return self.functions.get(candidates[0])
        return None

    # ------------------------------------------------------------------ #

    def iter_functions(self) -> Iterable[Tuple[ModuleInfo, FunctionInfo]]:
        for info in self.functions.values():
            if info.node is not None:  # synthesized ctors have no body
                yield self.modules[info.path], info
