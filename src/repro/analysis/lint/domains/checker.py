"""The L5 program rule: interprocedural fixpoint + finding emission.

Phase 1 (solve): every function is analyzed with the current summaries
of its callees; any function whose inferred return domain changes marks
the pass dirty. The lattice is flat and finite, so the fixpoint
converges in at most a handful of passes (capped defensively).

Phase 2 (report): one more pass per function — and one over each
module's top-level statements — with reporting enabled, emitting
L501/L502/L503 against the stabilized summaries.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.analysis.lint.domains import lattice
from repro.analysis.lint.domains.symbols import SymbolTable
from repro.analysis.lint.domains.transfer import Finding, FunctionAnalyzer

#: Defensive cap; the flat lattice converges in 2-3 passes in practice.
MAX_PASSES = 8


def solve(symtab: SymbolTable) -> None:
    """Run summary inference to fixpoint over the call graph."""
    for _ in range(MAX_PASSES):
        changed = False
        for minfo, info in symtab.iter_functions():
            inferred = FunctionAnalyzer(symtab, minfo, info).run()
            old = info.summary_return
            new = lattice.join(old, inferred)
            if new != old:
                info.summary_return = new
                changed = True
        if not changed:
            return


def report(symtab: SymbolTable) -> List[Finding]:
    """Final reporting pass; returns raw findings with file paths set."""
    findings: List[Finding] = []
    for minfo, info in symtab.iter_functions():
        collected: List[Finding] = []
        FunctionAnalyzer(symtab, minfo, info, report=collected).run()
        for finding in collected:
            finding.path = minfo.path
        findings.extend(collected)
    for minfo in symtab.modules.values():
        collected = []
        FunctionAnalyzer(symtab, minfo, None,
                         report=collected).run_module(minfo.ctx.tree)
        for finding in collected:
            finding.path = minfo.path
        findings.extend(collected)
    return findings


def analyze_program(contexts: Iterable) -> List[Finding]:
    """Build the symbol table, solve, and report over ``contexts``."""
    symtab = SymbolTable(contexts)
    solve(symtab)
    return report(symtab)
