"""Interprocedural address-domain dataflow (dmtlint rule family L5).

DMT's machinery constantly converts between guest-virtual, guest-
physical and host-physical addresses, page/frame numbers, byte offsets
and cycle counts. Each is a distinct *domain*; confusing two (passing a
GPA where an HPA is expected, adding a VPN to a frame number) produces
plausible-looking integers and silently wrong simulations. This package
makes domain membership a statically checked property:

* :mod:`.lattice` — the domain lattice, compatibility spaces and
  naming-convention seeding;
* :mod:`.symbols` — whole-program symbol table, ``# dmtlint-domain:``
  annotations, call-graph resolution;
* :mod:`.transfer` — transfer functions over assignments, arithmetic,
  calls and returns;
* :mod:`.checker` — the interprocedural fixpoint and the
  L501/L502/L503 reporting pass.

See DESIGN.md §12 for the full write-up.
"""

from repro.analysis.lint.domains.checker import analyze_program  # noqa: F401
from repro.analysis.lint.domains.lattice import (  # noqa: F401
    DOMAINS,
    seed_name,
)
