r"""The address-domain lattice (rule family L5).

Every value the simulator shuffles around lives in exactly one *domain*:
a guest-virtual byte address is not a guest-physical one, a virtual page
number is not a host frame number, and a cycle count is not a byte
count. The lattice is flat — ``BOTTOM`` (no information, e.g. an int
literal) below the nine concrete domains below ``TOP`` (conflicting or
unknown provenance):

::

                         TOP ("unknown")
      ___________________/ | \____________________
     /    |    |    |    | | |    |       |       \
    gva  gpa  hpa  vpn  pfn frame offset cycles  bytes
     \____|____|____|____|_|_|____|_______|______/
                         BOTTOM

``pfn`` and ``frame`` both name host-physical frame numbers (the mem/
layer says "frame", the translation layer says "pfn"), so they share a
*space* and mix freely; every other concrete pair is distinct. Byte
addresses may be offset by ``offset``/``bytes`` values; everything else
only combines with its own space.

Domains are seeded from naming conventions (:func:`seed_name`) and from
explicit ``# dmtlint-domain: name=gpa`` annotations; transfer functions
in :mod:`repro.analysis.lint.domains.transfer` propagate them through
assignments, arithmetic, calls and returns.
"""

from __future__ import annotations

from typing import Optional

# Concrete domains (the ISSUE-specified lattice elements).
GVA = "gva"        # guest/program virtual byte address
GPA = "gpa"        # guest-physical byte address
HPA = "hpa"        # host-physical byte address
VPN = "vpn"        # virtual page number
PFN = "pfn"        # host-physical frame number (translation-layer name)
FRAME = "frame"    # host-physical frame number (mem-layer name)
OFFSET = "offset"  # byte offset within a page/region
CYCLES = "cycles"  # simulated time
BYTES = "bytes"    # byte sizes/lengths

#: Lattice extremes. ``BOTTOM`` combines silently with anything (int
#: literals, loop counters); ``TOP`` never triggers findings but also
#: never lends a domain to a result.
BOTTOM = "bottom"
TOP = "unknown"

DOMAINS = (GVA, GPA, HPA, VPN, PFN, FRAME, OFFSET, CYCLES, BYTES)

#: Compatibility spaces: domains in the same space mix freely. pfn and
#: frame are two names for host frame numbers (DESIGN.md §12.1).
SPACE = {GVA: "gva", GPA: "gpa", HPA: "hpa", VPN: "vpn",
         PFN: "hfn", FRAME: "hfn",
         OFFSET: "offset", CYCLES: "cycles", BYTES: "bytes"}

#: Byte-granular address domains: may be displaced by offset/bytes.
BYTE_ADDR = frozenset({GVA, GPA, HPA})
#: Page/frame-number domains: never mix with byte addresses.
PAGE_NUM = frozenset({VPN, PFN, FRAME})
#: Displacement domains: may be added to byte addresses.
DISPLACEMENT = frozenset({OFFSET, BYTES})

#: ``addr >> PAGE_SHIFT`` conversions: byte address -> page number.
#: gpa has no page-number domain in the lattice, so it degrades to TOP.
RSHIFT_TO = {GVA: VPN, HPA: PFN}
#: ``page_number << PAGE_SHIFT`` conversions: page number -> byte address.
LSHIFT_TO = {VPN: GVA, PFN: HPA, FRAME: HPA}

#: Identifier tokens (underscore-split, lowercased) that seed a domain.
#: Plain ``va`` is the guest/program virtual address throughout the
#: simulator; plain ``pa``/``addr`` are ambiguous and stay unseeded.
TOKEN_DOMAINS = {
    "gva": GVA, "gvas": GVA, "va": GVA, "vas": GVA,
    "gpa": GPA, "gpas": GPA,
    "hpa": HPA, "hpas": HPA,
    "vpn": VPN, "vpns": VPN,
    "pfn": PFN, "pfns": PFN,
    "frame": FRAME, "frames": FRAME,
    "offset": OFFSET, "offsets": OFFSET,
    "cycles": CYCLES,
    "bytes": BYTES, "nbytes": BYTES,
}


def is_concrete(domain: str) -> bool:
    return domain in SPACE


def same_space(a: str, b: str) -> bool:
    return SPACE.get(a) == SPACE.get(b) and a in SPACE


def join(a: str, b: str) -> str:
    """Least upper bound of two lattice elements."""
    if a == BOTTOM:
        return b
    if b == BOTTOM:
        return a
    if same_space(a, b):
        return a
    return TOP


def additive_compatible(a: str, b: str) -> bool:
    """May ``a + b`` / ``a - b`` mix these two *concrete* domains?"""
    if same_space(a, b):
        return True
    if (a in BYTE_ADDR and b in DISPLACEMENT) or \
            (b in BYTE_ADDR and a in DISPLACEMENT):
        return True
    # size +/- offset arithmetic (tail = nbytes - offset)
    return a in DISPLACEMENT and b in DISPLACEMENT


def additive_result(a: str, b: str, subtraction: bool = False) -> str:
    """Domain of ``a + b`` / ``a - b`` (after compatibility is checked).

    Subtraction is dimensional: the difference of two byte addresses is
    a byte *distance* (``bytes``), and the difference of two page/frame
    numbers is a dimensionless count (``BOTTOM``) — this is what makes
    the paper's Figure 7 register arithmetic
    (``base_frame + ((va - va_start) >> shift)``) check cleanly.
    """
    if a == BOTTOM:
        return b
    if b == BOTTOM:
        return a
    if a == TOP or b == TOP:
        return TOP
    if a in BYTE_ADDR and b in DISPLACEMENT:
        return a
    if b in BYTE_ADDR and a in DISPLACEMENT:
        return b
    if same_space(a, b):
        if subtraction and a in BYTE_ADDR:
            return BYTES
        if subtraction and a in PAGE_NUM:
            return BOTTOM
        return a
    return TOP


def compare_compatible(a: str, b: str) -> bool:
    """May ``a < b`` (or any ordering/equality) compare these domains?

    Byte addresses compare against sizes/offsets (bounds checks with a
    zero base are idiomatic); page numbers, cycle counts and cross-space
    addresses only compare within their own space.
    """
    if same_space(a, b):
        return True
    if (a in BYTE_ADDR and b in DISPLACEMENT) or \
            (b in BYTE_ADDR and a in DISPLACEMENT):
        return True
    return a in DISPLACEMENT and b in DISPLACEMENT


def seed_name(name: str) -> str:
    """Domain seeded by an identifier's naming convention.

    The identifier is split on underscores; exactly one domain token
    seeds that domain (``base_frame`` -> frame, ``ws_bytes`` -> bytes).
    Zero or several distinct domain tokens (``va_bytes``) seed nothing:
    ambiguous names need a ``# dmtlint-domain:`` annotation.
    """
    domains = {TOKEN_DOMAINS[token]
               for token in name.lower().split("_")
               if token in TOKEN_DOMAINS}
    if len(domains) == 1:
        return next(iter(domains))
    return BOTTOM


def seed_callable_name(name: str) -> Optional[str]:
    """Return-domain seeded by a *function* name, or None.

    Two patterns: a trailing domain token (``gpa_to_hpa`` returns hpa)
    and a leading domain token followed by ``for``/``of``
    (``frame_for_table`` returns a frame). A leading token before
    ``to`` is the *source* domain (``frame_to_addr``), so it seeds
    nothing.
    """
    tokens = name.lower().split("_")
    if tokens and tokens[-1] in TOKEN_DOMAINS:
        return TOKEN_DOMAINS[tokens[-1]]
    if len(tokens) >= 2 and tokens[0] in TOKEN_DOMAINS \
            and tokens[1] in ("for", "of"):
        return TOKEN_DOMAINS[tokens[0]]
    return None
