"""Transfer functions: abstract interpretation of one function body.

:class:`FunctionAnalyzer` runs a forward pass over a function's
statements, tracking one domain per local name. It is deliberately
simple — no CFG, branches are processed in source order, loops once —
which over-approximates but is exactly the right precision for a lint:
a finding needs two *concretely typed* operands, and concreteness only
flows from names, annotations and resolved calls.

The same analyzer runs twice per function: once per fixpoint iteration
to infer return-domain summaries (``report=None``), and one final pass
with ``report`` set, emitting:

* **L501** — ``+``/``-``/``+=``/``-=``/ordering/equality over two
  concrete domains from incompatible spaces;
* **L502** — an argument whose inferred domain contradicts the resolved
  callee's parameter domain;
* **L503** — a ``return`` whose domain contradicts the function's
  declared (``# dmtlint-domain: return=...``) or name-seeded domain.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.analysis.lint.domains import lattice
from repro.analysis.lint.domains.lattice import BOTTOM, TOP
from repro.analysis.lint.domains.symbols import (
    FunctionInfo,
    ModuleInfo,
    SymbolTable,
)

#: Calls that return their first argument's domain unchanged.
_PASS_THROUGH = frozenset({
    "int", "abs", "np.int64", "numpy.int64", "np.uint64", "numpy.uint64",
    "align_down", "align_up",
})

#: Calls whose result joins every argument's domain (min(va, end)...).
_JOINING = frozenset({"min", "max"})

#: Comparison operators L501 cares about (``in``/``is`` are structural).
_ORDERED_CMP = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


def _dotted(node: ast.AST) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


class Finding:
    """One L5 finding, engine-agnostic (the checker wraps it)."""

    def __init__(self, rule: str, node: ast.AST, message: str, evidence: str):
        self.rule = rule
        self.line = node.lineno
        self.col = node.col_offset
        self.message = message
        self.evidence = evidence


class FunctionAnalyzer:
    """Abstract interpretation of one function (or module) body."""

    def __init__(self, symtab: SymbolTable, minfo: ModuleInfo,
                 info: Optional[FunctionInfo],
                 report: Optional[List[Finding]] = None):
        self.symtab = symtab
        self.minfo = minfo
        self.info = info
        self.report = report
        self.env: Dict[str, str] = {}
        self.annotations: Dict[str, str] = {}
        self.return_domain = BOTTOM
        if info is not None:
            self.annotations = dict(info.annotations)
            self.env.update(info.param_domains)
        # module-scope annotations apply everywhere in the file
        module_annotations = minfo.annotations_in(0, 10 ** 9)
        for name, domain in module_annotations.items():
            self.annotations.setdefault(name, domain)

    # ------------------------------------------------------------------ #

    def run(self) -> str:
        if self.info is not None and self.info.node is not None:
            self._exec_block(self.info.node.body)
        return self.return_domain

    def run_module(self, tree: ast.Module) -> None:
        body = [stmt for stmt in tree.body
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                         ast.ClassDef))]
        self._exec_block(body)

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #

    def _exec_block(self, stmts) -> None:
        for stmt in stmts:
            self._exec(stmt)

    def _exec(self, stmt: ast.AST) -> None:
        if isinstance(stmt, ast.Assign):
            domain = self.eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, domain, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            domain = self.eval(stmt.value) if stmt.value is not None else BOTTOM
            self._bind(stmt.target, domain, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            target_domain = self._load(stmt.target)
            value_domain = self.eval(stmt.value)
            if isinstance(stmt.op, (ast.Add, ast.Sub)):
                self._check_additive(stmt, target_domain, value_domain)
                result = lattice.additive_result(
                    target_domain, value_domain,
                    subtraction=isinstance(stmt.op, ast.Sub))
            else:
                result = TOP if (target_domain, value_domain) != (BOTTOM, BOTTOM) \
                    else BOTTOM
            self._bind(stmt.target, result, stmt.value)
        elif isinstance(stmt, ast.Return):
            domain = self.eval(stmt.value) if stmt.value is not None else BOTTOM
            self._check_return(stmt, domain)
            self.return_domain = lattice.join(self.return_domain, domain)
        elif isinstance(stmt, ast.For):
            self._bind(stmt.target, self._element_domain(stmt.iter), stmt.iter)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.If, ast.While)):
            self.eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.eval(item.context_expr)
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)
        # nested defs/classes are not descended into: the symbol table
        # only tracks module/class level functions.

    def _bind(self, target: ast.AST, domain: str, value) -> None:
        if isinstance(target, ast.Name):
            if lattice.is_concrete(domain):
                self.env[target.id] = domain
            else:
                # opaque RHS: fall back to the name's own seeding
                seeded = self.annotations.get(target.id) or \
                    lattice.seed_name(target.id)
                if lattice.is_concrete(seeded):
                    self.env[target.id] = seeded
                else:
                    self.env[target.id] = domain
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (ast.Tuple, ast.List)) and \
                    len(value.elts) == len(target.elts):
                for sub_target, sub_value in zip(target.elts, value.elts):
                    self._bind(sub_target, self.eval(sub_value), sub_value)
            else:
                for sub_target in target.elts:
                    self._bind(sub_target, BOTTOM, None)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            # attribute/element domains always come from name seeding
            self.eval(target.value)

    def _element_domain(self, iterable: ast.AST) -> str:
        if isinstance(iterable, ast.Call) and \
                _dotted(iterable.func) in ("range", "reversed", "sorted"):
            domain = BOTTOM
            for arg in iterable.args:
                domain = lattice.join(domain, self.eval(arg))
            return domain
        if isinstance(iterable, ast.Call) and \
                _dotted(iterable.func) == "enumerate":
            for arg in iterable.args:
                self.eval(arg)
            return BOTTOM
        # an array/list of addresses yields addresses
        return self.eval(iterable)

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #

    def _load(self, node: ast.AST) -> str:
        """Domain of a name/attribute without re-reporting."""
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            return self.annotations.get(node.id) or lattice.seed_name(node.id)
        if isinstance(node, ast.Attribute):
            return self.annotations.get(node.attr) or \
                lattice.seed_name(node.attr)
        if isinstance(node, ast.Subscript):
            return self._load(node.value)
        return BOTTOM

    def eval(self, node: Optional[ast.AST]) -> str:
        if node is None:
            return BOTTOM
        if isinstance(node, (ast.Name, ast.Attribute)):
            if isinstance(node, ast.Attribute):
                self.eval(node.value)
            return self._load(node)
        if isinstance(node, ast.Constant):
            return BOTTOM
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.Compare):
            self._eval_compare(node)
            return BOTTOM
        if isinstance(node, (ast.BoolOp,)):
            domain = BOTTOM
            for value in node.values:
                domain = lattice.join(domain, self.eval(value))
            return domain
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return lattice.join(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Subscript):
            domain = self.eval(node.value)
            self.eval(node.slice)
            return domain
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self.eval(elt)
            return BOTTOM
        if isinstance(node, ast.Dict):
            for key in node.keys:
                self.eval(key)
            for value in node.values:
                self.eval(value)
            return BOTTOM
        if isinstance(node, ast.Slice):
            self.eval(node.lower)
            self.eval(node.upper)
            self.eval(node.step)
            return BOTTOM
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            for gen in node.generators:
                self._bind(gen.target, self._element_domain(gen.iter), gen.iter)
                for cond in gen.ifs:
                    self.eval(cond)
            if isinstance(node, ast.DictComp):
                self.eval(node.key)
                self.eval(node.value)
            else:
                self.eval(node.elt)
            return BOTTOM
        if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.eval(child)
            return BOTTOM
        if isinstance(node, ast.Lambda):
            return TOP
        # anything else: evaluate children for reporting, value unknown
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child)
        return TOP

    def _eval_binop(self, node: ast.BinOp) -> str:
        left = self.eval(node.left)
        right = self.eval(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self._check_additive(node, left, right)
            return lattice.additive_result(
                left, right, subtraction=isinstance(node.op, ast.Sub))
        if isinstance(node.op, ast.RShift):
            if left == BOTTOM:
                return BOTTOM
            return lattice.RSHIFT_TO.get(left, TOP)
        if isinstance(node.op, ast.LShift):
            if left == BOTTOM:
                return BOTTOM
            return lattice.LSHIFT_TO.get(left, TOP)
        # &, |, ^, %, *, /, //, **: domain-destroying (masking an address
        # or scaling an index yields a value we refuse to guess about)
        if left == BOTTOM and right == BOTTOM:
            return BOTTOM
        return TOP

    def _eval_compare(self, node: ast.Compare) -> None:
        left_node = node.left
        left = self.eval(left_node)
        for op, comparator in zip(node.ops, node.comparators):
            right = self.eval(comparator)
            if isinstance(op, _ORDERED_CMP) and lattice.is_concrete(left) \
                    and lattice.is_concrete(right) \
                    and not lattice.compare_compatible(left, right):
                self._emit("L501", node,
                           f"comparison mixes address domains "
                           f"{left} and {right}",
                           f"left={left} right={right}")
            left = right

    def _check_additive(self, node: ast.AST, left: str, right: str) -> None:
        if lattice.is_concrete(left) and lattice.is_concrete(right) \
                and not lattice.additive_compatible(left, right):
            self._emit("L501", node,
                       f"arithmetic mixes address domains {left} and {right}",
                       f"left={left} right={right}")

    def _check_return(self, node: ast.Return, domain: str) -> None:
        if self.info is None:
            return
        expected = self.info.expected_return()
        if expected and lattice.is_concrete(expected) \
                and lattice.is_concrete(domain) \
                and not lattice.same_space(domain, expected):
            self._emit("L503", node,
                       f"returns {domain} but "
                       f"'{self.info.qualname.rsplit('.', 1)[-1]}' is "
                       f"declared/seeded to return {expected}",
                       f"declared={expected} returned={domain}")

    # ------------------------------------------------------------------ #
    # Calls
    # ------------------------------------------------------------------ #

    def _eval_call(self, node: ast.Call) -> str:
        dotted = _dotted(node.func)
        arg_domains = [self.eval(arg) for arg in node.args]
        for kw in node.keywords:
            self.eval(kw.value)
        if isinstance(node.func, (ast.Subscript, ast.Call, ast.Lambda)):
            self.eval(node.func)
        name = dotted.rpartition(".")[2]
        if dotted in _PASS_THROUGH or name in _PASS_THROUGH:
            return arg_domains[0] if arg_domains else BOTTOM
        if name in _JOINING:
            domain = BOTTOM
            for arg_domain in arg_domains:
                domain = lattice.join(domain, arg_domain)
            return domain
        class_name = self.info.class_name if self.info else None
        callee = self.symtab.resolve_call(node, self.minfo, class_name)
        if callee is None:
            seeded = lattice.seed_callable_name(name) if name else None
            return seeded or TOP
        self._check_args(node, callee, arg_domains)
        return callee.return_domain()

    def _check_args(self, node: ast.Call, callee: FunctionInfo,
                    arg_domains: List[str]) -> None:
        short = callee.qualname.rsplit(".", 2)
        short = ".".join(short[-2:]) if callee.class_name else short[-1]
        for position, domain in enumerate(arg_domains):
            if position >= len(callee.params):
                break
            if isinstance(node.args[position], ast.Starred):
                break
            param = callee.params[position]
            expected = callee.param_domains.get(param)
            if expected and lattice.is_concrete(expected) \
                    and lattice.is_concrete(domain) \
                    and not lattice.same_space(domain, expected):
                self._emit("L502", node,
                           f"argument {position + 1} to {short}() is {domain} "
                           f"but parameter '{param}' expects {expected}",
                           f"arg={domain} param={param}:{expected}")
        for kw in node.keywords:
            if kw.arg is None:
                continue
            expected = callee.param_domains.get(kw.arg)
            domain = self._load(kw.value) if isinstance(
                kw.value, (ast.Name, ast.Attribute, ast.Subscript)) else BOTTOM
            if expected and lattice.is_concrete(expected) \
                    and lattice.is_concrete(domain) \
                    and not lattice.same_space(domain, expected):
                self._emit("L502", node,
                           f"keyword '{kw.arg}' to {short}() is {domain} "
                           f"but the parameter expects {expected}",
                           f"arg={domain} param={kw.arg}:{expected}")

    # ------------------------------------------------------------------ #

    def _emit(self, rule: str, node: ast.AST, message: str,
              evidence: str) -> None:
        if self.report is not None:
            self.report.append(Finding(rule, node, message, evidence))
