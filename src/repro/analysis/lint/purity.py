"""dmtlint rule family L6: kernel nopython-purity analysis.

The native replay kernels (``sim/kernels/``) are compiled with Numba's
``@njit`` when it is importable and run as plain Python otherwise. A
kernel edit that leaves the nopython-compilable subset therefore passes
every test on a numba-less machine and only explodes at JIT time on the
numba CI leg (or a user's box). L6 closes that gap statically: every
``@jit``-decorated function in a ``kernels``-scoped file is checked
against the nopython-safe subset, so ``python -m repro lint`` catches
compile breakage with no numba installed.

Findings (one id per violation class):

* ``L601`` — dict/set construction (literals, comprehensions,
  ``dict()``/``set()``/``frozenset()``): unsupported in nopython mode.
* ``L602`` — closures: nested ``def``/``lambda`` inside a kernel.
* ``L603`` — ``*args``/``**kwargs`` in the signature, or star/double-star
  argument splatting at a call site.
* ``L604`` — string formatting (f-strings, ``%`` on strings,
  ``.format()``): kernels compute over flat int/float arrays only.
* ``L605`` — untyped containers: list literals/comprehensions or
  ``list()``; kernels preallocate ndarrays instead of growing reflected
  lists.
* ``L606`` — exception handling beyond the supported form:
  ``try``/``with`` blocks, bare ``raise``, non-whitelisted exception
  classes, or exception arguments that are not compile-time constants.
* ``L607`` — a call outside the whitelist: pure builtins, whitelisted
  ``np.*`` constructors/math, and kernels defined in (or imported from)
  the ``sim/kernels`` package.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.analysis.lint.engine import FileContext, Rule, Violation

#: Builtins Numba supports in nopython mode and kernels may freely use.
PURE_BUILTINS = frozenset({
    "range", "len", "abs", "min", "max", "int", "float", "bool", "round",
    "divmod", "enumerate", "zip",
})

#: ``np.*`` attributes kernels may call: array constructors and scalar
#: casts/math with well-defined nopython typing.
NUMPY_WHITELIST = frozenset({
    "empty", "zeros", "ones", "full", "empty_like", "zeros_like",
    "full_like", "arange", "int8", "int32", "int64", "uint8", "uint32",
    "uint64", "float32", "float64", "bool_", "sqrt", "floor", "ceil",
    "log2", "minimum", "maximum", "abs", "searchsorted",
})

#: Exception classes ``raise`` may instantiate (with constant args).
EXCEPTION_WHITELIST = frozenset({
    "ValueError", "RuntimeError", "IndexError", "AssertionError",
    "TypeError", "ZeroDivisionError", "OverflowError",
})

#: Names flagged by the container rules, excluded from L607's generic
#: call check so one ``dict()`` does not produce two findings.
_CONTAINER_CTORS = frozenset({"dict", "set", "frozenset", "list"})

_KERNELS_PACKAGE = "repro.sim.kernels"


def _dotted(node: ast.AST) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _is_jit_decorator(dec: ast.AST) -> bool:
    """Match ``@jit``, ``@njit``, ``@backend.jit``, ``@njit(cache=True)``
    and underscore-prefixed stand-ins used by fixtures."""
    if isinstance(dec, ast.Call):
        dec = dec.func
    name = dec.attr if isinstance(dec, ast.Attribute) else \
        getattr(dec, "id", "")
    return name.lstrip("_") in ("jit", "njit")


class L6KernelPurity(Rule):
    """Every compiled kernel stays inside the nopython-safe subset."""

    family = "L6"
    scope = "kernels"

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        allowed_local = self._local_kernel_names(ctx.tree)
        out: List[Violation] = []
        for node in ast.iter_child_nodes(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and any(_is_jit_decorator(d) for d in node.decorator_list):
                out.extend(self._check_kernel(ctx, node, allowed_local))
        return out

    @staticmethod
    def _local_kernel_names(tree: ast.AST) -> Set[str]:
        """Callable names a kernel may legally reach: sibling kernels in
        this file plus names imported from the kernels package."""
        names: Set[str] = set()
        for node in ast.iter_child_nodes(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(node.name)
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.module.startswith(_KERNELS_PACKAGE):
                names.update(alias.asname or alias.name
                             for alias in node.names)
        return names

    # ------------------------------------------------------------------ #

    def _check_kernel(self, ctx: FileContext, func: ast.FunctionDef,
                      allowed_local: Set[str]) -> Iterable[Violation]:
        path = str(ctx.path)
        kernel = func.name
        out: List[Violation] = []

        def emit(rule: str, node: ast.AST, message: str) -> None:
            out.append(Violation(rule, path, node.lineno, node.col_offset,
                                 f"kernel '{kernel}': {message}",
                                 evidence=f"kernel={kernel}"))

        args = func.args
        if args.vararg is not None:
            emit("L603", func, "*args is not nopython-compilable; "
                               "pass a fixed arity of flat arrays")
        if args.kwarg is not None:
            emit("L603", func, "**kwargs is not nopython-compilable; "
                               "pass a fixed arity of flat arrays")

        allowed_raise_calls: Set[int] = set()
        for node in ast.walk(func):
            if node is func:
                continue
            if isinstance(node, (ast.Dict, ast.DictComp)):
                emit("L601", node, "dict construction is unsupported in "
                                   "nopython mode; use parallel flat arrays")
            elif isinstance(node, (ast.Set, ast.SetComp)):
                emit("L601", node, "set construction is unsupported in "
                                   "nopython mode; use a sorted array or "
                                   "bitmask")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.Lambda)):
                emit("L602", node, "closures/nested functions do not "
                                   "compile; hoist to a module-level @jit "
                                   "kernel")
            elif isinstance(node, ast.JoinedStr):
                emit("L604", node, "f-string formatting is unsupported in "
                                   "nopython mode")
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod) \
                    and any(isinstance(side, ast.Constant)
                            and isinstance(side.value, str)
                            for side in (node.left, node.right)):
                emit("L604", node, "%-style string formatting is unsupported "
                                   "in nopython mode")
            elif isinstance(node, (ast.List, ast.ListComp)):
                emit("L605", node, "untyped/reflected lists do not compile "
                                   "reliably; preallocate an ndarray")
            elif isinstance(node, ast.Try):
                emit("L606", node, "try/except is outside the supported "
                                   "nopython subset; hoist error handling "
                                   "to the replay driver")
            elif isinstance(node, ast.With):
                emit("L606", node, "context managers are unsupported in "
                                   "nopython mode")
            elif isinstance(node, ast.Raise):
                allowed_raise_calls.update(
                    self._check_raise(node, emit))
            elif isinstance(node, ast.Call):
                if id(node) in allowed_raise_calls:
                    continue
                self._check_call(node, allowed_local, emit)
        return out

    @staticmethod
    def _check_raise(node: ast.Raise, emit) -> Set[int]:
        """Validate one raise; returns call ids L607 should skip."""
        exc = node.exc
        if exc is None:
            emit("L606", node, "bare re-raise is unsupported in nopython "
                               "mode")
            return set()
        if isinstance(exc, ast.Call):
            name = _dotted(exc.func)
            if name not in EXCEPTION_WHITELIST:
                emit("L606", node, f"raising {name or 'a computed exception'}"
                                   f" is outside the supported nopython "
                                   f"subset")
            elif not all(isinstance(arg, ast.Constant) for arg in exc.args) \
                    or exc.keywords:
                emit("L606", node, "exception arguments must be compile-time "
                                   "constants in nopython mode")
            return {id(exc)}
        if isinstance(exc, ast.Name) and exc.id in EXCEPTION_WHITELIST:
            return set()
        emit("L606", node, "only whitelisted exception classes may be "
                           "raised in nopython mode")
        return set()

    @staticmethod
    def _check_call(node: ast.Call, allowed_local: Set[str], emit) -> None:
        if any(isinstance(arg, ast.Starred) for arg in node.args) or \
                any(kw.arg is None for kw in node.keywords):
            emit("L603", node, "star/double-star argument splatting is not "
                               "nopython-compilable")
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in _CONTAINER_CTORS:
                rule = "L605" if name == "list" else "L601"
                emit(rule, node, f"{name}() construction is unsupported in "
                                 f"nopython mode")
            elif name not in PURE_BUILTINS and name not in allowed_local \
                    and name not in EXCEPTION_WHITELIST:
                emit("L607", node, f"call to '{name}' is outside the kernel "
                                   f"whitelist (pure builtins, np.* "
                                   f"constructors, sibling kernels)")
        elif isinstance(func, ast.Attribute):
            dotted = _dotted(func)
            root = dotted.split(".")[0]
            if root in ("np", "numpy"):
                if func.attr not in NUMPY_WHITELIST:
                    emit("L607", node, f"'{dotted}' is not in the kernel "
                                       f"numpy whitelist")
            elif func.attr == "format":
                emit("L604", node, "str.format() is unsupported in "
                                   "nopython mode")
            else:
                emit("L607", node, f"method call '{dotted}()' is outside "
                                   f"the kernel whitelist; kernels operate "
                                   f"on flat arrays only")
